#!/usr/bin/env python
"""A portal workflow with immutable provenance: crash mid-DAG, resume.

One batch-script stage fans out into eight metaschedule->globusrun
branches collected by a single SRB put — eighteen stages in all.  The
executor journals every stage to the UI host's disk and seals a
content-addressed provenance record per stage, so when the portal
process dies seven stages in (and the Globusrun host with it), a fresh
executor over the same journal recovers the finished stages and drives
only the remainder.  The punchline: the provenance tree of the
crashed-and-resumed run is byte-identical to an uninterrupted run with
the same seed.

Run:  python examples/workflow_portal.py
"""

from repro.grid.jobs import JobSpec
from repro.portal.uiserver import PortalDeployment, UserInterfaceServer
from repro.services.jobsubmit import jobs_to_xml
from repro.shell import (
    BatchScriptStage,
    GlobusrunStage,
    MetaScheduleStage,
    SrbPutStage,
    Workflow,
    const,
    provenance_tree,
    ref,
    render_report,
)

WIDTH = 8
SEED = 2002
RUN = "run-sweep"
JOURNAL = "wf-sweep"
UI_HOST = "ui.gridportal.org"
GLOBUSRUN_HOST = "globusrun.sdsc.edu"
CUT = 7  # stages driven before the crash


def sweep_workflow() -> Workflow:
    """script -> (place -> run) x WIDTH -> collect."""
    stages = [
        BatchScriptStage(
            "script",
            scheduler="PBS",
            params={"executable": "/bin/sweep", "cpus": "1"},
        ),
    ]
    collect_inputs = {}
    for index in range(WIDTH):
        jobs = jobs_to_xml([
            ("", JobSpec(
                name=f"sweep-{index}",
                executable="echo",
                arguments=[f"point-{index}"],
            )),
        ])
        stages.append(MetaScheduleStage(
            f"place-{index}", inputs={"jobs": const(jobs)},
        ))
        stages.append(GlobusrunStage(
            f"run-{index}",
            inputs={
                "jobs": ref(f"place-{index}", "placed"),
                "script": ref("script", "script"),
            },
        ))
        collect_inputs[f"r{index}"] = ref(f"run-{index}", "results")
    stages.append(SrbPutStage(
        "collect", path="/home/portal/sweep.out", inputs=collect_inputs,
    ))
    return Workflow("sweep-wf", stages)


def executor(deployment):
    ui = UserInterfaceServer(deployment, host=UI_HOST)
    return ui.workflow_executor(
        sweep_workflow(), run_id=RUN, seed=SEED, journal_name=JOURNAL,
    )


def main() -> None:
    print("== the uninterrupted baseline (its own deployment) ==")
    baseline_deployment = PortalDeployment.build(durable=True)
    baseline = executor(baseline_deployment)
    result = baseline.run()
    print(f"   {len(result.stage_order)} stages, "
          f"makespan {result.makespan:.3f}s virtual")

    print("\n== same workflow, same seed; the process dies mid-DAG ==")
    deployment = PortalDeployment.build(durable=True)
    first = executor(deployment)
    partial = first.run(max_stages=CUT)
    print(f"   crashed after {len(partial.stage_order)} of "
          f"{2 * WIDTH + 2} stages: {', '.join(partial.stage_order)}")
    network = deployment.network
    network.take_down(GLOBUSRUN_HOST)
    network.bring_up(GLOBUSRUN_HOST)
    deployment.rebuilders[GLOBUSRUN_HOST]()  # supervisor: replay its journal
    print(f"   {GLOBUSRUN_HOST} bounced and rebuilt from its own journal")

    print("\n== a fresh executor over the surviving journal resumes ==")
    second = executor(deployment)
    print(f"   recovered {len(second.completed)} finished stage(s) "
          "from the journal")
    resumed = second.run()
    print(f"   re-drove {len(resumed.stage_order)} stage(s): "
          f"{', '.join(resumed.stage_order[:4])}, ...")

    print("\n== the provenance trees are byte-identical ==")
    tree_a = provenance_tree(baseline.store, RUN)
    tree_b = provenance_tree(second.store, RUN)
    assert tree_a == tree_b, "crash/resume changed the provenance tree!"
    assert baseline.store.verify() == []
    assert second.store.verify() == []
    print("   identical — no clocks, attempt counts, or trace ids leak in")

    print("\n== the offline report for the resumed run ==")
    print("\n".join(
        "   " + line
        for line in render_report(
            second.workflow, second.store, second.journal, RUN,
        ).splitlines()
    ))

    print("\n== the portlet view of the same run ==")
    ui = UserInterfaceServer(deployment, host=UI_HOST)
    portlet = ui.add_workflow_portlet(second.store, RUN)
    for line in portlet.render(UI_HOST).splitlines()[:6]:
        print(f"   {line}")
    print("   ...")


if __name__ == "__main__":
    main()
