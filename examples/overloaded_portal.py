#!/usr/bin/env python
"""A portal under 5x overload, kept honest by admission control.

Builds the full portal with a deliberately small admission budget on the
Globusrun service (4 requests/s) and three principals — alice, bob and
carol — holding 3:2:1 fair-share weights.  An open-loop arrival schedule
offers five times the service capacity for a minute of virtual time; the
admission controller sheds the excess early with a ``retry-after`` hint
while the weighted-fair queue keeps every principal's admitted share
pinned to its weight.  Afterwards the example shows the hint being
honoured by a retrying client, a metascheduler batch placement, and the
LoadPortlet / monitoring views a portal administrator would read.

Run:  python examples/overloaded_portal.py
"""

from repro.faults import PortalError
from repro.loadmgmt import LaneConfig
from repro.portal import PortalDeployment, UserInterfaceServer
from repro.resilience.policy import RetryPolicy
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, jobs_to_xml
from repro.grid.jobs import JobSpec
from repro.soap.client import SoapClient

CAPACITY = 4.0  # admitted requests per virtual second
WEIGHTS = {"alice": 3.0, "bob": 2.0, "carol": 1.0}
MULTIPLE = 5.0
DURATION = 60.0


def main() -> None:
    deployment = PortalDeployment.build(
        observe=True,
        admission_capacity=CAPACITY,
        admission_lanes={
            name: LaneConfig(weight=w) for name, w in WEIGHTS.items()
        },
    )
    network = deployment.network
    ui = UserInterfaceServer(deployment)

    print("== three principals offer 5x the Globusrun capacity ==")
    clients, next_at, interval = {}, {}, {}
    for index, name in enumerate(sorted(WEIGHTS)):
        clients[name] = SoapClient(
            network, deployment.endpoints["globusrun"], GLOBUSRUN_NAMESPACE,
            source=f"{name}.org", principal=name,
        )
        interval[name] = len(WEIGHTS) / (MULTIPLE * CAPACITY)
        next_at[name] = index * interval[name] / len(WEIGHTS)

    started = network.clock.now
    admitted = {name: 0 for name in WEIGHTS}
    shed = {name: 0 for name in WEIGHTS}
    while True:
        name = min(next_at, key=lambda n: (next_at[n], n))
        at = next_at[name]
        if at - started >= DURATION:
            break
        network.clock.sleep_until(at)
        try:
            clients[name].call("run", "modi4.iu.edu", "echo", "hi", 1, "",
                               600)
            admitted[name] += 1
        except PortalError:
            shed[name] += 1
        next_at[name] = at + interval[name]

    total_ok = sum(admitted.values())
    weight_sum = sum(WEIGHTS.values())
    elapsed = max(network.clock.now - started, DURATION)
    print(f"   goodput {total_ok / elapsed:.2f}/s "
          f"(capacity {CAPACITY:.0f}/s, offered {MULTIPLE * CAPACITY:.0f}/s)")
    for name in sorted(WEIGHTS):
        share = admitted[name] / total_ok if total_ok else 0.0
        print(f"   {name:<6} weight {WEIGHTS[name]:.0f}  "
              f"admitted {admitted[name]:<4} shed {shed[name]:<4} "
              f"share {share:5.1%} (fair {WEIGHTS[name] / weight_sum:5.1%})")

    print("\n== the retry-after hint, honoured by a retrying client ==")
    retrier = SoapClient(
        network, deployment.endpoints["globusrun"], GLOBUSRUN_NAMESPACE,
        source="alice.org", principal="alice",
        retry_policy=RetryPolicy(max_attempts=6, base_delay=0.05, jitter=0.0),
    )
    for _ in range(40):
        try:
            retrier.call("run", "modi4.iu.edu", "echo", "again", 1, "", 600)
        except PortalError:
            pass
    print(f"   calls retried after a ServerBusy hint: "
          f"{retrier.busy_backoffs}")

    print("\n== a batch placed across the testbed by the metascheduler ==")
    batch = jobs_to_xml([
        ("", JobSpec(name=f"sweep-{i}", executable="simulate",
                     arguments=[str(i)], wallclock_limit=600))
        for i in range(4)
    ])
    ui.client("metascheduler").call("run_xml", batch)
    for row in deployment.metascheduler.placements(4):
        print(f"   {row['job']:<8} -> {row['contact']:<28} "
              f"queue {row['queue']:<7} policy {row['policy']}")

    print("\n== what the administrator's LoadPortlet shows ==")
    portlet = ui.add_load_portlet()
    html = portlet.render("/portal")
    print(f"   rendered {len(html)} chars: lanes, queue depths, placements")
    for row in deployment.monitoring.load_lanes():
        print(f"   lane {row['lane'] or 'anonymous':<10} "
              f"weight {row['weight']:.0f}  admitted {row['admitted']:<5} "
              f"shed {row['shed']:<5} mean wait {row['mean_wait']:.2f}s")


if __name__ == "__main__":
    main()
