#!/usr/bin/env python
"""Data management with the SRB web services (§3.2).

Exercises the five methods the paper exposed — ls, cat, get, put, and
xml_call — plus replication, the common error vocabulary (the disk really
can fill up), and the scaling comparison between SOAP string streaming and
out-of-band transfer.

Run:  python examples/data_management.py
"""

import base64

from repro.faults import ResourceExhaustedError
from repro.portal import PortalDeployment
from repro.services.datamgmt import (
    SRBWS_NAMESPACE,
    make_request_xml,
    parse_results_xml,
)
from repro.soap.client import SoapClient
from repro.srb.storage import StorageResource
from repro.transport.client import HttpClient


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network
    client = SoapClient(network, deployment.endpoints["srb"],
                        SRBWS_NAMESPACE, source="ui.example")

    print("== put / ls / cat / get ==")
    client.call("put", "/home/portal/inputs.dat",
                base64.b64encode(b"T=300K\nP=1atm\n").decode())
    client.call("put", "/home/portal/notes.txt",
                base64.b64encode(b"remember the basis set").decode())
    for row in client.call("ls", "/home/portal", ""):
        print("   " + row)
    print("   cat inputs.dat -> " +
          client.call("cat", "/home/portal/inputs.dat").replace("\n", " | "))

    print("\n== xml_call: many commands, one connection ==")
    request = make_request_xml([
        ("mkdir", ["/home/portal/run42"]),
        ("put", ["/home/portal/run42/out.log",
                 base64.b64encode(b"SCF converged").decode()]),
        ("replicate", ["/home/portal/run42/out.log", "sdsc-hpss"]),
        ("ls", ["/home/portal/run42"]),
        ("cat", ["/home/portal/run42/does-not-exist"]),
    ])
    before = network.stats.snapshot()
    results = parse_results_xml(client.call("xml_call", request))
    delta = network.stats.delta(before)
    for result in results:
        line = result.get("value") or "; ".join(result.get("items", []) or [])
        line = line or result.get("error", "")
        print(f"   [{result['status']:<5}] {result['command']:<9} {line}")
    print(f"   -> all {len(results)} commands used {delta.requests} request "
          f"and {delta.connections} connection")

    print("\n== the canonical implementation error: the disk is full ==")
    deployment.srb.add_resource(StorageResource("tiny", capacity_bytes=64))
    try:
        deployment.srb.put(
            deployment.srb.connect(
                deployment.ca.issue_credential(
                    "/O=Grid/O=Reproduction/CN=portal-services",
                    lifetime=1000.0, now=network.clock.now,
                ).sign_proxy(lifetime=500.0, now=network.clock.now)
            ),
            "/home/portal/too-big", b"x" * 1000, resource="tiny",
        )
    except ResourceExhaustedError as err:
        print(f"   {err.code}: {err.message}")

    print("\n== string streaming vs out-of-band transfer (the C1 claim) ==")
    payload = bytes((i * 17) % 256 for i in range(256 * 1024))
    client.call("put", "/home/portal/big.bin",
                base64.b64encode(payload).decode())
    before = network.stats.snapshot()
    client.call("get", "/home/portal/big.bin")
    soap_bytes = network.stats.delta(before).bytes_received
    url = client.call("transfer_url", "/home/portal/big.bin")
    before = network.stats.snapshot()
    HttpClient(network, "ui.example").get(f"http://srbws.sdsc.edu{url}")
    oob_bytes = network.stats.delta(before).bytes_received
    print(f"   payload          : {len(payload):>9} bytes")
    print(f"   SOAP string get  : {soap_bytes:>9} bytes on the wire "
          f"({soap_bytes / len(payload):.2f}x)")
    print(f"   out-of-band get  : {oob_bytes:>9} bytes on the wire "
          f"({oob_bytes / len(payload):.2f}x)")
    print('   -> "this transfer mechanism does not scale well" — confirmed')


if __name__ == "__main__":
    main()
