#!/usr/bin/env python
"""Two portals, one grid: replication through a partition.

IU and SDSC each run the full registry and context stack.  This
walkthrough registers services at both regions, cuts the trunk between
them mid-write, shows each side keep serving (with staleness surfaced,
not hidden), then heals the partition and watches anti-entropy converge
both registries to byte-identical state while hinted handoff delivers
the context writes the partitioned replica missed.  The monitoring
service's `replication_summary` narrates throughout.

Run:  python examples/two_region_portal.py
"""

from repro.portal import PortalDeployment
from repro.services.monitoring import MONITORING_NAMESPACE
from repro.soap.client import SoapClient


def show_summary(monitor) -> None:
    for row in monitor.call("replication_summary"):
        lag = f"{row['lag_s']:.1f}s" if row["lag_s"] >= 0 else "never synced"
        print(
            f"   {row['region']:<5} entries={row['entries']:<3} "
            f"digest={row['digest']} lag={lag} "
            f"hints={row['hint_backlog']} ctx_seq={row['context_seq']}"
        )


def main() -> None:
    deployment = PortalDeployment.build(regions=("iu", "sdsc"))
    network = deployment.network
    topo = deployment.replication
    monitor = SoapClient(
        network, deployment.endpoints["monitoring"],
        MONITORING_NAMESPACE, source="ui.example",
    )

    print("== both regions publish, gossip converges ==")
    topo.nodes["iu"].registry.register_service("svc/iu/bsg", {"if": "bsg"})
    topo.nodes["sdsc"].registry.register_service("svc/sdsc/bsg", {"if": "bsg"})
    topo.run_anti_entropy()
    print(f"   converged: {topo.converged()}")
    show_summary(monitor)

    print("\n== the trunk is cut; each side keeps writing ==")
    iu_hosts = set(topo.region_groups()["iu"])
    sdsc_hosts = set(topo.region_groups()["sdsc"])
    partition_id = network.partition(iu_hosts, sdsc_hosts)
    topo.nodes["iu"].registry.register_service("svc/iu/lonely", {"if": "bsg"})
    topo.nodes["sdsc"].registry.register_service("svc/sdsc/lonely", {"if": "bsg"})
    synced = topo.run_anti_entropy()
    print(f"   gossip exchanges that got through: {synced}")
    print(f"   converged: {topo.converged()}  (split-brain, by design)")

    print("\n== reads during the split are honest about staleness ==")
    network.clock.advance(31.0)  # stroll past the staleness bound
    rows, stale = topo.query_registry("iu", {"if": "bsg"})
    print(f"   iu sees {len(rows)} services, stale={stale}")

    print("\n== the sdsc replica crashes mid-write ==")
    network.take_down("replica.sdsc.portal.org")
    try:
        topo.context.create("/session/during-outage")
    except Exception as err:  # QuorumLostError: retryable, op stays logged
        print(f"   write below quorum: {err.__class__.__name__} "
              f"(op {topo.context.seq} stays in the log)")
    network.bring_up("replica.sdsc.portal.org")
    network.clock.advance(1.0)
    topo.context.sync_all()  # the retry contract: re-drive delivery
    print(f"   after sync_all: replica seqs = "
          f"{ {r: s['seq'] for r, s in topo.context.snapshots().items()} }")

    print("\n== heal; anti-entropy and hinted handoff repair the grid ==")
    network.heal_partition(partition_id)
    rounds = 0
    while not topo.converged():
        topo.run_anti_entropy()
        rounds += 1
    topo.context.sync_all()
    print(f"   converged after {rounds} gossip round(s)")
    print(f"   hint backlog drained: {topo.context.hint_backlog()}")
    exports = {r: n.registry.export_state() for r, n in topo.nodes.items()}
    print(f"   registries byte-identical: {len(set(exports.values())) == 1}")
    show_summary(monitor)


if __name__ == "__main__":
    main()
