#!/usr/bin/env python
"""Crash mid-batch, restart from the journal, reconcile the orphan.

The durable Globusrun service journals ``batch-accept`` before running a
batch and ``batch-resolve`` after.  Here the process dies after exactly
one of three jobs has completed; the host comes back, the service is
redeployed over its surviving disk, and the reconciler re-drives the
orphaned batch.  The journals then prove the two invariants that matter:
no accepted job was lost, and no job ran twice — the retried submission
reuses its idempotency key, and the gatekeepers deduplicate per-job keys.

Run:  python examples/crash_recovery.py
"""

from repro.durability.journal import Journal
from repro.durability.reconciler import deploy_reconciler, record_recovery
from repro.grid.jobs import JobSpec
from repro.grid.resources import build_testbed
from repro.resilience.events import ResilienceLog
from repro.security.gsi import SimpleCA
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    deploy_globusrun,
    jobs_to_xml,
)
from repro.services.monitoring import deploy_monitoring
from repro.soap.client import SoapClient
from repro.transport.network import TransportError, VirtualNetwork
from repro.xmlutil.element import parse_xml

IDENTITY = "/O=G/CN=portal"
GLOBUSRUN = "globusrun.sdsc.edu"


def main() -> None:
    network = VirtualNetwork(seed=0)
    ca = SimpleCA()
    log = ResilienceLog()
    testbed = build_testbed(network, ca, durable=True)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    impl, url = deploy_globusrun(network, testbed, proxy, durable=True)
    client = SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="portal")

    xml = jobs_to_xml([
        ("modi4.iu.edu", JobSpec(name="alpha", executable="echo",
                                 arguments=["alpha"])),
        ("blue.sdsc.edu", JobSpec(name="beta", executable="echo",
                                  arguments=["beta"])),
        ("modi4.iu.edu", JobSpec(name="gamma", executable="echo",
                                 arguments=["gamma"])),
    ])

    print("== submit a keyed three-job batch; the process dies mid-batch ==")
    impl.crash_after_jobs = 1
    try:
        client.call("run_xml", xml, idempotency_key="workflow-001")
    except TransportError as exc:
        print(f"   client saw: {exc}")
    network.take_down(GLOBUSRUN)

    journal = Journal(network.disk(GLOBUSRUN), "globusrun")
    accepts = [r.data["batch"] for r in journal.by_kind("batch-accept")]
    resolves = [r.data["batch"] for r in journal.by_kind("batch-resolve")]
    print(f"   journal on the dead host's disk: accepted={accepts} "
          f"resolved={resolves}")

    print("\n== operator restarts the host; replay from the journal ==")
    network.clock.advance(30.0)
    network.bring_up(GLOBUSRUN)
    impl2, url2 = deploy_globusrun(network, testbed, proxy, durable=True)
    accepted = impl2.snapshot()["accepted"]
    record_recovery(log, "globusrun", GLOBUSRUN, len(accepted))
    print(f"   re-learned {len(accepted)} accepted batch(es): {accepted}")

    print("\n== the reconciler re-drives the orphan ==")
    reconciler, _rec_url = deploy_reconciler(network, resilience_log=log)
    reconciler.watch(GLOBUSRUN, "globusrun", url2, GLOBUSRUN_NAMESPACE)
    for row in reconciler.scan():
        print(f"   orphan: batch {row['batch']} on {row['host']}")
    for row in reconciler.reconcile():
        print(f"   {row['batch']}: {row['status']}")

    print("\n== the client retries with the same key and gets the results ==")
    client2 = SoapClient(network, url2, GLOBUSRUN_NAMESPACE, source="portal")
    results = client2.call("run_xml", xml, idempotency_key="workflow-001")
    for row in parse_xml(results).findall("result"):
        print(f"   {row.get('name'):<6} {row.get('status')}")

    print("\n== the journals prove no job was lost and none ran twice ==")
    total = 0
    for host in ("modi4.iu.edu", "blue.sdsc.edu"):
        sched = Journal(network.disk(host), "scheduler")
        sched.verify()
        submits = len(sched.by_kind("job-submit"))
        total += submits
        print(f"   {host}: {submits} submission(s), chain verified")
    dupes = sum(r.gatekeeper.idempotency.duplicates_served
                for r in testbed.values())
    print(f"   grid-wide: {total} submissions for 3 accepted jobs "
          f"({dupes} duplicate(s) absorbed by idempotency keys)")

    print("\n== the recovery is visible through monitoring ==")
    monitoring, _mon_url = deploy_monitoring(network, testbed,
                                             resilience_log=log)
    for row in monitoring.recovery_summary():
        print(f"   {row['code']:<28} {row['count']}")


if __name__ == "__main__":
    main()
