#!/usr/bin/env python
"""Secure web services (§4 / Figure 2) protecting job submission (§3.1).

Walks the paper's single-sign-on protocol step by step — Kerberos login on
the UI server, GSS context establishment with the Authentication Service,
per-request signed SAML assertions, and SPP-delegated verification (the
"atomic step") — in front of the Globusrun web service, then submits the
multi-job XML document the SDSC team designed.

Run:  python examples/secure_job_submission.py
"""

from repro.faults import AuthenticationError
from repro.grid.jobs import JobSpec
from repro.portal import PortalDeployment
from repro.security.authservice import AssertionInterceptor, ClientSecuritySession
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, jobs_to_xml
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer
from repro.xmlutil.element import parse_xml


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network

    print("== deploying a *protected* Globusrun SSP ==")
    server = HttpServer("secure-globusrun.sdsc.edu", network)
    soap = SoapService("SecureGlobusrun", GLOBUSRUN_NAMESPACE)
    soap.expose(deployment.globusrun.run)
    soap.expose(deployment.globusrun.run_xml)
    interceptor = AssertionInterceptor(
        network, deployment.endpoints["auth"],
        spp_host="secure-globusrun.sdsc.edu", clock=network.clock,
    )
    soap.add_interceptor(interceptor)
    endpoint = soap.mount(server, "/globusrun")
    print(f"   endpoint: {endpoint}")
    print(f"   keytab held only by the auth service: "
          f"{deployment.auth.keytab.principals()}")

    print("\n== an unauthenticated client is turned away ==")
    bare = SoapClient(network, endpoint, GLOBUSRUN_NAMESPACE, source="evil.org")
    try:
        bare.call("run", "modi4.iu.edu", "echo", "pwned", 1, "", 60)
    except AuthenticationError as err:
        print(f"   rejected: {err.code}: {err.message}")

    print("\n== Figure 2, step by step ==")
    session = ClientSecuritySession(
        network, deployment.kdc, deployment.endpoints["auth"],
        ui_host="ui.gridportal.org",
    )
    print("   1. user logs in through the browser; the UI server runs the")
    print("      AS/TGS exchanges and establishes the GSS context:")
    session_id = session.login("alice", "alpine")
    print(f"      -> server-side session object {session_id}")

    client = session.secure(
        SoapClient(network, endpoint, GLOBUSRUN_NAMESPACE,
                   source="ui.gridportal.org")
    )
    print("   2. every SOAP request now carries a signed SAML assertion;")
    print("      the SPP forwards it to the Authentication Service (the")
    print("      'atomic step'):")
    output = client.call("run", "modi4.iu.edu", "hostname", "", 1, "", 60)
    print(f"      -> job ran as alice, output: {output!r}")
    print(f"      -> auth-service verifications so far: "
          f"{deployment.auth.verifications}")

    print("\n== the multi-job XML document (one request, sequential runs) ==")
    document = jobs_to_xml([
        ("modi4.iu.edu", JobSpec(name="chem", executable="g98",
                                 arguments=["150"], cpus=4,
                                 wallclock_limit=3600)),
        ("blue.sdsc.edu", JobSpec(name="weather", executable="mm5",
                                  arguments=["12"], cpus=16,
                                  wallclock_limit=3600)),
        ("t3e.sdsc.edu", JobSpec(name="broken", executable="fail",
                                 wallclock_limit=600)),
    ])
    results = parse_xml(client.call("run_xml", document))
    for node in results.findall("result"):
        status = node.get("status")
        name = node.get("name")
        if status == "ok":
            first_line = node.findtext("output").strip().splitlines()[0]
            print(f"   {name:<8} [{status}]  {first_line}")
        else:
            detail = node.findtext("error") or f"exit {node.findtext('exitCode')}"
            print(f"   {name:<8} [{status}]  {detail}")

    print("\n== an expired assertion is rejected server-side ==")
    stale = session.make_assertion()
    network.clock.advance(10_000)
    verdict = deployment.auth.verify(session_id, stale.to_xml().serialize())
    print(f"   verify(stale) -> valid={verdict['valid']} ({verdict['reason']})")
    print("   ...while a fresh assertion still works:")
    print("   " + client.call("run", "modi4.iu.edu", "echo", "still here",
                              1, "", 60).strip())


if __name__ == "__main__":
    main()
