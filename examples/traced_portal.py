#!/usr/bin/env python
"""One portal request, watched end to end.

Builds the full portal with the observability layer installed
(``observe=True``), pushes a batch submission through the composed-service
chain — portal → Globusrun → GRAM gatekeeper — under a little injected
trouble, and then reads the story back three ways: the span waterfall with
its retry/failover events, the critical-path and bottleneck analysis from
the offline reporter, and the RED metrics table the portal's
MetricsPortlet renders.

Run:  python examples/traced_portal.py
"""

from repro.observability.report import (
    critical_path,
    self_times,
    waterfall_lines,
)
from repro.portal import PortalDeployment, UserInterfaceServer
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE
from repro.soap.client import SoapClient


def main() -> None:
    deployment = PortalDeployment.build(observe=True, observe_seed=2026)
    network = deployment.network
    obs = deployment.observability
    ui = UserInterfaceServer(deployment)

    print("== a traced batch submission across the service chain ==")
    globusrun = SoapClient(
        network, deployment.endpoints["globusrun"], GLOBUSRUN_NAMESPACE,
        source=ui.host,
    )
    output = globusrun.call("run", "modi4.iu.edu", "echo", "traced hello",
                            1, "", 600)
    print(f"   job output: {output.strip()!r}")

    print("\n== the same request as a span waterfall ==")
    trace_id = obs.collector.trace_ids()[-1]
    for line in waterfall_lines(obs.collector.spans(trace_id)):
        print(line)

    print("\n== a failover, caught on the trace ==")
    bsg = ui.failover_client()
    network.take_down("bsg.iu.edu")
    bsg.call("supportsScheduler", "LSF")     # rotates to SDSC, traced
    network.bring_up("bsg.iu.edu")
    trace_id = obs.collector.trace_ids()[-1]
    for span in obs.collector.spans(trace_id):
        for event in span["events"]:
            print(f"   {span['name']}: {event['name']}")

    print("\n== critical path and bottlenecks, offline-reporter style ==")
    spans = obs.collector.spans(obs.collector.trace_ids()[0])
    path = " -> ".join(s["name"] for s in critical_path(spans))
    print(f"   critical path: {path}")
    for row in self_times(obs.collector.spans())[:5]:
        print(f"   {row['service']:<22} {row['name']:<24} "
              f"self={1000 * row['self_s']:8.2f}ms x{row['spans']}")

    print("\n== the RED table, as the monitoring service serves it ==")
    ui.add_metrics_portlet()
    summary = deployment.monitoring.metrics_summary()
    for row in summary["red"]:
        if row["side"] != "server":
            continue
        print(f"   {row['service']:<16} {row['method']:<18} "
              f"n={row['requests']:<4} err={row['errors']:<3} "
              f"mean={row['mean_ms']:7.2f}ms p95={row['p95_ms']:7.2f}ms")

    print(f"\n   spans collected: {len(obs.collector)}  "
          f"traces: {len(obs.collector.trace_ids())}")


if __name__ == "__main__":
    main()
