#!/usr/bin/env python
"""One portal request, watched end to end.

Builds the full portal with the observability layer installed
(``observe=True``) plus tail-based sampling and the default SLOs, pushes a
batch submission through the composed-service chain — portal → Globusrun →
GRAM gatekeeper — under a little injected trouble, and then reads the
story back four ways: the span waterfall with its retry/failover events,
the critical-path and bottleneck analysis from the offline reporter, the
RED metrics table the portal's MetricsPortlet renders, and a burn-rate SLO
breach paged with exemplar traces attached.

Run:  python examples/traced_portal.py
"""

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.observability.report import (
    critical_path,
    self_times,
    waterfall_lines,
)
from repro.observability.sampling import TailSampler
from repro.observability.slo import default_slos
from repro.portal import PortalDeployment, UserInterfaceServer
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, jobs_to_xml
from repro.soap.client import SoapClient


def main() -> None:
    # tail sampling at a demo-friendly keep rate: errors, resilience
    # events, and latency outliers are always kept; the seeded coin keeps
    # half of the boring traffic (production would run far lower)
    deployment = PortalDeployment.build(
        observe=True, observe_seed=2026,
        sampling=TailSampler(seed=2026, rate=0.5),
        slos=default_slos(),
    )
    network = deployment.network
    obs = deployment.observability
    ui = UserInterfaceServer(deployment)

    print("== a traced batch submission across the service chain ==")
    globusrun = SoapClient(
        network, deployment.endpoints["globusrun"], GLOBUSRUN_NAMESPACE,
        source=ui.host,
    )
    output = globusrun.call("run", "modi4.iu.edu", "echo", "traced hello",
                            1, "", 600)
    print(f"   job output: {output.strip()!r}")

    print("\n== the same request as a span waterfall ==")
    trace_id = obs.collector.trace_ids()[-1]
    for line in waterfall_lines(obs.collector.spans(trace_id)):
        print(line)

    print("\n== a failover, caught on the trace ==")
    bsg = ui.failover_client()
    network.take_down("bsg.iu.edu")
    bsg.call("supportsScheduler", "LSF")     # rotates to SDSC, traced
    network.bring_up("bsg.iu.edu")
    trace_id = obs.collector.trace_ids()[-1]
    for span in obs.collector.spans(trace_id):
        for event in span["events"]:
            print(f"   {span['name']}: {event['name']}")

    print("\n== critical path and bottlenecks, offline-reporter style ==")
    spans = obs.collector.spans(obs.collector.trace_ids()[0])
    path = " -> ".join(s["name"] for s in critical_path(spans))
    print(f"   critical path: {path}")
    for row in self_times(obs.collector.spans())[:5]:
        print(f"   {row['service']:<22} {row['name']:<24} "
              f"self={1000 * row['self_s']:8.2f}ms x{row['spans']}")

    print("\n== the RED table, as the monitoring service serves it ==")
    ui.add_metrics_portlet()
    summary = deployment.monitoring.metrics_summary()
    for row in summary["red"]:
        if row["side"] != "server":
            continue
        print(f"   {row['service']:<16} {row['method']:<18} "
              f"n={row['requests']:<4} err={row['errors']:<3} "
              f"mean={row['mean_ms']:7.2f}ms p95={row['p95_ms']:7.2f}ms")

    print("\n== an SLO breach, paged with the exemplar trace attached ==")
    engine = obs.slo
    clock = network.clock
    # a buggy client floods submit_async with malformed XML: every call is
    # a server-side error, so the availability budget burns fast and the
    # multi-window alert pages within a few virtual seconds
    while not engine.active:
        clock.advance(1.0)
        for _ in range(3):
            try:
                globusrun.call("submit_async", "<not-a-jobs-document/>")
            except InvalidRequestError:
                pass
        engine.evaluate()
    alert = engine.alerts()[0]
    print(f"   firing: {alert['slo']} "
          f"(burn {alert['slow_burn']:.1f}x over {alert['slow_window']:.0f}s, "
          f"{alert['fast_burn']:.1f}x over {alert['fast_window']:.0f}s, "
          f"threshold {alert['factor']:.0f}x)")
    # the tail sampler never drops errors, so the page carries evidence:
    # follow the first exemplar link straight to a failing trace
    exemplar = alert["exemplars"][0]
    print(f"   exemplar trace {exemplar[:16]}…:")
    for line in waterfall_lines(obs.collector.spans(exemplar)):
        print(f"   {line}")

    # healthy submissions drain the fast window first, then the slow one,
    # and the alert resolves on its own — no operator reset
    good_xml = jobs_to_xml(
        [("modi4.iu.edu", JobSpec(name="heal", executable="echo"))]
    )
    while engine.active:
        clock.advance(1.0)
        for _ in range(4):
            globusrun.call("submit_async", good_xml)
        engine.evaluate()
    resolved = engine.alerts(active_only=False)[-1]
    print(f"   resolved after {resolved['duration']:.0f}s of healthy traffic")

    print("\n== the SLO table, as the monitoring service serves it ==")
    ui.add_slo_portlet()
    for row in deployment.monitoring.slo_summary():
        print(f"   {row['slo']:<32} {row['objective']:<13} "
              f"target={row['target']:.2f} good={row['good_fraction']:.3f} "
              f"burn={row['burn_rate']:5.2f}x state={row['state']}")

    acct = obs.sampler.accounting()
    print(f"\n   spans collected: {len(obs.collector)}  "
          f"traces kept: {acct['kept_traces']}  "
          f"dropped by sampling: {acct['dropped_traces']}")


if __name__ == "__main__":
    main()
