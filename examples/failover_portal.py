#!/usr/bin/env python
"""Interoperability as availability: surviving a provider outage.

IU and SDSC each run an implementation of the agreed batch-script
interface (§3.4).  This walkthrough builds the full portal, resolves
*every* provider of that interface from the UDDI registry, and then kills
the IU host mid-benchmark: the failover client rotates to SDSC, the
circuit breaker stops wasting wire time on the corpse, and the user never
sees an error.  Every resilience event lands in the monitoring service and
the portal's resilience portlet.  A seeded chaos run closes the show.

Run:  python examples/failover_portal.py
"""

from repro.portal import PortalDeployment, UserInterfaceServer
from repro.resilience.breaker import CircuitBreakerPolicy
from repro.resilience.chaos import ChaosConfig, ChaosHarness, ChaosMonkey
from repro.services.monitoring import MONITORING_NAMESPACE
from repro.soap.client import SoapClient


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network
    ui = UserInterfaceServer(deployment)

    print("== resolve all providers of the common interface from UDDI ==")
    bsg = ui.failover_client(sticky=False)  # round-robin across providers
    for endpoint in bsg.endpoints:
        print(f"   provider: {endpoint}")

    print("\n== steady state: both providers share the load ==")
    for _ in range(6):
        bsg.call("supportsScheduler", "LSF")
    for host in ("bsg.iu.edu", "bsg.sdsc.edu"):
        print(f"   {host}: {network.stats.per_host_requests[host]} requests")

    print("\n== IU dies mid-run ==")
    network.take_down("bsg.iu.edu")
    at_death = network.stats.snapshot()
    completed = sum(
        1 for _ in range(30) if bsg.call("listSchedulers") is not None
    )
    since = network.stats.delta(at_death)
    print(f"   requests completed    : {completed}/30 (no client-visible errors)")
    print(f"   dead-host attempts    : {since.per_host_requests.get('bsg.iu.edu', 0)}"
          f"  (breaker is {bsg.breaker_state(bsg.endpoints[0])})")
    print(f"   survivor served       : {since.per_host_requests['bsg.sdsc.edu']}")

    print("\n== the event stream, via the monitoring service ==")
    monitoring = SoapClient(
        network, deployment.endpoints["monitoring"], MONITORING_NAMESPACE,
        source=ui.host,
    )
    for row in monitoring.call("resilience_summary"):
        print(f"   {int(row['count']):4d}  {row['code']}")

    print("\n== and as a portlet ==")
    portlet = ui.add_resilience_portlet(tail=3)
    ui.container.set_layout("alice", [portlet.name])
    page = ui.container.render_page("alice")
    print("   portlet title:", portlet.title)
    print("   rendered:", "Resilience" in page and "event stream included")

    print("\n== seeded chaos: the same schedule twice, identical streams ==")
    def one_run(seed: int):
        d = PortalDeployment.build()
        u = UserInterfaceServer(d)
        # a cooldown sized to the outage lengths, so repaired providers
        # are rediscovered within the run
        client = u.failover_client(
            sticky=False,
            breaker_policy=CircuitBreakerPolicy(failure_threshold=3,
                                                cooldown=1.0),
        )
        # short outages relative to the workload's request rate, so the
        # schedule mostly leaves one provider alive at any moment
        config = ChaosConfig(p_take_down=0.03, down_duration=(0.5, 2.0),
                             p_fault_burst=0.08, burst_size=(1, 2),
                             p_flap=0.0)
        monkey = ChaosMonkey(
            d.network, ["bsg.iu.edu", "bsg.sdsc.edu"],
            seed=seed, config=config, log=d.resilience,
        )

        def paced_request(i: int) -> None:
            # a quarter second of user think-time between portal requests,
            # so outages and breaker cooldowns elapse at a realistic rate
            d.network.clock.advance(0.25)
            client.call("supportsScheduler", "NQS")

        return ChaosHarness(d.network, monkey).run(paced_request, 40)

    first, second = one_run(2002), one_run(2002)
    print(f"   success rate          : {first.success_rate:.2f}")
    print(f"   faults injected       : {first.faults_injected}")
    print(f"   identical event streams: {first.events == second.events}")


if __name__ == "__main__":
    main()
