#!/usr/bin/env python
"""One seed, one universe: a simulation drill from sweep to shrunk repro.

This walkthrough runs a clean seeded simulation (composed nemeses, live
invariant oracles, deterministic digest), then re-introduces a classic
durability bug — acknowledging a job batch before its journal record is
flushed — via the committed ``ack-before-fsync`` canary.  The
``no-lost-acked-writes`` oracle catches it, and ddmin shrinks the full
fault schedule down to the minimal event sequence that still loses the
write, printed as replayable JSON.

Run:  python examples/simtest_drill.py
"""

from repro.simtest import SimulationRun, shrink_schedule

SEED = "1"


def show(result) -> None:
    stats = result.stats
    print(
        f"   verdict={'pass' if result.passed else 'FAIL':<4} "
        f"faults={stats['faults_injected']} "
        f"restarts={stats['restarts']} "
        f"acked_batches={stats['acked_batches']} "
        f"client_errors={stats['client_errors']}"
    )
    for violation in result.violations:
        print(f"   violated: [{violation.oracle}] {violation.message}")


def main() -> None:
    print(f"== seed {SEED}: the portal survives its nemesis schedule ==")
    healthy = SimulationRun(SEED)
    print(f"   {len(healthy.schedule.events)} scheduled events, e.g.:")
    for event in healthy.schedule.events[:4]:
        print(f"     {event.describe()}")
    result = healthy.run()
    show(result)
    digest = result.to_dict()["digest"]
    rerun_digest = SimulationRun(SEED).run().to_dict()["digest"]
    print(f"   deterministic: rerun digest matches = {digest == rerun_digest}")

    print("\n== same seed, with the ack-before-fsync bug re-introduced ==")
    buggy = SimulationRun(SEED, canary="ack-before-fsync")
    show(buggy.run())

    print("\n== ddmin shrinks the failing schedule to its essence ==")
    shrunk = shrink_schedule(
        SEED, buggy.schedule, ticks=buggy.ticks, canary="ack-before-fsync"
    )
    print(
        f"   {shrunk.original_events} events -> {shrunk.events} "
        f"in {shrunk.probes} probes:"
    )
    for event in shrunk.schedule.events:
        print(f"     {event.describe()}")
    print("   replayable repro (repro.simtest.schedule/v1):")
    for line in shrunk.schedule.to_json().splitlines():
        print(f"     {line}")


if __name__ == "__main__":
    main()
