#!/usr/bin/env python
"""The paper's future-work pointers, implemented (§2, §4, §6).

Four things the paper names but did not build, demonstrated together:

1. WSIL — the decentralized discovery alternative to UDDI;
2. Akenti-style access control conveyed as SAML attribute statements;
3. application factories — per-user, resource-bound service instances;
4. WSRP — remote portlets rendered by a producer instead of HTML scraping.

Run:  python examples/beyond_the_paper.py
"""

from repro.faults import AuthorizationError
from repro.appws.catalog import build_catalog
from repro.appws.factory import FACTORY_NAMESPACE, INSTANCE_NAMESPACE, deploy_factory
from repro.discovery.wsil import InspectionDocument, inspect, publish_inspection
from repro.portal import PortalDeployment
from repro.portlets.base import LocalPortlet
from repro.portlets.container import PortletContainer
from repro.portlets.wsrp import (
    WsrpConsumerPortlet,
    WsrpProducer,
    deploy_wsrp_producer,
    discover_portlets,
)
from repro.security.akenti import (
    AkentiInterceptor,
    AttributeAuthority,
    PolicyEngine,
    UseCondition,
)
from repro.security.saml import SamlAssertion
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network

    # ---- 1. WSIL -----------------------------------------------------------
    print("== 1. WSIL: decentralized inspection documents ==")
    iu = HttpServer("www.iu-portal.example", network)
    sdsc = HttpServer("www.sdsc-portal.example", network)
    publish_inspection(iu, InspectionDocument()
                       .add_service("Gateway BSG", deployment.endpoints["bsg-iu"] + ".wsdl")
                       .add_link("http://www.sdsc-portal.example/inspection.wsil"))
    publish_inspection(sdsc, InspectionDocument()
                       .add_service("HotPage BSG", deployment.endpoints["bsg-sdsc"] + ".wsdl")
                       .add_service("SRB WS", deployment.endpoints["srb"]))
    for service in inspect(network, "http://www.iu-portal.example/inspection.wsil"):
        print(f"   crawled: {service.name:<12} -> {service.wsdl_location}")

    # ---- 2. Akenti ------------------------------------------------------------
    print("\n== 2. Akenti: certificate-based access control over SOAP ==")
    engine = PolicyEngine()
    npaci = AttributeAuthority("NPACI")
    engine.trust_authority(npaci)
    engine.add_use_condition("globusrun", UseCondition({"allocation": ("TG-CHE",)}))
    engine.store_certificate(npaci.issue("alice", "allocation", "TG-CHE"))

    server = HttpServer("guarded.sdsc.edu", network)
    soap = SoapService("GuardedRun", "urn:guarded")
    soap.expose(deployment.globusrun.run)
    soap.add_interceptor(AkentiInterceptor(engine, "globusrun", network.clock))
    endpoint = soap.mount(server, "/run")

    def client_for(user: str) -> SoapClient:
        client = SoapClient(network, endpoint, "urn:guarded", source="ui")
        assertion = SamlAssertion(issuer="ui", subject=user,
                                  not_on_or_after=network.clock.now + 10**6)
        client.add_header_provider(lambda m, p: [assertion.to_xml()])
        return client

    output = client_for("alice").call("run", "modi4.iu.edu", "echo",
                                      "authorized run", 1, "", 60)
    print(f"   alice (holds allocation=TG-CHE): {output.strip()!r}")
    try:
        client_for("mallory").call("run", "modi4.iu.edu", "echo", "x", 1, "", 60)
    except AuthorizationError as err:
        print(f"   mallory: {err.message}")
    decision = engine.check_access("alice", "globusrun", "run")
    saml = engine.decision_assertion(decision, now=network.clock.now)
    print(f"   decision as SAML: {saml.attributes['akenti:decision']} "
          f"(signed by {saml.issuer}, verifiable: "
          f"{engine.verify_decision_assertion(saml)})")

    # ---- 3. application factories --------------------------------------------------
    print("\n== 3. application factories: per-user resource-bound instances ==")
    _factory, factory_url = deploy_factory(
        network, build_catalog(), deployment.endpoints["globusrun"]
    )
    factory = SoapClient(network, factory_url, FACTORY_NAMESPACE, source="ui")
    instance_url = factory.call("create", "Gaussian", "modi4.iu.edu")
    print(f"   factory created a private instance service at {instance_url}")
    instance = SoapClient(network, instance_url, INSTANCE_NAMESPACE, source="ui")
    instance.call("configure", {"basisSize": 120})
    print(f"   configure -> {instance.call('status')}")
    print(f"   run       -> {instance.call('run')}")
    print("   output    -> " +
          instance.call("output").strip().splitlines()[-1])

    # ---- 4. WSRP -------------------------------------------------------------------
    print("\n== 4. WSRP: remote portlets without HTML scraping ==")
    producer = WsrpProducer()
    producer.register_portlet(
        "grid-status",
        lambda user: LocalPortlet(
            "grid-status",
            lambda: "<p>"
            + " | ".join(
                f"{host}: {resource.scheduler.free_cpus} cpus free"
                for host, resource in sorted(deployment.testbed.items())
            )
            + "</p>",
        ),
        "Grid status",
    )
    wsrp_url = deploy_wsrp_producer(network, producer, "producer.sdsc.edu")
    print(f"   producer offers: {discover_portlets(network, wsrp_url)}")
    container = PortletContainer(network, "portal.iu.edu")
    container.add_local_portlet(
        WsrpConsumerPortlet("grid-status", network, wsrp_url, "grid-status",
                            "alice", title="Grid status (remote via WSRP)")
    )
    container.set_layout("alice", ["grid-status"])
    page = container.render_page("alice")
    start = page.find("<p>")
    print("   aggregated markup: " + page[start:page.find("</p>") + 4])


if __name__ == "__main__":
    main()
