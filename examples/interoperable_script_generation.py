#!/usr/bin/env python
"""The paper's interoperability headline (§3.4 + Figure 1).

Two groups — IU's Gateway team and SDSC's HotPage team — independently
implement the agreed batch-script-generation WSDL interface, publish into a
UDDI registry, and each other's clients discover, bind, and generate
scripts across all four queuing systems.  The example then demonstrates the
paper's UDDI critique: searching by queuing-system support only works "by
convention", while the proposed container-hierarchy registry answers the
same query structurally.

Run:  python examples/interoperable_script_generation.py
"""

from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.portal import PortalDeployment
from repro.services.batchscript import JavaStyleBsgClient, PythonStyleBsgClient
from repro.uddi.service import UddiClient
from repro.wsdl.proxy import client_from_wsdl


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network

    print("== Figure 1: inquire, bind, invoke ==")
    uddi = UddiClient(network, deployment.endpoints["uddi"], source="ui.example")
    services = uddi.find_service("%batch script generator%")
    for service in services:
        print(f"   found: {service.name}")
        print(f"     description : {service.description}")
        print(f"     endpoint    : {service.bindings[0].access_point}")
        print(f"     WSDL        : {service.bindings[0].wsdl_url}")

    spec = JobSpec(name="interop-demo", executable="/apps/g98",
                   arguments=["300"], cpus=8, wallclock_limit=7200,
                   queue="workq")

    print("\n== every client style against every implementation ==")
    for service in services:
        wsdl_url = service.bindings[0].wsdl_url
        bound = client_from_wsdl(network, wsdl_url, source="ui.example")
        schedulers = bound.listSchedulers()
        for client_name, client_cls in (("Java-style", JavaStyleBsgClient),
                                        ("Python-style", PythonStyleBsgClient)):
            client = client_cls(network, bound.endpoint, source="ui.example")
            for scheduler in schedulers:
                script = client.generate(scheduler, spec)
                problems = client.validate(scheduler, script)
                marker = script.splitlines()[1].split()[0]
                status = "ok" if not problems else f"PROBLEMS: {problems}"
                print(f"   {client_name:<13} x {service.name.split()[0]:<8}"
                      f" x {scheduler}: directive {marker!r} -> {status}")

    print("\n== one of the generated scripts (GRD dialect) ==")
    iu_client = PythonStyleBsgClient(
        network, deployment.endpoints["bsg-iu"], source="ui.example"
    )
    print(iu_client.generate("GRD", spec))

    print("== the UDDI shortcoming vs the container hierarchy (C5) ==")
    by_description = uddi.find_service(description_contains="LSF")
    print(f"   UDDI description substring 'LSF' -> "
          f"{[s.name for s in by_description]} (works only by convention)")
    structured = deployment.discovery.soap_query({"queuing-system": "LSF"}, "")
    print(f"   container hierarchy queuing-system=LSF -> "
          f"{[hit['path'] for hit in structured]} (structured metadata)")

    print("\n== scripts really run: submit the generated script directly ==")
    scheduler = deployment.testbed["octopus.iu.edu"].scheduler
    job_id = scheduler.submit_script(
        iu_client.generate("GRD", JobSpec(
            name="prove-it", executable="echo",
            arguments=["generated", "and", "executed"], wallclock_limit=60,
            queue="workq",
        ))
    )
    scheduler.run_until_complete()
    print(f"   {job_id}: {scheduler.job(job_id).stdout!r}")


if __name__ == "__main__":
    main()
