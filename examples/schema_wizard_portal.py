#!/usr/bin/env python
"""The schema wizard (§5.3 / Figure 3) feeding portlets (§5.4).

The Application Web Service publishes the descriptor schemas at a URL; the
schema wizard downloads one, builds the SOM, generates data-binding
classes, renders the form page from Velocity-style templates, and deploys
it as a web application.  A Jetspeed-style portlet container on a *separate
host* then aggregates that UI through a WebFormPortlet — posting forms,
keeping the remote session, and remapping links so navigation stays inside
the portlet window.

Run:  python examples/schema_wizard_portal.py
"""

import re

from repro.portal import PortalDeployment
from repro.portlets.container import PortletContainer
from repro.portlets.registry import PortletEntry
from repro.transport.client import HttpClient
from repro.transport.server import HttpServer
from repro.wizard.generator import SchemaWizard


def main() -> None:
    deployment = PortalDeployment.build()
    network = deployment.network

    print("== Figure 3, stage 1: fetch the published schema ==")
    schema_url = "http://appws.gridportal.org/schema/application.xsd"
    wizard = SchemaWizard(network, source_host="apps.iu.edu")
    schema = wizard.load(schema_url)
    print(f"   {schema_url}")
    print(f"   complex types: {sorted(schema.complex_types)}")

    print("\n== stage 2: the source generator (one class per element) ==")
    classes = wizard.classes()
    print(f"   generated {len(classes)} binding classes: "
          f"{sorted(classes)[:5]}...")
    Queue = classes["Queue"]
    queue = Queue(queuing_system="PBS", queue_name="workq")
    print(f"   Queue bean marshal -> {queue.to_xml('queue').serialize()}")

    print("\n== stage 3+4: render nuggets, deploy as a web application ==")
    apps_server = HttpServer("apps.iu.edu", network)
    webapp = wizard.deploy(apps_server, "queue-editor", "queue",
                           title="Queue description editor")
    print(f"   deployed at {webapp.url()}")
    browser = HttpClient(network, "browser")
    page = browser.get(webapp.url()).body
    select = re.search(r"<select.*?</select>", page, re.S)
    print("   the enumerated-simple-type nugget rendered as:")
    print("   " + (select.group(0).replace("\n", "\n   ") if select else "?"))

    print("\n== §5.4: aggregate the editor into a portlet container ==")
    container = PortletContainer(network, "jetspeed.iu.edu")
    container.registry.register(PortletEntry(
        "queue-editor", "WebFormPortlet", webapp.url(),
        title="Queue editor (remote)",
    ))
    print("   the administrator's xreg registration:")
    print("   " + container.registry.to_xreg().replace("\n", "\n   "))
    container.set_layout("alice", ["queue-editor"])

    portal_page = browser.get("http://jetspeed.iu.edu/portal?user=alice").body
    action = re.search(r'action="([^"]+)"', portal_page).group(1)
    action = action.replace("&amp;", "&")
    print(f"   the form action was remapped through the container:\n"
          f"   {action}")

    print("\n== submit the form through the portlet window ==")
    response = browser.post_form(f"http://jetspeed.iu.edu{action}", {
        "instanceName": "sdsc-lsf-queue",
        "queue.queuingSystem": "LSF",
        "queue.queueName": "normal",
        "queue.maxWallTime": "43200",
        "queue.maxCpus": "512",
    })
    print(f"   POST -> HTTP {response.status}; instance saved on apps.iu.edu")
    print("   stored schema instance:")
    print("   " + webapp.instances["sdsc-lsf-queue"])

    print("\n== reload the old instance: the form comes back filled in ==")
    refilled = browser.get(webapp.form_url("sdsc-lsf-queue")).body
    value_filled = 'value="normal"' in refilled
    lsf_selected = "selected" in refilled and ">LSF<" in refilled
    print(f"   queue name refilled : {value_filled}")
    print(f"   LSF option selected : {lsf_selected}")


if __name__ == "__main__":
    main()
