#!/usr/bin/env python
"""Quickstart: stand up the whole portal and run a science code.

Deploys the full Figure 4 architecture (grid testbed, SRB, security,
discovery, every core web service, the application web service) on an
in-process virtual network, logs a user in, and drives it through the
portal shell — including the paper's signature pipeline composition.

Run:  python examples/quickstart.py
"""

from repro.portal import PortalDeployment, UserInterfaceServer


def main() -> None:
    print("== deploying the portal (Figure 4 architecture) ==")
    deployment = PortalDeployment.build()
    print(f"   hosts on the virtual network: {len(deployment.network.hosts())}")
    for name, endpoint in sorted(deployment.endpoints.items()):
        print(f"   {name:<10} {endpoint}")

    ui = UserInterfaceServer(deployment)
    session = ui.login("alice", "alpine")
    print(f"\n== alice logged in (Kerberos/GSS session {session.session_id}) ==")

    shell = ui.make_shell("alice")
    print("\n== the portal shell's tool chest ==")
    print(shell.run("help"))

    print("\n== deployed applications ==")
    print(shell.run("apps"))

    print("\n== generate a batch script through the common interface ==")
    script = shell.run(
        "genscript PBS executable=/usr/local/apps/g98/g98 arguments=250 "
        "cpus=8 wallTime=7200 jobName=quickstart queue=workq"
    )
    print(script)

    print("== run Gaussian end to end and archive the session ==")
    output = shell.run(
        "runapp Gaussian modi4.iu.edu basisSize=250 | archive alice/chem/demo"
    )
    print(f"   {output}")
    descriptor = deployment.context.getSessionDescriptor("alice", "chem", "demo")
    print("   archived instance descriptor (first 200 chars):")
    print("   " + descriptor[:200] + "...")

    print("\n== pipe a job's output into the Storage Resource Broker ==")
    print("   " + shell.run(
        "submit blue.sdsc.edu echo important result data"
        " | srbput /home/portal/quickstart.out"
    ))
    print("   srbcat -> " + shell.run("srbcat /home/portal/quickstart.out"))

    stats = deployment.network.stats
    print("\n== totals ==")
    print(f"   virtual time elapsed : {deployment.network.clock.now:8.2f} s")
    print(f"   SOAP/HTTP requests   : {stats.requests}")
    print(f"   bytes on the wire    : {stats.bytes_sent + stats.bytes_received}")


if __name__ == "__main__":
    main()
