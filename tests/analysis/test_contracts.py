"""ContractDriftChecker: REP301-REP303."""

import textwrap

from repro.analysis.checkers.contracts import ContractDriftChecker

from tests.analysis.conftest import codes

CHECKER = [ContractDriftChecker()]

EXPOSED_BASE = """\
class Base:
    def op(self, left, right):
        return left + right


def deploy(soap):
    impl = Base()
    soap.expose(impl.op)
"""


def exposed_with(subclass: str) -> str:
    """The exposed base plus a sibling/override, dedented to one module."""
    return EXPOSED_BASE + "\n\n" + textwrap.dedent(subclass)


def test_override_renaming_parameter_is_drift(analyze):
    result = analyze({
        "svc.py": exposed_with("""\
            class Child(Base):
                def op(self, lhs, rhs):
                    return lhs + rhs
        """)
    }, checkers=CHECKER)
    assert "REP301" in codes(result)


def test_override_with_matching_surface_is_clean(analyze):
    result = analyze({
        "svc.py": exposed_with("""\
            class Child(Base):
                def op(self, left, right):
                    return right + left
        """)
    }, checkers=CHECKER)
    assert codes(result) == []


def test_override_annotation_conflict_is_drift(analyze):
    result = analyze({
        "svc.py": """\
            class Base:
                def op(self, value: str) -> str:
                    return value


            class Child(Base):
                def op(self, value: int) -> str:
                    return str(value)


            def deploy(soap):
                impl = Base()
                soap.expose(impl.op)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP301"]


def test_unannotated_override_of_annotated_base_is_clean(analyze):
    # annotations are compared only when both sides declare them
    result = analyze({
        "svc.py": """\
            class Base:
                def op(self, value: str) -> str:
                    return value


            class Child(Base):
                def op(self, value):
                    return value


            def deploy(soap):
                impl = Base()
                soap.expose(impl.op)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_interface_wsdl_arity_mismatch(analyze):
    result = analyze({
        "svc.py": """\
            def demo_interface_wsdl(endpoint):
                return WsdlDocument(
                    service_name="Demo",
                    target_namespace="urn:demo",
                    endpoint=endpoint,
                    operations=[
                        WsdlOperation("op", "", [WsdlPart("a"), WsdlPart("b")]),
                    ],
                )


            class Impl:
                def op(self, a):
                    return a
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP302"]


def test_interface_wsdl_default_params_absorb_extra_parts(analyze):
    result = analyze({
        "svc.py": """\
            def demo_interface_wsdl(endpoint):
                return WsdlDocument(
                    service_name="Demo",
                    target_namespace="urn:demo",
                    endpoint=endpoint,
                    operations=[
                        WsdlOperation("op", "", [WsdlPart("a"), WsdlPart("b")]),
                    ],
                )


            class Impl:
                def op(self, a, b=None, c=None):
                    return a
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_sibling_required_arity_mismatch(analyze):
    result = analyze({
        "svc.py": exposed_with("""\
            class Sibling(Base):
                def op(self, left, right=None):
                    return left
        """)
    }, checkers=CHECKER)
    # same parameter names, but the required arity forks the port type
    assert codes(result) == ["REP303"]


def test_fixture_package_yields_all_three_codes():
    from tests.analysis.conftest import FIXTURE_ROOT
    from repro.analysis.runner import analyze_paths

    result = analyze_paths(
        [FIXTURE_ROOT / "demo" / "contracts.py"],
        root=FIXTURE_ROOT,
        checkers=CHECKER,
    )
    assert sorted({f.code for f in result.findings}) == [
        "REP301", "REP302", "REP303",
    ]
