"""SimtestOracleChecker: REP601-REP602."""

from repro.analysis.checkers.simtest import SimtestOracleChecker

from tests.analysis.conftest import codes

CHECKER = [SimtestOracleChecker()]

ORACLE_BASE = """\
    class Oracle:
        name = ""

        def check(self, world):
            raise NotImplementedError
"""


def test_unregistered_concrete_oracle(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    class QuietOracle(Oracle):
        def check(self, world):
            return []
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP601"]


def test_registered_oracle_is_clean(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    def register_oracle(cls):
        return cls


    @register_oracle
    class QuietOracle(Oracle):
        def check(self, world):
            return []
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_attribute_form_decorator_counts(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    import registry


    @registry.register_oracle
    class QuietOracle(Oracle):
        def check(self, world):
            return []
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_abstract_stem_with_registered_leaves_is_not_flagged(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    def register_oracle(cls):
        return cls


    class StoreOracle(Oracle):
        def store(self, world):
            return world.store


    @register_oracle
    class SeqOracle(StoreOracle):
        def check(self, world):
            return [self.store(world).seq]
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_wall_clock_inside_an_oracle(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    import time


    def register_oracle(cls):
        return cls


    @register_oracle
    class LateOracle(Oracle):
        def check(self, world):
            return [] if time.time() < 5 else ["late"]
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP602"]


def test_unseeded_randomness_inside_an_oracle(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    import random


    def register_oracle(cls):
        return cls


    @register_oracle
    class DiceOracle(Oracle):
        def check(self, world):
            if random.random() < 0.5:
                rng = random.Random()
                return [rng.choice(["a", "b"])]
            return []
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP602", "REP602"]


def test_seeded_random_inside_an_oracle_is_clean(analyze):
    result = analyze({
        "mod.py": ORACLE_BASE + """\

    import random


    def register_oracle(cls):
        return cls


    @register_oracle
    class SampledOracle(Oracle):
        def check(self, world):
            rng = random.Random(world.seed)
            return [rng.random()]
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_wall_clock_outside_oracles_is_someone_elses_rule(analyze):
    # REP101 owns the general case; REP602 only speaks about oracles
    result = analyze({
        "mod.py": """\
            import time


            def helper():
                return time.time()
        """
    }, checkers=CHECKER)
    assert codes(result) == []
