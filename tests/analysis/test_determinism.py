"""DeterminismChecker: REP101-REP104."""

from repro.analysis.checkers.determinism import DeterminismChecker

from tests.analysis.conftest import codes


def run(analyze, code):
    return analyze({"mod.py": code}, checkers=[DeterminismChecker()])


def test_wall_clock_direct_and_aliased(analyze):
    result = run(analyze, """\
        import time
        import time as t
        from time import sleep


        def f():
            sleep(1)
            return time.time() + t.monotonic()
    """)
    assert codes(result) == ["REP101", "REP101", "REP101"]


def test_datetime_ambient_constructors(analyze):
    result = run(analyze, """\
        from datetime import date, datetime


        def f():
            return datetime.utcnow(), date.today()
    """)
    assert codes(result) == ["REP102", "REP102"]


def test_unseeded_randomness(analyze):
    result = run(analyze, """\
        import random


        def f():
            rng = random.Random()
            return rng.random() + random.randint(0, 5)
    """)
    assert codes(result) == ["REP103", "REP103"]


def test_seeded_random_is_clean(analyze):
    result = run(analyze, """\
        import random


        def f(seed):
            rng = random.Random(seed)
            return rng.random()
    """)
    assert codes(result) == []


def test_registry_view_iteration_flagged_sorted_clean(analyze):
    result = run(analyze, """\
        def bad(self):
            return [k for k, v in self.registry.items()]


        def good(self):
            return [k for k, v in sorted(self.registry.items())]
    """)
    assert codes(result) == ["REP104"]
    assert result.findings[0].line == 2


def test_list_iteration_without_view_is_clean(analyze):
    # XmlElement.children and BusinessService.bindings are ordered lists;
    # only an explicit dict view proves a mapping is being iterated.
    result = run(analyze, """\
        def render(node):
            return [child.tag for child in node.children]
    """)
    assert codes(result) == []


def test_for_loop_over_lanes_values_flagged(analyze):
    result = run(analyze, """\
        def drain(self):
            for lane in self.lanes.values():
                lane.pump()
    """)
    assert codes(result) == ["REP104"]
