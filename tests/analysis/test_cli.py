"""The ``python -m repro.analysis`` command line, end to end."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

HERE = Path(__file__).parent
REPO_ROOT = HERE.parents[1]

#: every code the demo fixture package seeds (REP002 is exercised on a
#: temp file: a committed syntax error would break linting of the tests)
FIXTURE_CODES = {
    "REP001", "REP101", "REP102", "REP103", "REP104",
    "REP201", "REP202", "REP203",
    "REP301", "REP302", "REP303",
    "REP401", "REP402", "REP403",
    "REP501", "REP502",
    "REP601", "REP602",
    "REP701", "REP702",
    "REP801", "REP802",
    "REP901", "REP902", "REP903", "REP904",
}


@pytest.fixture
def in_fixture_dir(monkeypatch):
    monkeypatch.chdir(HERE)


def _report(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


def test_fixture_package_trips_every_checker(in_fixture_dir, capsys):
    code = main(["fixtures/demo", "--no-baseline", "--format", "json"])
    report = _report(capsys)
    assert code == 1
    assert report["exit_code"] == 1
    assert report["schema"] == "repro.analysis.report/v1"
    assert {f["code"] for f in report["findings"]} == FIXTURE_CODES
    assert report["counts"]["new"] == len(report["findings"])
    assert report["counts"]["suppressed"] == 1  # the earned REP101 suppression


def test_write_baseline_then_clean_run(in_fixture_dir, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["fixtures/demo", "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert baseline.exists()

    code = main(["fixtures/demo", "--baseline", str(baseline),
                 "--format", "json"])
    report = _report(capsys)
    assert code == 0
    assert report["findings"] == []
    # +9: fixture lines that trip two rules at once (e.g. the unseeded
    # random call inside an oracle or sampling policy is both a global
    # REP103 and the suite-specific REP602/REP701), plus the codes the
    # relay/pipeline pair seeds twice (two REP903 flows, the helper's
    # own REP101)
    assert report["counts"]["baselined"] == len(FIXTURE_CODES) + 9


def test_ratchet_reports_stale_and_shrinks(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "a.py").write_text(
        "import time\n\n\ndef f():\n    return time.time()\n",
        encoding="utf-8",
    )
    (src / "b.py").write_text(
        "from datetime import datetime\n\n\ndef g():\n"
        "    return datetime.now()\n",
        encoding="utf-8",
    )
    assert main(["pkg", "--write-baseline"]) == 0
    assert main(["pkg"]) == 0

    # fix one violation: its baseline entry goes stale, the build stays green
    (src / "b.py").write_text("def g():\n    return 0\n", encoding="utf-8")
    capsys.readouterr()  # drop the text output of the runs above
    code = main(["pkg", "--format", "json"])
    report = _report(capsys)
    assert code == 0
    assert report["counts"]["stale_baseline"] == 1
    assert report["baseline"]["stale"][0]["code"] == "REP102"

    # the ratchet: rewriting drops the fixed entry
    assert main(["pkg", "--write-baseline"]) == 0
    entries = json.loads(
        (tmp_path / "analysis-baseline.json").read_text(encoding="utf-8")
    )["entries"]
    assert [e["code"] for e in entries] == ["REP101"]

    # a brand-new violation still fails
    (src / "b.py").write_text(
        "import time\n\n\ndef g():\n    return time.sleep(1)\n",
        encoding="utf-8",
    )
    assert main(["pkg"]) == 1


def test_rep002_on_unparseable_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    code = main(["broken.py", "--no-baseline", "--format", "json"])
    report = _report(capsys)
    assert code == 1
    assert [f["code"] for f in report["findings"]] == ["REP002"]


def test_select_and_ignore(in_fixture_dir, capsys):
    main(["fixtures/demo", "--no-baseline", "--format", "json",
          "--select", "REP201"])
    report = _report(capsys)
    assert {f["code"] for f in report["findings"]} == {"REP201"}

    main(["fixtures/demo", "--no-baseline", "--format", "json",
          "--ignore", "REP201,REP202,REP203"])
    report = _report(capsys)
    assert not {"REP201", "REP202", "REP203"} & {
        f["code"] for f in report["findings"]
    }


def test_usage_errors_exit_2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["no/such/path"]) == 2
    assert main([".", "--baseline", "absent.json"]) == 2
    capsys.readouterr()


def test_output_writes_json_artifact(in_fixture_dir, tmp_path, capsys):
    out = tmp_path / "report.json"
    main(["fixtures/demo", "--no-baseline", "--format", "json",
          "--output", str(out)])
    on_disk = json.loads(out.read_text(encoding="utf-8"))
    assert on_disk == _report(capsys)


def test_golden_report_shape(in_fixture_dir, capsys):
    """The JSON artifact matches the committed golden report exactly."""
    main(["fixtures/demo", "--no-baseline", "--format", "json"])
    report = _report(capsys)
    golden = json.loads(
        (HERE / "golden_report.json").read_text(encoding="utf-8")
    )
    assert report == golden


def test_self_host_src_repro_is_clean(monkeypatch, capsys):
    """The analyzer passes over the tree that ships it (the committed
    baseline holds only justified exceptions, currently none)."""
    monkeypatch.chdir(REPO_ROOT)
    code = main(["src/repro", "--format", "json"])
    report = _report(capsys)
    assert code == 0, [f["summary"] if "summary" in f else f
                       for f in report["findings"]]
    assert report["findings"] == []
