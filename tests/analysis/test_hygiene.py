"""ResourceHygieneChecker: REP501-REP502."""

from repro.analysis.checkers.hygiene import ResourceHygieneChecker

from tests.analysis.conftest import codes

CHECKER = [ResourceHygieneChecker()]


def test_span_without_crash_safe_release(analyze):
    result = analyze({
        "mod.py": """\
            def handler(obs, work):
                span = obs.tracer.start("op")
                result = work()
                obs.tracer.end(span)
                return result
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP501"]


def test_release_only_in_except_is_not_enough(analyze):
    result = analyze({
        "mod.py": """\
            def handler(obs, work):
                span = obs.tracer.start("op")
                try:
                    return work()
                except Exception:
                    obs.tracer.end(span, error="boom")
                    raise
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP501"]


def test_finally_release_is_clean(analyze):
    result = analyze({
        "mod.py": """\
            def handler(obs, work):
                span = obs.tracer.start("op")
                try:
                    return work()
                finally:
                    obs.tracer.end(span)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_house_tail_end_pattern_is_clean(analyze):
    # the idiom used by the gatekeeper and SOAP client: end in the except
    # handler (then re-raise) and end again on the fall-through tail
    result = analyze({
        "mod.py": """\
            def handler(obs, work):
                span = obs.tracer.start("op")
                try:
                    result = work()
                except Exception as exc:
                    obs.tracer.end(span, error=str(exc))
                    raise
                obs.tracer.end(span)
                return result
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_admission_ticket_finally_release_is_clean(analyze):
    result = analyze({
        "mod.py": """\
            def dispatch(self, request):
                ticket = self.admission.admit(request)
                try:
                    return self.run(request)
                finally:
                    self.admission.release(ticket)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_leaked_admission_ticket(analyze):
    result = analyze({
        "mod.py": """\
            def dispatch(self, request):
                ticket = self.admission.admit(request)
                result = self.run(request)
                self.admission.release(ticket)
                return result
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP501"]


def test_returned_handle_is_ownership_transfer(analyze):
    result = analyze({
        "mod.py": """\
            def admit(self, request):
                ticket = self.admission.admit(request)
                return ticket


            def admit_direct(self, request):
                return self.admission.admit(request)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_attribute_store_is_ownership_transfer(analyze):
    result = analyze({
        "mod.py": """\
            def begin(self, obs):
                span = obs.tracer.start("session")
                self.session_span = span
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_dropped_handle_is_rep502(analyze):
    result = analyze({
        "mod.py": """\
            def fire_and_forget(obs):
                obs.tracer.start("op")
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP502"]


def test_dropped_journal_is_rep502_but_assigned_is_clean(analyze):
    result = analyze({
        "mod.py": """\
            def build(disk):
                Journal(disk, "orphaned")


            def wire(disk, service):
                journal = Journal(disk, "owned")
                service.attach(journal)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP502"]
    assert result.findings[0].line == 2
