"""SloSamplingChecker: REP701-REP702."""

from repro.analysis.checkers.slo import SloSamplingChecker

from tests.analysis.conftest import codes

CHECKER = [SloSamplingChecker()]

POLICY_BASE = """\
    class SamplingPolicy:
        name = ""

        def decide(self, trace):
            raise NotImplementedError
"""


def test_unseeded_random_in_retention_decision(analyze):
    result = analyze({
        "mod.py": POLICY_BASE + """\

    import random


    class CoinPolicy(SamplingPolicy):
        def decide(self, trace):
            return "coin" if random.random() < 0.5 else None
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP701"]


def test_argless_random_instance_in_policy(analyze):
    result = analyze({
        "mod.py": POLICY_BASE + """\

    import random


    class LazyPolicy(SamplingPolicy):
        def decide(self, trace):
            return "lazy" if random.Random().random() < 0.5 else None
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP701"]


def test_seeded_generator_in_policy_is_clean(analyze):
    result = analyze({
        "mod.py": POLICY_BASE + """\

    import random


    class SeededPolicy(SamplingPolicy):
        def __init__(self, seed):
            self.rng = random.Random(seed)

        def decide(self, trace):
            return "seeded" if self.rng.random() < 0.5 else None
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_unseeded_random_outside_a_policy_is_not_rep701(analyze):
    # that's the determinism checker's REP103; REP701 stays scoped to
    # the retention-policy hierarchy
    result = analyze({
        "mod.py": """\
    import random


    def jitter():
        return random.random()
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_transitive_policy_subclass_is_checked(analyze):
    result = analyze({
        "mod.py": POLICY_BASE + """\

    import random


    class RatePolicy(SamplingPolicy):
        rate = 0.5


    class DriftingPolicy(RatePolicy):
        def decide(self, trace):
            return "drift" if random.random() < self.rate else None
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP701"]


def test_slo_missing_window_and_budget(analyze):
    result = analyze({
        "mod.py": """\
    from repro.observability.slo import SLO

    VAGUE = SLO("x", service="Job", method="submit")
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP702"]
    finding = result.findings[0]
    assert "window=" in finding.message and "budget=" in finding.message


def test_slo_missing_only_budget(analyze):
    result = analyze({
        "mod.py": """\
    from repro.observability.slo import SLO

    HALF = SLO("x", service="Job", method="submit", window=12.0)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP702"]
    message = result.findings[0].message
    assert "omits budget=" in message
    assert "window=" not in message


def test_fully_declared_slo_is_clean(analyze):
    result = analyze({
        "mod.py": """\
    from repro.observability.slo import SLO

    FULL = SLO("x", service="Job", method="submit",
               objective="availability", window=12.0, budget=0.1)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_attribute_form_slo_call_is_checked(analyze):
    result = analyze({
        "mod.py": """\
    from repro.observability import slo

    VAGUE = slo.SLO("x", service="Job", method="submit")
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP702"]


def test_double_splat_is_given_the_benefit_of_the_doubt(analyze):
    # **kwargs may carry window/budget; the dataclass still enforces at
    # runtime, so the lint stays quiet rather than guessing
    result = analyze({
        "mod.py": """\
    from repro.observability.slo import SLO

    def build(**kwargs):
        return SLO("x", service="Job", method="submit", **kwargs)
        """
    }, checkers=CHECKER)
    assert codes(result) == []
