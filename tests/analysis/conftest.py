import textwrap
from pathlib import Path

import pytest

from repro.analysis.core import SourceModule
from repro.analysis.runner import analyze_sources

FIXTURE_ROOT = Path(__file__).parent / "fixtures"


def modules_from(sources: dict[str, str]) -> list[SourceModule]:
    """Build in-memory SourceModules from {relative-path: code}."""
    return [
        SourceModule.from_text(
            textwrap.dedent(code), Path("/virtual") / rel, rel
        )
        for rel, code in sorted(sources.items())
    ]


@pytest.fixture
def analyze():
    """analyze({"mod.py": code, ...}, checkers=[...]) -> AnalysisResult."""

    def run(sources: dict[str, str], **kwargs):
        return analyze_sources(modules_from(sources), **kwargs)

    return run


def codes(result) -> list[str]:
    return [f.code for f in result.findings]
