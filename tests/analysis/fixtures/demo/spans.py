"""Resource-hygiene sins: spans leaked and dropped."""


def leaky(obs, work):
    span = obs.tracer.start("leaky")  # expected: REP501 (no finally, no tail pair)
    result = work()
    obs.tracer.end(span)
    return result


def droppy(obs):
    obs.tracer.start("droppy")  # expected: REP502 (handle dropped)


def careful(obs, work):
    span = obs.tracer.start("careful")  # clean: released in finally
    try:
        return work()
    finally:
        obs.tracer.end(span)
