"""SLO/sampling sins: an unseeded retention coin, a half-declared SLO."""

import random


class SamplingPolicy:
    """Stand-in for the tail-sampling base (matched by name)."""

    name = ""

    def decide(self, trace):
        raise NotImplementedError


class CoinFlipPolicy(SamplingPolicy):
    name = "coin-flip"

    def decide(self, trace):
        # expected: REP701 (and REP103 from the determinism checker —
        # the same line breaks both the policy contract and the global rule)
        return self.name if random.random() < 0.5 else None


class SLO:
    """Stand-in for the objective dataclass (matched by name)."""

    def __init__(self, name, **kwargs):
        self.name = name


VAGUE_OBJECTIVE = SLO(  # expected: REP702 (no window=, no budget=)
    "submit-availability", service="Job", method="submit",
)
