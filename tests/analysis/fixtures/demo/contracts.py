"""Contract-drift sins: WSDL literals and implementations disagreeing."""

from repro.soap.server import SoapService
from repro.wsdl.model import WsdlDocument, WsdlOperation, WsdlPart

DEMO_NS = "urn:demo"


def demo_interface_wsdl(endpoint: str) -> WsdlDocument:
    return WsdlDocument(
        service_name="Demo",
        target_namespace=DEMO_NS,
        endpoint=endpoint,
        operations=[
            WsdlOperation("ping", "liveness probe", [WsdlPart("token", "xsd:string")]),
            WsdlOperation("echo", "returns its input", [WsdlPart("text", "xsd:string")]),
        ],
    )


class DemoImpl:
    def ping(self, token: str, extra: str) -> str:  # expected: REP302 (2 args vs 1 part)
        return token + extra

    def echo(self, text: str) -> str:
        return text


class DemoChild(DemoImpl):
    def echo(self, message: str) -> str:  # expected: REP301 (renamed parameter)
        return message


class DemoSibling(DemoImpl):
    def ping(self, token: str, extra: str = "") -> str:  # expected: REP303 (1 required vs 2)
        return token + extra


def deploy_demo_impl(soap: SoapService) -> DemoImpl:
    impl = DemoImpl()
    soap.expose(impl.ping)
    soap.expose(impl.echo)
    return impl
