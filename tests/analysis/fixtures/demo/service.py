"""Fault-taxonomy sins: an exposed service leaking a stdlib exception."""

from repro.faults import PortalError
from repro.soap.server import SoapService


class DemoError(PortalError):  # expected: REP202 + REP203 (no code, no retryable)
    pass


class DemoService:
    def frob(self, value: str) -> str:
        if not value:
            raise ValueError("value must be non-empty")  # expected: REP201
        return self._polish(value)

    def _polish(self, value: str) -> str:
        if value == "broken":
            raise RuntimeError("cannot polish")  # expected: REP201 (via helper)
        return value.strip()


def deploy_demo(soap: SoapService) -> DemoService:
    impl = DemoService()
    soap.expose(impl.frob)
    return impl
