"""Simtest-oracle sins: an unregistered oracle, a wall-clock oracle."""

import random
import time


class Oracle:
    """Stand-in for the simtest base (matched by name, like the real one)."""

    name = ""

    def check(self, world):
        raise NotImplementedError


class ForgottenOracle(Oracle):  # expected: REP601 (never registered)
    name = "forgotten"

    def check(self, world):
        return []


class WallClockOracle(Oracle):  # expected: REP601 (also unregistered)
    name = "wall-clock"

    def check(self, world):
        deadline = time.time() + 5  # expected: REP602 (wall clock)
        jitter = random.random()  # expected: REP602 (unseeded randomness)
        return [] if world.clock.now() < deadline + jitter else ["late"]
