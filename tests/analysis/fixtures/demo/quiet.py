"""Suppression behaviour: one earned suppression, one unused."""

import time


def stamped() -> float:
    return time.time()  # repro: ignore[REP101] - fixture exercises suppression


def spare() -> int:
    return 1  # repro: ignore[REP104] - expected: REP001 (matches nothing)
