"""Workflow sins: a keyless stage, a tampered sealed record."""


class WorkflowStage:
    """Stand-in for the shell base (matched by name, like the real one)."""

    def idempotency_key(self, run):
        raise NotImplementedError

    def execute(self, ctx, inputs):
        raise NotImplementedError


class KeylessStage(WorkflowStage):  # expected: REP801 (no idempotency_key)
    def execute(self, ctx, inputs):
        return {"out": "done"}


def tamper(store, address):
    record = store.record(address)
    record["status"] = "ok"  # expected: REP802 (sealed record mutated)
    return record
