"""Determinism sins: wall clocks, ambient dates, unseeded randomness."""

import random
import time
from datetime import datetime


def naughty_now() -> float:
    return time.time()  # expected: REP101


def naughty_today() -> str:
    return datetime.now().isoformat()  # expected: REP102


def naughty_jitter() -> float:
    rng = random.Random()  # expected: REP103 (no seed)
    return rng.random() + random.random()  # expected: REP103 (module call)


def naughty_order(registry: dict) -> list[str]:
    return [key for key, _value in registry.items()]  # expected: REP104
