"""Header-discipline sins: unregistered and half-wired SOAP headers."""

from repro.headers import register_header
from repro.xmlutil.qname import QName

DEMO_NS = "urn:demo"

#: never registered
ORPHAN_HEADER = QName(DEMO_NS, "Orphan")  # expected: REP401

#: registered but with neither encoder nor consumer
SILENT_HEADER = QName(DEMO_NS, "Silent")  # expected: REP402 + REP403
register_header(SILENT_HEADER, description="goes nowhere", module=__name__)
