"""Propagation sins: context, determinism, and ownership dropped
*across* module boundaries — every violating flow here crosses into
:mod:`.pipeline`, so only the whole-program REP9xx rules can see it."""

from repro.soap.server import SoapService
from repro.transport.http import HttpClient

from .pipeline import fresh_stamp, journal_write, lookup_route, open_span


class RelayService:
    def __init__(self, journal, tracer):
        self.http = HttpClient()
        self.journal = journal
        self.tracer = tracer
        self.routes = {"default": "/relay"}

    def route(self, name: str) -> str:
        return lookup_route(self.routes, name)

    def forward(self, body: str):
        return self.http.post("/relay", body)  # expected: REP902 (deadline dropped)

    def record(self, entry: str) -> None:
        stamp = fresh_stamp()
        self.journal.append((entry, stamp))  # expected: REP903 (helper-returned clock)

    def audit(self, entry: str) -> None:
        journal_write(self.journal, (entry, fresh_stamp()))  # expected: REP903 (via helper parameter)

    def timed(self, name: str) -> str:
        span = open_span(self.tracer, name)  # expected: REP904 (no finally)
        value = lookup_route(self.routes, name)
        self.tracer.end(span)
        return value


def deploy_relay(soap: SoapService, journal, tracer) -> RelayService:
    impl = RelayService(journal, tracer)
    soap.expose_object(impl)
    return impl
