"""Cross-module helpers the relay service leans on (REP9xx seeds).

Each helper is innocent in isolation — the violations only appear when
the whole-program analysis connects them to the dispatch paths and sinks
in :mod:`.relay`.
"""

import time


def lookup_route(table, name):
    if name not in table:
        raise KeyError(name)  # expected: REP901 (reachable via relay dispatch)
    return table[name]


def fresh_stamp():
    return time.time()  # expected: REP101 (and the REP903 taint source)


def journal_write(journal, entry):
    journal.append(entry)  # a durable sink reached through a parameter


def open_span(tracer, name):
    return tracer.start(name)  # ownership transfers to the caller
