"""A deliberately unhealthy miniature portal package.

Every module here seeds known violations for the analyzer's own tests;
the expected finding codes are noted next to each sin.  Nothing imports
this package at runtime — it exists to be *analyzed*, not executed.
"""
