"""The whole-program graph: import closure, symbol resolution, calls.

Everything here runs on tiny in-memory projects, so each test isolates
one resolution idiom — aliased imports, re-exports, assignment aliases,
method resolution through cross-module bases, and cycles.
"""

from repro.analysis.core import Project
from repro.analysis.graph.dataflow import reachable

from tests.analysis.conftest import modules_from


def graph_of(sources):
    return Project(modules=modules_from(sources)).graph()


# -- module graph --------------------------------------------------------------


def test_import_closure_and_dependents():
    g = graph_of({
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg.b import item\n",
        "pkg/b.py": "import pkg.c\nitem = 1\n",
        "pkg/c.py": "",
    })
    mg = g.modules
    # pkg.b's ``import pkg.c`` binds only ``pkg`` but depends on pkg.c,
    # so both land in the closure
    assert mg.import_closure(["pkg.a"]) == ["pkg", "pkg.a", "pkg.b", "pkg.c"]
    assert mg.dependent_closure(["pkg.c"]) == ["pkg.a", "pkg.b", "pkg.c"]


def test_relative_imports_resolve_against_the_package():
    g = graph_of({
        "pkg/__init__.py": "",
        "pkg/svc.py": "from .helpers import h\n",
        "pkg/helpers.py": "def h():\n    return 1\n",
    })
    assert g.modules.imports["pkg.svc"] == ["pkg.helpers"]


def test_import_cycles_terminate():
    g = graph_of({
        "cyc/__init__.py": "",
        "cyc/a.py": "from cyc.b import f\n",
        "cyc/b.py": "from cyc.a import g\n",
    })
    assert g.modules.import_closure(["cyc.a"]) == ["cyc.a", "cyc.b"]
    assert g.modules.dependent_closure(["cyc.a"]) == ["cyc.a", "cyc.b"]


# -- symbol table --------------------------------------------------------------


def test_resolve_through_module_alias():
    g = graph_of({
        "pkg/__init__.py": "",
        "pkg/impl.py": "class Widget:\n    pass\n",
        "pkg/use.py": "import pkg.impl as im\n",
    })
    symbol = g.symbols.resolve("pkg.use", "im.Widget")
    assert symbol is not None
    assert (symbol.kind, symbol.module, symbol.name) == (
        "class", "pkg.impl", "Widget",
    )


def test_resolve_through_package_reexport():
    g = graph_of({
        "pkg/__init__.py": "from pkg.impl import Widget\n",
        "pkg/impl.py": "class Widget:\n    pass\n",
        "use.py": "from pkg import Widget\n",
    })
    symbol = g.symbols.resolve("use", "Widget")
    assert symbol is not None
    assert (symbol.module, symbol.name) == ("pkg.impl", "Widget")


def test_resolve_through_assignment_alias():
    g = graph_of({
        "mod.py": "class Original:\n    pass\n\n\nAlias = Original\n",
    })
    symbol = g.symbols.resolve("mod", "Alias")
    assert symbol is not None
    assert (symbol.kind, symbol.name) == ("class", "Original")


def test_resolution_cycle_is_safe():
    g = graph_of({
        "cyc/__init__.py": "",
        "cyc/a.py": "from cyc.b import Thing\n",
        "cyc/b.py": "from cyc.a import Thing\n",
    })
    assert g.symbols.resolve("cyc.a", "Thing") is None


def test_mro_method_walks_cross_module_bases():
    g = graph_of({
        "lib/__init__.py": "",
        "lib/base.py": (
            "class Base:\n"
            "    def op(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return 1\n"
        ),
        "lib/child.py": (
            "from lib.base import Base\n\n\n"
            "class Child(Base):\n"
            "    def step(self):\n"
            "        return 2\n"
        ),
    })
    owner = g.symbols.mro_method("lib.child", "Child", "op")
    assert owner is not None and owner[:2] == ("lib.base", "Base")
    override = g.symbols.mro_method("lib.child", "Child", "step")
    assert override is not None and override[:2] == ("lib.child", "Child")
    assert ("lib.child", "Child") in g.symbols.subclasses_of(
        {("lib.base", "Base")}
    )


# -- call graph ----------------------------------------------------------------

DEPLOYED_SERVICE = {
    "app/__init__.py": "",
    "app/helpers.py": "def helper():\n    raise KeyError('x')\n",
    "app/svc.py": (
        "from app.helpers import helper\n\n\n"
        "class Svc:\n"
        "    def op(self):\n"
        "        return self._inner()\n\n"
        "    def _inner(self):\n"
        "        return helper()\n\n"
        "    def shielded(self):\n"
        "        try:\n"
        "            return helper()\n"
        "        except KeyError:\n"
        "            return None\n\n\n"
        "def deploy(soap):\n"
        "    impl = Svc()\n"
        "    soap.expose(impl.op)\n"
        "    soap.expose(impl.shielded)\n"
    ),
}


def test_dispatch_roots_from_exposures():
    project = Project(modules=modules_from(DEPLOYED_SERVICE))
    roots = project.graph().calls.dispatch_roots(project)
    assert "app.svc:Svc.op" in roots
    assert "app.svc:Svc.shielded" in roots
    assert "app.svc:Svc._inner" not in roots


def test_call_edges_carry_kind_module_and_guard():
    project = Project(modules=modules_from(DEPLOYED_SERVICE))
    calls = project.graph().calls
    edges = {
        (e.caller, e.callee, e.kind, e.cross_module, e.guarded)
        for node_edges in calls.edges_from.values()
        for e in node_edges
    }
    assert ("app.svc:Svc.op", "app.svc:Svc._inner", "self", False, False) in edges
    assert (
        "app.svc:Svc._inner", "app.helpers:helper", "name", True, False
    ) in edges
    assert (
        "app.svc:Svc.shielded", "app.helpers:helper", "name", True, True
    ) in edges


def test_guarded_cross_module_edges_stop_reachability():
    project = Project(modules=modules_from(DEPLOYED_SERVICE))
    calls = project.graph().calls

    def unguarded_cross(edge):
        return not (edge.guarded and edge.cross_module)

    via_shielded = reachable(
        calls, ["app.svc:Svc.shielded"],
        follow_guarded=True, edge_filter=unguarded_cross,
    )
    assert "app.helpers:helper" not in via_shielded
    via_op = reachable(
        calls, ["app.svc:Svc.op"],
        follow_guarded=True, edge_filter=unguarded_cross,
    )
    assert "app.helpers:helper" in via_op
