"""Framework behaviour: fingerprints, suppressions, parse errors."""

from pathlib import Path

from repro.analysis.core import (
    Finding,
    Severity,
    SourceModule,
    all_checkers,
    get_checker,
    parse_suppressions,
)

from tests.analysis.conftest import codes


def _finding(line: int, message: str = "m") -> Finding:
    return Finding(
        code="REP101",
        message=message,
        path="pkg/mod.py",
        line=line,
        col=0,
        severity=Severity.ERROR,
        checker="determinism",
    )


def test_fingerprint_is_line_independent():
    assert _finding(3).fingerprint() == _finding(300).fingerprint()


def test_fingerprint_distinguishes_message_and_path():
    assert _finding(3, "a").fingerprint() != _finding(3, "b").fingerprint()
    other = Finding(
        code="REP101", message="m", path="pkg/other.py", line=3, col=0,
        severity=Severity.ERROR, checker="determinism",
    )
    assert _finding(3).fingerprint() != other.fingerprint()


def test_parse_suppressions_blanket_and_codes():
    text = (
        "x = 1  # repro: ignore\n"
        "y = 2  # repro: ignore[REP101]\n"
        "z = 3  # repro: ignore[REP101, REP104] - justification prose\n"
        "plain = 4  # ordinary comment\n"
    )
    sup = parse_suppressions(text)
    assert sup == {1: set(), 2: {"REP101"}, 3: {"REP101", "REP104"}}


def test_suppression_in_string_or_docstring_is_prose():
    text = (
        '"""Docs mention repro: ignore[REP101] without meaning it."""\n'
        'MARKER = "# repro: ignore[REP104]"\n'
    )
    assert parse_suppressions(text) == {}


def test_suppression_drops_finding_on_same_line_only(analyze):
    result = analyze({
        "mod.py": """\
            import time


            def a():
                return time.time()  # repro: ignore[REP101]


            def b():
                return time.time()
        """
    })
    assert codes(result) == ["REP101"]
    assert result.findings[0].line == 9
    assert [f.code for f in result.suppressed] == ["REP101"]


def test_blanket_suppression_covers_any_code(analyze):
    result = analyze({
        "mod.py": """\
            import time


            def a():
                return time.time()  # repro: ignore
        """
    })
    assert codes(result) == []
    assert len(result.suppressed) == 1


def test_unused_suppression_is_rep001_warning(analyze):
    result = analyze({
        "mod.py": """\
            def a():
                return 1  # repro: ignore[REP104]
        """
    })
    assert codes(result) == ["REP001"]
    assert result.findings[0].severity == Severity.WARNING


def test_unparseable_file_is_rep002(analyze):
    result = analyze({"broken.py": "def broken(:\n"})
    assert codes(result) == ["REP002"]


def test_select_and_ignore_filter_codes(analyze):
    sources = {
        "mod.py": """\
            import time
            from datetime import datetime


            def a():
                return time.time(), datetime.now()
        """
    }
    only_time = analyze(sources, select={"REP101"})
    assert codes(only_time) == ["REP101"]
    no_time = analyze(sources, ignore={"REP101"})
    assert codes(no_time) == ["REP102"]


def test_registry_exposes_all_nine_checkers():
    names = [c.name for c in all_checkers()]
    assert names == [
        "determinism", "faults", "contracts", "headers", "hygiene",
        "simtest", "slo", "workflow", "propagation",
    ]
    assert get_checker("faults").codes.keys() >= {"REP201", "REP202", "REP203"}
    assert get_checker("propagation").codes.keys() == {
        "REP901", "REP902", "REP903", "REP904",
    }


def test_module_name_derivation():
    mod = SourceModule.from_text("x = 1\n", Path("/r/src/repro/headers.py"),
                                 "src/repro/headers.py")
    assert mod.module_name == "repro.headers"
