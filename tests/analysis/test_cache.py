"""The incremental cache: invalidation, fast path, and byte-identity.

The property at the bottom is the report's core guarantee, stated once
and machine-checked: the rendered JSON artifact is a pure function of
the analyzed tree — not of input path order, not of cache state (cold
vs warm), and not of ``--changed-only`` on an unchanged tree.
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cache import CACHE_FILE, AnalysisCache
from repro.analysis.reporting import (
    exit_code_for,
    render_json,
    split_without_baseline,
)
from repro.analysis.runner import analyze_paths_cached

CLEAN_PKG = {
    "pkg/__init__.py": "",
    "pkg/helper.py": "def h():\n    return 1\n",
    "pkg/user.py": "from pkg.helper import h\n\n\ndef u():\n    return h()\n",
}

DIRTY_PKG = {
    "pkg/__init__.py": "",
    "pkg/clock.py": "import time\n\n\ndef now():\n    return time.time()\n",
    "pkg/pure.py": "def double(x):\n    return 2 * x\n",
}


def write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


def run(root: Path, **kwargs):
    kwargs.setdefault("cache_dir", root / ".analysis-cache")
    return analyze_paths_cached([root / "pkg"], root=root, **kwargs)


def report_of(result, paths) -> str:
    split = split_without_baseline(result.findings)
    return render_json(
        result, split, None,
        paths=[str(p) for p in paths],
        exit_code=exit_code_for(split),
    )


def test_cold_then_warm_fast_path(tmp_path):
    write_tree(tmp_path, CLEAN_PKG)
    cold, stats = run(tmp_path)
    assert (stats.hits, stats.misses, stats.fast_path) == (0, 3, False)
    assert stats.wrote
    warm, stats = run(tmp_path)
    assert (stats.hits, stats.misses, stats.fast_path) == (3, 0, True)
    assert report_of(warm, ["pkg"]) == report_of(cold, ["pkg"])


def test_body_edit_invalidates_file_and_dependents(tmp_path):
    write_tree(tmp_path, CLEAN_PKG)
    run(tmp_path)
    helper = tmp_path / "pkg/helper.py"
    helper.write_text(
        helper.read_text(encoding="utf-8") + "\n\ndef h2():\n    return 2\n",
        encoding="utf-8",
    )
    _result, stats = run(tmp_path)
    assert sorted(stats.dirty) == ["pkg/helper.py", "pkg/user.py"]
    assert stats.hits == 1  # __init__ does not import the helper


def test_interface_change_invalidates_everything(tmp_path):
    write_tree(tmp_path, CLEAN_PKG)
    run(tmp_path)
    init = tmp_path / "pkg/__init__.py"
    # a new class changes __init__'s interface facts -> global digest
    init.write_text("class Registry:\n    pass\n", encoding="utf-8")
    _result, stats = run(tmp_path)
    assert stats.misses == 3 and stats.hits == 0


def test_no_cache_reads_and_writes_nothing(tmp_path):
    write_tree(tmp_path, CLEAN_PKG)
    _result, stats = run(tmp_path, use_cache=False)
    assert not stats.enabled
    assert not (tmp_path / ".analysis-cache").exists()


def test_corrupt_cache_degrades_to_cold(tmp_path):
    write_tree(tmp_path, CLEAN_PKG)
    run(tmp_path)
    cache_file = tmp_path / ".analysis-cache" / CACHE_FILE
    cache_file.write_text("{not json", encoding="utf-8")
    assert AnalysisCache.load(cache_file).files == {}
    _result, stats = run(tmp_path)
    assert stats.misses == 3 and stats.wrote


def test_changed_only_merges_cached_findings(tmp_path):
    write_tree(tmp_path, DIRTY_PKG)
    full, _ = run(tmp_path)  # populates the cache; clock.py carries REP101
    pure = tmp_path / "pkg/pure.py"
    pure.write_text(
        pure.read_text(encoding="utf-8") + "\n\ndef triple(x):\n    return 3 * x\n",
        encoding="utf-8",
    )
    merged, stats = run(tmp_path, changed_only=True)
    assert stats.dirty == ["pkg/pure.py"]
    assert not stats.wrote  # the pre-step never writes the cache
    # the untouched clock.py finding came from the cache, verbatim
    assert report_of(merged, ["pkg"]) == report_of(run(tmp_path, use_cache=False)[0], ["pkg"])
    assert any(f.code == "REP101" for f in merged.findings)
    assert merged.files_scanned == 3


def test_deleting_cache_reproduces_bytes(tmp_path):
    write_tree(tmp_path, DIRTY_PKG)
    first, _ = run(tmp_path)
    import shutil

    shutil.rmtree(tmp_path / ".analysis-cache")
    second, stats = run(tmp_path)
    assert stats.misses == 3
    assert report_of(second, ["pkg"]) == report_of(first, ["pkg"])


# -- the byte-identity property ------------------------------------------------

DEMO_DIR = Path(__file__).parent / "fixtures" / "demo"
DEMO_FILES = sorted(p.name for p in DEMO_DIR.glob("*.py"))


@pytest.fixture(scope="module")
def demo_env(tmp_path_factory):
    """A module-scoped cache dir plus the reference (cold, cache-less)
    rendering of the demo fixture report."""
    cache_dir = tmp_path_factory.mktemp("analysis-cache")
    root = DEMO_DIR.parents[1]  # tests/analysis: rels match the golden report
    paths = [DEMO_DIR / name for name in DEMO_FILES]
    result, _ = analyze_paths_cached(
        paths, root=root, use_cache=False
    )
    reference = report_of(result, DEMO_FILES)
    return {"cache_dir": cache_dir, "root": root, "reference": reference}


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    order=st.permutations(DEMO_FILES),
    warm=st.booleans(),
    changed_only=st.booleans(),
)
def test_report_is_a_pure_function_of_the_tree(demo_env, order, warm, changed_only):
    import shutil

    cache_dir = demo_env["cache_dir"]
    root = demo_env["root"]
    if warm:
        # ensure the cache is populated (a no-op when already warm)
        analyze_paths_cached(
            [DEMO_DIR], root=root, cache_dir=cache_dir
        )
    elif cache_dir.exists():
        shutil.rmtree(cache_dir)
    result, _ = analyze_paths_cached(
        [DEMO_DIR / name for name in order],
        root=root,
        cache_dir=cache_dir,
        changed_only=changed_only,
    )
    assert report_of(result, list(order)) == demo_env["reference"]


def test_rendered_report_matches_golden_via_cache(demo_env):
    """The cached rendering equals the committed golden artifact minus
    the ``paths`` field (the golden run analyzed the directory)."""
    result, stats = analyze_paths_cached(
        [DEMO_DIR], root=demo_env["root"], cache_dir=demo_env["cache_dir"]
    )
    rendered = json.loads(report_of(result, ["fixtures/demo"]))
    golden = json.loads(
        (Path(__file__).parent / "golden_report.json").read_text(encoding="utf-8")
    )
    assert rendered == golden
