"""Baseline mechanics: apply, multiset matching, ratchet, reasons."""

from pathlib import Path

from repro.analysis.baseline import (
    Baseline,
    apply_baseline,
    write_baseline,
)
from repro.analysis.core import Finding, Severity


def _finding(message: str, line: int = 1, path: str = "pkg/mod.py") -> Finding:
    return Finding(
        code="REP101", message=message, path=path, line=line, col=0,
        severity=Severity.ERROR, checker="determinism",
    )


def _baseline_of(*findings: Finding) -> Baseline:
    return Baseline(entries=[
        {
            "fingerprint": f.fingerprint(),
            "code": f.code,
            "path": f.path,
            "message": f.message,
        }
        for f in findings
    ])


def test_baselined_findings_do_not_fail():
    f = _finding("wall clock")
    split = apply_baseline([f], _baseline_of(f))
    assert split.new == []
    assert split.baselined == [f]
    assert split.stale == []


def test_new_finding_stays_new():
    known, fresh = _finding("known"), _finding("fresh")
    split = apply_baseline([known, fresh], _baseline_of(known))
    assert split.new == [fresh]
    assert split.baselined == [known]


def test_multiset_semantics_count_duplicates():
    # identical message on two lines -> same fingerprint twice; a baseline
    # holding one occurrence absorbs exactly one
    first, second = _finding("dup", line=3), _finding("dup", line=9)
    split = apply_baseline([first, second], _baseline_of(first))
    assert len(split.baselined) == 1
    assert len(split.new) == 1


def test_fixed_finding_surfaces_as_stale():
    fixed = _finding("already fixed")
    split = apply_baseline([], _baseline_of(fixed))
    assert split.new == []
    assert [e["message"] for e in split.stale] == ["already fixed"]


def test_moved_finding_still_matches():
    # fingerprints ignore line numbers: shifting code does not invalidate
    # the baseline
    original = _finding("stable", line=10)
    moved = _finding("stable", line=99)
    split = apply_baseline([moved], _baseline_of(original))
    assert split.new == []


def test_write_baseline_ratchets_and_keeps_reasons(tmp_path: Path):
    keep, fix = _finding("deliberate"), _finding("to be fixed")
    path = tmp_path / "baseline.json"
    write_baseline([keep, fix], path)

    # attach a justification, as the review workflow does, by hand-editing
    loaded = Baseline.load(path)
    for entry in loaded.entries:
        if entry["message"] == "deliberate":
            entry["reason"] = "paper-mandated deviation"
    loaded.save()

    # the ratchet: rewrite with only the surviving finding
    reasons = {
        e["fingerprint"]: e["reason"]
        for e in Baseline.load(path).entries
        if e.get("reason")
    }
    written = write_baseline([keep], path, reasons=reasons)
    assert len(written) == 1
    entry = Baseline.load(path).entries[0]
    assert entry["message"] == "deliberate"
    assert entry["reason"] == "paper-mandated deviation"


def test_load_rejects_unknown_version(tmp_path: Path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    try:
        Baseline.load(bad)
    except ValueError as err:
        assert "version" in str(err)
    else:
        raise AssertionError("expected ValueError")
