"""HeaderDisciplineChecker: REP401-REP403."""

from repro.analysis.checkers.headers import HeaderDisciplineChecker

from tests.analysis.conftest import codes

CHECKER = [HeaderDisciplineChecker()]

FULLY_WIRED = """\
    from repro.headers import register_header
    from repro.xmlutil.element import XmlElement
    from repro.xmlutil.qname import QName

    DEMO_HEADER = QName("urn:demo", "Demo")
    register_header(DEMO_HEADER, description="demo", module=__name__)


    def demo_header(value):
        return XmlElement(DEMO_HEADER, text=value)


    def demo_from_headers(headers):
        for entry in headers:
            if entry.tag == DEMO_HEADER:
                return entry.text
        return None
"""


def test_fully_wired_header_is_clean(analyze):
    assert codes(analyze({"mod.py": FULLY_WIRED}, checkers=CHECKER)) == []


def test_unregistered_header_is_rep401(analyze):
    result = analyze({
        "mod.py": """\
            from repro.xmlutil.qname import QName

            LONE_HEADER = QName("urn:demo", "Lone")
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP401"]
    assert result.findings[0].symbol == "LONE_HEADER"


def test_registered_without_encoder_or_consumer(analyze):
    result = analyze({
        "mod.py": """\
            from repro.headers import register_header
            from repro.xmlutil.qname import QName

            MUTE_HEADER = QName("urn:demo", "Mute")
            register_header(MUTE_HEADER, module=__name__)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP402", "REP403"]


def test_not_equal_comparison_counts_as_consumer(analyze):
    result = analyze({
        "mod.py": """\
            from repro.headers import register_header
            from repro.xmlutil.element import XmlElement
            from repro.xmlutil.qname import QName

            SKIP_HEADER = QName("urn:demo", "Skip")
            register_header(SKIP_HEADER, module=__name__)


            def encode():
                return XmlElement(SKIP_HEADER)


            def decode(headers):
                return [e for e in headers if e.tag != SKIP_HEADER]
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_private_constants_are_exempt(analyze):
    # the SOAP envelope's own ``_HEADER`` element constant is structural,
    # not part of the portal header vocabulary
    result = analyze({
        "mod.py": """\
            from repro.xmlutil.qname import QName

            _HEADER = QName("urn:soap", "Header")
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_real_header_modules_are_clean():
    from pathlib import Path

    from repro.analysis.runner import analyze_paths

    root = Path(__file__).resolve().parents[2]
    result = analyze_paths(
        [
            root / "src/repro/resilience/policy.py",
            root / "src/repro/durability/idempotency.py",
            root / "src/repro/loadmgmt/headers.py",
            root / "src/repro/observability/context.py",
        ],
        root=root,
        checkers=CHECKER,
    )
    assert codes(result) == []
