"""FaultTaxonomyChecker: REP201-REP203."""

from repro.analysis.checkers.faults import FaultTaxonomyChecker

from tests.analysis.conftest import codes

CHECKER = [FaultTaxonomyChecker()]


def test_stdlib_raise_reachable_from_expose(analyze):
    result = analyze({
        "svc.py": """\
            class Svc:
                def op(self, x):
                    if not x:
                        raise ValueError("boom")
                    return x


            def deploy(soap):
                impl = Svc()
                soap.expose(impl.op)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP201"]
    assert result.findings[0].symbol == "Svc.op"


def test_raise_in_helper_reached_through_self_call(analyze):
    result = analyze({
        "svc.py": """\
            class Svc:
                def op(self, x):
                    return self._inner(x)

                def _inner(self, x):
                    raise KeyError(x)


            def deploy(soap):
                impl = Svc()
                soap.expose(impl.op)
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP201"]
    assert result.findings[0].symbol == "Svc._inner"


def test_expose_object_covers_every_public_method(analyze):
    result = analyze({
        "svc.py": """\
            class Svc:
                def visible(self):
                    raise RuntimeError("escapes")


            def deploy(soap):
                soap.expose_object(Svc())
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP201"]


def test_portal_error_raise_is_clean(analyze):
    result = analyze({
        "svc.py": """\
            from repro.faults import InvalidRequestError


            class Svc:
                def op(self, x):
                    if not x:
                        raise InvalidRequestError("x required")
                    raise  # bare re-raise is fine
                    err = InvalidRequestError("kept")
                    raise err  # variable re-raise is out of static reach


            def deploy(soap):
                impl = Svc()
                soap.expose(impl.op)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_unexposed_class_raises_freely(analyze):
    result = analyze({
        "lib.py": """\
            class Helper:
                def op(self):
                    raise ValueError("internal")
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_subclass_without_code_and_retryable(analyze):
    result = analyze({
        "errors.py": """\
            from repro.faults import PortalError


            class VagueError(PortalError):
                pass


            class HalfError(PortalError):
                code = "Portal.Half"


            class FullError(PortalError):
                code = "Portal.Full"
                retryable = True
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP202", "REP203", "REP203"]
    assert [f.symbol for f in result.findings] == [
        "VagueError", "VagueError", "HalfError",
    ]
