"""WorkflowChecker: REP801-REP802."""

from repro.analysis.checkers.workflow import WorkflowChecker

from tests.analysis.conftest import codes

CHECKER = [WorkflowChecker()]

STAGE_BASE = """\
    class WorkflowStage:
        output_ports = ("out",)

        def idempotency_key(self, run):
            raise NotImplementedError

        def execute(self, ctx, inputs):
            raise NotImplementedError
"""


def test_stage_without_idempotency_key(analyze):
    result = analyze({
        "mod.py": STAGE_BASE + """\


    class KeylessStage(WorkflowStage):
        def execute(self, ctx, inputs):
            return {"out": "x"}
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP801"]


def test_stage_declaring_its_key_is_clean(analyze):
    result = analyze({
        "mod.py": STAGE_BASE + """\


    class KeyedStage(WorkflowStage):
        def idempotency_key(self, run):
            return f"wf:{run}:keyed"

        def execute(self, ctx, inputs):
            return {"out": "x"}
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_key_inherited_from_intermediate_base_is_clean(analyze):
    # the key may live on an abstract stem between the root and the leaf
    result = analyze({
        "mod.py": STAGE_BASE + """\


    class KeyedStem(WorkflowStage):
        def idempotency_key(self, run):
            return f"wf:{run}:stem"


    class LeafStage(KeyedStem):
        def execute(self, ctx, inputs):
            return {"out": "x"}
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_root_definition_does_not_satisfy_rep801(analyze):
    # the root's idempotency_key only raises; inheriting it is the bug
    result = analyze({
        "mod.py": STAGE_BASE + """\


    class Stem(WorkflowStage):
        retries = 5


    class StillKeyless(Stem):
        def execute(self, ctx, inputs):
            return {"out": "x"}
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP801"]


def test_abstract_stem_without_execute_is_skipped(analyze):
    result = analyze({
        "mod.py": STAGE_BASE + """\


    class Stem(WorkflowStage):
        retries = 5
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_stage_lookalike_outside_hierarchy_is_ignored(analyze):
    result = analyze({
        "mod.py": """\
    class FreeAgent:
        def execute(self, ctx, inputs):
            return {"out": "x"}
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_subscript_assignment_to_sealed_record(analyze):
    result = analyze({
        "mod.py": """\
    def tamper(store, address):
        record = store.record(address)
        record["status"] = "ok"
        return record
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP802"]
    assert "sealed provenance record" in result.findings[0].message


def test_delete_and_mutator_call_on_sealed_record(analyze):
    result = analyze({
        "mod.py": """\
    def scrub(store, address):
        rec = store.get_record(address)
        del rec["error"]
        rec.update({"status": "ok"})
        return rec
        """
    }, checkers=CHECKER)
    assert codes(result) == ["REP802", "REP802"]


def test_reading_a_sealed_record_is_clean(analyze):
    result = analyze({
        "mod.py": """\
    def inspect(store, address):
        record = store.record(address)
        outputs = record.get("outputs", {})
        return sorted(outputs)
        """
    }, checkers=CHECKER)
    assert codes(result) == []


def test_mutating_an_ordinary_dict_is_not_rep802(analyze):
    result = analyze({
        "mod.py": """\
    def build(store):
        draft = {"status": "pending"}
        draft["status"] = "ok"
        draft.update({"stage": "collect"})
        return draft
        """
    }, checkers=CHECKER)
    assert codes(result) == []
