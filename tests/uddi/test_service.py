import pytest

from repro.faults import DiscoveryError
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)
from repro.uddi.service import UddiClient, deploy_uddi


@pytest.fixture
def uddi(network):
    registry, url = deploy_uddi(network)
    return registry, UddiClient(network, url, source="ui")


def test_publish_and_inquire_over_soap(uddi):
    _registry, client = uddi
    entity = client.save_business(BusinessEntity("", "Test Lab"))
    tmodel = client.save_tmodel(TModel("", "iface", overview_url="http://w"))
    service = client.save_service(
        BusinessService(
            "", entity.key, "My Service",
            description="does things",
            category_bag=[KeyedReference("uddi:general-keywords", "k", "v")],
            bindings=[BindingTemplate("", "", "http://ep", [tmodel.key], "http://w")],
        )
    )
    assert service.key
    found = client.find_service("%my%")
    assert [s.name for s in found] == ["My Service"]
    assert found[0].bindings[0].access_point == "http://ep"
    assert client.services_implementing(tmodel.key)[0].key == service.key
    detail = client.get_business_detail(entity.key)
    assert detail.name == "Test Lab"


def test_error_relayed_over_soap(uddi):
    _registry, client = uddi
    with pytest.raises(DiscoveryError):
        client.get_service_detail("uuid:bs-missing")


def test_find_tmodel_includes_standard_taxonomies(uddi):
    _registry, client = uddi
    names = [t.name for t in client.find_tmodel("")]
    assert any("NAICS" in n or "Classification" in n for n in names)
