import pytest

from repro.faults import DiscoveryError, InvalidRequestError
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)
from repro.uddi.registry import UddiRegistry


@pytest.fixture
def registry():
    reg = UddiRegistry()
    iu = reg.save_business(BusinessEntity("", "Indiana University"))
    sdsc = reg.save_business(BusinessEntity("", "SDSC"))
    tm = reg.save_tmodel(TModel("", "gce:bsg-interface"))
    reg.save_service(
        BusinessService(
            "", iu.key, "Gateway Script Generator",
            description="schedulers: PBS,GRD",
            category_bag=[KeyedReference("uddi:general-keywords", "scheduler", "PBS")],
            bindings=[BindingTemplate("", "", "http://iu/bsg", [tm.key])],
        )
    )
    reg.save_service(
        BusinessService(
            "", sdsc.key, "HotPage Script Generator",
            description="schedulers: LSF,NQS",
            bindings=[BindingTemplate("", "", "http://sdsc/bsg", [tm.key])],
        )
    )
    return reg, iu, sdsc, tm


def test_keys_assigned(registry):
    reg, iu, _sdsc, tm = registry
    assert iu.key.startswith("uuid:be-")
    assert tm.key.startswith("uuid:tm-")


def test_find_business_wildcards(registry):
    reg = registry[0]
    assert len(reg.find_business("%university%")) == 1
    assert len(reg.find_business("SDSC")) == 1
    assert len(reg.find_business("sdsc")) == 1  # case-insensitive
    assert len(reg.find_business("")) == 2
    assert reg.find_business("Indiana%")[0].name == "Indiana University"


def test_find_service_by_name_and_business(registry):
    reg, iu, _sdsc, _tm = registry
    assert len(reg.find_service("%script generator%")) == 2
    assert len(reg.find_service("%script%", business_key=iu.key)) == 1


def test_find_service_by_category(registry):
    reg = registry[0]
    hits = reg.find_service(
        category_refs=[KeyedReference("uddi:general-keywords", "", "PBS")]
    )
    assert [s.name for s in hits] == ["Gateway Script Generator"]


def test_description_substring_workaround(registry):
    reg = registry[0]
    assert len(reg.find_service(description_contains="LSF")) == 1
    assert len(reg.find_service(description_contains="schedulers:")) == 2


def test_services_implementing_interface(registry):
    reg, _iu, _sdsc, tm = registry
    assert len(reg.services_implementing(tm.key)) == 2
    assert reg.services_implementing("uuid:tm-none") == []


def test_category_requires_registered_tmodel(registry):
    reg, iu, _sdsc, _tm = registry
    with pytest.raises(InvalidRequestError):
        reg.save_service(
            BusinessService(
                "", iu.key, "Bad",
                category_bag=[KeyedReference("uuid:tm-unregistered", "", "x")],
            )
        )


def test_service_requires_business(registry):
    reg = registry[0]
    with pytest.raises(DiscoveryError):
        reg.save_service(BusinessService("", "uuid:be-nope", "Orphan"))


def test_get_detail_and_delete(registry):
    reg = registry[0]
    service = reg.find_service("%Gateway%")[0]
    assert reg.get_service_detail(service.key).name == service.name
    reg.delete_service(service.key)
    with pytest.raises(DiscoveryError):
        reg.get_service_detail(service.key)


def test_save_binding_appends(registry):
    reg = registry[0]
    service = reg.find_service("%HotPage%")[0]
    reg.save_binding(BindingTemplate("", service.key, "http://mirror/bsg"))
    assert len(reg.get_service_detail(service.key).bindings) == 2
    with pytest.raises(DiscoveryError):
        reg.save_binding(BindingTemplate("", "uuid:bs-nope", "http://x"))
