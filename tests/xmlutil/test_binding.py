import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlutil.binding import bind_schema
from repro.xmlutil.schema import parse_schema

XSD = """\
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:b">
  <xs:complexType name="Tag">
    <xs:sequence><xs:element name="value" type="xs:string"/></xs:sequence>
  </xs:complexType>
  <xs:complexType name="Record">
    <xs:sequence>
      <xs:element name="title" type="xs:string"/>
      <xs:element name="count" type="xs:int" default="1"/>
      <xs:element name="ratio" type="xs:double" minOccurs="0"/>
      <xs:element name="active" type="xs:boolean" minOccurs="0"/>
      <xs:element name="tag" type="Tag" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:element name="record" type="Record"/>
</xs:schema>
"""


@pytest.fixture(scope="module")
def classes():
    return bind_schema(parse_schema(XSD))


def test_generated_class_shape(classes):
    Record = classes["Record"]
    obj = Record(title="t", id="r1")
    assert obj.title == "t"
    assert obj.count == 1  # schema default applied
    assert obj.tag == []
    # bean-style accessors exist
    obj.set_count(7)
    assert obj.get_count() == 7


def test_nested_marshal_unmarshal(classes):
    Record, Tag = classes["Record"], classes["Tag"]
    obj = Record(title="hello", id="r2", ratio=0.5, active=True)
    obj.add_tag(Tag(value="x"))
    obj.add_tag(Tag(value="y"))
    back = Record.unmarshal(obj.marshal())
    assert back == obj
    assert [t.value for t in back.tag] == ["x", "y"]
    assert back.active is True and back.ratio == 0.5


def test_delete_from_repeated(classes):
    Record, Tag = classes["Record"], classes["Tag"]
    obj = Record(title="d", id="r3")
    tag = Tag(value="gone")
    obj.add_tag(tag)
    obj.delete_tag(tag)
    assert obj.tag == []


def test_unknown_constructor_field_rejected(classes):
    with pytest.raises(AttributeError):
        classes["Record"](bogus="x")


def test_docstring_from_schema(classes):
    assert "Generated binding" in (classes["Tag"].__doc__ or "")


@given(
    title=st.text(max_size=20).filter(lambda s: s.strip() == s and "\r" not in s),
    count=st.integers(-10**6, 10**6),
    ratio=st.floats(allow_nan=False, allow_infinity=False, width=32),
    tags=st.lists(st.text(min_size=1, max_size=10).filter(
        lambda s: s.strip() == s and "\r" not in s), max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_marshal_unmarshal_property(title, count, ratio, tags):
    classes = bind_schema(parse_schema(XSD))
    Record, Tag = classes["Record"], classes["Tag"]
    obj = Record(title=title, id="p", count=count, ratio=float(ratio))
    for tag in tags:
        obj.add_tag(Tag(value=tag))
    assert Record.unmarshal(obj.marshal()) == obj
