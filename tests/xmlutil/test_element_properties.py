"""Property-based tests: serialize/parse round trip for arbitrary trees."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlutil.element import XmlElement, parse_xml

names = st.text(
    alphabet=string.ascii_letters + "_", min_size=1, max_size=8
).filter(
    # "xmlns" is a reserved namespace declaration, not an attribute name;
    # XmlElement.set rejects it (see test_element.py)
    lambda s: (s[0].isalpha() or s[0] == "_") and s != "xmlns"
)

# text content excluding the \r (XML parsers normalize CR) but including
# markup-significant characters that must be escaped
texts = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r", categories=("L", "N", "P", "S", "Zs")
    ),
    max_size=30,
)


@st.composite
def elements(draw, depth=2):
    tag = draw(names)
    el = XmlElement(tag)
    for key in draw(st.lists(names, max_size=3, unique=True)):
        el.set(key, draw(texts))
    n_children = draw(st.integers(0, 3)) if depth else 0
    for _ in range(n_children):
        if draw(st.booleans()):
            el.append(draw(elements(depth=depth - 1)))
        else:
            value = draw(texts)
            if value:
                el.append(value)
    return el


@given(elements())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(el):
    assert parse_xml(el.serialize()) == el


@given(elements())
@settings(max_examples=50, deadline=None)
def test_indented_serialize_parse_equal_modulo_whitespace(el):
    assert parse_xml(el.serialize(indent=2)) == el
