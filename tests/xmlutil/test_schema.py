import pytest

from repro.xmlutil.schema import (
    UNBOUNDED,
    BuiltinType,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
    parse_schema,
)

XSD = """\
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
  <xs:simpleType name="Color">
    <xs:annotation><xs:documentation>A color.</xs:documentation></xs:annotation>
    <xs:restriction base="xs:string">
      <xs:enumeration value="red"/><xs:enumeration value="blue"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="Port">
    <xs:restriction base="xs:int">
      <xs:minInclusive value="1"/><xs:maxInclusive value="65535"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="Item">
    <xs:sequence>
      <xs:element name="label" type="xs:string"/>
      <xs:element name="color" type="Color" minOccurs="0"/>
      <xs:element name="tag" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:element name="item" type="Item"/>
</xs:schema>
"""


def test_parse_schema_structure():
    schema = parse_schema(XSD)
    assert schema.target_namespace == "urn:t"
    item = schema.complex_types["Item"]
    assert [el.name for el in item.sequence] == ["label", "color", "tag"]
    assert item.sequence[2].max_occurs == UNBOUNDED
    assert item.attribute("id").required
    color = schema.simple_types["Color"]
    assert color.enumeration == ["red", "blue"]
    assert color.documentation == "A color."
    # references resolved to objects
    assert isinstance(item.sequence[1].type, XsdSimpleType)


def test_simple_type_facets():
    schema = parse_schema(XSD)
    port = schema.simple_types["Port"]
    assert port.check("80") == []
    assert port.check("0") != []
    assert port.check("70000") != []
    assert port.check("notanumber") != []


def test_builtin_lexical_roundtrip():
    assert BuiltinType.INT.parse("42") == 42
    assert BuiltinType.BOOLEAN.parse("true") is True
    assert BuiltinType.BOOLEAN.format(False) == "false"
    assert BuiltinType.DOUBLE.parse(BuiltinType.DOUBLE.format(1.5)) == 1.5
    with pytest.raises(ValueError):
        BuiltinType.BOOLEAN.parse("maybe")


def test_schema_xsd_serialization_roundtrip():
    original = parse_schema(XSD)
    reparsed = parse_schema(original.serialize())
    assert sorted(reparsed.complex_types) == sorted(original.complex_types)
    assert sorted(reparsed.simple_types) == sorted(original.simple_types)
    item = reparsed.complex_types["Item"]
    assert [el.name for el in item.sequence] == ["label", "color", "tag"]
    assert reparsed.simple_types["Color"].enumeration == ["red", "blue"]


def test_programmatic_schema_with_unresolved_ref():
    schema = XsdSchema(target_namespace="urn:p")
    schema.add_complex_type(
        XsdComplexType("Box", sequence=[XsdElement("part", "Part")])
    )
    with pytest.raises(KeyError):
        schema.resolve()
    schema.add_complex_type(XsdComplexType("Part", sequence=[XsdElement("n")]))
    schema.resolve()
    assert isinstance(schema.complex_types["Box"].sequence[0].type, XsdComplexType)


def test_unknown_builtin_rejected():
    with pytest.raises(ValueError):
        BuiltinType.from_xsd_name("hexBinary")


def test_parse_rejects_non_schema_document():
    with pytest.raises(ValueError):
        parse_schema("<notaschema/>")
