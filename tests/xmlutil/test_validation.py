import pytest

from repro.xmlutil.element import parse_xml
from repro.xmlutil.schema import parse_schema
from repro.xmlutil.validation import SchemaValidator

XSD = """\
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Job">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="cpus" type="xs:int"/>
      <xs:element name="flag" type="xs:string" minOccurs="0" maxOccurs="2"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:element name="job" type="Job"/>
</xs:schema>
"""


@pytest.fixture
def validator():
    return SchemaValidator(parse_schema(XSD))


def test_valid_instance(validator):
    doc = parse_xml('<job id="1"><name>x</name><cpus>4</cpus><flag>a</flag></job>')
    assert validator.validate(doc) == []
    assert validator.is_valid(doc)


def test_missing_required_attribute(validator):
    doc = parse_xml("<job><name>x</name><cpus>4</cpus></job>")
    issues = validator.validate(doc)
    assert any("id" in issue.message for issue in issues)


def test_wrong_type(validator):
    doc = parse_xml('<job id="1"><name>x</name><cpus>four</cpus></job>')
    issues = validator.validate(doc)
    assert any("cpus" in issue.path for issue in issues)


def test_sequence_order_enforced(validator):
    doc = parse_xml('<job id="1"><cpus>4</cpus><name>x</name></job>')
    assert validator.validate(doc) != []


def test_max_occurs_enforced(validator):
    doc = parse_xml(
        '<job id="1"><name>x</name><cpus>1</cpus>'
        "<flag>a</flag><flag>b</flag><flag>c</flag></job>"
    )
    issues = validator.validate(doc)
    assert any("maxOccurs" in issue.message for issue in issues)


def test_missing_required_element(validator):
    doc = parse_xml('<job id="1"><name>x</name></job>')
    issues = validator.validate(doc)
    assert any("cpus" in issue.message for issue in issues)


def test_unexpected_element(validator):
    doc = parse_xml('<job id="1"><name>x</name><cpus>1</cpus><bogus/></job>')
    issues = validator.validate(doc)
    assert any("bogus" in issue.message for issue in issues)


def test_unknown_root(validator):
    assert validator.validate(parse_xml("<mystery/>")) != []


def test_undeclared_attribute_flagged(validator):
    doc = parse_xml('<job id="1" extra="x"><name>n</name><cpus>1</cpus></job>')
    issues = validator.validate(doc)
    assert any("extra" in issue.message for issue in issues)
