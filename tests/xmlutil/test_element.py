import pytest

from repro.xmlutil.element import XmlElement, XmlParseError, parse_xml
from repro.xmlutil.qname import QName


def test_builder_and_access():
    root = XmlElement("root", {"id": "1"})
    root.child("a", text="x")
    root.child("a", text="y")
    root.child("b").set("k", "v")
    assert root.get("id") == "1"
    assert [c.text for c in root.findall("a")] == ["x", "y"]
    assert root.findtext("b") == ""
    assert root.find("b").get("k") == "v"
    assert root.find("missing") is None


def test_namespaced_find():
    root = XmlElement(QName("urn:x", "root"))
    root.child(QName("urn:x", "item"), text="1")
    root.child(QName("urn:y", "item"), text="2")
    # bare name matches any namespace
    assert len(root.findall("item")) == 2
    # full QName matches exactly
    assert root.findtext(QName("urn:y", "item")) == "2"


def test_serialize_escapes_special_characters():
    el = XmlElement("t", {"a": 'x"<>&'}, text="<body> & more")
    text = el.serialize()
    assert "&lt;body&gt; &amp; more" in text
    assert "&quot;" in text
    assert parse_xml(text) == el


def test_parse_basic_document():
    doc = parse_xml(
        '<?xml version="1.0"?><!-- hi --><root a="1">text<child/>tail</root>'
    )
    assert doc.tag.local == "root"
    assert doc.get("a") == "1"
    assert doc.text == "texttail"
    assert len(doc.children) == 1


def test_parse_namespaces_and_default_ns():
    doc = parse_xml(
        '<r xmlns="urn:d" xmlns:p="urn:p" p:a="1"><p:c/><c/></r>'
    )
    assert doc.tag == QName("urn:d", "r")
    # default namespace does not apply to attributes
    assert doc.get(QName("urn:p", "a")) == "1"
    tags = [c.tag for c in doc.children]
    assert tags == [QName("urn:p", "c"), QName("urn:d", "c")]


def test_parse_cdata_and_entities():
    doc = parse_xml("<t><![CDATA[<raw> & stuff]]> &amp;&#65;&#x42;</t>")
    assert doc.text == "<raw> & stuff &AB"


def test_parse_doctype_skipped():
    doc = parse_xml('<!DOCTYPE html><root/>')
    assert doc.tag.local == "root"


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "<a>",
        "<a></b>",
        "<a attr></a>",
        "<a x=1/>",
        "<a/><b/>",
        "<a>&unknown;</a>",
        "no xml here",
        "<a ><b></a></b>",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(XmlParseError):
        parse_xml(bad)


def test_equality_ignores_whitespace_nodes():
    a = parse_xml("<r>\n  <c>x</c>\n</r>")
    b = parse_xml("<r><c>x</c></r>")
    assert a == b


def test_iter_depth_first():
    doc = parse_xml("<a><b><c/></b><d/></a>")
    assert [e.tag.local for e in doc.iter()] == ["a", "b", "c", "d"]


def test_indent_serialization_parses_back():
    root = XmlElement("a")
    root.child("b").child("c", text="x")
    text = root.serialize(indent=2, declaration=True)
    assert text.startswith("<?xml")
    assert parse_xml(text) == root
