from repro.xmlutil.element import XmlElement, parse_xml


def test_clone_is_deep_and_equal():
    original = parse_xml('<a x="1">text<b><c y="2">inner</c></b></a>')
    copy = original.clone()
    assert copy == original
    # mutating the clone leaves the original untouched
    copy.set("x", "changed")
    copy.find("b").find("c").set_text("rewritten")
    copy.append(XmlElement("new"))
    assert original.get("x") == "1"
    assert original.find("b").find("c").text == "inner"
    assert original.find("new") is None


def test_clone_preserves_mixed_content_order():
    original = parse_xml("<p>one<b>two</b>three</p>")
    assert original.clone().serialize() == original.serialize()
