import pytest

from repro.xmlutil.qname import QName


def test_clark_roundtrip():
    q = QName("urn:x", "local")
    assert QName.parse(q.clark()) == q


def test_bare_name():
    q = QName.parse("item")
    assert q.namespace == "" and q.local == "item"
    assert q.clark() == "item"


def test_empty_local_rejected():
    with pytest.raises(ValueError):
        QName("urn:x", "")


def test_malformed_clark_rejected():
    with pytest.raises(ValueError):
        QName.parse("{unclosed")


def test_hashable_and_distinct():
    a = QName("urn:x", "n")
    b = QName("urn:y", "n")
    assert a != b
    assert len({a, b, QName("urn:x", "n")}) == 2
