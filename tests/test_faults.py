"""Tests for the common portal error vocabulary."""

import pytest

from repro import faults


ALL_ERRORS = [
    faults.PortalError,
    faults.AuthenticationError,
    faults.AuthorizationError,
    faults.ResourceNotFoundError,
    faults.ResourceExhaustedError,
    faults.InvalidRequestError,
    faults.ServiceUnavailableError,
    faults.JobError,
    faults.DataTransferError,
    faults.ContextError,
    faults.SchemaError,
    faults.DiscoveryError,
    faults.BudgetViolationError,
    faults.DeadlineExceededError,
    faults.ServerBusyError,
    faults.ReplicationError,
    faults.QuorumLostError,
    faults.StaleReadError,
    faults.WorkflowError,
]

# every class the wire vocabulary can name, straight from the registry
REGISTERED = sorted(faults._CODE_REGISTRY.items())


def test_all_errors_covers_the_registry():
    assert set(faults._CODE_REGISTRY.values()) <= set(ALL_ERRORS)


@pytest.mark.parametrize("code,cls", REGISTERED)
def test_detail_roundtrip_preserves_type(code, cls):
    err = cls("something broke", {"key": "value", "n": "2"})
    assert err.code == code
    back = faults.PortalError.from_detail(err.to_detail())
    assert type(back) is cls
    assert back.message == "something broke"
    assert back.detail == {"key": "value", "n": "2"}


@pytest.mark.parametrize("code,cls", REGISTERED)
def test_retryability_survives_the_roundtrip(code, cls):
    back = faults.PortalError.from_detail(cls("x").to_detail())
    assert back.retryable == cls.retryable
    assert faults.retryable_codes()[code] == cls.retryable


def test_codes_unique():
    codes = [cls.code for cls in ALL_ERRORS]
    assert len(codes) == len(set(codes))
    assert all(code.startswith("Portal.") for code in codes if code != "Portal.Error")


def test_unknown_code_falls_back():
    err = faults.PortalError.from_detail(
        {"code": "Portal.FutureThing", "message": "m"}
    )
    assert type(err) is faults.PortalError
    # an unknown fault from a foreign provider is never blindly retried
    assert err.retryable is False


def test_detail_values_stringified():
    err = faults.JobError("x", {"count": 3})  # type: ignore[dict-item]
    assert err.to_detail()["detail.count"] == "3"


def test_error_report():
    err = faults.DataTransferError("link died", {"at": "4096"})
    report = faults.ErrorReport.from_error(err, service="srb-ws", operation="get")
    assert report.code == "Portal.DataTransfer"
    payload = report.to_dict()
    assert payload["service"] == "srb-ws"
    assert payload["detail"] == {"at": "4096"}


def test_errors_are_exceptions():
    with pytest.raises(faults.PortalError):
        raise faults.ContextError("nope")
