import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.queuing.timefmt import from_hms, to_hms, to_minutes


def test_to_hms_known_values():
    assert to_hms(0) == "00:00:00"
    assert to_hms(59) == "00:00:59"
    assert to_hms(3600) == "01:00:00"
    assert to_hms(3661) == "01:01:01"
    assert to_hms(360000) == "100:00:00"


def test_to_hms_rounds_up_fractions():
    assert to_hms(0.2) == "00:00:01"
    assert to_hms(59.5) == "00:01:00"


def test_from_hms_forms():
    assert from_hms("01:30:00") == 5400.0
    assert from_hms("05:30") == 330.0
    assert from_hms("90") == 90.0
    with pytest.raises(ValueError):
        from_hms("1:2:3:4")
    with pytest.raises(ValueError):
        from_hms("abc")


def test_to_minutes_rounds_up():
    assert to_minutes(60) == 1
    assert to_minutes(61) == 2
    assert to_minutes(0.1) == 1


@given(st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_hms_roundtrip_whole_seconds(seconds):
    assert from_hms(to_hms(seconds)) == float(seconds)
