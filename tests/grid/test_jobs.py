from repro.grid.jobs import JobRecord, JobSpec, JobState


def test_spec_validation():
    assert JobSpec(executable="x").validate() == []
    bad = JobSpec(executable="", cpus=0, wallclock_limit=-1, memory_mb=-5)
    problems = bad.validate()
    assert len(problems) == 4


def test_command_line():
    spec = JobSpec(executable="/bin/echo", arguments=["a", "b"])
    assert spec.command_line() == "/bin/echo a b"


def test_copy_is_deep_for_mutables():
    spec = JobSpec(executable="x", arguments=["1"], environment={"A": "1"})
    clone = spec.copy(name="other")
    clone.arguments.append("2")
    clone.environment["B"] = "2"
    assert spec.arguments == ["1"]
    assert spec.environment == {"A": "1"}
    assert clone.name == "other"


def test_state_finished_classification():
    assert JobState.DONE.finished
    assert JobState.FAILED.finished
    assert JobState.CANCELLED.finished
    assert not JobState.RUNNING.finished
    assert not JobState.QUEUED.finished


def test_record_wait_time_and_summary():
    record = JobRecord("1.h", JobSpec(executable="x"), submit_time=5.0)
    assert record.wait_time is None
    record.start_time = 12.0
    assert record.wait_time == 7.0
    summary = record.summary()
    assert summary["job_id"] == "1.h"
    assert summary["state"] == "queued"
