import pytest

from repro.faults import InvalidRequestError, JobError, ResourceNotFoundError
from repro.grid.jobs import JobSpec, JobState
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler, QueueDefinition
from repro.transport.clock import SimClock


def make_scheduler(cpus=4, backfill=False, queues=None):
    return BatchScheduler(
        "test.host",
        make_dialect("PBS"),
        clock=SimClock(),
        cpus=cpus,
        backfill=backfill,
        queues=queues,
    )


def test_submit_run_complete():
    scheduler = make_scheduler()
    job_id = scheduler.submit(JobSpec(executable="sleep", arguments=["10"]))
    assert scheduler.status(job_id) is JobState.RUNNING
    scheduler.clock.advance(11)
    record = scheduler.job(job_id)
    assert record.state is JobState.DONE
    assert record.start_time == 0.0
    assert record.end_time == 10.0


def test_queueing_when_cpus_busy():
    scheduler = make_scheduler(cpus=4)
    first = scheduler.submit(
        JobSpec(executable="sleep", arguments=["100"], cpus=4)
    )
    second = scheduler.submit(JobSpec(executable="sleep", arguments=["5"], cpus=1))
    assert scheduler.status(second) is JobState.QUEUED
    scheduler.clock.advance(101)
    assert scheduler.status(first) is JobState.DONE
    # second started when first freed the cpus
    record = scheduler.job(second)
    assert record.start_time == 100.0


def test_strict_fifo_head_of_line_blocks():
    scheduler = make_scheduler(cpus=4, backfill=False)
    scheduler.submit(JobSpec(executable="sleep", arguments=["50"], cpus=4))
    big = scheduler.submit(JobSpec(executable="sleep", arguments=["1"], cpus=4))
    small = scheduler.submit(JobSpec(executable="sleep", arguments=["1"], cpus=1))
    # strict FIFO: small must not start ahead of the blocked big job
    assert scheduler.status(big) is JobState.QUEUED
    assert scheduler.status(small) is JobState.QUEUED


def test_backfill_lets_small_jobs_through():
    scheduler = make_scheduler(cpus=4, backfill=True)
    scheduler.submit(JobSpec(executable="sleep", arguments=["50"], cpus=3))
    scheduler.submit(JobSpec(executable="sleep", arguments=["10"], cpus=4))
    small = scheduler.submit(JobSpec(executable="sleep", arguments=["1"], cpus=1))
    assert scheduler.status(small) is JobState.RUNNING


def test_priority_queue_scheduled_first():
    scheduler = make_scheduler(cpus=2)
    blocker = scheduler.submit(
        JobSpec(executable="sleep", arguments=["10"], cpus=2)
    )
    normal = scheduler.submit(JobSpec(executable="sleep", arguments=["1"], cpus=2))
    urgent = scheduler.submit(
        JobSpec(executable="sleep", arguments=["1"], cpus=2, queue="express",
                wallclock_limit=600)
    )
    scheduler.clock.advance(10.5)
    assert scheduler.status(urgent) is JobState.RUNNING
    assert scheduler.status(normal) is JobState.QUEUED


def test_run_until_complete_and_counts():
    scheduler = make_scheduler(cpus=2)
    for i in range(5):
        scheduler.submit(JobSpec(executable="sleep", arguments=["7"], cpus=1))
    end = scheduler.run_until_complete()
    assert end == pytest.approx(21.0)  # ceil(5/2) waves of 7s
    assert scheduler.completed_count == 5
    assert all(r.state is JobState.DONE for r in scheduler.jobs())


def test_wait_for_single_job():
    scheduler = make_scheduler(cpus=1)
    a = scheduler.submit(JobSpec(executable="sleep", arguments=["5"]))
    b = scheduler.submit(JobSpec(executable="sleep", arguments=["5"]))
    record = scheduler.wait_for(b)
    assert record.state is JobState.DONE
    assert scheduler.clock.now == pytest.approx(10.0)


def test_cancel_queued_and_running():
    scheduler = make_scheduler(cpus=1)
    running = scheduler.submit(JobSpec(executable="sleep", arguments=["100"]))
    queued = scheduler.submit(JobSpec(executable="sleep", arguments=["100"]))
    scheduler.cancel(queued)
    assert scheduler.status(queued) is JobState.CANCELLED
    scheduler.cancel(running)
    assert scheduler.status(running) is JobState.CANCELLED
    assert scheduler.free_cpus == 1


def test_failed_job_state_and_walltime_kill():
    scheduler = make_scheduler()
    failed = scheduler.submit(JobSpec(executable="fail", arguments=["2"]))
    killed = scheduler.submit(
        JobSpec(executable="sleep", arguments=["100"], wallclock_limit=10)
    )
    scheduler.run_until_complete()
    assert scheduler.status(failed) is JobState.FAILED
    record = scheduler.job(killed)
    assert record.state is JobState.FAILED
    assert record.exit_code == 137
    assert "walltime exceeded" in record.stderr


def test_submission_validation_errors():
    scheduler = make_scheduler(cpus=4)
    with pytest.raises(InvalidRequestError):
        scheduler.submit(JobSpec(executable=""))
    with pytest.raises(InvalidRequestError):
        scheduler.submit(JobSpec(executable="x", queue="ghost"))
    with pytest.raises(JobError):
        scheduler.submit(JobSpec(executable="x", cpus=100))
    with pytest.raises(JobError):
        scheduler.submit(
            JobSpec(executable="x", queue="express", wallclock_limit=10**6)
        )


def test_unstartable_job_detected():
    scheduler = make_scheduler(
        cpus=4,
        queues=[QueueDefinition("workq", max_cpus=4, default=True)],
    )
    scheduler.submit(JobSpec(executable="sleep", arguments=["1"], cpus=4))
    # by itself fine; but a job that fits the queue yet overlaps a stuck
    # pending state is exercised via wait_for on a never-started job
    unknown = "99.test.host"
    with pytest.raises(ResourceNotFoundError):
        scheduler.job(unknown)


def test_submit_script_uses_dialect():
    scheduler = make_scheduler()
    script = make_dialect("PBS").generate(
        JobSpec(name="scripted", executable="echo", arguments=["hi"],
                wallclock_limit=60)
    )
    job_id = scheduler.submit_script(script)
    scheduler.run_until_complete()
    record = scheduler.job(job_id)
    assert record.spec.name == "scripted"
    assert record.stdout == "hi\n"


def test_qstat_rows():
    scheduler = make_scheduler()
    scheduler.submit(JobSpec(executable="sleep", arguments=["1"]))
    rows = scheduler.qstat()
    assert len(rows) == 1
    assert rows[0]["state"] == "running"
