from repro.grid.apps import ApplicationRegistry, default_registry
from repro.grid.jobs import JobSpec


def test_known_apps_deterministic():
    registry = default_registry()
    spec = JobSpec(executable="gaussian", arguments=["100"])
    a = registry.execute(spec, "host1")
    b = registry.execute(spec, "host1")
    assert a.duration == b.duration
    assert a.stdout == b.stdout
    assert "Normal termination" in a.stdout


def test_gaussian_scales_with_basis():
    registry = default_registry()
    small = registry.execute(JobSpec(executable="g98", arguments=["50"]), "h")
    large = registry.execute(JobSpec(executable="g98", arguments=["500"]), "h")
    assert large.duration > small.duration


def test_mm5_scales_inversely_with_cpus():
    registry = default_registry()
    serial = registry.execute(
        JobSpec(executable="mm5", arguments=["24"], cpus=1), "h"
    )
    parallel = registry.execute(
        JobSpec(executable="mm5", arguments=["24"], cpus=8), "h"
    )
    assert parallel.duration < serial.duration


def test_unknown_executable_gets_generic_behaviour():
    registry = ApplicationRegistry(default_duration=10.0)
    result = registry.execute(JobSpec(executable="/opt/custom/thing"), "h")
    assert 0 < result.duration <= 15.0
    assert result.exit_code == 0
    assert "completed" in result.stdout


def test_duration_capped_at_wallclock():
    registry = default_registry()
    result = registry.execute(
        JobSpec(executable="g98", arguments=["100000"], wallclock_limit=5.0), "h"
    )
    assert result.duration <= 5.0


def test_fail_app_exit_code():
    registry = default_registry()
    result = registry.execute(JobSpec(executable="fail", arguments=["3"]), "h")
    assert result.exit_code == 3


def test_basename_lookup():
    registry = default_registry()
    assert registry.knows("/usr/local/bin/g98")
    result = registry.execute(
        JobSpec(executable="/usr/local/bin/hostname"), "myhost"
    )
    assert result.stdout == "myhost\n"
