import pytest
from hypothesis import given, strategies as st

from repro.faults import InvalidRequestError
from repro.grid.gram import parse_rsl, rsl_for
from repro.grid.jobs import JobSpec


def test_roundtrip_full_spec():
    spec = JobSpec(
        name="run1",
        executable="/apps/mm5",
        arguments=["24", "fine"],
        queue="workq",
        cpus=8,
        wallclock_limit=7200.0,
        directory="/scratch",
        account="TG-ATM",
        environment={"A": "1", "B": "2"},
    )
    parsed = parse_rsl(rsl_for(spec))
    assert parsed.name == spec.name
    assert parsed.executable == spec.executable
    assert parsed.arguments == spec.arguments
    assert parsed.queue == spec.queue
    assert parsed.cpus == spec.cpus
    assert parsed.wallclock_limit == spec.wallclock_limit
    assert parsed.directory == spec.directory
    assert parsed.account == spec.account
    assert parsed.environment == spec.environment


def test_minimal_rsl():
    spec = parse_rsl("&(executable=/bin/date)")
    assert spec.executable == "/bin/date"
    assert spec.cpus == 1


@pytest.mark.parametrize(
    "bad",
    [
        "(executable=/bin/x)",       # missing &
        "&(executable=/bin/x",       # unbalanced
        "&(noequals)",
        "&(mystery=1)(executable=/bin/x)",
        "&(arguments=a b)",          # no executable
    ],
)
def test_malformed_rsl_rejected(bad):
    with pytest.raises(InvalidRequestError):
        parse_rsl(bad)


def test_environment_clause_parsing():
    spec = parse_rsl("&(executable=x)(environment=(PATH /bin)(HOME /root))")
    assert spec.environment == {"PATH": "/bin", "HOME": "/root"}


def test_environment_clause_nested_parens_balance_at_clause_level():
    # the (environment=...) clause itself contains parens; the clause
    # splitter must track depth rather than cut at the first ')'
    spec = parse_rsl(
        "&(executable=x)(environment=(A 1)(B 2)(C 3))(queue=workq)"
    )
    assert spec.environment == {"A": "1", "B": "2", "C": "3"}
    assert spec.queue == "workq"


def test_whitespace_between_clauses_is_tolerated():
    spec = parse_rsl("&  (executable=/bin/x)   (count=4)\n(queue=q)")
    assert spec.executable == "/bin/x"
    assert spec.cpus == 4
    assert spec.queue == "q"


def test_unknown_attribute_names_the_offender():
    with pytest.raises(InvalidRequestError) as exc_info:
        parse_rsl("&(executable=/bin/x)(hostCount=2)")
    assert "hostCount" in exc_info.value.message


@pytest.mark.parametrize(
    "bad",
    [
        "&(executable=x)(environment=PATH /bin)",   # pairs must be parenthesised
        "&(executable=x)(environment=(PATH /bin)",  # unbalanced env clause
        "&(executable=x))(count=2)",                # stray closing paren
    ],
)
def test_malformed_environment_and_parens_rejected(bad):
    with pytest.raises(InvalidRequestError):
        parse_rsl(bad)


_TOKEN = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
             "0123456789_./-",
    min_size=1,
    max_size=12,
)


@given(
    executable=_TOKEN,
    arguments=st.lists(_TOKEN, max_size=4),
    name=_TOKEN,
    queue=_TOKEN | st.just(""),
    cpus=st.integers(min_value=1, max_value=4096),
    walltime=st.integers(min_value=1, max_value=10**6),
    directory=_TOKEN | st.just(""),
    account=_TOKEN | st.just(""),
    environment=st.dictionaries(_TOKEN, _TOKEN, max_size=4),
)
def test_rsl_roundtrip_property(executable, arguments, name, queue, cpus,
                                walltime, directory, account, environment):
    """parse_rsl(rsl_for(spec)) == spec for paren/whitespace-free tokens."""
    spec = JobSpec(
        name=name,
        executable=executable,
        arguments=arguments,
        queue=queue,
        cpus=cpus,
        wallclock_limit=float(walltime),
        directory=directory,
        account=account,
        environment=environment,
    )
    parsed = parse_rsl(rsl_for(spec))
    assert parsed.executable == spec.executable
    assert parsed.arguments == spec.arguments
    assert parsed.name == spec.name
    assert parsed.queue == spec.queue
    assert parsed.cpus == spec.cpus
    assert parsed.wallclock_limit == spec.wallclock_limit
    assert parsed.directory == spec.directory
    assert parsed.account == spec.account
    assert parsed.environment == spec.environment
