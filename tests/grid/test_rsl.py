import pytest

from repro.faults import InvalidRequestError
from repro.grid.gram import parse_rsl, rsl_for
from repro.grid.jobs import JobSpec


def test_roundtrip_full_spec():
    spec = JobSpec(
        name="run1",
        executable="/apps/mm5",
        arguments=["24", "fine"],
        queue="workq",
        cpus=8,
        wallclock_limit=7200.0,
        directory="/scratch",
        account="TG-ATM",
        environment={"A": "1", "B": "2"},
    )
    parsed = parse_rsl(rsl_for(spec))
    assert parsed.name == spec.name
    assert parsed.executable == spec.executable
    assert parsed.arguments == spec.arguments
    assert parsed.queue == spec.queue
    assert parsed.cpus == spec.cpus
    assert parsed.wallclock_limit == spec.wallclock_limit
    assert parsed.directory == spec.directory
    assert parsed.account == spec.account
    assert parsed.environment == spec.environment


def test_minimal_rsl():
    spec = parse_rsl("&(executable=/bin/date)")
    assert spec.executable == "/bin/date"
    assert spec.cpus == 1


@pytest.mark.parametrize(
    "bad",
    [
        "(executable=/bin/x)",       # missing &
        "&(executable=/bin/x",       # unbalanced
        "&(noequals)",
        "&(mystery=1)(executable=/bin/x)",
        "&(arguments=a b)",          # no executable
    ],
)
def test_malformed_rsl_rejected(bad):
    with pytest.raises(InvalidRequestError):
        parse_rsl(bad)


def test_environment_clause_parsing():
    spec = parse_rsl("&(executable=x)(environment=(PATH /bin)(HOME /root))")
    assert spec.environment == {"PATH": "/bin", "HOME": "/root"}
