import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing import DIALECTS, make_dialect

ALL = sorted(DIALECTS)


@pytest.mark.parametrize("name", ALL)
def test_generate_has_dialect_markers(name):
    dialect = make_dialect(name)
    script = dialect.generate(
        JobSpec(name="j", executable="/bin/app", queue="workq", cpus=2,
                wallclock_limit=3600)
    )
    marker = {"PBS": "#PBS", "LSF": "#BSUB", "NQS": "#QSUB", "GRD": "#$"}[name]
    assert script.startswith("#!/bin/sh\n")
    assert marker in script
    # no other dialect's marker leaks in
    for other, other_marker in (
        ("PBS", "#PBS"), ("LSF", "#BSUB"), ("NQS", "#QSUB"), ("GRD", "#$ ")
    ):
        if other != name:
            assert other_marker + " " not in script


@pytest.mark.parametrize("name", ALL)
def test_full_roundtrip(name):
    dialect = make_dialect(name)
    spec = JobSpec(
        name="chem-42",
        executable="/apps/g98",
        arguments=["300", "direct"],
        queue="express",
        cpus=16,
        wallclock_limit=5400.0,
        memory_mb=2048,
        stdout_path="/scratch/out.log",
        stderr_path="/scratch/err.log",
        directory="/scratch/run",
        account="TG-CHE",
        environment={"GAUSS_SCRDIR": "/scratch", "OMP_NUM_THREADS": "16"},
        priority=5,
    )
    parsed = dialect.parse(dialect.generate(spec))
    assert parsed.name == spec.name
    assert parsed.executable == spec.executable
    assert parsed.arguments == spec.arguments
    assert parsed.queue == spec.queue
    assert parsed.cpus == spec.cpus
    assert parsed.wallclock_limit == spec.wallclock_limit
    assert parsed.memory_mb == spec.memory_mb
    assert parsed.stdout_path == spec.stdout_path
    assert parsed.stderr_path == spec.stderr_path
    assert parsed.directory == spec.directory
    assert parsed.account == spec.account
    assert parsed.priority == spec.priority
    if name in ("PBS", "GRD"):  # dialects that carry environment settings
        assert parsed.environment == spec.environment


def test_unknown_dialect_rejected():
    with pytest.raises(ValueError):
        make_dialect("SLURM")


@pytest.mark.parametrize("name", ALL)
def test_parse_rejects_bad_directives(name):
    dialect = make_dialect(name)
    marker = {"PBS": "#PBS", "LSF": "#BSUB", "NQS": "#QSUB", "GRD": "#$"}[name]
    with pytest.raises(InvalidRequestError):
        dialect.parse(f"#!/bin/sh\n{marker} -ZZ bogus\n/bin/app\n")
    with pytest.raises(InvalidRequestError):
        dialect.parse("#!/bin/sh\n# only comments, no command\n")


def test_parse_ignores_plain_comments():
    dialect = make_dialect("PBS")
    spec = dialect.parse("#!/bin/sh\n# a comment\n#PBS -N x\necho hi\n")
    assert spec.name == "x"
    assert spec.executable == "echo"


names = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1,
                max_size=10)
paths = names.map(lambda s: "/tmp/" + s)


@st.composite
def specs(draw):
    return JobSpec(
        name=draw(names),
        executable=draw(paths),
        arguments=draw(st.lists(names, max_size=3)),
        queue=draw(names),
        cpus=draw(st.integers(1, 1024)),
        # whole minutes so the LSF -W (minutes) round trip is exact
        wallclock_limit=float(draw(st.integers(1, 10**4)) * 60),
        memory_mb=draw(st.integers(0, 10**5)),
        stdout_path=draw(paths),
        account=draw(names),
        priority=draw(st.integers(1, 100)),
    )


@given(spec=specs(), name=st.sampled_from(ALL))
@settings(max_examples=100, deadline=None)
def test_roundtrip_property(spec, name):
    dialect = make_dialect(name)
    parsed = dialect.parse(dialect.generate(spec))
    assert (parsed.name, parsed.executable, parsed.arguments) == (
        spec.name, spec.executable, spec.arguments
    )
    assert (parsed.queue, parsed.cpus, parsed.wallclock_limit) == (
        spec.queue, spec.cpus, spec.wallclock_limit
    )
    assert (parsed.memory_mb, parsed.stdout_path, parsed.account,
            parsed.priority) == (
        spec.memory_mb, spec.stdout_path, spec.account, spec.priority
    )
