import pytest

from repro.faults import (
    AuthenticationError,
    AuthorizationError,
    JobError,
    PortalError,
    ResourceNotFoundError,
    ServiceUnavailableError,
)
from repro.grid.gram import GramClient, rsl_for, serialize_chain, deserialize_chain
from repro.grid.jobs import JobSpec
from repro.grid.resources import build_testbed, deploy_resource


IDENTITY = "/O=G/CN=alice"


@pytest.fixture
def grid(network, ca):
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "alice")
    return testbed, GramClient(network, proxy, source="client"), cred


def test_submit_status_output(network, grid):
    testbed, client, _cred = grid
    rsl = rsl_for(JobSpec(name="t", executable="echo", arguments=["grid hi"],
                          wallclock_limit=60))
    job_id = client.submit("modi4.iu.edu", rsl)
    # the wire round trip itself advances virtual time, so a short job may
    # already have completed by the time status is queried
    assert client.status("modi4.iu.edu", job_id)["state"] in ("running", "done")
    testbed["modi4.iu.edu"].scheduler.run_until_complete()
    output = client.output("modi4.iu.edu", job_id)
    assert output["stdout"] == "grid hi\n"


def test_output_before_completion_is_error(network, grid):
    testbed, client, _cred = grid
    rsl = rsl_for(JobSpec(executable="sleep", arguments=["100"],
                          wallclock_limit=600))
    job_id = client.submit("blue.sdsc.edu", rsl)
    with pytest.raises(JobError):
        client.output("blue.sdsc.edu", job_id)


def test_cancel(network, grid):
    testbed, client, _cred = grid
    rsl = rsl_for(JobSpec(executable="sleep", arguments=["100"],
                          wallclock_limit=600))
    job_id = client.submit("t3e.sdsc.edu", rsl)
    assert client.cancel("t3e.sdsc.edu", job_id)
    assert client.status("t3e.sdsc.edu", job_id)["state"] == "cancelled"


def test_unauthorized_identity_rejected(network, ca, grid):
    _testbed, _client, _cred = grid
    outsider = ca.issue_credential("/O=G/CN=mallory", lifetime=10**4, now=0.0)
    bad = GramClient(network, outsider.sign_proxy(lifetime=100, now=0.0))
    rsl = rsl_for(JobSpec(executable="echo", wallclock_limit=60))
    with pytest.raises(AuthorizationError):
        bad.submit("modi4.iu.edu", rsl)


def test_expired_proxy_rejected(network, ca, grid):
    testbed, _client, cred = grid
    short = cred.sign_proxy(lifetime=1.0, now=0.0)
    client = GramClient(network, short)
    network.clock.advance(100.0)
    with pytest.raises(AuthenticationError):
        client.submit("modi4.iu.edu", rsl_for(JobSpec(executable="echo",
                                                      wallclock_limit=60)))


def test_unknown_job_is_not_found(network, grid):
    _testbed, client, _cred = grid
    with pytest.raises(PortalError) as exc_info:
        client.status("modi4.iu.edu", "999.modi4.iu.edu")
    assert exc_info.value.code == "Portal.ResourceNotFound"


def test_chain_serialization_roundtrip(ca):
    cred = ca.issue_credential("/O=G/CN=x", lifetime=100.0, now=0.0)
    proxy = cred.sign_proxy(lifetime=50.0, now=0.0)
    rebuilt = deserialize_chain(serialize_chain(proxy))
    assert rebuilt.subject == proxy.subject
    assert ca.verify_chain(rebuilt, now=1.0) == "/O=G/CN=x"


def test_testbed_has_all_four_queuing_systems(network, ca):
    testbed = build_testbed(network, ca)
    systems = {r.queuing_system for r in testbed.values()}
    assert systems == {"PBS", "LSF", "NQS", "GRD"}


def test_local_user_mapped_into_environment(network, grid):
    testbed, client, _cred = grid
    rsl = rsl_for(JobSpec(executable="echo", arguments=["x"], wallclock_limit=60))
    job_id = client.submit("octopus.iu.edu", rsl)
    record = testbed["octopus.iu.edu"].scheduler.job(job_id)
    assert record.spec.environment["LOGNAME"] == "alice"


def test_non_json_error_body_is_a_retryable_fault(network, grid):
    """A bare HTML 502 from a proxy boundary must not decode-crash."""
    from repro.transport.http import HttpResponse

    _testbed, client, _cred = grid
    network.register(
        "lb.example.org",
        lambda request: HttpResponse(502, body="<html>Bad Gateway</html>"),
    )
    rsl = rsl_for(JobSpec(executable="echo", wallclock_limit=60))
    with pytest.raises(ServiceUnavailableError) as exc_info:
        client.submit("lb.example.org", rsl)
    assert exc_info.value.retryable
    assert "non-JSON" in exc_info.value.message
    assert "502" in exc_info.value.message


def test_malformed_success_body_is_a_retryable_fault(network, grid):
    from repro.transport.http import HttpResponse

    _testbed, client, _cred = grid
    network.register(
        "flaky.example.org", lambda request: HttpResponse(200, body="OK")
    )
    with pytest.raises(ServiceUnavailableError) as exc_info:
        client.status("flaky.example.org", "1.flaky.example.org")
    assert exc_info.value.retryable
    assert "malformed success body" in exc_info.value.message
