"""Seeded chaos runs are deterministic and mostly absorbed by the
resilience layer.  The acceptance criterion: two runs with the same seed
produce *identical* ErrorReport streams."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import CircuitBreakerPolicy
from repro.resilience.chaos import (
    PARTITION,
    PARTITION_HEAL,
    ChaosConfig,
    ChaosHarness,
    ChaosMonkey,
)
from repro.resilience.events import ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.resilience.policy import RetryPolicy
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    SdscBatchScriptGenerator,
    deploy_batch_script_generator,
)
from repro.transport.network import VirtualNetwork

HOSTS = ["bsg.iu.edu", "bsg.sdsc.edu"]


def run_chaos(seed: int, iterations: int, config: ChaosConfig | None = None):
    """One complete, self-contained chaos run (fresh network every time)."""
    network = VirtualNetwork(seed=seed)
    endpoints = [
        deploy_batch_script_generator(network, IuBatchScriptGenerator(),
                                      HOSTS[0])[0],
        deploy_batch_script_generator(network, SdscBatchScriptGenerator(),
                                      HOSTS[1])[0],
    ]
    log = ResilienceLog()
    client = FailoverClient(
        network, endpoints, BSG_NAMESPACE,
        sticky=False, rounds=3,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.1),
        # the threshold sits above the largest fault burst (3), so the
        # breaker only trips on real outages, and the short cooldown lets
        # probes rediscover repaired hosts quickly
        breaker_policy=CircuitBreakerPolicy(failure_threshold=5, cooldown=2.0),
        resilience_log=log,
        retry_seed=seed,
    )
    monkey = ChaosMonkey(network, HOSTS, seed=seed, config=config, log=log)

    def workload(index: int) -> None:
        if index % 3 == 0:
            client.call("listSchedulers")
        elif index % 3 == 1:
            client.call("supportsScheduler", "LSF")
        else:
            client.call("supportsScheduler", "PBS")

    return ChaosHarness(network, monkey).run(workload, iterations)


def test_fixed_seed_is_deterministic():
    first = run_chaos(seed=42, iterations=60)
    second = run_chaos(seed=42, iterations=60)
    # the full event streams — chaos schedule, retries, breaker
    # transitions, failovers, client errors — are identical
    assert first.events == second.events
    assert first.successes == second.successes
    assert first.client_errors == second.client_errors
    assert first.faults_injected == second.faults_injected
    assert first.faults_injected > 0  # the schedule actually did something


def test_different_seeds_diverge():
    assert run_chaos(seed=1, iterations=60).events != run_chaos(
        seed=2, iterations=60
    ).events


def test_resilience_absorbs_single_provider_outages():
    # short, mostly non-overlapping outages: everything a failover pair
    # *can* absorb, it must absorb
    config = ChaosConfig(
        p_take_down=0.02, down_duration=(1.0, 3.0),
        p_fault_burst=0.06, burst_size=(1, 2),
        p_flap=0.0,
    )
    report = run_chaos(seed=7, iterations=80, config=config)
    assert report.faults_injected > 0
    # failover + retries absorb single-provider outages; only overlapping
    # outages of both providers can surface to the client
    assert report.success_rate >= 0.9


@pytest.mark.tier2_chaos
def test_long_chaos_run_is_deterministic_and_survivable():
    config = ChaosConfig(p_take_down=0.06, down_duration=(1.0, 4.0),
                         p_fault_burst=0.12, p_latency_spike=0.08,
                         p_flap=0.02, flap_phases=(2.0, 1.0))

    def long_run(seed: int):
        network = VirtualNetwork(seed=seed)
        endpoints = [
            deploy_batch_script_generator(network, IuBatchScriptGenerator(),
                                          HOSTS[0])[0],
            deploy_batch_script_generator(network, SdscBatchScriptGenerator(),
                                          HOSTS[1])[0],
        ]
        log = ResilienceLog()
        client = FailoverClient(
            network, endpoints, BSG_NAMESPACE,
            sticky=False, rounds=3,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=5,
                                                cooldown=2.0),
            resilience_log=log, retry_seed=seed,
        )
        monkey = ChaosMonkey(network, HOSTS, seed=seed, config=config, log=log)
        return ChaosHarness(network, monkey).run(
            lambda i: client.call("listSchedulers"), 500
        )

    first = long_run(1234)
    second = long_run(1234)
    assert first.events == second.events
    # this schedule includes overlapping outages of both providers — those
    # requests are legitimately lost; the layer still serves the majority
    assert first.success_rate >= 0.5
    assert len(first.events) > 50


def test_legacy_schedules_replay_unchanged_without_regions():
    """Partitions default off: pre-region seeded schedules stay byte-identical."""
    config = ChaosConfig(p_take_down=0.1, p_fault_burst=0.1,
                         p_latency_spike=0.1, p_flap=0.05)
    first = run_chaos(seed=77, iterations=120, config=config)
    second = run_chaos(seed=77, iterations=120, config=config)
    assert first.events == second.events
    assert PARTITION not in [e["code"] for e in first.events]


def test_region_partitions_are_drawn_and_healed():
    network = VirtualNetwork(seed=5)
    log = ResilienceLog()
    for host in ("a.iu", "b.sdsc"):
        network.register(host, lambda r: None)
    monkey = ChaosMonkey(
        network, ["a.iu", "b.sdsc"], seed=5, log=log,
        config=ChaosConfig(p_take_down=0.0, p_fault_burst=0.0,
                           p_latency_spike=0.0, p_flap=0.0,
                           p_partition=0.5, partition_duration=(1.0, 2.0)),
        regions={"iu": ("a.iu",), "sdsc": ("b.sdsc",)},
    )
    for _ in range(30):
        monkey.step()
        network.clock.advance(1.0)
    monkey.heal_all()
    codes = [e.code for e in log.events]
    assert monkey.partitions_injected >= 1
    assert codes.count(PARTITION) == monkey.partitions_injected
    assert codes.count(PARTITION_HEAL) == codes.count(PARTITION)
    assert not network.active_partitions()


def test_heal_all_clears_partitions_and_armed_charges():
    network = VirtualNetwork(seed=9)
    network.register("a.iu", lambda r: None)
    network.register("b.sdsc", lambda r: None)
    monkey = ChaosMonkey(
        network, ["a.iu", "b.sdsc"], seed=9,
        config=ChaosConfig(p_partition=1.0),
        regions={"iu": ("a.iu",), "sdsc": ("b.sdsc",)},
    )
    monkey.step()
    assert network.active_partitions()
    network.fail_next("a.iu", times=2)
    monkey.heal_all()
    assert not network.active_partitions()
    assert network.pending_failures("a.iu") == 0


def test_restart_rebuilders_run_after_repair():
    network = VirtualNetwork(seed=2)
    network.register("svc.iu", lambda r: None)
    rebuilt = []
    monkey = ChaosMonkey(
        network, ["svc.iu"], seed=2,
        config=ChaosConfig(p_take_down=1.0, down_duration=(1.0, 1.0),
                           p_fault_burst=0.0, p_latency_spike=0.0, p_flap=0.0),
        rebuilders={"svc.iu": lambda: rebuilt.append("svc.iu")},
    )
    monkey.step()
    assert not network.is_up("svc.iu")
    network.clock.advance(1.5)
    monkey.step()  # repairs + rebuilds, then (p=1.0) cuts it down again
    assert rebuilt == ["svc.iu"]
    assert monkey.restarts_performed == 1
    monkey.heal_all()
    assert network.is_up("svc.iu")
    assert rebuilt == ["svc.iu", "svc.iu"]
