"""Deadline-budget propagation and enforcement across SOAP hops.

A nested hop's absolute deadline must never land *after* its enclosing
call's: budget can be spent crossing the wire, never manufactured.  The
client side propagates (inherit when no explicit timeout, clamp when the
explicit timeout would exceed the enclosing budget); the server side
enforces, classifying a violation as the terminal ``Portal.BudgetViolation``.
"""

import pytest

from repro.faults import BudgetViolationError, retryable_codes
from repro.resilience.policy import (
    Deadline,
    check_hop_budget,
    current_inbound_deadline,
    pop_inbound_deadline,
    push_inbound_deadline,
    set_hop_listener,
)
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

NS = "urn:test:budget"


@pytest.fixture(autouse=True)
def _clean_ambient_state():
    yield
    set_hop_listener(None)
    while current_inbound_deadline() is not None:
        pop_inbound_deadline()


def _deploy(network, host, name, fn, method):
    server = HttpServer(host, network)
    service = SoapService(name, NS)
    service.expose(fn, method)
    return service.mount(server, "/svc")


# -- the primitive ----------------------------------------------------------


def test_no_enclosing_budget_means_no_check(network):
    check_hop_budget(
        Deadline.after(network.clock, 100.0), clock=network.clock
    )  # must not raise


def test_inbound_later_than_enclosing_is_a_violation(network):
    push_inbound_deadline(Deadline.after(network.clock, 10.0))
    try:
        with pytest.raises(BudgetViolationError) as err:
            check_hop_budget(
                Deadline.after(network.clock, 20.0),
                clock=network.clock,
                service="inner",
                method="work",
            )
        assert err.value.code == "Portal.BudgetViolation"
    finally:
        pop_inbound_deadline()


def test_equal_deadline_is_allowed(network):
    """An inherited budget arrives unchanged; wire time already guarantees
    the *remaining* budget strictly decreased."""
    deadline = Deadline.after(network.clock, 10.0)
    push_inbound_deadline(deadline)
    try:
        check_hop_budget(deadline, clock=network.clock)  # must not raise
    finally:
        pop_inbound_deadline()


def test_budget_violation_is_terminal():
    assert BudgetViolationError.retryable is False
    assert retryable_codes()["Portal.BudgetViolation"] is False


# -- end to end over SOAP ----------------------------------------------------


def test_nested_call_inherits_and_never_violates(network):
    """outer(30s) -> inner with no explicit timeout: the inner hop carries
    the inherited (smaller, wire-time-decayed) budget and is accepted."""
    seen = []
    set_hop_listener(seen.append)

    inner_url = _deploy(network, "inner.host", "Inner", lambda: "pong", "ping")

    def relay():
        return SoapClient(network, inner_url, NS, source="outer.host").call(
            "ping"
        )

    outer_url = _deploy(network, "outer.host", "Outer", relay, "relay")
    client = SoapClient(network, outer_url, NS, source="ui")
    assert client.call("relay", timeout=30.0) == "pong"

    hops = [h for h in seen if h["enclosing_at"] is not None]
    assert hops, "the nested hop must report an enclosing budget"
    for hop in hops:
        assert hop["inbound_at"] <= hop["enclosing_at"] + 1e-9


def test_explicit_oversized_timeout_is_clamped(network):
    """outer(5s) -> inner(timeout=500s): the client clamps the nested
    deadline to the enclosing budget instead of manufacturing more."""
    seen = []
    set_hop_listener(seen.append)

    inner_url = _deploy(network, "inner.host", "Inner", lambda: "pong", "ping")

    def relay():
        return SoapClient(network, inner_url, NS, source="outer.host").call(
            "ping", timeout=500.0
        )

    outer_url = _deploy(network, "outer.host", "Outer", relay, "relay")
    SoapClient(network, outer_url, NS, source="ui").call("relay", timeout=5.0)

    nested = [h for h in seen if h["service"] == "Inner"]
    assert nested
    enclosing = [h for h in seen if h["service"] == "Outer"][0]
    for hop in nested:
        assert hop["inbound_at"] <= enclosing["inbound_at"] + 1e-9


def test_forged_budget_is_refused_with_a_classified_fault(network):
    """A nested request whose deadline header claims *more* budget than the
    enclosing call (stale cache, forged header, clock bug) is refused at
    dispatch with the terminal classified fault."""
    inner_url = _deploy(network, "inner.host", "Inner", lambda: "pong", "ping")

    def relay():
        forger = SoapClient(network, inner_url, NS, source="outer.host")
        forged = Deadline.after(network.clock, 10_000.0)
        forger.add_header_provider(lambda m, p: [forged.to_header()])
        return forger.call("ping")

    outer_url = _deploy(network, "outer.host", "Outer", relay, "relay")
    client = SoapClient(network, outer_url, NS, source="ui")
    with pytest.raises(BudgetViolationError) as err:
        client.call("relay", timeout=5.0)
    assert err.value.retryable is False
    assert "Inner" in str(err.value.detail)
