"""Discovery-driven failover across the IU/SDSC batch-script pair.

Covers the issue's acceptance criterion: with one provider taken down
mid-benchmark, the client completes every request on the survivor with
zero visible errors, and the breaker caps dead-host traffic at the probe
rate (asserted via ``WireStats.per_host_requests``).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.resilience.breaker import CircuitBreakerPolicy
from repro.resilience.events import ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.resilience.policy import RetryPolicy
from repro.services.batchscript import BSG_NAMESPACE
from repro.services.context import (
    CONTEXT_NAMESPACE,
    deploy_replicated_context_manager,
)
from repro.transport.server import HttpServer

from .conftest import IU_HOST, SDSC_HOST


def make_client(network, endpoints, **kwargs):
    kwargs.setdefault("retry_policy", RetryPolicy(max_attempts=2, base_delay=0.05,
                                                  jitter=0.0))
    kwargs.setdefault(
        "breaker_policy",
        CircuitBreakerPolicy(failure_threshold=3, cooldown=300.0),
    )
    return FailoverClient(network, endpoints, BSG_NAMESPACE, **kwargs)


# -- the acceptance benchmark -------------------------------------------------


def test_provider_death_mid_benchmark_is_invisible(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    log = ResilienceLog()
    client = make_client(network, endpoints, sticky=False, resilience_log=log)

    # warm-up: both providers serve interface-level calls
    for _ in range(10):
        assert client.call("supportsScheduler", "LSF") in (True, False)
    assert network.stats.per_host_requests[IU_HOST] > 0
    assert network.stats.per_host_requests[SDSC_HOST] > 0

    # IU dies mid-benchmark
    network.take_down(IU_HOST)
    at_death = network.stats.snapshot()

    completed = 0
    for index in range(40):
        if index % 2:
            schedulers = client.call("listSchedulers")
            assert schedulers == ["LSF", "NQS"]  # the survivor's answer
        else:
            assert client.call("supportsScheduler", "NQS") is True
        completed += 1
    assert completed == 40  # zero client-visible errors

    since_death = network.stats.delta(at_death)
    policy = client.http.breaker_policy
    # the breaker trips after `failure_threshold` wire attempts; with a
    # 300 s cooldown no half-open probe fits in this run, so the dead host
    # sees at most threshold + probes attempts
    assert since_death.per_host_requests.get(IU_HOST, 0) <= (
        policy.failure_threshold + policy.half_open_probes
    )
    # every request was served by the survivor
    assert since_death.per_host_requests[SDSC_HOST] >= 40
    assert client.breaker_state(endpoints[0]) == "open"
    assert any(e.code == "Resilience.Breaker" for e in log.events)
    assert any(e.code == "Resilience.Failover" for e in log.events)


def test_sticky_client_stops_sending_to_dead_provider(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    client = make_client(network, endpoints, sticky=True)

    assert client.call("listSchedulers") == ["PBS", "GRD"]  # IU preferred
    network.take_down(IU_HOST)
    assert client.call("listSchedulers") == ["LSF", "NQS"]
    assert client.failovers_performed == 1

    at_failover = network.stats.snapshot()
    for _ in range(20):
        assert client.call("supportsScheduler", "LSF") is True
    # preference moved to the survivor: the dead host sees no traffic at all
    assert network.stats.delta(at_failover).per_host_requests.get(IU_HOST, 0) == 0


def test_recovers_after_provider_comes_back(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    client = make_client(
        network, endpoints, sticky=False,
        breaker_policy=CircuitBreakerPolicy(failure_threshold=1, cooldown=5.0),
    )
    network.take_down(IU_HOST)
    for _ in range(4):
        client.call("listSchedulers")
    assert client.breaker_state(endpoints[0]) == "open"

    network.bring_up(IU_HOST)
    network.clock.advance(5.0)
    results = {tuple(client.call("listSchedulers")) for _ in range(8)}
    # IU is serving again (round robin reaches both)
    assert ("PBS", "GRD") in results and ("LSF", "NQS") in results
    assert client.breaker_state(endpoints[0]) == "closed"


def test_terminal_errors_do_not_rotate(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    client = make_client(network, endpoints)
    before = network.stats.snapshot()
    with pytest.raises(faults.InvalidRequestError):
        client.call("generateScript", "NoSuchScheduler", {})
    delta = network.stats.delta(before)
    # the refusal is provider-independent: exactly one provider was asked
    assert delta.per_host_requests.get(SDSC_HOST, 0) == 0
    assert client.failovers_performed == 0


def test_all_providers_down_gives_service_unavailable(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    log = ResilienceLog()
    client = make_client(network, endpoints, resilience_log=log, rounds=2)
    network.take_down(IU_HOST)
    network.take_down(SDSC_HOST)
    with pytest.raises(faults.ServiceUnavailableError):
        client.call("listSchedulers")
    assert log.by_code("Resilience.GiveUp")


def test_deadline_bounds_whole_failover(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    client = make_client(
        network, endpoints, rounds=5,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=2.0, jitter=0.0),
    )
    network.take_down(IU_HOST)
    network.take_down(SDSC_HOST)
    t0 = network.clock.now
    with pytest.raises(
        (faults.DeadlineExceededError, faults.ServiceUnavailableError)
    ):
        client.call("listSchedulers", timeout=3.0)
    # gave up within the budget instead of grinding through 5 rounds
    assert network.clock.now - t0 <= 3.5


# -- provider resolution ------------------------------------------------------


def test_from_uddi_resolves_both_providers(bsg_pair):
    network, endpoints, uddi_url, _ = bsg_pair
    client = FailoverClient.from_uddi(
        network, uddi_url, "gce:BatchScriptGenerator", BSG_NAMESPACE
    )
    assert sorted(client.endpoints) == sorted(endpoints)
    assert client.call("supportsScheduler", "PBS") is True


def test_from_uddi_unknown_interface_raises(bsg_pair):
    network, _, uddi_url, _ = bsg_pair
    with pytest.raises(faults.DiscoveryError):
        FailoverClient.from_uddi(network, uddi_url, "gce:NoSuchThing",
                                 BSG_NAMESPACE)


def test_from_wsil_resolves_via_published_wsdl(bsg_pair):
    network, endpoints, _, _ = bsg_pair
    from repro.discovery.wsil import InspectionDocument, publish_inspection

    document = InspectionDocument()
    document.add_service("IU BSG", endpoints[0] + ".wsdl")
    document.add_service("SDSC BSG", endpoints[1] + ".wsdl")
    document.add_service("broken", "http://gone.example.org/x.wsdl")
    wsil_url = publish_inspection(HttpServer("wsil.gce.org", network), document)

    client = FailoverClient.from_wsil(network, wsil_url, BSG_NAMESPACE)
    assert sorted(client.endpoints) == sorted(endpoints)
    assert client.call("listSchedulers")


def test_from_discovery_resolves_by_metadata(bsg_pair):
    network, endpoints, _, discovery_url = bsg_pair
    client = FailoverClient.from_discovery(
        network, discovery_url, {"interface": BSG_NAMESPACE}, BSG_NAMESPACE
    )
    assert sorted(client.endpoints) == sorted(endpoints)
    # the registry also answers the paper's capability query
    lsf = FailoverClient.from_discovery(
        network, discovery_url, {"queuing-system": "LSF"}, BSG_NAMESPACE
    )
    assert lsf.endpoints == [endpoints[1]]


def test_needs_at_least_one_endpoint(bsg_pair):
    network, _, _, _ = bsg_pair
    with pytest.raises(faults.DiscoveryError):
        FailoverClient(network, [], BSG_NAMESPACE)


# -- stateful failover over replicated context managers -----------------------


def test_replicated_context_survives_replica_death(bsg_pair):
    network, _, _, _ = bsg_pair
    store, replicas = deploy_replicated_context_manager(network)
    client = FailoverClient(
        network, replicas, CONTEXT_NAMESPACE,
        breaker_policy=CircuitBreakerPolicy(failure_threshold=2, cooldown=60.0),
    )
    client.call("createUserContext", "gannon")
    client.call("createProblemContext", "gannon", "black-hole")
    network.take_down("context1.iu.edu")
    # state created through the dead replica is visible via the survivor
    assert client.call("hasProblemContext", "gannon", "black-hole") is True
    client.call("createSessionContext", "gannon", "black-hole", "run-1")
    assert client.call("listSessionContexts", "gannon", "black-hole") == ["run-1"]
    assert store.exists("gannon/black-hole/run-1")
