"""Retry policy, deadline propagation, and error classification."""

from __future__ import annotations

import random

import pytest

from repro import faults
from repro.resilience.breaker import BreakerOpenError
from repro.resilience.events import ResilienceLog
from repro.resilience.policy import (
    NO_RETRY,
    Deadline,
    RetryPolicy,
    is_retryable,
)
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.clock import SimClock
from repro.transport.network import LinkSpec, TransportError, VirtualNetwork
from repro.transport.server import HttpServer

NS = "urn:test:resilience"


def deploy_echo(network: VirtualNetwork, host: str = "svc.test") -> str:
    service = SoapService("Echo", NS)
    service.expose(lambda value: value, "echo")

    def flaky(value):
        raise faults.ServiceUnavailableError("backend busy")

    service.expose(flaky, "flaky")
    return service.mount(HttpServer(host, network), "/echo")


# -- RetryPolicy -----------------------------------------------------------


def test_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=2.0,
                         max_delay=5.0, jitter=0.0)
    assert [policy.backoff(n) for n in range(4)] == [1.0, 2.0, 4.0, 5.0]


def test_backoff_jitter_is_deterministic():
    policy = RetryPolicy(jitter=0.5)
    a = [policy.backoff(n, random.Random(7)) for n in range(5)]
    b = [policy.backoff(n, random.Random(7)) for n in range(5)]
    assert a == b
    assert a != [policy.backoff(n, random.Random(8)) for n in range(5)]


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    assert NO_RETRY.max_attempts == 1


# -- classification ---------------------------------------------------------


@pytest.mark.parametrize("code,cls", sorted(faults._CODE_REGISTRY.items()))
def test_classification_matches_registry(code, cls):
    err = cls("x")
    assert is_retryable(err) == cls.retryable


def test_transport_errors_always_retryable():
    assert is_retryable(TransportError("down"))
    assert is_retryable(BreakerOpenError("host", 1.0))
    assert not is_retryable(RuntimeError("bug"))


def test_expected_terminal_and_retryable_codes():
    assert faults.ServiceUnavailableError.retryable
    assert faults.ResourceExhaustedError.retryable
    assert faults.DataTransferError.retryable
    assert not faults.InvalidRequestError.retryable
    assert not faults.AuthenticationError.retryable
    assert not faults.DeadlineExceededError.retryable
    table = faults.retryable_codes()
    assert table["Portal.ServiceUnavailable"] is True
    assert table["Portal.InvalidRequest"] is False


# -- Deadline ----------------------------------------------------------------


def test_deadline_header_roundtrip():
    clock = SimClock(10.0)
    deadline = Deadline.after(clock, 2.5)
    assert deadline.at == 12.5
    parsed = Deadline.from_headers([deadline.to_header()])
    assert parsed == deadline
    assert not deadline.expired(clock)
    clock.advance(3.0)
    assert deadline.expired(clock)
    assert deadline.remaining(clock) < 0


def test_malformed_deadline_header_ignored():
    from repro.xmlutil.element import XmlElement
    from repro.resilience.policy import DEADLINE_HEADER

    assert Deadline.from_headers([XmlElement(DEADLINE_HEADER, text="soon")]) is None
    assert Deadline.from_headers([]) is None


# -- SoapClient retry loop ---------------------------------------------------


def test_client_retries_transport_failures():
    network = VirtualNetwork()
    endpoint = deploy_echo(network)
    log = ResilienceLog()
    client = SoapClient(
        network, endpoint, NS,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0),
        resilience_log=log,
    )
    network.fail_next("svc.test", times=2)
    t0 = network.clock.now
    assert client.call("echo", "hi") == "hi"
    assert client.retries_performed == 2
    # both backoffs advanced the virtual clock (0.5 + 1.0 plus wire time)
    assert network.clock.now - t0 >= 1.5
    assert [e.code for e in log.events] == ["Resilience.Retry"] * 2


def test_client_does_not_retry_terminal_faults():
    network = VirtualNetwork()
    endpoint = deploy_echo(network)
    client = SoapClient(
        network, endpoint, NS, retry_policy=RetryPolicy(max_attempts=5)
    )
    with pytest.raises(faults.InvalidRequestError):
        client.call("nosuchmethod")
    assert client.retries_performed == 0


def test_client_retries_retryable_portal_faults_then_gives_up():
    network = VirtualNetwork()
    endpoint = deploy_echo(network)
    log = ResilienceLog()
    client = SoapClient(
        network, endpoint, NS,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        resilience_log=log,
    )
    with pytest.raises(faults.ServiceUnavailableError):
        client.call("flaky", "x")
    assert client.retries_performed == 2
    assert [e.code for e in log.events][-1] == "Resilience.GiveUp"


def test_client_without_policy_behaves_like_seed():
    network = VirtualNetwork()
    endpoint = deploy_echo(network)
    client = SoapClient(network, endpoint, NS)
    network.fail_next("svc.test")
    with pytest.raises(TransportError):
        client.call("echo", "x")
    assert client.call("echo", "x") == "x"


def test_deadline_bounds_retries():
    network = VirtualNetwork()
    endpoint = deploy_echo(network)
    client = SoapClient(
        network, endpoint, NS,
        retry_policy=RetryPolicy(max_attempts=10, base_delay=2.0, jitter=0.0),
    )
    network.fail_next("svc.test", times=10)
    with pytest.raises(faults.DeadlineExceededError):
        client.call("echo", "x", timeout=3.0)
    # far fewer than 10 attempts fit in a 3 s budget with 2 s backoff
    assert client.retries_performed <= 2


def test_server_sheds_expired_deadline():
    network = VirtualNetwork()
    service = SoapService("Echo", NS)
    service.expose(lambda value: value, "echo")
    server = HttpServer("slow.test", network)
    endpoint = service.mount(server, "/echo")
    # one-way latency alone exceeds the caller's budget: the deadline is
    # already spent when the request arrives, so the server sheds it
    network.set_link("client", "slow.test", LinkSpec(latency=5.0))
    client = SoapClient(network, endpoint, NS)
    with pytest.raises(faults.DeadlineExceededError):
        client.call("echo", "x", timeout=1.0)
    assert service.requests_shed == 1
    assert service.calls_served == 0
