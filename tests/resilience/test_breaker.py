"""The circuit breaker state machine and its HttpClient integration."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpenError,
    CircuitBreaker,
    CircuitBreakerPolicy,
)
from repro.transport.client import HttpClient
from repro.transport.clock import SimClock
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import TransportError, VirtualNetwork


def test_opens_after_threshold():
    clock = SimClock()
    breaker = CircuitBreaker("h", clock, CircuitBreakerPolicy(failure_threshold=3))
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert not breaker.allow()


def test_success_resets_failure_count():
    clock = SimClock()
    breaker = CircuitBreaker("h", clock, CircuitBreakerPolicy(failure_threshold=2))
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_half_open_after_cooldown_then_close_on_success():
    clock = SimClock()
    policy = CircuitBreakerPolicy(failure_threshold=1, cooldown=10.0)
    breaker = CircuitBreaker("h", clock, policy)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(9.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.allow()  # the probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # only one probe admitted
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_half_open_reopens_on_failed_probe():
    clock = SimClock()
    breaker = CircuitBreaker(
        "h", clock, CircuitBreakerPolicy(failure_threshold=1, cooldown=5.0)
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    assert not breaker.allow()


def test_transitions_are_reported():
    clock = SimClock()
    seen = []
    breaker = CircuitBreaker(
        "h", clock, CircuitBreakerPolicy(failure_threshold=1, cooldown=1.0),
        on_transition=lambda host, old, new: seen.append((host, old, new)),
    )
    breaker.record_failure()
    clock.advance(1.0)
    breaker.allow()
    breaker.record_success()
    assert seen == [
        ("h", CLOSED, OPEN),
        ("h", OPEN, HALF_OPEN),
        ("h", HALF_OPEN, CLOSED),
    ]


def test_policy_validation():
    with pytest.raises(ValueError):
        CircuitBreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreakerPolicy(cooldown=-1.0)


# -- HttpClient integration --------------------------------------------------


def echo(request: HttpRequest) -> HttpResponse:
    return HttpResponse(200, body=request.body)


def test_http_client_breaker_cuts_off_dead_host():
    network = VirtualNetwork()
    network.register("svc", echo)
    client = HttpClient(
        network, breaker_policy=CircuitBreakerPolicy(failure_threshold=3,
                                                     cooldown=60.0)
    )
    network.take_down("svc")
    for _ in range(3):
        with pytest.raises(TransportError):
            client.get("http://svc/")
    wire_attempts = network.stats.per_host_requests["svc"]
    assert wire_attempts == 3
    # breaker now open: failures are local, nothing reaches the wire
    for _ in range(10):
        with pytest.raises(BreakerOpenError):
            client.get("http://svc/")
    assert network.stats.per_host_requests["svc"] == wire_attempts


def test_http_client_breaker_recovers_via_probe():
    network = VirtualNetwork()
    network.register("svc", echo)
    client = HttpClient(
        network, breaker_policy=CircuitBreakerPolicy(failure_threshold=1,
                                                     cooldown=5.0)
    )
    network.take_down("svc")
    with pytest.raises(TransportError):
        client.get("http://svc/")
    with pytest.raises(BreakerOpenError):
        client.get("http://svc/")
    network.bring_up("svc")
    network.clock.advance(5.0)
    assert client.get("http://svc/").ok  # the probe succeeds and closes
    assert client.breaker_for("svc").state == CLOSED


def test_no_policy_means_no_breaker():
    network = VirtualNetwork()
    network.register("svc", echo)
    client = HttpClient(network)
    assert client.breaker_for("svc") is None
    network.take_down("svc")
    for _ in range(10):
        with pytest.raises(TransportError):
            client.get("http://svc/")
    assert network.stats.per_host_requests["svc"] == 10


def test_transport_failure_drops_keepalive_connection():
    network = VirtualNetwork()
    network.register("svc", echo)
    client = HttpClient(network)
    client.get("http://svc/")
    assert network.stats.connections == 1
    network.fail_next("svc")
    with pytest.raises(TransportError):
        client.get("http://svc/")
    client.get("http://svc/")
    # the retry had to re-connect after the failure
    assert network.stats.connections == 2
