"""The chaos monkey's unified event queue: seeded total order, injectable
primitives, deterministic same-tick tie-breaking."""

from __future__ import annotations

import json

from repro.resilience.chaos import SCHEDULED_ONLY, ChaosConfig, ChaosMonkey
from repro.resilience.events import ResilienceLog
from repro.transport.network import VirtualNetwork

HOSTS = ["a.example.org", "b.example.org", "c.example.org"]


def _monkey(seed: int, config: ChaosConfig | None = None, **kwargs):
    network = VirtualNetwork(seed=seed)
    for host in HOSTS:
        network.register(host, lambda request: None)
    log = ResilienceLog()
    return network, ChaosMonkey(
        network, HOSTS, seed=seed, config=config, log=log, **kwargs
    ), log


def _run_schedule(seed: int, steps: int = 40):
    """Drive the monkey's own random program; returns the full pending-event
    trace (captured before each apply) as canonical JSON."""
    network, monkey, log = _monkey(
        seed, regions={"iu": (HOSTS[0],), "sdsc": (HOSTS[1], HOSTS[2])}
    )
    trace = []
    for _ in range(steps):
        network.clock.advance(1.0)
        trace.append([
            [due, event_id, action, repr(payload)]
            for due, event_id, action, payload in monkey.pending_events()
        ])
        monkey.step()
    trace.append([[r.code, r.message] for r in log.events])
    return json.dumps(trace, sort_keys=True)


def test_same_seed_same_schedule_byte_identical():
    """Satellite acceptance: the pending-event queue — ids, due times,
    actions, application order — is byte-identical for the same seed."""
    assert _run_schedule(11) == _run_schedule(11)


def test_different_seeds_produce_different_schedules():
    assert _run_schedule(11) != _run_schedule(12)


def test_event_ids_give_same_tick_events_a_total_order():
    network, monkey, _ = _monkey(0, config=SCHEDULED_ONLY)
    # three effects all due at the same virtual instant
    monkey.inject_take_down(HOSTS[0], 5.0)
    monkey.inject_take_down(HOSTS[1], 5.0)
    monkey.inject_take_down(HOSTS[2], 5.0)
    pending = monkey.pending_events()
    assert [event_id for _, event_id, _, _ in pending] == [1, 2, 3]
    dues = {due for due, _, _, _ in pending}
    assert len(dues) == 1  # genuinely the same tick: only ids break the tie


def test_apply_due_applies_in_id_order_at_the_same_tick():
    network, monkey, log = _monkey(0, config=SCHEDULED_ONLY)
    monkey.inject_take_down(HOSTS[2], 3.0)
    monkey.inject_take_down(HOSTS[0], 3.0)
    network.clock.advance(10.0)
    monkey.apply_due()
    repairs = [r for r in log.events if r.code == "Chaos.Repair"]
    hosts = [r.detail["host"] for r in repairs]
    # scheduling order (ids 1, 2), not alphabetical or insertion-sorted
    assert hosts == [HOSTS[2], HOSTS[0]]
    assert network.is_up(HOSTS[0]) and network.is_up(HOSTS[2])


def test_scheduled_only_config_draws_no_faults():
    network, monkey, _ = _monkey(7, config=SCHEDULED_ONLY)
    for _ in range(50):
        network.clock.advance(1.0)
        monkey.step()
    assert monkey.faults_injected == 0
    assert monkey.partitions_injected == 0


def test_primitives_feed_the_same_queue():
    network, monkey, _ = _monkey(
        0, config=SCHEDULED_ONLY,
        regions={"iu": (HOSTS[0],), "sdsc": (HOSTS[1],)},
    )
    monkey.inject_take_down(HOSTS[0], 2.0)
    monkey.inject_partition("iu", "sdsc", "full", 4.0)
    assert monkey.has_active_partition()
    actions = [action for _, _, action, _ in monkey.pending_events()]
    assert actions == ["repair", "heal-partition"]
    network.clock.advance(5.0)
    monkey.apply_due()
    assert monkey.pending_events() == []
    assert not monkey.has_active_partition()
