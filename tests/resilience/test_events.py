"""ResilienceLog subscriber isolation: a broken observer must never poison
the client whose retry it was watching."""

from repro.resilience.events import RETRY, SUBSCRIBER_ERROR, ResilienceLog


def test_record_returns_report_and_notifies_subscribers():
    log = ResilienceLog()
    seen = []
    log.subscribe(seen.append)
    report = log.record(RETRY, "retrying", service="BSG", operation="call")
    assert seen == [report]
    assert log.events == [report]


def test_raising_subscriber_does_not_poison_the_caller():
    log = ResilienceLog()

    def broken(report):
        raise RuntimeError("observer bug")

    log.subscribe(broken)
    report = log.record(RETRY, "retrying")  # must not raise
    codes = [r.code for r in log.events]
    assert codes == [RETRY, SUBSCRIBER_ERROR]
    failure = log.events[-1]
    assert "RuntimeError" in failure.message and "observer bug" in failure.message
    assert failure.detail["event"] == RETRY
    assert failure.service == report.service


def test_later_subscribers_still_receive_the_event():
    log = ResilienceLog()
    seen = []

    def broken(report):
        raise ValueError("first in line, broken")

    log.subscribe(broken)
    log.subscribe(seen.append)
    log.record(RETRY, "retrying")
    assert [r.code for r in seen] == [RETRY]


def test_subscriber_error_is_not_redelivered():
    """A persistently broken subscriber must not recurse: the failure event
    is appended directly, bypassing delivery."""
    log = ResilienceLog()
    calls = []

    def broken(report):
        calls.append(report.code)
        raise RuntimeError("always broken")

    log.subscribe(broken)
    log.record(RETRY, "retrying")
    # delivered exactly once — never called again for its own failure event
    assert calls == [RETRY]
    assert [r.code for r in log.events] == [RETRY, SUBSCRIBER_ERROR]


def test_unsubscribe_stops_delivery():
    log = ResilienceLog()
    seen = []
    log.subscribe(seen.append)
    log.record(RETRY, "one")
    log.unsubscribe(seen.append)
    log.record(RETRY, "two")
    assert len(seen) == 1


def test_unsubscribe_unknown_callback_is_silent():
    log = ResilienceLog()
    log.unsubscribe(print)  # no raise


def test_subscriber_may_unsubscribe_itself_during_delivery():
    log = ResilienceLog()
    seen = []

    def once(report):
        seen.append(report.code)
        log.unsubscribe(once)

    log.subscribe(once)
    log.record(RETRY, "one")
    log.record(RETRY, "two")
    assert seen == [RETRY]
