"""Fixtures for the resilience suite: the IU/SDSC batch-script pair with
both discovery systems populated, on a fresh virtual network."""

from __future__ import annotations

import pytest

from repro.discovery.registry import deploy_discovery
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    SdscBatchScriptGenerator,
    deploy_batch_script_generator,
)
from repro.transport.network import VirtualNetwork
from repro.uddi.model import BindingTemplate, BusinessEntity, BusinessService, TModel
from repro.uddi.service import deploy_uddi

IU_HOST = "bsg.iu.edu"
SDSC_HOST = "bsg.sdsc.edu"


@pytest.fixture
def bsg_pair():
    """(network, [iu endpoint, sdsc endpoint], uddi endpoint, discovery
    endpoint) with both providers registered in UDDI and the container
    hierarchy under the common interface."""
    network = VirtualNetwork()
    iu_url, _ = deploy_batch_script_generator(
        network, IuBatchScriptGenerator(), IU_HOST
    )
    sdsc_url, _ = deploy_batch_script_generator(
        network, SdscBatchScriptGenerator(), SDSC_HOST
    )

    uddi, uddi_url = deploy_uddi(network)
    tmodel = uddi.save_tmodel(TModel("", "gce:BatchScriptGenerator", "common BSG"))
    for name, url in (("IU", iu_url), ("SDSC", sdsc_url)):
        entity = uddi.save_business(BusinessEntity("", name))
        uddi.save_service(
            BusinessService(
                "", entity.key, f"{name} Batch Script Generator",
                bindings=[BindingTemplate("", "", url, [tmodel.key], url + ".wsdl")],
            )
        )

    registry, discovery_url = deploy_discovery(network)
    for name, url, schedulers in (
        ("IU", iu_url, ["PBS", "GRD"]),
        ("SDSC", sdsc_url, ["LSF", "NQS"]),
    ):
        registry.register_service(
            f"portals/{name}/script-generators/bsg",
            {"interface": BSG_NAMESPACE, "endpoint": url,
             "queuing-system": schedulers},
        )

    return network, [iu_url, sdsc_url], uddi_url, discovery_url
