import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import crypto


def test_encrypt_decrypt_roundtrip():
    key = crypto.new_key(b"seed")
    blob = crypto.encrypt(key, b"secret payload")
    assert crypto.decrypt(key, blob) == b"secret payload"


def test_wrong_key_rejected():
    blob = crypto.encrypt(crypto.new_key(b"a"), b"data")
    with pytest.raises(ValueError):
        crypto.decrypt(crypto.new_key(b"b"), blob)


def test_tampering_detected():
    key = crypto.new_key(b"k")
    blob = bytearray(crypto.encrypt(key, b"data"))
    blob[0] ^= 0xFF
    with pytest.raises(ValueError):
        crypto.decrypt(key, bytes(blob))


def test_truncated_blob_rejected():
    with pytest.raises(ValueError):
        crypto.decrypt(crypto.new_key(b"k"), b"short")


def test_sign_verify():
    key = crypto.new_key(b"k")
    sig = crypto.sign(key, b"message")
    assert crypto.verify(key, b"message", sig)
    assert not crypto.verify(key, b"other", sig)
    assert not crypto.verify(crypto.new_key(b"j"), b"message", sig)


def test_derive_key_distinct_per_label():
    base = crypto.new_key(b"base")
    assert crypto.derive_key(base, "a") != crypto.derive_key(base, "b")
    assert crypto.derive_key(base, "a") == crypto.derive_key(base, "a")


def test_deterministic_seeded_keys_random_otherwise():
    assert crypto.new_key(b"s") == crypto.new_key(b"s")
    assert crypto.new_key() != crypto.new_key()


@given(st.binary(max_size=2048), st.binary(min_size=1, max_size=32))
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(plaintext, seed):
    key = crypto.new_key(seed)
    assert crypto.decrypt(key, crypto.encrypt(key, plaintext)) == plaintext


@given(st.binary(max_size=256))
@settings(max_examples=40, deadline=None)
def test_b64_roundtrip(data):
    assert crypto.unb64(crypto.b64(data)) == data
