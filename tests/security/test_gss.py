import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.gss import GssContext, GssError
from repro.security.kerberos import Kdc, Keytab
from repro.transport.clock import SimClock


@pytest.fixture
def contexts():
    kdc = Kdc("R", SimClock())
    kdc.add_user("alice", "pw")
    keytab = Keytab()
    kdc.add_service("svc", keytab)
    ticket = kdc.get_service_ticket(kdc.authenticate("alice", "pw"), "svc")
    initiator, token = GssContext.init_sec_context(ticket)
    acceptor = GssContext.accept_sec_context(token, keytab, now=0.0)
    return initiator, acceptor


def test_establishment_yields_shared_key(contexts):
    initiator, acceptor = contexts
    assert initiator.session_key() == acceptor.session_key()
    assert acceptor.initiator == "alice"
    assert acceptor.acceptor == "svc"


def test_wrap_unwrap_across_contexts(contexts):
    initiator, acceptor = contexts
    sealed = initiator.wrap(b"over the wire")
    assert acceptor.unwrap(sealed) == b"over the wire"
    assert initiator.unwrap(acceptor.wrap(b"reply")) == b"reply"


def test_mic_across_contexts(contexts):
    initiator, acceptor = contexts
    mic = initiator.get_mic(b"assertion bytes")
    assert acceptor.verify_mic(b"assertion bytes", mic)
    assert not acceptor.verify_mic(b"tampered", mic)


def test_unwrap_rejects_tampering(contexts):
    initiator, acceptor = contexts
    sealed = bytearray(initiator.wrap(b"x"))
    sealed[-1] ^= 1
    with pytest.raises(GssError):
        acceptor.unwrap(bytes(sealed))


def test_accept_rejects_garbage_token():
    keytab = Keytab()
    with pytest.raises(GssError):
        GssContext.accept_sec_context(b"not json", keytab, now=0.0)


def test_accept_rejects_wrong_keytab(contexts):
    kdc = Kdc("R2", SimClock())
    kdc.add_user("alice", "pw")
    keytab = Keytab()
    kdc.add_service("svc", keytab)
    ticket = kdc.get_service_ticket(kdc.authenticate("alice", "pw"), "svc")
    _ctx, token = GssContext.init_sec_context(ticket)
    stranger = Keytab()
    with pytest.raises(GssError):
        GssContext.accept_sec_context(token, stranger, now=0.0)


@given(st.binary(max_size=512))
@settings(max_examples=50, deadline=None)
def test_wrap_unwrap_property(data):
    kdc = Kdc("P", SimClock())
    kdc.add_user("u", "p")
    keytab = Keytab()
    kdc.add_service("s", keytab)
    ticket = kdc.get_service_ticket(kdc.authenticate("u", "p"), "s")
    initiator, token = GssContext.init_sec_context(ticket)
    acceptor = GssContext.accept_sec_context(token, keytab, now=0.0)
    assert acceptor.unwrap(initiator.wrap(data)) == data
