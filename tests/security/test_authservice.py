import pytest

from repro.faults import AuthenticationError
from repro.security.authservice import (
    AssertionInterceptor,
    ClientSecuritySession,
    deploy_auth_service,
)
from repro.security.kerberos import Kdc
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer


@pytest.fixture
def stack(network):
    kdc = Kdc("REALM", network.clock)
    kdc.add_user("alice", "alpine")
    kdc.add_user("bob", "builder")
    auth, auth_url = deploy_auth_service(network, kdc, assertion_lifetime=300.0)

    server = HttpServer("spp.host", network)
    svc = SoapService("prot", "urn:prot")
    svc.expose(lambda x: f"did {x}", "work")
    interceptor = AssertionInterceptor(
        network, auth_url, spp_host="spp.host", clock=network.clock
    )
    svc.add_interceptor(interceptor)
    url = svc.mount(server)
    return kdc, auth, auth_url, url, interceptor


def _login(network, kdc, auth_url, user="alice", password="alpine"):
    session = ClientSecuritySession(network, kdc, auth_url, ui_host="ui.host")
    session.login(user, password)
    return session


def test_full_atomic_step(network, stack):
    kdc, auth, auth_url, url, _interceptor = stack
    session = _login(network, kdc, auth_url)
    client = session.secure(SoapClient(network, url, "urn:prot", source="ui.host"))
    assert client.work("t") == "did t"
    assert auth.verifications == 1


def test_unauthenticated_call_rejected(network, stack):
    _kdc, _auth, _auth_url, url, _i = stack
    bare = SoapClient(network, url, "urn:prot", source="evil.host")
    with pytest.raises(AuthenticationError):
        bare.work("t")


def test_bad_login(network, stack):
    kdc, _auth, auth_url, _url, _i = stack
    with pytest.raises(AuthenticationError):
        _login(network, kdc, auth_url, "alice", "wrong")
    with pytest.raises(AuthenticationError):
        _login(network, kdc, auth_url, "eve", "x")


def test_expired_assertion_rejected(network, stack):
    kdc, auth, auth_url, _url, _i = stack
    session = _login(network, kdc, auth_url)
    assertion = session.make_assertion()
    network.clock.advance(600.0)
    result = auth.verify(session.session_id, assertion.to_xml().serialize())
    assert not result["valid"]
    assert "expired" in result["reason"]


def test_replayed_assertion_for_other_user_rejected(network, stack):
    kdc, auth, auth_url, _url, _i = stack
    alice = _login(network, kdc, auth_url, "alice", "alpine")
    bob = _login(network, kdc, auth_url, "bob", "builder")
    # bob steals alice's assertion but presents his own session id
    stolen = alice.make_assertion()
    stolen.attributes["session"] = bob.session_id
    result = auth.verify(bob.session_id, stolen.to_xml().serialize())
    assert not result["valid"]


def test_logout_invalidates_session(network, stack):
    kdc, auth, auth_url, url, _i = stack
    session = _login(network, kdc, auth_url)
    client = session.secure(SoapClient(network, url, "urn:prot", source="ui.host"))
    assert client.work("a") == "did a"
    session_id = session.session_id
    assertion_xml = session.make_assertion().to_xml().serialize()
    session.logout()
    result = auth.verify(session_id, assertion_xml)
    assert not result["valid"]
    assert "unknown session" in result["reason"]


def test_verification_cache_skips_repeat_hops(network, stack):
    kdc, auth, auth_url, _url, _interceptor = stack
    # a second SPP with caching enabled
    server = HttpServer("spp2.host", network)
    svc = SoapService("prot2", "urn:prot2")
    svc.expose(lambda: "ok", "ping")
    cached = AssertionInterceptor(
        network, auth_url, spp_host="spp2.host", clock=network.clock, cache=True
    )
    svc.add_interceptor(cached)
    url2 = svc.mount(server)

    session = _login(network, kdc, auth_url)
    client = SoapClient(network, url2, "urn:prot2", source="ui.host")
    assertion = session.make_assertion()
    client.add_header_provider(lambda m, p: [assertion.to_xml()])
    for _ in range(5):
        assert client.ping() == "ok"
    assert cached.verified_calls == 1
    assert cached.cache_hits == 4


def test_active_sessions_counted(network, stack):
    kdc, auth, auth_url, _url, _i = stack
    before = auth.active_sessions()
    session = _login(network, kdc, auth_url)
    assert auth.active_sessions() == before + 1
    session.logout()
    assert auth.active_sessions() == before
