from repro.security import crypto
from repro.security.saml import SamlAssertion


def _assertion(**overrides):
    defaults = dict(
        issuer="ui.host",
        subject="alice",
        method=SamlAssertion.METHOD_KERBEROS,
        auth_instant=10.0,
        not_before=10.0,
        not_on_or_after=310.0,
        attributes={"session": "s1"},
    )
    defaults.update(overrides)
    return SamlAssertion(**defaults)


def test_xml_roundtrip_preserves_fields():
    key = crypto.new_key(b"k")
    original = _assertion().sign(key)
    back = SamlAssertion.from_xml(original.to_xml().serialize())
    assert back.issuer == original.issuer
    assert back.subject == original.subject
    assert back.method == original.method
    assert back.attributes == original.attributes
    assert back.not_on_or_after == original.not_on_or_after
    assert back.verify_signature(key)


def test_signature_covers_all_fields():
    key = crypto.new_key(b"k")
    assertion = _assertion().sign(key)
    parsed = SamlAssertion.from_xml(assertion.to_xml().serialize())
    parsed.subject = "mallory"
    assert not parsed.verify_signature(key)


def test_attribute_tampering_detected():
    key = crypto.new_key(b"k")
    assertion = _assertion().sign(key)
    assertion.attributes["session"] = "hijacked"
    assert not assertion.verify_signature(key)


def test_unsigned_assertion_never_verifies():
    assert not _assertion().verify_signature(crypto.new_key(b"k"))


def test_validity_window():
    assertion = _assertion(not_before=100.0, not_on_or_after=200.0)
    assert not assertion.is_valid_at(99.9)
    assert assertion.is_valid_at(100.0)
    assert assertion.is_valid_at(199.9)
    assert not assertion.is_valid_at(200.0)


def test_assertion_ids_unique():
    assert _assertion().assertion_id != _assertion().assertion_id


def test_wrong_key_fails_verification():
    assertion = _assertion().sign(crypto.new_key(b"right"))
    assert not assertion.verify_signature(crypto.new_key(b"wrong"))
