"""The SAML verification cache: TTL, expiry bounds, targeted invalidation.

The unit tests drive :class:`AssertionCache` directly on the virtual
clock; the integration tests wire it into an :class:`AssertionInterceptor`
in front of a real Authentication Service and count the verification round
trips it saves — and the ones it must *not* save (revocation, expiry).
"""

import pytest

from repro.faults import AuthenticationError
from repro.security.assertioncache import AssertionCache
from repro.security.authservice import (
    AssertionInterceptor,
    ClientSecuritySession,
    deploy_auth_service,
)
from repro.security.kerberos import Kdc
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer


@pytest.fixture
def cache(network):
    return AssertionCache(network.clock, ttl=100.0)


def test_put_get_roundtrip_and_stats(network, cache):
    assert cache.get("alice", "a1") is None  # miss on empty
    entry = cache.put("alice", "a1", "alice")
    assert entry.expires == network.clock.now + 100.0
    hit = cache.get("alice", "a1")
    assert hit is entry and hit.subject == "alice"
    assert cache.stats() == {
        "entries": 1, "hits": 1, "misses": 1, "invalidations": 0,
    }


def test_entries_expire_on_the_clock(network, cache):
    cache.put("alice", "a1", "alice")
    network.clock.advance(99.9)
    assert cache.get("alice", "a1") is not None
    network.clock.advance(0.2)
    assert cache.get("alice", "a1") is None  # expired ⇒ evicted
    assert len(cache) == 0


def test_assertion_expiry_caps_the_ttl(network, cache):
    # the cache must never outlive the credential it vouches for
    entry = cache.put("alice", "a1", "alice", expires=network.clock.now + 5.0)
    assert entry.expires == network.clock.now + 5.0
    network.clock.advance(6.0)
    assert cache.get("alice", "a1") is None


def test_key_includes_principal(network, cache):
    # a cached assertion id must never vouch for a different subject
    cache.put("alice", "shared-id", "alice")
    assert cache.get("eve", "shared-id") is None
    assert cache.get("alice", "shared-id") is not None


def test_targeted_invalidation(network, cache):
    cache.put("alice", "a1", "alice")
    cache.put("alice", "a2", "alice")
    cache.put("bob", "b1", "bob")
    assert cache.invalidate("alice", "a1")
    assert not cache.invalidate("alice", "a1")  # already gone
    assert cache.invalidate_principal("alice") == 1
    assert cache.get("bob", "b1") is not None  # bob untouched
    assert cache.stats()["invalidations"] == 2


def test_purge_expired_sweeps_only_the_dead(network, cache):
    cache.put("alice", "a1", "alice", expires=network.clock.now + 1.0)
    cache.put("bob", "b1", "bob")
    network.clock.advance(2.0)
    assert cache.purge_expired() == 1
    assert len(cache) == 1


# -- interceptor integration -------------------------------------------------


@pytest.fixture
def spp(network):
    kdc = Kdc("REALM", network.clock)
    kdc.add_user("alice", "alpine")
    auth, auth_url = deploy_auth_service(network, kdc, assertion_lifetime=50.0)
    server = HttpServer("spp.host", network)
    svc = SoapService("prot", "urn:prot")
    svc.expose(lambda: "ok", "ping")
    interceptor = AssertionInterceptor(
        network, auth_url, spp_host="spp.host",
        clock=network.clock, cache=True, cache_ttl=300.0,
    )
    svc.add_interceptor(interceptor)
    url = svc.mount(server)

    session = ClientSecuritySession(
        network, kdc, auth_url, ui_host="ui.host", assertion_lifetime=50.0
    )
    session.login("alice", "alpine")
    client = SoapClient(network, url, "urn:prot", source="ui.host")
    assertion = session.make_assertion()
    client.add_header_provider(lambda m, p: [assertion.to_xml()])
    return auth, interceptor, client


def test_cache_hit_skips_the_verify_round_trip(network, spp):
    auth, interceptor, client = spp
    for _ in range(4):
        assert client.ping() == "ok"
    assert auth.verifications == 1  # one hop, three cache hits
    assert interceptor.verified_calls == 1
    assert interceptor.cache_hits == 3


def test_invalidate_principal_forces_reverification(network, spp):
    auth, interceptor, client = spp
    client.ping()
    assert interceptor.invalidate_principal("alice") == 1
    client.ping()
    assert auth.verifications == 2  # the revocation bypassed the cache
    assert interceptor.invalidate_principal("nobody") == 0


def test_cached_entry_honors_assertion_expiry(network, spp):
    auth, interceptor, client = spp
    client.ping()
    # cache TTL is 300 s but the assertion itself dies at 50 s; past that
    # the cache must re-verify — and the authority rejects the stale proof
    network.clock.advance(60.0)
    with pytest.raises(AuthenticationError):
        client.ping()
    assert auth.verifications == 2
    assert interceptor.cache_hits == 0
