import pytest

from repro.security.gsi import GsiError, SimpleCA


@pytest.fixture
def credential(ca):
    return ca.issue_credential("/O=G/CN=alice", lifetime=1000.0, now=0.0)


def test_verify_user_credential(ca, credential):
    assert ca.verify_chain(credential, now=10.0) == "/O=G/CN=alice"


def test_proxy_delegation_chain(ca, credential):
    proxy = credential.sign_proxy(lifetime=100.0, now=0.0)
    proxy2 = proxy.sign_proxy(lifetime=50.0, now=0.0)
    assert ca.verify_chain(proxy2, now=10.0) == "/O=G/CN=alice"
    assert proxy2.depth == 2
    assert len(proxy2.chain()) == 3


def test_proxy_lifetime_capped_by_parent(ca, credential):
    proxy = credential.sign_proxy(lifetime=10**9, now=0.0)
    assert proxy.not_after == credential.not_after


def test_expired_proxy_rejected(ca, credential):
    proxy = credential.sign_proxy(lifetime=10.0, now=0.0)
    with pytest.raises(GsiError):
        ca.verify_chain(proxy, now=50.0)
    # but the parent credential is still fine
    assert ca.verify_chain(credential, now=50.0)


def test_tampered_subject_rejected(ca, credential):
    proxy = credential.sign_proxy(lifetime=100.0, now=0.0)
    proxy.subject = "/O=G/CN=mallory/CN=proxy"
    with pytest.raises(GsiError):
        ca.verify_chain(proxy, now=1.0)


def test_chain_from_other_ca_rejected(credential):
    other = SimpleCA("/O=Other/CN=CA")
    with pytest.raises(GsiError):
        other.verify_chain(credential, now=1.0)


def test_identity_strips_proxy_cns(ca, credential):
    proxy = credential.sign_proxy(lifetime=10.0, now=0.0).sign_proxy(
        lifetime=5.0, now=0.0
    )
    assert proxy.identity == "/O=G/CN=alice"


def test_proxy_cannot_sign_without_key(ca, credential):
    proxy = credential.sign_proxy(lifetime=10.0, now=0.0)
    proxy.signing_key = b""
    with pytest.raises(GsiError):
        proxy.sign_proxy(lifetime=5.0, now=0.0)
