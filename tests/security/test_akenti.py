import pytest

from repro.faults import AuthorizationError
from repro.security.akenti import (
    AkentiInterceptor,
    AttributeAuthority,
    PolicyEngine,
    UseCondition,
)
from repro.security.saml import SamlAssertion
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.clock import SimClock
from repro.transport.server import HttpServer


@pytest.fixture
def engine():
    engine = PolicyEngine()
    npaci = AttributeAuthority("NPACI")
    engine.trust_authority(npaci)
    engine.add_use_condition(
        "bsg-service",
        UseCondition({"group": ("chemistry", "physics")}),
    )
    engine.add_use_condition(
        "bsg-service",
        UseCondition({"role": ("submitter",)}, actions=("generateScript",)),
    )
    engine.store_certificate(npaci.issue("alice", "group", "chemistry"))
    engine.store_certificate(npaci.issue("alice", "role", "submitter"))
    engine.store_certificate(npaci.issue("bob", "group", "chemistry"))
    return engine, npaci


def test_permit_with_all_attributes(engine):
    eng, _ = engine
    decision = eng.check_access("alice", "bsg-service", "generateScript")
    assert decision.granted
    assert decision.attributes_used == {"group": "chemistry", "role": "submitter"}


def test_deny_missing_attribute(engine):
    eng, _ = engine
    decision = eng.check_access("bob", "bsg-service", "generateScript")
    assert not decision.granted
    assert "role" in decision.reason


def test_read_only_action_needs_fewer_attributes(engine):
    eng, _ = engine
    # listSchedulers is not gated by the role condition
    assert eng.check_access("bob", "bsg-service", "listSchedulers").granted


def test_unknown_resource_fails_closed(engine):
    eng, _ = engine
    assert not eng.check_access("alice", "other-service", "x").granted


def test_untrusted_authority_certificates_ignored(engine):
    eng, _ = engine
    rogue = AttributeAuthority("RogueCA")
    eng.store_certificate(rogue.issue("mallory", "group", "chemistry"))
    eng.store_certificate(rogue.issue("mallory", "role", "submitter"))
    assert not eng.check_access("mallory", "bsg-service", "listSchedulers").granted


def test_forged_certificate_ignored(engine):
    eng, npaci = engine
    from repro.security.akenti import AttributeCertificate

    forged = AttributeCertificate("eve", "group", "chemistry", "NPACI",
                                  signature=b"\x00" * 32)
    eng.store_certificate(forged)
    assert not eng.check_access("eve", "bsg-service", "listSchedulers").granted


def test_decision_conveyed_as_signed_saml(engine):
    eng, _ = engine
    decision = eng.check_access("alice", "bsg-service", "generateScript")
    assertion = eng.decision_assertion(decision, now=100.0)
    assert eng.verify_decision_assertion(assertion)
    assert assertion.attributes["akenti:decision"] == "Permit"
    assert assertion.attributes["akenti:resource"] == "bsg-service"
    # tampering with the decision breaks the signature
    assertion.attributes["akenti:decision"] = "Deny"
    assert not eng.verify_decision_assertion(assertion)
    # round trip through XML keeps it verifiable
    fresh = eng.decision_assertion(decision, now=100.0)
    reparsed = SamlAssertion.from_xml(fresh.to_xml().serialize())
    assert eng.verify_decision_assertion(reparsed)


def test_interceptor_enforces_per_method(engine, network):
    eng, _ = engine
    clock = SimClock()
    server = HttpServer("akenti.host", network)
    soap = SoapService("bsg", "urn:bsg")
    soap.expose(lambda: ["PBS"], "listSchedulers")
    soap.expose(lambda s, p: "#!/bin/sh\n", "generateScript")
    interceptor = AkentiInterceptor(eng, "bsg-service", clock)
    soap.add_interceptor(interceptor)
    url = soap.mount(server)

    def client_for(user):
        client = SoapClient(network, url, "urn:bsg", source="ui")
        assertion = SamlAssertion(issuer="ui", subject=user,
                                  not_on_or_after=10**9)
        client.add_header_provider(lambda m, p: [assertion.to_xml()])
        return client

    alice = client_for("alice")
    assert alice.call("listSchedulers") == ["PBS"]
    assert alice.call("generateScript", "PBS", {}).startswith("#!")

    bob = client_for("bob")
    assert bob.call("listSchedulers") == ["PBS"]  # read allowed
    with pytest.raises(AuthorizationError):
        bob.call("generateScript", "PBS", {})     # write denied
    assert interceptor.denials == 1

    # no subject at all
    anonymous = SoapClient(network, url, "urn:bsg", source="ui")
    with pytest.raises(AuthorizationError):
        anonymous.call("listSchedulers")
