import pytest

from repro.security.kerberos import Kdc, KerberosError, Keytab
from repro.transport.clock import SimClock


@pytest.fixture
def kdc():
    clock = SimClock()
    kdc = Kdc("TEST.REALM", clock, ticket_lifetime=100.0)
    kdc.add_user("alice", "pw")
    return kdc


def test_as_exchange(kdc):
    tgt = kdc.authenticate("alice", "pw")
    assert tgt.client == "alice"
    assert tgt.service == Kdc.TGS
    assert tgt.expires == 100.0


def test_bad_password_and_unknown_user(kdc):
    with pytest.raises(KerberosError):
        kdc.authenticate("alice", "wrong")
    with pytest.raises(KerberosError):
        kdc.authenticate("mallory", "pw")


def test_tgs_exchange_and_keytab_decrypt(kdc):
    keytab = Keytab()
    kdc.add_service("srv", keytab)
    tgt = kdc.authenticate("alice", "pw")
    ticket = kdc.get_service_ticket(tgt, "srv")
    client, session_key, expires = keytab.decrypt_ticket(
        "srv", ticket.blob, now=kdc.clock.now
    )
    assert client == "alice"
    assert session_key == ticket.session_key
    assert expires == ticket.expires


def test_service_ticket_requires_tgt(kdc):
    keytab = Keytab()
    kdc.add_service("srv", keytab)
    tgt = kdc.authenticate("alice", "pw")
    ticket = kdc.get_service_ticket(tgt, "srv")
    with pytest.raises(KerberosError):
        kdc.get_service_ticket(ticket, "srv")  # not a TGT


def test_unknown_service(kdc):
    tgt = kdc.authenticate("alice", "pw")
    with pytest.raises(KerberosError):
        kdc.get_service_ticket(tgt, "ghost")


def test_ticket_expiry(kdc):
    keytab = Keytab()
    kdc.add_service("srv", keytab)
    ticket = kdc.get_service_ticket(kdc.authenticate("alice", "pw"), "srv")
    kdc.clock.advance(500.0)
    with pytest.raises(KerberosError):
        keytab.decrypt_ticket("srv", ticket.blob, now=kdc.clock.now)


def test_wrong_keytab_cannot_open_ticket(kdc):
    keytab = Keytab()
    other = Keytab()
    kdc.add_service("srv", keytab)
    kdc.add_service("other", other)
    ticket = kdc.get_service_ticket(kdc.authenticate("alice", "pw"), "srv")
    with pytest.raises(KerberosError):
        other.decrypt_ticket("other", ticket.blob, now=0.0)
    with pytest.raises(KerberosError):
        other.decrypt_ticket("srv", ticket.blob, now=0.0)
