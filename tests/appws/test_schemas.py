from repro.appws.schemas import (
    application_schema,
    combined_schema,
    host_schema,
    instance_schema,
    queue_schema,
)
from repro.xmlutil.schema import XsdComplexType, parse_schema
from repro.xmlutil.validation import SchemaValidator
from repro.xmlutil.element import XmlElement


def test_container_hierarchy_application_host_queue():
    """The paper's modular container hierarchy: applications contain hosts,
    hosts contain queue descriptions."""
    schema = application_schema()
    app = schema.complex_types["Application"]
    host_el = app.element("host")
    assert isinstance(host_el.type, XsdComplexType)
    assert host_el.type.name == "Host"
    queue_el = host_el.type.element("queue")
    assert queue_el.type.name == "Queue"


def test_application_schema_has_paper_elements():
    app = application_schema().complex_types["Application"]
    names = [el.name for el in app.sequence]
    # 1. basic information  2. internal communication
    # 3. execution environment  4. generic parameter
    assert names[:4] == [
        "basicInformation",
        "internalCommunication",
        "executionEnvironment",
        "parameter",
    ]


def test_queue_enumeration_matches_supported_schedulers():
    schema = queue_schema()
    assert schema.simple_types["QueuingSystem"].enumeration == [
        "PBS", "LSF", "NQS", "GRD"
    ]


def test_lifecycle_states_in_instance_schema():
    schema = instance_schema()
    states = schema.simple_types["LifecycleState"].enumeration
    for required in ("abstract", "prepared", "running", "archived"):
        assert required in states
    # the proposed refinements of "running"
    for refinement in ("queued", "sleeping", "terminating"):
        assert refinement in states


def test_all_schemas_serialize_to_parseable_xsd():
    for builder in (application_schema, host_schema, queue_schema,
                    instance_schema, combined_schema):
        schema = builder()
        reparsed = parse_schema(schema.serialize())
        assert sorted(reparsed.complex_types) == sorted(schema.complex_types)


def test_combined_schema_has_all_global_elements():
    names = {el.name for el in combined_schema().elements}
    assert {"application", "host", "queue", "applicationInstance"} <= names


def test_validator_accepts_wellformed_host_instance():
    schema = combined_schema()
    host = XmlElement("host")
    host.child("dnsName", text="modi4.iu.edu")
    host.child("executablePath", text="/apps/g98")
    queue = host.child("queue")
    queue.child("queuingSystem", text="PBS")
    queue.child("queueName", text="workq")
    assert SchemaValidator(schema).validate(host) == []
    queue.find("queuingSystem").set_text("SLURM")  # not a 2002 scheduler
    assert SchemaValidator(schema).validate(host) != []
