import pytest

from repro.faults import InvalidRequestError
from repro.appws.descriptors import (
    LIFECYCLE_STATES,
    ApplicationLifecycle,
    descriptor_classes,
    instance_classes,
)


def test_descriptor_classes_cover_schema():
    classes = descriptor_classes()
    for name in ("Application", "Host", "Queue", "BasicInformation",
                 "InternalCommunication", "ExecutionEnvironment", "IoField",
                 "ServiceBinding", "Parameter"):
        assert name in classes


def test_lifecycle_happy_path():
    lifecycle = ApplicationLifecycle("Gaussian", "98")
    assert lifecycle.state == "abstract"
    lifecycle.prepare(host="modi4.iu.edu", queue="workq",
                      parameters={"basisSize": "100"})
    assert lifecycle.state == "prepared"
    lifecycle.submitted("1.modi4", at=5.0)
    assert lifecycle.state == "queued"
    lifecycle.running()
    lifecycle.archive(output_location="srb:/out", at=50.0)
    assert lifecycle.state == "archived"
    inst = lifecycle.instance
    assert inst.host == "modi4.iu.edu"
    assert inst.job_id == "1.modi4"
    assert inst.submitted == 5.0 and inst.completed == 50.0
    assert {p.name: p.value for p in inst.parameter} == {"basisSize": "100"}


def test_illegal_transitions_rejected():
    lifecycle = ApplicationLifecycle("X")
    with pytest.raises(InvalidRequestError):
        lifecycle.transition("running")  # abstract cannot jump to running
    lifecycle.transition("prepared")
    with pytest.raises(InvalidRequestError):
        lifecycle.transition("archived")
    with pytest.raises(InvalidRequestError):
        lifecycle.transition("made-up-state")


def test_archive_from_queued_passes_through_running():
    lifecycle = ApplicationLifecycle("X")
    lifecycle.prepare(host="h")
    lifecycle.submitted("j", at=0.0)
    lifecycle.archive(output_location="o", at=1.0)
    assert lifecycle.state == "archived"


def test_terminal_states_are_terminal():
    lifecycle = ApplicationLifecycle("X")
    lifecycle.prepare(host="h")
    lifecycle.fail()
    with pytest.raises(InvalidRequestError):
        lifecycle.transition("prepared")


def test_marshalled_instance_reloadable():
    lifecycle = ApplicationLifecycle("MM5", "3.5")
    lifecycle.prepare(host="t3e.sdsc.edu", parameters={"hours": "24"})
    xml = lifecycle.marshal()
    cls = instance_classes()["ApplicationInstance"]
    reloaded = ApplicationLifecycle.from_instance(cls.unmarshal(xml))
    assert reloaded.state == "prepared"
    assert reloaded.instance.application_name == "MM5"
    # the reloaded instance continues through the lifecycle
    reloaded.submitted("7.t3e", at=2.0)
    assert reloaded.state == "queued"


def test_instance_ids_unique():
    a = ApplicationLifecycle("X")
    b = ApplicationLifecycle("X")
    assert a.instance_id != b.instance_id


def test_every_state_reachable():
    reachable = {"abstract"}
    frontier = ["abstract"]
    from repro.appws.descriptors import _TRANSITIONS

    while frontier:
        state = frontier.pop()
        for nxt in _TRANSITIONS[state]:
            if nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)
    assert reachable == set(LIFECYCLE_STATES)
