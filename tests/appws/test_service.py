import pytest

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.adapter import ApplicationAdapter
from repro.appws.service import APPWS_NAMESPACE
from repro.soap.client import SoapClient
from repro.transport.client import HttpClient
from repro.xmlutil.schema import parse_schema


@pytest.fixture
def appws_client(deployment):
    return SoapClient(
        deployment.network,
        deployment.endpoints["appws"],
        APPWS_NAMESPACE,
        source="ui.test",
    )


def test_list_and_descriptor_download(appws_client):
    apps = appws_client.call("list_applications")
    assert {a["name"] for a in apps} >= {"Gaussian", "ANSYS", "MM5"}
    xml = appws_client.call("get_descriptor", "Gaussian")
    adapter = ApplicationAdapter.unmarshal(xml)
    assert adapter.name == "Gaussian"
    with pytest.raises(ResourceNotFoundError):
        appws_client.call("get_descriptor", "Fortran77Monolith")


def test_schema_published_over_http(deployment):
    response = HttpClient(deployment.network, "ui.test").get(
        "http://appws.gridportal.org/schema/application.xsd"
    )
    assert response.ok
    schema = parse_schema(response.body)
    assert "Application" in schema.complex_types


def test_descriptor_published_over_http(deployment):
    response = HttpClient(deployment.network, "ui.test").get(
        "http://appws.gridportal.org/descriptors/MM5.xml"
    )
    assert response.ok
    assert ApplicationAdapter.unmarshal(response.body).name == "MM5"
    missing = HttpClient(deployment.network, "ui.test").get(
        "http://appws.gridportal.org/descriptors/Nope.xml"
    )
    assert missing.status == 404


def test_full_lifecycle_through_core_services(deployment, appws_client):
    instance = appws_client.call(
        "prepare", "Gaussian", "modi4.iu.edu", {"basisSize": 120}
    )
    assert appws_client.call("status", instance) == "prepared"
    final = appws_client.call("run", instance)
    assert final == "archived"
    output = appws_client.call("get_output", instance)
    assert "Normal termination" in output
    script = appws_client.call("get_script", instance)
    assert script.startswith("#!/bin/sh")
    assert "#PBS" in script  # modi4 is a PBS resource
    summary = appws_client.call("instance_summary", instance)
    assert summary["state"] == "archived"
    assert summary["parameters"] == {"basisSize": "120"}


def test_lsf_host_uses_sdsc_generator(deployment, appws_client):
    instance = appws_client.call(
        "prepare", "Gaussian", "blue.sdsc.edu", {"basisSize": 50}
    )
    appws_client.call("run", instance)
    script = appws_client.call("get_script", instance)
    assert "#BSUB" in script


def test_prepare_validates_choices(deployment, appws_client):
    with pytest.raises(InvalidRequestError):
        appws_client.call(
            "prepare", "Gaussian", "modi4.iu.edu", {"warpFactor": 9}
        )
    with pytest.raises(ResourceNotFoundError):
        appws_client.call("prepare", "Gaussian", "cray.nowhere", {})


def test_archive_to_context_manager(deployment, appws_client):
    instance = appws_client.call(
        "prepare", "ANSYS", "octopus.iu.edu", {"elements": 100}
    )
    appws_client.call("run", instance)
    appws_client.call("archive_to_context", instance, "carol", "struct", "s1")
    descriptor = deployment.context.getSessionDescriptor("carol", "struct", "s1")
    assert "ANSYS" in descriptor
    assert "archived" in descriptor


def test_publish_new_application(deployment, appws_client):
    app = ApplicationAdapter(name="NewCode", version="0.1")
    app.add_host("modi4.iu.edu", "/apps/newcode", queues=[("PBS", "workq")])
    name = appws_client.call("publish", app.marshal())
    assert name == "NewCode"
    assert "NewCode" in {
        a["name"] for a in appws_client.call("list_applications")
    }


def test_output_before_run_is_error(deployment, appws_client):
    instance = appws_client.call(
        "prepare", "MM5", "blue.sdsc.edu", {"forecastHours": 6}
    )
    with pytest.raises(ResourceNotFoundError):
        appws_client.call("get_output", instance)
