import pytest

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.adapter import ApplicationAdapter, InstanceAdapter
from repro.appws.catalog import build_catalog, gaussian_descriptor
from repro.appws.descriptors import ApplicationLifecycle


def test_build_and_describe():
    app = ApplicationAdapter(name="Code", version="1.0", description="d")
    app.add_input_field("n", "Size", "integer")
    app.add_output_field("log", "Log file")
    app.add_host("h1", "/bin/code", queues=[("PBS", "workq")],
                 parameters={"ENV": "x"})
    app.require_service("job-submission", "http://g/run")
    summary = app.describe()
    assert summary["name"] == "Code"
    assert summary["hosts"] == ["h1"]
    assert summary["inputs"] == ["n"]
    assert "job-submission" in summary["services"]


def test_host_and_queue_lookup():
    app = gaussian_descriptor()
    host = app.host_named("modi4.iu.edu")
    assert host.executable_path.endswith("g98")
    queues = app.queues_on("modi4.iu.edu")
    assert [q.queue_name for q in queues] == ["workq", "express"]
    with pytest.raises(ResourceNotFoundError):
        app.host_named("nowhere")


def test_service_endpoint_host_binding_precedence():
    app = ApplicationAdapter(name="X")
    app.require_service("job-submission", "http://generic")
    app.require_service("job-submission", "http://specific", host="h1")
    assert app.service_endpoint("job-submission", "h1") == "http://specific"
    assert app.service_endpoint("job-submission", "h2") == "http://generic"
    assert app.service_endpoint("file-transfer") == ""


def test_parameters():
    app = ApplicationAdapter(name="X")
    app.set_parameter("discipline", "chemistry")
    app.set_parameter("discipline", "physics")  # update, not duplicate
    assert app.parameter("discipline") == "physics"
    assert app.parameter("missing", "default") == "default"
    assert len(app.application.parameter) == 1


def test_marshal_unmarshal_descriptor():
    original = gaussian_descriptor({"job-submission": "http://g"})
    xml = original.marshal()
    back = ApplicationAdapter.unmarshal(xml)
    assert back.name == "Gaussian"
    assert back.version == original.version
    assert [h.dns_name for h in back.hosts()] == [
        h.dns_name for h in original.hosts()
    ]
    assert back.service_endpoint("job-submission") == "http://g"
    assert back.marshal() == xml  # stable serialization


def test_catalog_contents():
    catalog = build_catalog()
    assert set(catalog) == {"Gaussian", "ANSYS", "MM5"}
    for app in catalog.values():
        assert app.hosts(), f"{app.name} has no host bindings"
        assert "batch-script-generation" in app.required_services()


def test_name_required():
    with pytest.raises(InvalidRequestError):
        ApplicationAdapter()


def test_instance_adapter_summary():
    lifecycle = ApplicationLifecycle("ANSYS", "5.7")
    lifecycle.prepare(host="octopus.iu.edu", queue="workq",
                      parameters={"elements": "5000"})
    summary = InstanceAdapter(lifecycle.instance).summary()
    assert summary["application"] == "ANSYS"
    assert summary["state"] == "prepared"
    assert summary["parameters"] == {"elements": "5000"}
    roundtrip = InstanceAdapter.unmarshal(lifecycle.marshal()).summary()
    assert roundtrip == summary
