import pytest

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.appws.factory import (
    FACTORY_NAMESPACE,
    INSTANCE_NAMESPACE,
    deploy_factory,
)
from repro.soap.client import SoapClient


@pytest.fixture(scope="module")
def factory(deployment):
    from repro.appws.catalog import build_catalog

    impl, endpoint = deploy_factory(
        deployment.network,
        build_catalog(),
        deployment.endpoints["globusrun"],
        host="factory.test",
    )
    client = SoapClient(deployment.network, endpoint, FACTORY_NAMESPACE,
                        source="ui.factory")
    return deployment, impl, client


def _instance_client(deployment, endpoint):
    return SoapClient(deployment.network, endpoint, INSTANCE_NAMESPACE,
                      source="ui.factory")


def test_factory_lists_catalog(factory):
    _deployment, _impl, client = factory
    assert client.call("list_applications") == ["ANSYS", "Gaussian", "MM5"]


def test_create_configure_run_destroy(factory):
    deployment, impl, client = factory
    endpoint = client.call("create", "Gaussian", "modi4.iu.edu")
    assert "/instances/appinst-" in endpoint
    instance = _instance_client(deployment, endpoint)

    assert instance.call("status") == "abstract"
    assert instance.call("configure", {"basisSize": 90}) == "prepared"
    assert instance.call("run") == "archived"
    assert "SCF Done" in instance.call("output")
    description = instance.call("describe")
    assert description["application"] == "Gaussian"
    assert description["host"] == "modi4.iu.edu"

    # destroy unmounts the endpoint
    assert instance.call("destroy") is True
    from repro.transport.client import HttpClient

    response = HttpClient(deployment.network, "ui.factory").post(endpoint, "x")
    assert response.status == 404


def test_each_instance_is_independent(factory):
    deployment, _impl, client = factory
    a = _instance_client(deployment, client.call("create", "MM5", "blue.sdsc.edu"))
    b = _instance_client(deployment, client.call("create", "MM5", "t3e.sdsc.edu"))
    a.call("configure", {"forecastHours": 6})
    assert a.call("status") == "prepared"
    assert b.call("status") == "abstract"  # untouched
    assert a.call("describe")["host"] == "blue.sdsc.edu"
    assert b.call("describe")["host"] == "t3e.sdsc.edu"


def test_create_validates_inputs(factory):
    deployment, _impl, client = factory
    with pytest.raises(ResourceNotFoundError):
        client.call("create", "Fortran77", "modi4.iu.edu")
    with pytest.raises(ResourceNotFoundError):
        client.call("create", "Gaussian", "cray.nowhere")


def test_instance_guards_lifecycle(factory):
    deployment, _impl, client = factory
    instance = _instance_client(
        deployment, client.call("create", "ANSYS", "octopus.iu.edu")
    )
    with pytest.raises(InvalidRequestError):
        instance.call("run")  # not configured yet
    with pytest.raises(InvalidRequestError):
        instance.call("configure", {"warpFactor": 9})
    with pytest.raises(ResourceNotFoundError):
        instance.call("output")


def test_active_instances_listed(factory):
    _deployment, impl, client = factory
    count_before = len(client.call("active_instances"))
    client.call("create", "Gaussian", "modi4.iu.edu")
    assert len(client.call("active_instances")) == count_before + 1
