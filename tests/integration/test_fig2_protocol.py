"""Figure 2 end to end, with the SSP protecting a *real* portal service."""

import pytest

from repro.faults import AuthenticationError
from repro.security.authservice import AssertionInterceptor, ClientSecuritySession
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    deploy_batch_script_generator,
)
from repro.soap.client import SoapClient


@pytest.fixture(scope="module")
def protected(deployment):
    """A batch-script SSP that demands verified SAML assertions."""
    impl = IuBatchScriptGenerator()
    endpoint, _wsdl = deploy_batch_script_generator(
        deployment.network, impl, "securebsg.iu.edu"
    )
    interceptor = AssertionInterceptor(
        deployment.network,
        deployment.endpoints["auth"],
        spp_host="securebsg.iu.edu",
        clock=deployment.network.clock,
    )
    # reach into the mounted SOAP service to attach the interceptor
    from repro.transport.http import HttpRequest, Url

    # the deploy helper does not expose the SoapService; mount a second,
    # protected service instead
    from repro.soap.server import SoapService
    from repro.transport.server import HttpServer

    server = HttpServer("secured.iu.edu", deployment.network)
    soap = SoapService("SecureBSG", BSG_NAMESPACE)
    soap.expose(impl.generateScript)
    soap.expose(impl.listSchedulers)
    soap.add_interceptor(interceptor)
    url = soap.mount(server, "/bsg")
    return url, interceptor


def test_single_sign_on_then_many_services(deployment, protected):
    url, interceptor = protected
    session = ClientSecuritySession(
        deployment.network, deployment.kdc, deployment.endpoints["auth"],
        ui_host="ui.fig2",
    )
    session.login("alice", "alpine")  # one login...
    client = session.secure(
        SoapClient(deployment.network, url, BSG_NAMESPACE, source="ui.fig2")
    )
    # ...then every call carries a fresh signed assertion
    for _ in range(3):
        assert client.call("listSchedulers") == ["PBS", "GRD"]
    assert session.assertions_issued == 3
    assert interceptor.verified_calls >= 3


def test_atomic_step_involves_auth_service_hop(deployment, protected):
    """The SPP 'does not check the signature of the request directly but
    instead forwards to the Authentication Service'."""
    url, _interceptor = protected
    session = ClientSecuritySession(
        deployment.network, deployment.kdc, deployment.endpoints["auth"],
        ui_host="ui.fig2b",
    )
    session.login("bob", "builder")
    client = session.secure(
        SoapClient(deployment.network, url, BSG_NAMESPACE, source="ui.fig2b")
    )
    before = deployment.network.stats.snapshot()
    verifications_before = deployment.auth.verifications
    client.call("listSchedulers")
    delta = deployment.network.stats.delta(before)
    assert deployment.auth.verifications == verifications_before + 1
    # at least two requests: UI->SPP and SPP->AuthService
    assert delta.per_host_requests.get("auth.gridportal.org", 0) == 1


def test_keytab_never_leaves_the_auth_service(deployment):
    """The keytab object exists only inside the AuthenticationService."""
    assert deployment.auth.keytab.principals() == ["authsvc"]


def test_forged_assertion_rejected(deployment, protected):
    url, _interceptor = protected
    session = ClientSecuritySession(
        deployment.network, deployment.kdc, deployment.endpoints["auth"],
        ui_host="ui.fig2c",
    )
    session.login("alice", "alpine")
    # craft an assertion signed with the wrong key
    from repro.security import crypto
    from repro.security.saml import SamlAssertion
    from repro.xmlutil.element import XmlElement

    forged = SamlAssertion(
        issuer="ui.fig2c",
        subject="alice",
        not_before=0.0,
        not_on_or_after=deployment.network.clock.now + 1000,
        attributes={"session": session.session_id},
    ).sign(crypto.new_key(b"attacker"))
    client = SoapClient(deployment.network, url, BSG_NAMESPACE, source="ui.fig2c")
    client.add_header_provider(lambda m, p: [forged.to_xml()])
    with pytest.raises(AuthenticationError) as exc_info:
        client.call("listSchedulers")
    assert "signature invalid" in exc_info.value.message
