"""Failure injection across the stack: hosts going down mid-protocol."""

import pytest

from repro.faults import PortalError, ServiceUnavailableError
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE
from repro.soap.client import SoapClient
from repro.transport.network import TransportError


def test_globusrun_unreachable_host(deployment):
    client = SoapClient(
        deployment.network, deployment.endpoints["globusrun"],
        GLOBUSRUN_NAMESPACE, source="ui.fail",
    )
    deployment.network.take_down("globusrun.sdsc.edu")
    try:
        with pytest.raises(TransportError):
            client.call("list_contacts")
    finally:
        deployment.network.bring_up("globusrun.sdsc.edu")
    # service recovers after the host comes back
    assert "modi4.iu.edu" in client.call("list_contacts")


def test_backend_resource_down_mid_service(deployment):
    """The web service host is up, but its grid backend is unreachable: the
    failure surfaces as a server-side fault, not a hang or silent success."""
    client = SoapClient(
        deployment.network, deployment.endpoints["globusrun"],
        GLOBUSRUN_NAMESPACE, source="ui.fail",
    )
    deployment.network.take_down("t3e.sdsc.edu")
    try:
        with pytest.raises(Exception) as exc_info:
            client.call("run", "t3e.sdsc.edu", "echo", "x", 1, "", 60)
        assert not isinstance(exc_info.value, AssertionError)
    finally:
        deployment.network.bring_up("t3e.sdsc.edu")


def test_transient_failure_then_retry(deployment):
    client = SoapClient(
        deployment.network, deployment.endpoints["discovery"],
        "urn:gce:container-discovery", source="ui.fail",
    )
    deployment.network.fail_next("discovery.gridforum.org", times=1)
    with pytest.raises(TransportError):
        client.call("children", "")
    # a straightforward retry succeeds
    assert isinstance(client.call("children", ""), list)


def test_auth_service_down_blocks_protected_calls_only(deployment):
    """If the Authentication Service is down, the atomic step fails closed:
    protected calls error rather than silently skipping verification."""
    from repro.security.authservice import AssertionInterceptor
    from repro.services.batchscript import BSG_NAMESPACE, SdscBatchScriptGenerator
    from repro.soap.server import SoapService
    from repro.transport.server import HttpServer

    impl = SdscBatchScriptGenerator()
    server = HttpServer("failclosed.sdsc.edu", deployment.network)
    soap = SoapService("FailClosed", BSG_NAMESPACE)
    soap.expose(impl.listSchedulers)
    soap.add_interceptor(
        AssertionInterceptor(
            deployment.network, deployment.endpoints["auth"],
            spp_host="failclosed.sdsc.edu", clock=deployment.network.clock,
        )
    )
    url = soap.mount(server, "/bsg")

    from repro.security.authservice import ClientSecuritySession

    session = ClientSecuritySession(
        deployment.network, deployment.kdc, deployment.endpoints["auth"],
        ui_host="ui.failclosed",
    )
    session.login("alice", "alpine")
    client = session.secure(
        SoapClient(deployment.network, url, BSG_NAMESPACE, source="ui.failclosed")
    )
    assert client.call("listSchedulers") == ["LSF", "NQS"]
    deployment.network.take_down("auth.gridportal.org")
    try:
        with pytest.raises(Exception) as exc_info:
            client.call("listSchedulers")
        assert not isinstance(exc_info.value, AssertionError)
    finally:
        deployment.network.bring_up("auth.gridportal.org")
    assert client.call("listSchedulers") == ["LSF", "NQS"]
