"""The negative control: the three-tier stovepipe the paper criticises.

These tests make §1's problem statement concrete — UIs locked to middle
tiers, middle tiers locked to backends, no machine-readable interface — and
then show the web-services stack removing each lock.
"""

import pytest

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler
from repro.portal.legacy import (
    GatewayLegacyUI,
    GatewayStyleMiddleTier,
    HotPageStyleMiddleTier,
)
from repro.transport.client import HttpClient


@pytest.fixture
def backends(network):
    pbs = BatchScheduler("pbs.legacy", make_dialect("PBS"),
                         clock=network.clock, cpus=16)
    lsf = BatchScheduler("lsf.legacy", make_dialect("LSF"),
                         clock=network.clock, cpus=16)
    return pbs, lsf


def test_legacy_portal_works_inside_its_stovepipe(network, backends):
    pbs, _lsf = backends
    ui = GatewayLegacyUI(GatewayStyleMiddleTier(pbs), "legacy.iu.edu", network)
    script = make_dialect("PBS").generate(
        JobSpec(name="legacy", executable="echo", arguments=["it works"],
                wallclock_limit=60)
    )
    browser = HttpClient(network, "browser")
    response = browser.post_form(
        "http://legacy.iu.edu/gateway/submit",
        {"user": "alice", "script": script},
    )
    assert response.ok
    assert "it works" in response.body


def test_middle_tiers_locked_to_backend_kinds(backends):
    """Each middle tier refuses the other group's queuing systems."""
    pbs, lsf = backends
    with pytest.raises(InvalidRequestError):
        GatewayStyleMiddleTier(lsf)
    with pytest.raises(InvalidRequestError):
        HotPageStyleMiddleTier(pbs)


def test_ui_locked_to_middle_tier_vocabulary(network, backends):
    """Wiring the Gateway UI to the HotPage middle tier fails at call time:
    the interfaces never agreed on anything."""
    _pbs, lsf = backends
    ui = GatewayLegacyUI(HotPageStyleMiddleTier(lsf), "mismatched.edu", network)
    browser = HttpClient(network, "browser")
    response = browser.post_form(
        "http://mismatched.edu/gateway/submit",
        {"user": "alice", "script": "#!/bin/sh\necho x\n"},
    )
    # the server caught an AttributeError: no openUserContext on HotPage
    assert response.status == 500
    assert "openUserContext" in response.body


def test_legacy_portal_offers_no_machine_interface(network, backends):
    """No WSDL, no SOAP endpoint, no registry entry — the only interface is
    HTML meant for humans."""
    pbs, _lsf = backends
    GatewayLegacyUI(GatewayStyleMiddleTier(pbs), "legacy2.iu.edu", network)
    browser = HttpClient(network, "browser")
    assert browser.get("http://legacy2.iu.edu/gateway.wsdl").status == 404
    page = browser.get("http://legacy2.iu.edu/gateway").body
    assert "<form" in page  # HTML for a person, not an interface for a program


def test_web_services_remove_each_lock(deployment):
    """The positive control, side by side: through the common WSDL
    interface the same client drives either group's implementation, and
    the same service fronts any queuing system the provider supports."""
    from repro.services.batchscript import PythonStyleBsgClient

    spec = JobSpec(name="free", executable="/apps/x", cpus=2,
                   wallclock_limit=600)
    for endpoint, schedulers in (
        (deployment.endpoints["bsg-iu"], ("PBS", "GRD")),
        (deployment.endpoints["bsg-sdsc"], ("LSF", "NQS")),
    ):
        client = PythonStyleBsgClient(deployment.network, endpoint,
                                      source="ui.free")
        for scheduler in schedulers:
            script = client.generate(scheduler, spec)
            assert make_dialect(scheduler).parse(script).cpus == 2
