"""Figure 1 end to end: UI server -> UDDI inquiry -> WSDL bind -> SOAP invoke.

"The client examines the UDDI for the desired service and then binds to the
SSP ... The User Interface server can potentially bind to any SSP."
"""

import pytest

from repro.services.batchscript import BSG_NAMESPACE
from repro.uddi.service import UddiClient
from repro.wsdl.proxy import client_from_wsdl


@pytest.fixture(scope="module")
def uddi_client(deployment):
    return UddiClient(
        deployment.network, deployment.endpoints["uddi"], source="ui.fig1"
    )


def test_discover_bind_invoke(deployment, uddi_client):
    # 1. inquiry: find batch script generator services
    services = uddi_client.find_service("%batch script generator%")
    assert len(services) == 2

    # 2. follow the bindingTemplate to the WSDL and bind a client
    for service in services:
        binding = service.bindings[0]
        assert binding.wsdl_url.endswith(".wsdl")
        client = client_from_wsdl(
            deployment.network, binding.wsdl_url, source="ui.fig1"
        )
        assert client.endpoint == binding.access_point
        # 3. invoke through the bound proxy
        schedulers = client.listSchedulers()
        assert len(schedulers) == 2
        script = client.generateScript(
            schedulers[0],
            {"executable": "/apps/code", "cpus": "1", "wallTime": "600"},
        )
        assert script.startswith("#!/bin/sh")


def test_ui_server_can_bind_to_any_ssp(deployment, uddi_client):
    """The same client code works against either group's implementation —
    the stovepipe is broken."""
    services = uddi_client.find_service("%batch script generator%")
    by_provider = {}
    for service in services:
        client = client_from_wsdl(
            deployment.network, service.bindings[0].wsdl_url, source="ui.fig1"
        )
        by_provider[service.name] = set(client.listSchedulers())
    assert by_provider["Gateway Batch Script Generator"] == {"PBS", "GRD"}
    assert by_provider["HotPage Batch Script Generator"] == {"LSF", "NQS"}


def test_interface_tmodel_connects_the_groups(deployment, uddi_client):
    """Both groups' services implement the same interface tModel."""
    tmodels = uddi_client.find_tmodel("gce:BatchScriptGenerator")
    assert len(tmodels) == 1
    implementers = uddi_client.services_implementing(tmodels[0].key)
    assert len(implementers) == 2


def test_uddi_queuing_system_search_needs_string_convention(deployment, uddi_client):
    """The paper's UDDI critique: the only way to find 'a generator that
    supports LSF' is a substring scan over free-text descriptions."""
    hits = uddi_client.find_service(description_contains="LSF")
    assert [s.name for s in hits] == ["HotPage Batch Script Generator"]
    # while the proposed container hierarchy answers it structurally
    results = deployment.discovery.soap_query({"queuing-system": "LSF"}, "")
    assert len(results) == 1
    assert "hotpage" in results[0]["path"]
