"""Figure 4 end to end: shell, application services, portlets over wizard UIs."""

import pytest

from repro.portal.uiserver import UserInterfaceServer
from repro.portlets.registry import PortletEntry
from repro.transport.client import HttpClient
from repro.transport.server import HttpServer
from repro.wizard.generator import SchemaWizard


@pytest.fixture(scope="module")
def ui(deployment):
    return UserInterfaceServer(deployment, host="ui.full")


def test_two_interface_levels(deployment, ui):
    """The user interacts with the tool chest, never the grid directly: a
    shell 'submit' translates into gatekeeper traffic *from the service
    host*, not from the UI host."""
    shell = ui.make_shell("alice")
    before = deployment.network.stats.snapshot()
    shell.run("submit modi4.iu.edu hostname")
    delta = deployment.network.stats.delta(before)
    # UI -> globusrun service host; service host -> gatekeeper
    assert delta.per_host_requests.get("globusrun.sdsc.edu") == 1
    assert delta.per_host_requests.get("modi4.iu.edu", 0) >= 1


def test_pipeline_composes_three_core_services(deployment, ui):
    shell = ui.make_shell("alice")
    out = shell.run(
        "genscript GRD executable=/apps/ansys cpus=4 wallTime=1200"
        " | srbput /home/portal/ansys.grd"
    )
    assert "stored" in out
    script = shell.run("srbcat /home/portal/ansys.grd")
    assert "#$ -pe mpi 4" in script


def test_wizard_ui_inside_webform_portlet(deployment, ui):
    """§5.4's punchline: the wizard-generated application editor, hosted on
    one server, is aggregated into a portlet container on another, with
    forms posting through the portlet."""
    network = deployment.network
    # the application-host serves a wizard-generated editor
    apps_server = HttpServer("apps.full", network)
    wizard = SchemaWizard(network, source_host="apps.full")
    wizard.load("http://appws.gridportal.org/schema/application.xsd")
    webapp = wizard.deploy(apps_server, "queue-editor", "queue")

    # the portal aggregates it
    ui.container.registry.register(
        PortletEntry("queue-editor", "WebFormPortlet", webapp.url(),
                     title="Queue editor")
    )
    ui.container.set_layout("alice", ["queue-editor"])
    browser = HttpClient(network, "browser.full")
    page = browser.get(
        f"http://{ui.container.host}/portal?user=alice"
    ).body
    assert "Queue editor" in page
    assert 'name="queue.queuingSystem"' in page
    # the form action was remapped through the container
    assert "portlet=queue-editor" in page

    # submit the form through the portlet window
    import re

    action_match = re.search(r'action="([^"]+)"', page)
    assert action_match
    action = action_match.group(1).replace("&amp;", "&")
    response = browser.post_form(
        f"http://{ui.container.host}{action}",
        {
            "instanceName": "through-portlet",
            "queue.queuingSystem": "GRD",
            "queue.queueName": "workq",
            "queue.maxWallTime": "600",
            "queue.maxCpus": "8",
        },
    )
    assert response.ok
    assert "through-portlet" in webapp.instances
    assert "Saved" in response.body  # re-rendered inside the portal page


def test_session_archival_backbone(deployment, ui):
    """§5.1: instances of the instance schema 'form the backbone of a
    session archiving system, which allows users to view and edit old
    sessions'."""
    shell = ui.make_shell("bob")
    shell.run("runapp MM5 t3e.sdsc.edu forecastHours=12 | archive bob/wx/day1")
    cm = deployment.context
    descriptor = cm.getSessionDescriptor("bob", "wx", "day1")
    assert "MM5" in descriptor
    archive_key = cm.archiveSession("bob", "wx", "day1")
    cm.restoreSession(archive_key, "bob", "wx", "day1-recovered")
    assert cm.getSessionDescriptor("bob", "wx", "day1-recovered") == descriptor
