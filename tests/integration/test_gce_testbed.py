"""The GCE interoperable-web-services testbed scenario (paper ref [11]).

"Services were deployed as part of the GCE testbed" — this test replays a
full testbed day: both groups publish into every discovery system, each
group's portal consumes the *other* group's services, and a user's work
crosses all of them in one session.
"""

import pytest

from repro.discovery.wsil import InspectionDocument, inspect, publish_inspection
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.portal.uiserver import UserInterfaceServer
from repro.services.batchscript import JavaStyleBsgClient, PythonStyleBsgClient
from repro.transport.server import HttpServer
from repro.uddi.service import UddiClient
from repro.wsdl.proxy import client_from_wsdl


@pytest.fixture(scope="module")
def testbed(deployment):
    """Publish both groups' services in all three discovery systems."""
    network = deployment.network
    # WSIL federation on top of what PortalDeployment already registered
    iu_site = HttpServer("testbed.iu.edu", network)
    sdsc_site = HttpServer("testbed.sdsc.edu", network)
    publish_inspection(
        iu_site,
        InspectionDocument()
        .add_service("Gateway BSG", deployment.endpoints["bsg-iu"] + ".wsdl")
        .add_link("http://testbed.sdsc.edu/inspection.wsil"),
    )
    publish_inspection(
        sdsc_site,
        InspectionDocument()
        .add_service("HotPage BSG", deployment.endpoints["bsg-sdsc"] + ".wsdl"),
    )
    return deployment


def test_all_three_discovery_systems_agree(testbed):
    deployment = testbed
    network = deployment.network
    uddi = UddiClient(network, deployment.endpoints["uddi"], source="gce")
    # UDDI sees both implementations of the common interface
    tmodel = uddi.find_tmodel("gce:BatchScriptGenerator")[0]
    uddi_endpoints = {
        s.bindings[0].access_point
        for s in uddi.services_implementing(tmodel.key)
    }
    # the container hierarchy sees both
    container_endpoints = {
        hit["metadata"]["endpoint"][0]
        for hit in deployment.discovery.soap_query({"interface":
                                                    "urn:gce:batch-script-generator"}, "")
    }
    # the WSIL crawl sees both
    wsil_endpoints = {
        entry.wsdl_location.removesuffix(".wsdl")
        for entry in inspect(network, "http://testbed.iu.edu/inspection.wsil",
                             source="gce")
    }
    expected = {deployment.endpoints["bsg-iu"], deployment.endpoints["bsg-sdsc"]}
    assert uddi_endpoints == expected
    assert container_endpoints == expected
    assert wsil_endpoints == expected


def test_cross_group_consumption(testbed):
    """Each group's client drives the other group's service, discovered via
    UDDI, bound via WSDL — the testbed's core demonstration."""
    deployment = testbed
    network = deployment.network
    uddi = UddiClient(network, deployment.endpoints["uddi"], source="gce")
    services = {s.name: s for s in uddi.find_service("%batch script generator%")}
    spec = JobSpec(name="gce", executable="/apps/code", cpus=2,
                   wallclock_limit=1800, queue="workq")

    # the IU (Java-style) client uses SDSC's service
    sdsc_wsdl = services["HotPage Batch Script Generator"].bindings[0].wsdl_url
    sdsc_bound = client_from_wsdl(network, sdsc_wsdl, source="gateway.gce")
    iu_client = JavaStyleBsgClient(network, sdsc_bound.endpoint,
                                   source="gateway.gce")
    lsf_script = iu_client.generate("LSF", spec)
    assert make_dialect("LSF").parse(lsf_script).cpus == 2

    # the SDSC (Python-style) client uses IU's service
    iu_wsdl = services["Gateway Batch Script Generator"].bindings[0].wsdl_url
    iu_bound = client_from_wsdl(network, iu_wsdl, source="hotpage.gce")
    sdsc_client = PythonStyleBsgClient(network, iu_bound.endpoint,
                                       source="hotpage.gce")
    pbs_script = sdsc_client.generate("PBS", spec)
    assert make_dialect("PBS").parse(pbs_script).cpus == 2


def test_one_user_session_crosses_every_service(testbed):
    """A single scripted session touching discovery, script generation, job
    submission, data management, monitoring, and context archival."""
    deployment = testbed
    ui = UserInterfaceServer(deployment, host="ui.gce")
    ui.login("bob", "builder")
    shell = ui.make_shell("bob")
    outputs = shell.run_script(
        """
        gridload
        genscript NQS executable=/apps/mm5 arguments=6 cpus=8 wallTime=7200 > /home/portal/gce.nqs
        validate NQS < /home/portal/gce.nqs
        submit t3e.sdsc.edu mm5 6 count=8 walltime=7200 | srbput /home/portal/gce-forecast.out
        srbcat /home/portal/gce-forecast.out | archive bob/gce/day1
        """
    )
    assert "t3e.sdsc.edu" in outputs[0]
    assert "#QSUB" in outputs[2]
    assert outputs[3].startswith("stored")   # forecast landed in the SRB
    assert outputs[4].startswith("archived")
    descriptor = deployment.context.getSessionDescriptor("bob", "gce", "day1")
    assert "MM5 forecast complete" in descriptor


def test_wire_accounting_sanity(testbed):
    """The virtual network's books balance: per-host requests sum to the
    global request count."""
    stats = testbed.network.stats
    assert sum(stats.per_host_requests.values()) == stats.requests
    assert stats.bytes_sent > 0 and stats.bytes_received > 0
