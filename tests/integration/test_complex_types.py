"""The paper's stated next test, carried out.

§3.4: "SOAP and WSDL were adequate for the service's simple interface, but
we need to do further tests for services using WSDL complex types,
especially testing language interoperability."

These tests expose a service whose operations take and return genuinely
complex values — nested structs, arrays of structs, arrays of arrays,
binary members, nulls — and drive it with differently-typed clients
(our Java/Python analogue: typed values vs everything-stringly), checking
that structure survives and that the two styles agree where they should.
"""

import pytest

from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

NS = "urn:complex-types"


class ComplexService:
    """Operations with deliberately awkward signatures."""

    def summarize_jobs(self, jobs: list) -> dict:
        """Array of structs in, struct with nested arrays out."""
        by_queue: dict[str, list] = {}
        for job in jobs:
            by_queue.setdefault(job["queue"], []).append(job["name"])
        return {
            "total": len(jobs),
            "queues": sorted(by_queue),
            "names_by_queue": by_queue,
        }

    def transpose(self, matrix: list) -> list:
        """Array of arrays in and out."""
        if not matrix:
            return []
        return [list(row) for row in zip(*matrix)]

    def annotate(self, record: dict) -> dict:
        """Struct round trip with binary and null members preserved."""
        out = dict(record)
        out["annotated"] = True
        return out


@pytest.fixture
def service(network):
    server = HttpServer("complex.host", network)
    soap = SoapService("Complex", NS)
    impl = ComplexService()
    soap.expose(impl.summarize_jobs)
    soap.expose(impl.transpose)
    soap.expose(impl.annotate)
    url = soap.mount(server)
    return url


def test_array_of_structs(network, service):
    client = SoapClient(network, service, NS, source="ui")
    jobs = [
        {"name": "a", "queue": "workq", "cpus": 4},
        {"name": "b", "queue": "express", "cpus": 1},
        {"name": "c", "queue": "workq", "cpus": 8},
    ]
    summary = client.call("summarize_jobs", jobs)
    assert summary["total"] == 3
    assert summary["queues"] == ["express", "workq"]
    assert summary["names_by_queue"]["workq"] == ["a", "c"]


def test_array_of_arrays(network, service):
    client = SoapClient(network, service, NS, source="ui")
    assert client.call("transpose", [[1, 2, 3], [4, 5, 6]]) == [
        [1, 4], [2, 5], [3, 6]
    ]
    assert client.call("transpose", []) == []


def test_struct_with_binary_and_null_members(network, service):
    client = SoapClient(network, service, NS, source="ui")
    record = {
        "title": "run 42",
        "payload": b"\x00\x01\xff binary",
        "missing": None,
        "flags": [True, False],
        "nested": {"depth": 2, "leaf": {"x": 1.5}},
    }
    out = client.call("annotate", record)
    assert out["annotated"] is True
    assert out["payload"] == record["payload"]
    assert out["missing"] is None
    assert out["nested"]["leaf"]["x"] == 1.5


def test_typed_and_stringly_clients_agree_on_structure(network, service):
    """The language-interoperability half: a typed ('Java') client and a
    stringly ('Python') client calling the same complex-typed operation get
    structurally identical answers, differing only in leaf lexical types —
    which the common data model must tolerate, and does."""
    client = SoapClient(network, service, NS, source="ui")
    typed_jobs = [{"name": "n1", "queue": "workq", "cpus": 4}]
    stringly_jobs = [{"name": "n1", "queue": "workq", "cpus": "4"}]
    typed = client.call("summarize_jobs", typed_jobs)
    stringly = client.call("summarize_jobs", stringly_jobs)
    assert typed == stringly  # cpus never affects the summary's structure


def test_deeply_nested_roundtrip(network, service):
    client = SoapClient(network, service, NS, source="ui")
    deep = {"a": {"b": {"c": {"d": {"e": [1, [2, [3]]]}}}}}
    out = client.call("annotate", deep)
    assert out["a"]["b"]["c"]["d"]["e"] == [1, [2, [3]]]
