"""Tests for multi-line portal scripts."""

import pytest

from repro.portal.shell import PortalShell, ShellError


@pytest.fixture
def shell():
    shell = PortalShell("dana")
    shell.register("upper", lambda args, stdin: stdin.upper())
    store: dict[str, str] = {}
    shell.register_store(store.__getitem__, store.__setitem__)
    shell._store = store  # type: ignore[attr-defined]
    return shell


def test_script_runs_line_by_line(shell):
    outputs = shell.run_script(
        """
        # prepare the target
        setvar NAME world
        echo hello $NAME | upper
        """
    )
    assert outputs == ["world", "HELLO WORLD"]


def test_script_variables_persist_and_redirect(shell):
    shell.run_script(
        """
        setvar OUT results.txt
        echo computed value > $OUT
        """
    )
    assert shell._store["results.txt"] == "computed value"


def test_script_comments_and_blanks_skipped(shell):
    assert shell.run_script("# nothing\n\n   \n# more nothing\n") == []


def test_script_error_carries_line_number(shell):
    with pytest.raises(ShellError) as exc_info:
        shell.run_script("echo ok\nfrobnicate\n")
    assert str(exc_info.value).startswith("line 2:")


def test_full_portal_script(deployment):
    """An end-to-end portal script composing four core services."""
    from repro.portal.uiserver import UserInterfaceServer

    shell = UserInterfaceServer(deployment, host="ui.script").make_shell("alice")
    outputs = shell.run_script(
        """
        # generate, validate, and store a batch script
        setvar SCRIPT /home/portal/scripted.pbs
        genscript PBS executable=/apps/g98 arguments=120 cpus=4 wallTime=3600 > $SCRIPT
        validate PBS < $SCRIPT
        # run the chemistry code and archive the session
        runapp Gaussian modi4.iu.edu basisSize=120 | archive alice/scripted/run
        gridload
        """
    )
    assert outputs[1].startswith("#!/bin/sh")  # genscript echoed its output
    assert "#PBS" in outputs[2]                # validate passed it through
    assert "archived" in outputs[3]
    assert "modi4.iu.edu" in outputs[4]
    descriptor = deployment.context.getSessionDescriptor(
        "alice", "scripted", "run"
    )
    assert "SCF Done" in descriptor
