"""Tests for the shell's scripting extensions: variables and redirection."""

import pytest

from repro.portal.shell import PortalShell, ShellError


@pytest.fixture
def shell():
    shell = PortalShell("carol")
    shell.register("upper", lambda args, stdin: stdin.upper())
    store: dict[str, str] = {}
    shell.register_store(store.__getitem__, store.__setitem__)
    shell._test_store = store  # type: ignore[attr-defined]
    return shell


def test_variables_set_and_substituted(shell):
    shell.run("setvar TARGET modi4.iu.edu")
    assert shell.variables["TARGET"] == "modi4.iu.edu"
    assert shell.run("echo submitting to $TARGET") == "submitting to modi4.iu.edu"


def test_user_variable_predefined(shell):
    assert shell.run("echo $USER") == "carol"


def test_setvar_from_stdin(shell):
    shell.run("echo captured output | setvar RESULT")
    assert shell.variables["RESULT"] == "captured output"
    assert shell.run("echo $RESULT") == "captured output"


def test_undefined_variable_left_verbatim(shell):
    assert shell.run("echo $NOPE") == "$NOPE"


def test_bad_variable_name(shell):
    with pytest.raises(ShellError):
        shell.run("setvar 9lives x")


def test_output_redirection(shell):
    shell.run("echo hello store > results/out.txt")
    assert shell._test_store["results/out.txt"] == "hello store"


def test_input_redirection(shell):
    shell._test_store["in.txt"] = "from the store"
    assert shell.run("upper < in.txt") == "FROM THE STORE"


def test_full_pipeline_with_both_redirections(shell):
    shell._test_store["src"] = "abc"
    shell.run("cat < src | upper > dst")
    assert shell._test_store["dst"] == "ABC"


def test_redirection_with_variables(shell):
    shell.run("setvar OUT my/path")
    shell.run("echo x > $OUT")
    assert shell._test_store["my/path"] == "x"


def test_redirection_errors(shell):
    with pytest.raises(ShellError):
        shell.run("echo x >")
    with pytest.raises(ShellError):
        shell.run("upper <")
    with pytest.raises(ShellError):
        shell.run("> dst")
    bare = PortalShell()
    with pytest.raises(ShellError):
        bare.run("echo x > somewhere")
    with pytest.raises(ShellError):
        bare.run("cat < somewhere")


def test_srb_backed_redirection(deployment):
    """End to end: the UI server wires redirection to the SRB."""
    from repro.portal.uiserver import UserInterfaceServer

    ui = UserInterfaceServer(deployment, host="ui.shellredir")
    shell = ui.make_shell("alice")
    shell.run(
        "genscript PBS executable=/apps/x cpus=2 wallTime=600"
        " > /home/portal/redirected.pbs"
    )
    script = shell.run("cat < /home/portal/redirected.pbs")
    assert script.startswith("#!/bin/sh")
    assert "#PBS -l nodes=2" in script
    # validate the stored script by feeding it back through a service
    assert shell.run("validate PBS < /home/portal/redirected.pbs") == script
