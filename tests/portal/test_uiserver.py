import pytest

from repro.faults import AuthenticationError
from repro.portal.shell import ShellError
from repro.portal.uiserver import UserInterfaceServer


@pytest.fixture(scope="module")
def ui(deployment):
    return UserInterfaceServer(deployment)


def test_login_success_and_failure(ui):
    session = ui.login("alice", "alpine")
    assert session.logged_in
    assert "alice" in ui.sessions
    with pytest.raises(AuthenticationError):
        ui.login("alice", "not-her-password")


def test_shell_apps_and_describe(ui):
    shell = ui.make_shell("alice")
    listing = shell.run("apps")
    assert "Gaussian" in listing and "MM5" in listing
    descriptor = shell.run("describe ANSYS")
    assert "<application" in descriptor or "application" in descriptor


def test_shell_genscript_both_providers(ui):
    shell = ui.make_shell("alice")
    pbs = shell.run("genscript PBS executable=/apps/x cpus=2 wallTime=600")
    assert "#PBS" in pbs
    lsf = shell.run("genscript LSF executable=/apps/x cpus=2 wallTime=600")
    assert "#BSUB" in lsf


def test_shell_submit_and_pipe_to_srb(ui, deployment):
    shell = ui.make_shell("alice")
    out = shell.run(
        "submit blue.sdsc.edu echo result-data | srbput /home/portal/run.out"
    )
    assert "stored" in out
    assert shell.run("srbcat /home/portal/run.out") == "result-data\n"
    listing = shell.run("srbls /home/portal")
    assert "run.out" in listing


def test_shell_full_runapp_archival_pipeline(ui, deployment):
    shell = ui.make_shell("alice")
    out = shell.run(
        "runapp Gaussian modi4.iu.edu basisSize=80 | archive alice/chem/shelled"
    )
    assert "archived" in out
    descriptor = deployment.context.getSessionDescriptor(
        "alice", "chem", "shelled"
    )
    assert "SCF Done" in descriptor


def test_shell_usage_errors(ui):
    shell = ui.make_shell("alice")
    with pytest.raises(ShellError):
        shell.run("describe")  # missing argument
    with pytest.raises(ShellError):
        shell.run("submit onlyhost")
    assert "archive path must be" in shell.run("archive wrong-shape")


def test_client_proxy_cache(ui):
    a = ui.client("globusrun")
    assert ui.client("globusrun") is a
    with pytest.raises(KeyError):
        ui.client("nonexistent-service")


def test_remote_ui_portlet_registration(ui):
    ui.add_remote_ui_portlet(
        "appws-descriptors",
        "http://appws.gridportal.org/descriptors/Gaussian.xml",
        title="Gaussian descriptor",
    )
    assert "appws-descriptors" in ui.container.available_portlets()


def test_observed_portal_renders_trace_and_metrics_portlets():
    """build(observe=True) wires the whole observability plane: a traced
    request shows up in the trace portlet and the RED table on a portal
    page, and the deployment exposes the trace-collector endpoint."""
    from repro.portal.uiserver import PortalDeployment

    deployment = PortalDeployment.build(observe=True, observe_seed=3)
    try:
        ui = UserInterfaceServer(deployment)
        assert "traces" in deployment.endpoints
        ui.failover_client().call("supportsScheduler", "LSF")

        trace_portlet = ui.add_trace_portlet()
        metrics_portlet = ui.add_metrics_portlet()
        ui.container.set_layout("alice", [trace_portlet.name,
                                          metrics_portlet.name])
        page = ui.container.render_page("alice")
        assert '<table class="trace-view"' in page
        assert "call supportsScheduler" in page
        assert '<table class="red-metrics">' in page
        assert "supportsScheduler" in page
        # rendering the dashboards added no spans of their own
        assert "render_page" not in {
            s["name"] for s in deployment.observability.collector.spans()
        }
    finally:
        from repro.observability import Observability

        Observability.uninstall(deployment.network)
