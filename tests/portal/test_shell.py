import pytest

from repro.faults import InvalidRequestError
from repro.portal.shell import PortalShell, ShellError, parse_kv_args


@pytest.fixture
def shell():
    shell = PortalShell("tester")
    shell.register("upper", lambda args, stdin: stdin.upper(),
                   "upper - uppercase stdin")
    shell.register("join", lambda args, stdin: "+".join(args),
                   "join words")

    def fail(args, stdin):
        raise InvalidRequestError("bad command input")

    shell.register("faulty", fail)
    return shell


def test_builtin_commands(shell):
    assert shell.run_command("echo hello world") == "hello world"
    assert shell.run_command("cat", "pass through") == "pass through"
    assert "echo" in shell.run_command("help")


def test_pipeline_threads_stdout_to_stdin(shell):
    assert shell.run("echo grid portal | upper") == "GRID PORTAL"
    assert shell.run("echo a | upper | cat | cat") == "A"
    assert shell.commands_run == 6  # 2 stages + 4 stages


def test_quoting(shell):
    assert shell.run_command('echo "two words" second') == "two words second"


def test_unknown_command(shell):
    with pytest.raises(ShellError) as exc_info:
        shell.run("echo x | frobnicate")
    assert "frobnicate" in str(exc_info.value)


def test_empty_pipeline_stage(shell):
    with pytest.raises(ShellError):
        shell.run("echo x | | upper")
    with pytest.raises(ShellError):
        shell.run_command("")


def test_portal_errors_become_shell_errors(shell):
    with pytest.raises(ShellError) as exc_info:
        shell.run("faulty")
    assert "Portal.InvalidRequest" in str(exc_info.value)


def test_parse_kv_args():
    positional, settings = parse_kv_args(
        ["host1", "count=4", "/bin/x", "queue=workq", "a=b=c"]
    )
    assert positional == ["host1", "/bin/x"]
    assert settings == {"count": "4", "queue": "workq", "a": "b=c"}


def test_command_list_is_finite_and_sorted(shell):
    commands = shell.commands()
    assert commands == sorted(commands)
    assert {"echo", "cat", "help", "upper"} <= set(commands)
