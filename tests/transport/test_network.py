import pytest

from repro.transport.http import HttpRequest, HttpResponse, Url
from repro.transport.network import LinkSpec, TransportError, VirtualNetwork
from repro.transport.server import HttpServer


def echo(request: HttpRequest) -> HttpResponse:
    return HttpResponse(200, body=request.body)


def test_send_and_accounting(network):
    network.register("svc", echo)
    response = network.send(HttpRequest("POST", Url("svc", "/x"), body="hi"))
    assert response.body == "hi"
    assert network.stats.requests == 1
    assert network.stats.connections == 1
    assert network.stats.bytes_sent > 2
    assert network.stats.per_host_requests["svc"] == 1


def test_clock_advances_with_size(network):
    network.register("svc", echo)
    network.send(HttpRequest("POST", Url("svc", "/x"), body="x"))
    t1 = network.clock.now
    network.send(
        HttpRequest("POST", Url("svc", "/x"), body="x" * 10**6),
        new_connection=False,
    )
    t2 = network.clock.now - t1
    assert t2 > t1  # the big message takes longer than the small one


def test_keepalive_skips_connect_latency(network):
    network.register("svc", echo)
    network.send(HttpRequest("GET", Url("svc", "/")), new_connection=True)
    t_fresh = network.clock.now
    network.send(HttpRequest("GET", Url("svc", "/")), new_connection=False)
    t_reused = network.clock.now - t_fresh
    assert t_reused < t_fresh
    assert network.stats.connections == 1


def test_no_route(network):
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("ghost", "/")))


def test_host_down_and_up(network):
    network.register("svc", echo)
    network.take_down("svc")
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    network.bring_up("svc")
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok


def test_fail_next_injects_n_failures(network):
    network.register("svc", echo)
    network.fail_next("svc", times=2)
    for _ in range(2):
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", Url("svc", "/")))
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok


def test_fail_next_counts_decrement_and_never_go_negative(network):
    network.register("svc", echo)
    with pytest.raises(ValueError):
        network.fail_next("svc", times=-1)
    network.fail_next("svc", times=0)  # no-op, not a clear
    assert network.pending_failures("svc") == 0
    network.fail_next("svc", times=1)
    network.fail_next("svc", times=1)  # counts accumulate
    assert network.pending_failures("svc") == 2
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    assert network.pending_failures("svc") == 1
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    assert network.pending_failures("svc") == 0
    # the exhausted entry is gone: the next request sails through
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok
    assert network.pending_failures("svc") == 0


def test_take_down_and_bring_up_are_idempotent(network):
    network.register("svc", echo)
    for _ in range(3):
        network.take_down("svc")
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    for _ in range(3):
        network.bring_up("svc")
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok
    network.bring_up("svc")  # bringing up an up host stays a no-op
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok


def test_failed_attempts_still_count_in_stats(network):
    network.register("svc", echo)
    network.take_down("svc")
    for _ in range(4):
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", Url("svc", "/")))
    assert network.stats.per_host_requests["svc"] == 4
    assert network.stats.requests == 4
    assert network.stats.bytes_sent == 0  # nothing was delivered


def test_error_rate_is_deterministic():
    def run(seed):
        net = VirtualNetwork(seed=seed)
        net.register("svc", echo)
        net.set_error_rate("svc", 0.5)
        outcomes = []
        for _ in range(20):
            try:
                net.send(HttpRequest("GET", Url("svc", "/")))
                outcomes.append(True)
            except TransportError:
                outcomes.append(False)
        return outcomes

    assert run(3) == run(3)
    assert run(3) != run(4)
    assert not all(run(3)) and any(run(3))  # rate 0.5 actually bites


def test_error_rate_validation_and_clear(network):
    network.register("svc", echo)
    with pytest.raises(ValueError):
        network.set_error_rate("svc", 1.5)
    network.set_error_rate("svc", 1.0)
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    network.set_error_rate("svc", 0.0)
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok


def test_latency_spike_slows_but_does_not_fail(network):
    network.register("svc", echo)
    network.send(HttpRequest("GET", Url("svc", "/")), new_connection=False)
    baseline = network.clock.now
    network.set_latency_spike("svc", 1.0, 2.0)
    network.send(HttpRequest("GET", Url("svc", "/")), new_connection=False)
    assert network.clock.now - baseline >= 2.0


def test_flapping_host_follows_the_clock(network):
    network.register("svc", echo)
    network.set_flapping("svc", up_for=1.0, down_for=1.0, start=0.0)
    assert network.is_up("svc")
    network.clock.sleep_until(1.5)  # down phase
    assert not network.is_up("svc")
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    network.clock.sleep_until(2.1)  # back in an up phase
    assert network.is_up("svc")
    network.clock.sleep_until(3.5)
    network.bring_up("svc")  # cancels the schedule even mid-down-phase
    assert network.is_up("svc")


def test_partition_cuts_both_directions(network):
    network.register("svc", echo)
    network.partition({"client"}, {"svc"})
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    # unrelated sources still get through
    assert network.send(
        HttpRequest("GET", Url("svc", "/")), source="other"
    ).ok
    network.heal_partitions()
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok


def test_per_link_override(network):
    network.register("svc", echo)
    network.set_link("client", "svc", LinkSpec(latency=1.0, connect_latency=0.0))
    network.set_link("svc", "client", LinkSpec(latency=0.0, connect_latency=0.0))
    network.send(HttpRequest("GET", Url("svc", "/")), new_connection=False)
    assert network.clock.now >= 1.0


def test_stats_snapshot_delta(network):
    network.register("svc", echo)
    network.send(HttpRequest("GET", Url("svc", "/")))
    before = network.stats.snapshot()
    network.send(HttpRequest("GET", Url("svc", "/")))
    delta = network.stats.delta(before)
    assert delta.requests == 1
    assert delta.per_host_requests["svc"] == 1


def test_jitter_is_deterministic():
    def run(seed):
        net = VirtualNetwork(seed=seed)
        net.register("svc", echo)
        net.set_jitter(0.2)
        for _ in range(5):
            net.send(HttpRequest("GET", Url("svc", "/")))
        return net.clock.now

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_server_routing(network):
    server = HttpServer("multi", network)
    server.mount("/a", lambda r: HttpResponse(200, body="A"))
    server.mount("/a/deeper", lambda r: HttpResponse(200, body="D"))
    assert network.send(HttpRequest("GET", Url("multi", "/a"))).body == "A"
    assert network.send(HttpRequest("GET", Url("multi", "/a/x"))).body == "A"
    assert (
        network.send(HttpRequest("GET", Url("multi", "/a/deeper/y"))).body == "D"
    )
    assert network.send(HttpRequest("GET", Url("multi", "/nope"))).status == 404


def test_server_catches_handler_crash(network):
    server = HttpServer("crashy", network)

    def boom(request):
        raise RuntimeError("kaput")

    server.mount("/b", boom)
    response = network.send(HttpRequest("GET", Url("crashy", "/b")))
    assert response.status == 500
    assert "kaput" in response.body


def test_oneway_partition_is_asymmetric(network):
    network.register("east", echo)
    network.register("west", echo)
    network.partition_oneway({"east"}, {"west"})
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("west", "/")), source="east")
    # the reverse direction still flows (the heartbeat-breaking shape)
    assert network.send(HttpRequest("GET", Url("east", "/")), source="west").ok
    network.heal_partitions()
    assert network.send(HttpRequest("GET", Url("west", "/")), source="east").ok


def test_partial_partition_drops_probabilistically_and_counts(network):
    network.register("svc", echo)
    network.partition_partial({"client"}, {"svc"}, 0.5)
    outcomes = []
    for _ in range(40):
        try:
            network.send(HttpRequest("GET", Url("svc", "/")))
            outcomes.append(True)
        except TransportError:
            outcomes.append(False)
    # a flaky trunk: some attempts cross, some are dropped
    assert any(outcomes) and not all(outcomes)
    dropped = outcomes.count(False)
    assert network.stats.partition_blocked == dropped
    assert network.stats.per_pair_blocked["client->svc"] == dropped


def test_partial_partition_is_seed_deterministic():
    def run(seed):
        net = VirtualNetwork(seed=seed)
        net.register("svc", echo)
        net.partition_partial({"client"}, {"svc"}, 0.5)
        outcomes = []
        for _ in range(20):
            try:
                net.send(HttpRequest("GET", Url("svc", "/")))
                outcomes.append(True)
            except TransportError:
                outcomes.append(False)
        return outcomes

    assert run(5) == run(5)
    with pytest.raises(ValueError):
        VirtualNetwork().partition_partial({"a"}, {"b"}, 0.0)


def test_partitions_heal_selectively_by_id(network):
    network.register("east", echo)
    network.register("west", echo)
    first = network.partition({"client"}, {"east"})
    second = network.partition({"client"}, {"west"})
    assert [pid for pid, _ in network.active_partitions()] == [first, second]
    assert network.heal_partition(first)
    assert not network.heal_partition(first)  # already healed
    assert network.send(HttpRequest("GET", Url("east", "/"))).ok
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("west", "/")))
    spec = network.active_partitions()[0][1]
    assert spec.mode == "full" and "west" in spec.side_b


def test_partition_blocked_attempts_are_counted(network):
    network.register("svc", echo)
    network.partition({"client"}, {"svc"})
    for _ in range(3):
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", Url("svc", "/")))
    assert network.stats.partition_blocked == 3
    assert network.stats.per_pair_blocked == {"client->svc": 3}
    window = network.stats.snapshot()
    with pytest.raises(TransportError):
        network.send(HttpRequest("GET", Url("svc", "/")))
    delta = network.stats.delta(window)
    assert delta.partition_blocked == 1
    assert delta.per_pair_blocked == {"client->svc": 1}


def test_clear_failures_drops_armed_charges(network):
    network.register("svc", echo)
    network.fail_next("svc", times=3)
    assert network.pending_failures("svc") == 3
    assert network.clear_failures("svc") == 3
    assert network.pending_failures("svc") == 0
    assert network.send(HttpRequest("GET", Url("svc", "/"))).ok
