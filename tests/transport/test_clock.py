import pytest

from repro.transport.clock import SimClock


def test_starts_at_zero_and_advances():
    clock = SimClock()
    assert clock.now == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.0) == 1.5
    assert clock.now == 1.5


def test_custom_start_and_reset():
    clock = SimClock(100.0)
    assert clock.now == 100.0
    clock.advance(5)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(42.0)
    assert clock.now == 42.0


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)
