import pytest

from repro.transport.clock import SimClock


def test_starts_at_zero_and_advances():
    clock = SimClock()
    assert clock.now == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.0) == 1.5
    assert clock.now == 1.5


def test_custom_start_and_reset():
    clock = SimClock(100.0)
    assert clock.now == 100.0
    clock.advance(5)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(42.0)
    assert clock.now == 42.0


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_sleep_until():
    clock = SimClock(5.0)
    assert clock.sleep_until(8.5) == 8.5
    assert clock.now == 8.5
    # sleeping until the past is a no-op, not a time machine
    assert clock.sleep_until(3.0) == 8.5
    assert clock.now == 8.5


def test_many_tiny_advances_do_not_drift():
    # 10^6 advances of 10^-6 s: naive summation drifts by ~1e-11 here,
    # compensated summation stays exact to the last ulp
    clock = SimClock()
    for _ in range(1_000_000):
        clock.advance(1e-6)
    assert clock.now == pytest.approx(1.0, abs=1e-12)


def test_time_is_monotonic():
    clock = SimClock()
    last = clock.now
    for step in [1e-9, 0.1, 1e-12, 3.0, 0.0, 1e-7] * 50:
        clock.advance(step)
        assert clock.now >= last
        last = clock.now
    clock.sleep_until(last)  # exactly now: still monotonic
    assert clock.now == last
