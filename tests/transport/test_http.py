import pytest

from repro.transport.http import (
    HttpRequest,
    Url,
    encode_query,
    parse_query,
    parse_url,
)


def test_parse_url_forms():
    url = parse_url("http://host.example/path/sub?a=1&b=2")
    assert url.host == "host.example"
    assert url.path == "/path/sub"
    assert url.query == "a=1&b=2"
    assert str(url) == "http://host.example/path/sub?a=1&b=2"


def test_parse_url_defaults_and_errors():
    from repro.transport.network import TransportError

    assert parse_url("http://h").path == "/"
    assert parse_url("https://h/x").host == "h"
    with pytest.raises(TransportError):
        parse_url("ftp://h/x")
    with pytest.raises(TransportError):
        parse_url("http:///nohost")


def test_resolve_relative_references():
    base = Url("h", "/a/b/page", "q=1")
    assert base.resolve("http://other/x") == Url("other", "/x", "")
    assert base.resolve("/abs?x=1") == Url("h", "/abs", "x=1")
    assert base.resolve("sibling") == Url("h", "/a/b/sibling", "")


def test_query_roundtrip():
    params = {"key": "value with spaces", "sym": "a&b=c", "uni": "naïve"}
    assert parse_query(encode_query(params)) == params


def test_query_empty_and_valueless():
    assert parse_query("") == {}
    assert parse_query("a=&b=1") == {"a": "", "b": "1"}


def test_request_form_get_vs_post():
    get = HttpRequest("GET", Url("h", "/p", "a=1"))
    assert get.form() == {"a": "1"}
    post = HttpRequest("POST", Url("h", "/p"), body="a=2&b=x")
    assert post.form() == {"a": "2", "b": "x"}


def test_request_size_counts_body_bytes():
    small = HttpRequest("POST", Url("h", "/p"), body="x")
    big = HttpRequest("POST", Url("h", "/p"), body="x" * 1000)
    assert big.size - small.size == 999
