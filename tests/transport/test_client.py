from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.server import HttpServer


def _session_server(network, host="site"):
    server = HttpServer(host, network)
    hits = {"count": 0}

    def handler(request: HttpRequest) -> HttpResponse:
        hits["count"] += 1
        cookie = request.headers.get("Cookie", "")
        if "sid=" in cookie:
            return HttpResponse(200, body=f"welcome back ({cookie})")
        return HttpResponse(
            200, {"Set-Cookie": "sid=abc123; Path=/"}, "first visit"
        )

    server.mount("/", handler)
    return hits


def test_cookie_session_maintained(network):
    _session_server(network)
    client = HttpClient(network, "browser")
    first = client.get("http://site/")
    assert first.body == "first visit"
    assert client.cookies_for("site") == {"sid": "abc123"}
    second = client.get("http://site/")
    assert "welcome back" in second.body
    assert "sid=abc123" in second.body


def test_cookies_are_per_host(network):
    _session_server(network, "a")
    _session_server(network, "b")
    client = HttpClient(network, "browser")
    client.get("http://a/")
    assert client.cookies_for("a") and not client.cookies_for("b")


def test_keepalive_counts_one_connection(network):
    _session_server(network)
    client = HttpClient(network, "browser")
    for _ in range(5):
        client.get("http://site/")
    assert network.stats.connections == 1
    client.close()
    client.get("http://site/")
    assert network.stats.connections == 2


def test_no_keepalive_counts_each_connection(network):
    _session_server(network)
    client = HttpClient(network, "browser", keep_alive=False)
    for _ in range(3):
        client.get("http://site/")
    assert network.stats.connections == 3


def test_post_form_encoding(network):
    server = HttpServer("forms", network)
    seen = {}

    def handler(request: HttpRequest) -> HttpResponse:
        seen.update(request.form())
        return HttpResponse(200, body="ok")

    server.mount("/submit", handler)
    client = HttpClient(network, "browser")
    client.post_form("http://forms/submit", {"name": "a b", "x": "1&2"})
    assert seen == {"name": "a b", "x": "1&2"}


def test_clear_cookies(network):
    _session_server(network)
    client = HttpClient(network, "browser")
    client.get("http://site/")
    client.clear_cookies()
    assert client.cookies_for("site") == {}
