"""Satellite: trace propagation across the paper's composed-service chain.

One portal request crosses four hosts — portal → batch job web service →
Globusrun web service → GRAM gatekeeper — over two protocols (SOAP headers,
then the GRAM JSON payload).  Every hop must record the *same* trace id and
link to the correct parent, or the trace tells a broken story.
"""

import pytest

from repro.grid.resources import build_testbed
from repro.services.jobsubmit import (
    BATCHJOB_NAMESPACE,
    deploy_batchjob,
    deploy_globusrun,
)
from repro.soap.client import SoapClient

IDENTITY = "/O=G/CN=portal"


@pytest.fixture
def chain(network, ca, obs):
    """The full submission chain, traced; returns the portal-side client."""
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    _, globusrun_url = deploy_globusrun(network, testbed, proxy)
    _, batch_url = deploy_batchjob(network, globusrun_url)
    return SoapClient(
        network, batch_url, BATCHJOB_NAMESPACE, source="portal.npaci.edu"
    )


def test_one_trace_across_four_hosts(chain, obs):
    result = chain.call(
        "submit_batch", "blue.sdsc.edu", "echo traced count=1 walltime=60"
    )
    assert "traced" in result

    spans = obs.collector.spans()
    assert len({s["trace_id"] for s in spans}) == 1, "a single distributed trace"

    by_name = {s["name"]: s for s in spans}
    expected = {
        "call submit_batch",   # portal: logical client call
        "submit_batch",        # attempt + server (same name, two kinds)
        "call run",            # batch job service: client call to Globusrun
        "run",
        "gram.submit",         # Globusrun: GRAM protocol client hop
        "gatekeeper.submit",   # the gatekeeper, via the JSON payload
    }
    assert expected <= set(by_name)

    # parent/child links, outermost in: each server span's parent is the
    # calling side's attempt span, each nested client call parents on the
    # enclosing server span
    def one(name, kind):
        (span,) = [s for s in spans if s["name"] == name and s["kind"] == kind]
        return span

    logical = one("call submit_batch", "client")
    attempt = [
        s for s in spans if s["name"] == "submit_batch" and s["kind"] == "client"
    ][0]
    batch_server = one("submit_batch", "server")
    run_logical = one("call run", "client")
    run_server = one("run", "server")
    gram_hop = one("gram.submit", "client")
    gatekeeper = one("gatekeeper.submit", "server")

    assert logical["parent_id"] == ""
    assert attempt["parent_id"] == logical["span_id"]
    assert batch_server["parent_id"] == attempt["span_id"]
    assert run_logical["parent_id"] == batch_server["span_id"]
    assert run_server["parent_id"] != run_logical["span_id"]  # via the attempt
    assert gram_hop["parent_id"] == run_server["span_id"]
    assert gatekeeper["parent_id"] == gram_hop["span_id"]

    # hosts along the chain, as the paper's architecture names them
    assert batch_server["host"] == "batchjob.sdsc.edu"
    assert run_server["host"] == "globusrun.sdsc.edu"
    assert gatekeeper["host"] == "blue.sdsc.edu"
    assert gatekeeper["service"] == "Gatekeeper"


def test_chain_spans_nest_within_their_parents(chain, obs):
    chain.call("submit_batch", "blue.sdsc.edu", "echo nested walltime=60")
    spans = obs.collector.spans()
    by_id = {s["span_id"]: s for s in spans}
    for span in spans:
        if not span["parent_id"]:
            continue
        parent = by_id[span["parent_id"]]
        assert parent["start"] <= span["start"] <= span["end"] <= parent["end"]


def test_tree_depth_follows_the_architecture(chain, obs):
    chain.call("submit_batch", "blue.sdsc.edu", "echo deep walltime=60")
    trace_id = obs.collector.trace_ids()[0]
    depth = {
        (row["name"], row["kind"]): row["depth"]
        for row in obs.collector.tree(trace_id)
    }
    assert depth[("call submit_batch", "client")] == 0
    assert depth[("submit_batch", "server")] == 2
    assert depth[("run", "server")] == 5
    assert depth[("gatekeeper.submit", "server")] == 7
