"""Trace context: wire encoding round-trip and deterministic id minting."""

from repro.observability.context import (
    TRACE_HEADER,
    TRACE_NS,
    IdGenerator,
    TraceContext,
)
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName


class TestHeaderRoundTrip:
    def test_round_trip(self):
        ctx = TraceContext("a" * 32, "b" * 16, {"user": "alice", "tier": "gold"})
        back = TraceContext.from_headers([ctx.to_header()])
        assert back == ctx

    def test_round_trip_without_baggage(self):
        ctx = TraceContext("0f" * 16, "1e" * 8)
        assert TraceContext.from_headers([ctx.to_header()]) == ctx

    def test_header_namespace(self):
        entry = TraceContext("a" * 32, "b" * 16).to_header()
        assert entry.tag == TRACE_HEADER
        assert entry.tag.namespace == TRACE_NS

    def test_unrelated_headers_are_skipped(self):
        other = XmlElement(QName("urn:other", "Deadline"), text="5.0")
        ctx = TraceContext("a" * 32, "b" * 16)
        assert TraceContext.from_headers([other, ctx.to_header()]) == ctx

    def test_no_trace_header_returns_none(self):
        other = XmlElement(QName("urn:other", "Deadline"), text="5.0")
        assert TraceContext.from_headers([other]) is None
        assert TraceContext.from_headers([]) is None

    def test_malformed_header_returns_none(self):
        # a TraceContext entry missing its SpanId must be ignored, not raise
        entry = XmlElement(TRACE_HEADER)
        entry.child(QName(TRACE_NS, "TraceId"), text="a" * 32)
        assert TraceContext.from_headers([entry]) is None

    def test_baggage_without_key_is_dropped(self):
        entry = TraceContext("a" * 32, "b" * 16, {"k": "v"}).to_header()
        entry.child(QName(TRACE_NS, "Baggage"), text="orphan")
        back = TraceContext.from_headers([entry])
        assert back.baggage == {"k": "v"}


class TestIdGenerator:
    def test_widths_and_alphabet(self):
        ids = IdGenerator(seed=1)
        trace, span = ids.trace_id(), ids.span_id()
        assert len(trace) == 32 and len(span) == 16
        assert set(trace + span) <= set("0123456789abcdef")

    def test_same_seed_same_sequence(self):
        a, b = IdGenerator(seed=42), IdGenerator(seed=42)
        assert [a.trace_id() for _ in range(5)] == [b.trace_id() for _ in range(5)]
        assert [a.span_id() for _ in range(5)] == [b.span_id() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert IdGenerator(seed=1).trace_id() != IdGenerator(seed=2).trace_id()

    def test_no_collisions_in_a_long_run(self):
        ids = IdGenerator(seed=0)
        minted = [ids.span_id() for _ in range(500)]
        minted += [ids.trace_id() for _ in range(500)]
        assert len(set(minted)) == len(minted)

    def test_ids_fill_their_width(self):
        # the splitmix-style finalizer must spread small counters across all
        # 128 bits — no run of leading zeros betraying the counter
        ids = IdGenerator(seed=0)
        assert all(ids.trace_id()[:8] != "0" * 8 for _ in range(20))
