"""RED metrics: histograms with fixed bounds, merge laws, views."""

import pytest

from repro.observability.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    RedSeries,
)


class TestHistogram:
    def test_bounds_are_fixed_and_exponential(self):
        assert BUCKET_BOUNDS[0] == pytest.approx(0.001)
        assert all(
            b2 == pytest.approx(2 * b1)
            for b1, b2 in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:])
        )

    def test_record_lands_in_the_first_covering_bucket(self):
        h = Histogram()
        h.record(0.0015)  # > 1ms, <= 2ms
        assert h.counts[1] == 1 and sum(h.counts) == 1

    def test_overflow_bucket(self):
        h = Histogram()
        h.record(BUCKET_BOUNDS[-1] * 10)
        assert h.counts[-1] == 1

    def test_mean(self):
        h = Histogram()
        for v in (0.010, 0.030):
            h.record(v)
        assert h.mean == pytest.approx(0.020)

    def test_percentile_upper_bound_estimate(self):
        h = Histogram()
        for _ in range(99):
            h.record(0.0005)  # first bucket (<= 1ms)
        h.record(0.100)
        assert h.percentile(0.50) == pytest.approx(0.001)
        assert h.percentile(1.00) >= 0.100

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.95) == 0.0

    def test_merge_is_a_vector_add(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        for v in (0.002, 0.5):
            a.record(v)
            both.record(v)
        for v in (0.004, 7.0):
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a.counts == both.counts and a.count == both.count
        assert a.total == pytest.approx(both.total)


class TestRedSeries:
    def test_counts_requests_and_errors(self):
        series = RedSeries()
        series.record(0.010, error=False)
        series.record(0.020, error=True)
        assert (series.requests, series.errors) == (2, 1)
        assert series.latency.count == 2


class TestMetricsRegistry:
    def test_record_call_groups_by_service_method_side(self):
        reg = MetricsRegistry()
        reg.record_call("Echo", "shout", "server", 0.010, False)
        reg.record_call("Echo", "shout", "server", 0.050, True)
        reg.record_call("Echo", "shout", "client", 0.060, False)
        rows = reg.summary()["red"]
        server = next(r for r in rows if r["side"] == "server")
        assert server["requests"] == 2 and server["errors"] == 1
        assert server["mean_ms"] == pytest.approx(30.0)
        assert len(rows) == 2

    def test_gauges_keep_last_value(self):
        reg = MetricsRegistry()
        reg.set_gauge("breaker_state", "bsg.iu.edu", 2)
        reg.set_gauge("breaker_state", "bsg.iu.edu", 0)
        assert reg.summary()["gauges"] == [
            {"gauge": "breaker_state", "label": "bsg.iu.edu", "value": 0.0}
        ]

    def test_event_counters(self):
        reg = MetricsRegistry()
        for _ in range(3):
            reg.count_event("Resilience.Retry")
        assert reg.summary()["events"] == [
            {"code": "Resilience.Retry", "count": 3}
        ]

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.record_call("S", "m", "server", 0.010, False)
        b.record_call("S", "m", "server", 0.030, True)
        b.count_event("Journal.Append")
        b.set_gauge("queue_depth", "host", 4)
        a.merge(b)
        row = a.summary()["red"][0]
        assert row["requests"] == 2 and row["errors"] == 1
        assert a.events == {"Journal.Append": 1}
        assert a.gauges[("queue_depth", "host")] == 4.0

    def test_slowest_ranks_server_side_by_mean(self):
        reg = MetricsRegistry()
        reg.record_call("A", "fast", "server", 0.001, False)
        reg.record_call("B", "slow", "server", 0.900, False)
        reg.record_call("C", "client only", "client", 9.0, False)
        rows = reg.slowest(limit=1)
        assert [r["method"] for r in rows] == ["slow"]
        assert all(r["side"] == "server" for r in reg.slowest())
