"""RED metrics: histograms with fixed bounds, merge laws, views."""

import pytest

from repro.observability.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    RedSeries,
)


class TestHistogram:
    def test_bounds_are_fixed_and_exponential(self):
        assert BUCKET_BOUNDS[0] == pytest.approx(0.001)
        assert all(
            b2 == pytest.approx(2 * b1)
            for b1, b2 in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:])
        )

    def test_record_lands_in_the_first_covering_bucket(self):
        h = Histogram()
        h.record(0.0015)  # > 1ms, <= 2ms
        assert h.counts[1] == 1 and sum(h.counts) == 1

    def test_overflow_bucket(self):
        h = Histogram()
        h.record(BUCKET_BOUNDS[-1] * 10)
        assert h.counts[-1] == 1

    def test_mean(self):
        h = Histogram()
        for v in (0.010, 0.030):
            h.record(v)
        assert h.mean == pytest.approx(0.020)

    def test_percentile_upper_bound_estimate(self):
        h = Histogram()
        for _ in range(99):
            h.record(0.0005)  # first bucket (<= 1ms)
        h.record(0.100)
        assert h.percentile(0.50) == pytest.approx(0.001)
        assert h.percentile(1.00) >= 0.100

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.95) == 0.0

    def test_merge_is_a_vector_add(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        for v in (0.002, 0.5):
            a.record(v)
            both.record(v)
        for v in (0.004, 7.0):
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a.counts == both.counts and a.count == both.count
        assert a.total == pytest.approx(both.total)


class TestRedSeries:
    def test_counts_requests_and_errors(self):
        series = RedSeries()
        series.record(0.010, error=False)
        series.record(0.020, error=True)
        assert (series.requests, series.errors) == (2, 1)
        assert series.latency.count == 2


class TestMetricsRegistry:
    def test_record_call_groups_by_service_method_side(self):
        reg = MetricsRegistry()
        reg.record_call("Echo", "shout", "server", 0.010, False)
        reg.record_call("Echo", "shout", "server", 0.050, True)
        reg.record_call("Echo", "shout", "client", 0.060, False)
        rows = reg.summary()["red"]
        server = next(r for r in rows if r["side"] == "server")
        assert server["requests"] == 2 and server["errors"] == 1
        assert server["mean_ms"] == pytest.approx(30.0)
        assert len(rows) == 2

    def test_gauges_keep_last_value(self):
        reg = MetricsRegistry()
        reg.set_gauge("breaker_state", "bsg.iu.edu", 2)
        reg.set_gauge("breaker_state", "bsg.iu.edu", 0)
        assert reg.summary()["gauges"] == [
            {"gauge": "breaker_state", "label": "bsg.iu.edu", "value": 0.0}
        ]

    def test_event_counters(self):
        reg = MetricsRegistry()
        for _ in range(3):
            reg.count_event("Resilience.Retry")
        assert reg.summary()["events"] == [
            {"code": "Resilience.Retry", "count": 3}
        ]

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.record_call("S", "m", "server", 0.010, False)
        b.record_call("S", "m", "server", 0.030, True)
        b.count_event("Journal.Append")
        b.set_gauge("queue_depth", "host", 4)
        a.merge(b)
        row = a.summary()["red"][0]
        assert row["requests"] == 2 and row["errors"] == 1
        assert a.events == {"Journal.Append": 1}
        assert a.gauges[("queue_depth", "host")] == 4.0

    def test_slowest_ranks_server_side_by_mean(self):
        reg = MetricsRegistry()
        reg.record_call("A", "fast", "server", 0.001, False)
        reg.record_call("B", "slow", "server", 0.900, False)
        reg.record_call("C", "client only", "client", 9.0, False)
        rows = reg.slowest(limit=1)
        assert [r["method"] for r in rows] == ["slow"]
        assert all(r["side"] == "server" for r in reg.slowest())


# -- merge laws (hypothesis): associative, commutative, lossless --------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.observability.metrics import QuantileSketch  # noqa: E402

durations = st.lists(
    st.floats(min_value=1e-7, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    max_size=30,
)


def _hist(values) -> Histogram:
    h = Histogram()
    for v in values:
        h.record(v)
    return h


def _sketch(values) -> QuantileSketch:
    s = QuantileSketch()
    for v in values:
        s.record(v)
    return s


@given(a=durations, b=durations, c=durations)
@settings(max_examples=50, deadline=None)
def test_histogram_merge_is_associative_and_commutative(a, b, c):
    left = _hist(a)
    left.merge(_hist(b))
    left.merge(_hist(c))

    bc = _hist(b)
    bc.merge(_hist(c))
    right = _hist(a)
    right.merge(bc)

    flipped = _hist(b)
    flipped.merge(_hist(a))
    flipped.merge(_hist(c))

    direct = _hist(a + b + c)
    for other in (right, flipped, direct):
        assert left.counts == other.counts
        assert left.count == other.count
        assert left.total == pytest.approx(other.total)
    assert left.percentile(0.99) == direct.percentile(0.99)


@given(a=durations, b=durations, c=durations)
@settings(max_examples=50, deadline=None)
def test_quantile_sketch_merge_is_associative_and_commutative(a, b, c):
    left = _sketch(a)
    left.merge(_sketch(b))
    left.merge(_sketch(c))

    bc = _sketch(b)
    bc.merge(_sketch(c))
    right = _sketch(a)
    right.merge(bc)

    flipped = _sketch(c)
    flipped.merge(_sketch(b))
    flipped.merge(_sketch(a))

    direct = _sketch(a + b + c)
    for other in (right, flipped, direct):
        assert left.counts == other.counts
        assert left.count == other.count
    assert left.quantile(0.5) == direct.quantile(0.5)
    assert left.quantile(0.99) == direct.quantile(0.99)
