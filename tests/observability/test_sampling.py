"""Tail-based sampling: the policy chain, seeded determinism, accounting,
and the sampling-mode SOAP header."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import InvalidRequestError
from repro.observability.collector import TraceCollector
from repro.observability.runtime import Observability
from repro.observability.sampling import (
    KeepErrorsPolicy,
    KeepEventsPolicy,
    LatencyOutlierPolicy,
    ProbabilisticPolicy,
    TailSampler,
    TraceBuffer,
    sampling_from_headers,
    sampling_header,
)
from repro.observability.tracer import Span
from repro.resilience import events as resilience_events


def _offer_trace(
    sampler,
    trace_id: str,
    *,
    error: str = "",
    event: str = "",
    duration: float = 0.002,
):
    """One two-span trace through the sampler: child first, root last."""
    child = Span(
        trace_id, f"c{trace_id[:14]}", f"r{trace_id[:14]}",
        "op", "server", "Svc", "svc.example.org", 0.0, duration / 2, error,
    )
    if event:
        child.add_event(0.0, event)
    root = Span(
        trace_id, f"r{trace_id[:14]}", "",
        "call op", "client", "Svc", "portal", 0.0, duration,
    )
    sampler.offer(child)
    sampler.offer(root)


def _sampler(rate: float = 0.0, **kwargs) -> tuple[TailSampler, TraceCollector]:
    sampler = TailSampler(seed=42, rate=rate, **kwargs)
    collector = TraceCollector()
    sampler.bind(collector)
    return sampler, collector


class TestPolicyChain:
    def test_errors_are_always_kept(self):
        sampler, collector = _sampler(rate=0.0)
        _offer_trace(sampler, "a" * 32, error="Portal.Invalid")
        _offer_trace(sampler, "b" * 32)
        assert sampler.kept_traces == 1 and sampler.dropped_traces == 1
        assert sampler.kept_by_policy == {"errors": 1}
        assert {s["trace_id"] for s in collector.spans()} == {"a" * 32}

    def test_resilience_events_keep_a_successful_trace(self):
        sampler, collector = _sampler(rate=0.0)
        _offer_trace(sampler, "c" * 32, event=resilience_events.BREAKER)
        assert sampler.kept_traces == 1
        assert sampler.kept_by_policy == {"events": 1}
        assert len(collector.spans()) == 2

    def test_latency_outliers_are_kept_once_a_baseline_exists(self):
        policy = LatencyOutlierPolicy(quantile=0.99, min_baseline=8)
        sampler = TailSampler(policies=[policy])
        collector = TraceCollector()
        sampler.bind(collector)
        for i in range(20):
            _offer_trace(sampler, f"{i:032x}", duration=0.002)
        _offer_trace(sampler, "f" * 32, duration=5.0)
        assert sampler.kept_by_policy.get("latency-outlier", 0) >= 1
        assert "f" * 32 in {s["trace_id"] for s in collector.spans()}

    def test_outlier_policy_needs_its_baseline_first(self):
        policy = LatencyOutlierPolicy(quantile=0.99, min_baseline=8)
        trace = TraceBuffer("d" * 32)
        trace.root = Span("d" * 32, "r", "", "op", "client", "S", "h", 0.0, 99.0)
        trace.spans = [trace.root]
        # the very first root is enormous, but with no baseline it only
        # feeds the sketch — everything would be an outlier otherwise
        assert policy.decide(trace) is None

    def test_probabilistic_policy_is_a_pure_function_of_id_and_seed(self):
        a = ProbabilisticPolicy(rate=0.3, seed=9)
        b = ProbabilisticPolicy(rate=0.3, seed=9)
        other = ProbabilisticPolicy(rate=0.3, seed=10)
        # the coin hashes the leading 16 hex chars, so vary those
        ids = [f"{i:016x}" + "0" * 16 for i in range(400)]
        decisions_a = [a._coin(tid) < 0.3 for tid in ids]
        decisions_b = [b._coin(tid) < 0.3 for tid in ids]
        decisions_other = [other._coin(tid) < 0.3 for tid in ids]
        assert decisions_a == decisions_b
        assert decisions_a != decisions_other
        kept = sum(decisions_a)
        assert 0 < kept < len(ids)  # an actual fraction, not all-or-nothing

    def test_chain_order_errors_beat_the_coin(self):
        sampler, _ = _sampler(rate=1.0)
        _offer_trace(sampler, "e" * 32, error="Portal.Invalid")
        assert sampler.kept_by_policy == {"errors": 1}


class TestTailSampler:
    def test_kept_traces_export_contiguously(self):
        sampler, collector = _sampler(rate=1.0)
        _offer_trace(sampler, "1" * 32)
        _offer_trace(sampler, "2" * 32)
        order = [s["trace_id"] for s in collector.spans()]
        assert order == ["1" * 32] * 2 + ["2" * 32] * 2

    def test_dropped_traces_never_reach_the_collector(self):
        sampler, collector = _sampler(rate=0.0)
        _offer_trace(sampler, "3" * 32)
        assert len(collector.spans()) == 0
        assert sampler.dropped_traces == 1 and sampler.dropped_spans == 2

    def test_buffer_overflow_decides_the_oldest_incomplete_trace(self):
        sampler, _ = _sampler(rate=0.0, max_buffered_traces=2)
        for i in range(3):  # children only: traces never complete
            tid = f"{i:032x}"
            sampler.offer(Span(tid, f"s{i}", "missing-root", "op",
                               "server", "S", "h", 0.0, 1.0))
        assert sampler.overflow_decisions == 1
        assert sampler.buffered_traces == 2

    def test_flush_decides_everything_still_buffered(self):
        sampler, _ = _sampler(rate=0.0)
        sampler.offer(Span("9" * 32, "s", "gone", "op", "server", "S", "h",
                           0.0, 1.0, "Portal.Invalid"))
        assert sampler.buffered_traces == 1
        sampler.flush()
        assert sampler.buffered_traces == 0
        assert sampler.kept_traces == 1  # error policy still applies

    def test_accounting_reconciles_exactly(self):
        sampler, collector = _sampler(rate=0.3)
        for i in range(50):
            _offer_trace(sampler, f"{i:032x}",
                         error="Portal.Invalid" if i % 10 == 0 else "")
        acct = sampler.accounting()
        assert acct["kept_traces"] + acct["dropped_traces"] == 50
        assert acct["kept_spans"] + acct["dropped_spans"] == 100
        assert acct["kept_spans"] == len(collector.spans())
        assert acct["kept_by_policy"]["errors"] == 5
        assert acct["mode"] == "tail"


class TestSamplingHeader:
    def test_round_trip(self):
        entry = sampling_header("tail")
        assert sampling_from_headers([entry]) == "tail"

    def test_absent_header_is_empty_mode(self):
        assert sampling_from_headers([]) == ""

    def test_header_entries_are_cached(self):
        assert sampling_header("tail") is sampling_header("tail")

    def test_inbound_mode_tally(self):
        sampler, _ = _sampler()
        sampler.note_inbound("tail")
        sampler.note_inbound("tail")
        assert sampler.accounting()["inbound_modes"] == {"tail": 2}


class TestEndToEnd:
    def test_red_metrics_stay_exact_while_traces_are_sampled(
        self, network, echo_stack
    ):
        """The accounting contract: sampling thins the collector, never
        the RED counters."""
        obs = Observability.install(
            network, seed=3,
            sampling=TailSampler(seed=3, rate=0.0,
                                 min_outlier_baseline=10_000),
        )
        try:
            _, client = echo_stack
            for i in range(20):
                client.call("shout", f"m{i}")
            try:
                client.call("reject", "bad")
            except InvalidRequestError:
                pass
            obs.flush()
            red = obs.metrics.red[("Echo", "shout", "server")]
            assert red.requests == 20 and red.errors == 0
            acct = obs.sampler.accounting()
            assert acct["dropped_traces"] == 20
            assert acct["kept_traces"] == 1  # the error
            kept = {s["trace_id"] for s in obs.collector.spans()}
            assert len(kept) == 1
            errors = [s for s in obs.collector.spans() if s["error"]]
            assert errors, "the kept trace is the failing one"
        finally:
            Observability.uninstall(network)

    def test_same_seed_installs_keep_identical_trace_sets(
        self, network, echo_stack
    ):
        def run() -> list[str]:
            obs = Observability.install(network, seed=11, sampling=True)
            try:
                _, client = echo_stack
                for i in range(30):
                    client.call("shout", f"m{i}")
                obs.flush()
                return sorted(obs.collector.trace_ids())
            finally:
                Observability.uninstall(network)

        assert run() == run()


@given(
    seed=st.integers(min_value=0, max_value=2**63 - 1),
    keys=st.lists(
        st.integers(min_value=0, max_value=2**128 - 1),
        max_size=30, unique=True,
    ),
    rate=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_identical_seeds_keep_identical_trace_sets(seed, keys, rate):
    """The ISSUE's property: the kept-trace set is a pure function of
    (seed, traffic) — no hidden process-global randomness anywhere."""
    ids = [f"{key:032x}" for key in keys]

    def kept() -> list[str]:
        sampler = TailSampler(seed=seed, rate=rate)
        collector = TraceCollector()
        sampler.bind(collector)
        for tid in ids:
            _offer_trace(sampler, tid)
        sampler.flush()
        return collector.trace_ids()

    first, second = kept(), kept()
    assert first == second
    assert set(first) <= set(ids)
