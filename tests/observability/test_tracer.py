"""Tracer unit tests: nesting, parenting, error mapping, events."""

import pytest

from repro.faults import InvalidRequestError
from repro.observability.collector import TraceCollector
from repro.observability.context import IdGenerator, TraceContext
from repro.observability.tracer import Tracer
from repro.transport.clock import SimClock


@pytest.fixture
def tracer():
    clock = SimClock()
    return Tracer(clock, IdGenerator(seed=3), TraceCollector())


def test_root_span_starts_fresh_trace(tracer):
    span = tracer.start("root", kind="server", service="S", host="h")
    assert span.parent_id == ""
    assert len(span.trace_id) == 32
    tracer.end(span)
    assert len(tracer.collector) == 1


def test_ambient_nesting(tracer):
    root = tracer.start("root")
    child = tracer.start("child")
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    tracer.end(child)
    tracer.end(root)
    # export order is finish order: innermost first
    names = [s["name"] for s in tracer.collector.spans()]
    assert names == ["child", "root"]


def test_explicit_parent_beats_ambient(tracer):
    ambient = tracer.start("ambient")
    remote = TraceContext("f" * 32, "e" * 16)
    span = tracer.start("server side", parent=remote)
    assert span.trace_id == remote.trace_id
    assert span.parent_id == remote.span_id
    tracer.end(span)
    tracer.end(ambient)
    # export what the remote caller's tracer would have, so this collector's
    # contents satisfy the offline checker the CI export hook runs
    tracer.collector.export({
        "trace_id": remote.trace_id, "span_id": remote.span_id,
        "parent_id": "", "name": "remote caller", "kind": "client",
        "service": "remote", "host": "remote", "start": span.start,
        "end": span.end, "error": "", "attributes": {}, "events": [],
    })


def test_span_times_come_from_the_clock(tracer):
    span = tracer.start("timed")
    tracer.clock.advance(1.5)
    tracer.end(span)
    assert span.duration == pytest.approx(1.5)


def test_context_manager_success(tracer):
    with tracer.span("ok") as span:
        pass
    assert span.error == ""
    assert tracer.current() is None


def test_context_manager_maps_portal_error_code(tracer):
    with pytest.raises(InvalidRequestError):
        with tracer.span("bad"):
            raise InvalidRequestError("nope")
    exported = tracer.collector.spans()[0]
    assert exported["error"] == "Portal.InvalidRequest"


def test_context_manager_maps_unknown_exception_to_type_name(tracer):
    with pytest.raises(ZeroDivisionError):
        with tracer.span("boom"):
            1 / 0
    assert tracer.collector.spans()[0]["error"] == "ZeroDivisionError"


def test_abandon_drops_without_export(tracer):
    span = tracer.start("doomed")
    tracer.abandon(span)
    assert len(tracer.collector) == 0
    assert tracer.current() is None


def test_ending_a_parent_unwinds_open_descendants(tracer):
    root = tracer.start("root")
    tracer.start("leaked child")
    tracer.end(root)
    # the child was popped (not exported); only the root reached the collector
    assert [s["name"] for s in tracer.collector.spans()] == ["root"]
    assert tracer.current() is None


def test_annotate_attaches_to_current_span(tracer):
    with tracer.span("work") as span:
        tracer.clock.advance(0.25)
        assert tracer.annotate("Resilience.Retry", attempt=2) is True
    event = span.events[0]
    assert event.name == "Resilience.Retry"
    assert event.t == pytest.approx(0.25)
    assert event.attributes == {"attempt": 2}
    assert tracer.collector.spans()[0]["events"][0]["name"] == "Resilience.Retry"


def test_annotate_without_open_span_is_dropped(tracer):
    assert tracer.annotate("nobody listening") is False
