"""Observability fixtures, including the CI trace-export hook.

When ``REPRO_TRACE_DIR`` is set (the tier-2 trace CI job does this), every
trace collector a test filled is exported as one ``.jsonl`` file so
``python -m repro.observability.report --check`` can re-verify the span
invariants — parent references resolve, children nest inside their
parents, per-host clocks never run backwards — offline.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.durability.journal import set_journal_listener
from repro.faults import InvalidRequestError
from repro.observability.collector import created_collectors
from repro.observability.runtime import Observability
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

ECHO_NAMESPACE = "urn:test:echo"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


@pytest.fixture(autouse=True)
def export_traces(request):
    """Export every trace this test collected (only with REPRO_TRACE_DIR),
    and always clear the module-level journal listener afterwards so an
    installed bundle cannot leak into other suites."""
    before = len(created_collectors())
    yield
    set_journal_listener(None)
    out_dir = os.environ.get("REPRO_TRACE_DIR")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    for index, collector in enumerate(created_collectors()[before:]):
        if not len(collector):
            continue
        name = _slug(f"{request.node.name}-{index}")
        path = os.path.join(out_dir, f"{name}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(collector.to_json() + "\n")


@pytest.fixture
def obs(network):
    """An observability bundle installed on the test's network."""
    bundle = Observability.install(network, seed=7)
    yield bundle
    Observability.uninstall(network)


class _Echo:
    def shout(self, text: str) -> str:
        return text.upper()

    def reject(self, text: str) -> str:
        raise InvalidRequestError(f"rejected {text!r}")


@pytest.fixture
def echo_stack(network):
    """A tiny service + client pair on the test network.

    Returns (service, client); install ``obs`` first (fixture order does
    not matter — discovery is lazy) to see it traced.
    """
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose_object(_Echo())
    url = service.mount(HttpServer("echo.example.org", network), "/echo")
    client = SoapClient(network, url, ECHO_NAMESPACE, source="portal")
    return service, client
