"""The SLO engine: declarative objectives, multi-window burn-rate alerts,
exemplar links, and merge-order-independent window verdicts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.collector import TraceCollector
from repro.observability.metrics import MetricsRegistry, RedSeries
from repro.observability.slo import (
    SLO,
    BurnRatePair,
    SloEngine,
    default_pairs,
    default_slos,
)
from repro.transport.clock import SimClock


def _engine(collector=None, **kwargs):
    clock = SimClock()
    metrics = MetricsRegistry()
    engine = SloEngine(clock, metrics, collector=collector, **kwargs)
    return clock, metrics, engine


AVAIL = SLO(
    "submit-availability", service="Job", method="submit",
    objective="availability", window=12.0, budget=0.1,
)
LAT = SLO(
    "submit-latency", service="Job", method="submit",
    objective="latency", threshold=4.096, window=12.0, budget=0.1,
)


class TestSloDefinition:
    def test_window_and_budget_are_required(self):
        with pytest.raises(TypeError):
            SLO("x", service="S", method="m")  # no window/budget

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", service="S", method="m", objective="vibes",
                window=1.0, budget=0.1)
        with pytest.raises(ValueError):
            SLO("x", service="S", method="m", window=0.0, budget=0.1)
        with pytest.raises(ValueError):
            SLO("x", service="S", method="m", window=1.0, budget=1.5)

    def test_target_is_the_complement_of_the_budget(self):
        assert AVAIL.target == pytest.approx(0.9)

    def test_default_pairs_scale_with_the_window(self):
        fast_page, slow_ticket = default_pairs(12.0)
        assert fast_page == BurnRatePair(slow=4.0, fast=1.0, factor=6.0)
        assert slow_ticket == BurnRatePair(slow=12.0, fast=3.0, factor=2.0)

    def test_duplicate_definition_is_rejected(self):
        _, _, engine = _engine()
        engine.define(AVAIL)
        with pytest.raises(ValueError):
            engine.define(AVAIL)

    def test_default_slos_cover_the_submission_path(self):
        slos = default_slos()
        assert {s.objective for s in slos} == {"availability", "latency"}
        assert all(s.window > 0 and 0 < s.budget < 1 for s in slos)


class TestBurnRateAlerting:
    def _tick(self, clock, engine, series, good=0, bad=0):
        clock.advance(1.0)
        for _ in range(good):
            series.record(0.001, False)
        for _ in range(bad):
            series.record(0.001, True)
        return engine.evaluate()

    def test_alert_fires_when_both_windows_burn(self):
        clock, metrics, engine = _engine()
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        active = self._tick(clock, engine, series, good=1)
        assert active == []
        active = self._tick(clock, engine, series, bad=3)
        assert len(active) == 1
        alert = active[0]
        assert alert["slo"] == "submit-availability"
        assert alert["slow_burn"] >= alert["factor"]
        assert alert["fast_burn"] >= alert["factor"]
        assert engine.alert_log[-1]["state"] == "firing"

    def test_alert_resolves_when_the_fast_window_drains(self):
        clock, metrics, engine = _engine()
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        self._tick(clock, engine, series, bad=3)
        assert engine.active
        while engine.active:
            self._tick(clock, engine, series, good=2)
        log = engine.alerts(active_only=False)
        assert [entry["state"] for entry in log] == ["firing", "resolved"]
        assert log[1]["duration"] > 0

    def test_a_healthy_service_never_alerts(self):
        clock, metrics, engine = _engine()
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        for _ in range(20):
            assert self._tick(clock, engine, series, good=5) == []
        assert engine.alert_log == []

    def test_min_requests_gates_the_windows(self):
        clock, metrics, engine = _engine(min_requests=10)
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        # 3 bad requests is a 100% error rate, but too few to page on
        assert self._tick(clock, engine, series, bad=3) == []

    def test_latency_objective_counts_slow_requests_as_bad(self):
        clock, metrics, engine = _engine()
        engine.define(LAT)
        series = metrics.series("Job", "submit", "server")
        clock.advance(1.0)
        for _ in range(2):
            series.record(10.0, False)  # slow but successful
        active = engine.evaluate()
        assert len(active) == 1
        assert active[0]["objective"] == "latency"

    def test_window_totals_slide(self):
        clock, metrics, engine = _engine()
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        self._tick(clock, engine, series, good=4)
        assert engine.window_totals("submit-availability", 12.0) == (4, 0)
        for _ in range(13):
            self._tick(clock, engine, series)
        assert engine.window_totals("submit-availability", 12.0) == (0, 0)

    def test_burn_rate_of_exactly_budget_is_one(self):
        clock, metrics, engine = _engine()
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        self._tick(clock, engine, series, good=9, bad=1)  # 10% = the budget
        assert engine.burn_rate("submit-availability", 12.0) == pytest.approx(1.0)


class TestExemplars:
    def _span(self, trace_id, *, error="", duration=0.001):
        return {
            "trace_id": trace_id, "span_id": f"s{trace_id[:8]}",
            "parent_id": "", "name": "submit", "kind": "server",
            "service": "Job", "host": "h", "start": 0.0, "end": duration,
            "error": error, "attributes": {}, "events": [],
        }

    def test_fired_alert_links_matching_error_traces(self):
        collector = TraceCollector()
        clock, metrics, engine = _engine(collector=collector)
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        collector.export(self._span("a" * 32, error="Portal.Invalid"))
        collector.export(self._span("b" * 32))  # healthy: not an exemplar
        clock.advance(1.0)
        series.record(0.001, True)
        active = engine.evaluate()
        assert active[0]["exemplars"] == ["a" * 32]
        assert engine.exemplars_for("submit-availability") == ["a" * 32]

    def test_latency_exemplars_are_the_slow_traces(self):
        collector = TraceCollector()
        clock, metrics, engine = _engine(collector=collector)
        engine.define(LAT)
        collector.export(self._span("c" * 32, duration=9.0))
        collector.export(self._span("d" * 32, duration=0.001))
        assert engine.exemplars_for("submit-latency") == ["c" * 32]

    def test_exemplars_are_bounded_and_newest_first(self):
        collector = TraceCollector()
        clock, metrics, engine = _engine(collector=collector, max_exemplars=2)
        engine.define(AVAIL)
        for i in range(5):
            collector.export(self._span(f"{i:032x}", error="Portal.Invalid"))
        assert engine.exemplars_for("submit-availability") == [
            f"{4:032x}", f"{3:032x}"
        ]


class TestViews:
    def test_summary_rows_are_sorted_and_complete(self):
        clock, metrics, engine = _engine()
        engine.define(LAT)
        engine.define(AVAIL)
        series = metrics.series("Job", "submit", "server")
        clock.advance(1.0)
        series.record(0.001, False)
        engine.evaluate()
        rows = engine.slo_summary()
        assert [r["slo"] for r in rows] == [
            "submit-availability", "submit-latency"
        ]
        row = rows[0]
        assert row["state"] == "ok" and row["requests"] == 1
        assert row["target"] == pytest.approx(0.9)
        assert row["good_fraction"] == pytest.approx(1.0)


# -- merge-order independence (the ISSUE's hypothesis property) ---------------

samples = st.lists(
    st.tuples(
        st.floats(min_value=1e-4, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


@given(data=samples, order=st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_merge_order_never_changes_slo_verdicts(data, order):
    """Shard the same traffic arbitrarily, merge the shards in any order:
    every SLO verdict — burn rates, firing pair, summary — is identical."""
    shards = [RedSeries() for _ in range(4)]
    for index, (duration, error) in enumerate(data):
        shards[index % 4].record(duration, error)

    def verdicts(shard_order) -> tuple:
        merged = RedSeries()
        for shard in shard_order:
            merged.merge(shard)
        clock = SimClock()
        metrics = MetricsRegistry()
        metrics.red[("Job", "submit", "server")] = merged
        engine = SloEngine(clock, metrics)
        engine.define(AVAIL)
        engine.define(LAT)
        clock.advance(1.0)
        engine.evaluate()
        return (
            engine.burn_rate("submit-availability", 12.0),
            engine.burn_rate("submit-latency", 12.0),
            engine.firing_pair("submit-availability"),
            engine.firing_pair("submit-latency"),
            tuple(tuple(sorted(row.items())) for row in engine.slo_summary()),
        )

    shuffled = list(shards)
    order.shuffle(shuffled)
    assert verdicts(shards) == verdicts(shuffled)
