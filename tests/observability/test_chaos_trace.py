"""Acceptance: a seeded chaos run yields one trace carrying the retry and
failover story as span events — and the same seed exports byte-identical
traces every time."""

import pytest

from repro.observability.runtime import Observability
from repro.resilience.chaos import ChaosConfig, ChaosHarness, ChaosMonkey
from repro.resilience.events import FAILOVER, RETRY, ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.resilience.policy import RetryPolicy
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    SdscBatchScriptGenerator,
    deploy_batch_script_generator,
)
from repro.soap.client import SoapClient
from repro.transport.network import VirtualNetwork

IU_HOST = "bsg.iu.edu"
SDSC_HOST = "bsg.sdsc.edu"


def run_portal_request(seed: int) -> Observability:
    """One traced portal request over the failover-portal scenario.

    A chaos monkey (latency spikes only — its events, like every other
    resilience event, land on the open span) runs around a request that is
    guaranteed to retry once (an injected transport fault on IU) and to
    fail over once (IU taken down mid-request).
    """
    network = VirtualNetwork()
    obs = Observability.install(network, seed=seed)
    log = ResilienceLog()
    obs.observe_log(log)

    iu_url, _ = deploy_batch_script_generator(
        network, IuBatchScriptGenerator(), IU_HOST
    )
    sdsc_url, _ = deploy_batch_script_generator(
        network, SdscBatchScriptGenerator(), SDSC_HOST
    )
    retrying = SoapClient(
        network, iu_url, BSG_NAMESPACE, source="portal.npaci.edu",
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.05),
        resilience_log=log, service_name="BSG", retry_seed=seed,
    )
    failover = FailoverClient(
        network, [iu_url, sdsc_url], BSG_NAMESPACE, source="portal.npaci.edu",
        sticky=True, resilience_log=log, service_name="BSG", retry_seed=seed,
    )
    monkey = ChaosMonkey(
        network, [IU_HOST, SDSC_HOST], seed=seed, log=log,
        config=ChaosConfig(p_take_down=0.0, p_fault_burst=0.0,
                           p_latency_spike=0.9, p_flap=0.0),
    )
    with obs.tracer.span(
        "portal request", kind="server", service="portal",
        host="portal.npaci.edu",
    ):
        monkey.step()
        network.fail_next(IU_HOST, 1)
        assert retrying.call("supportsScheduler", "PBS") is True
        network.take_down(IU_HOST)
        assert "LSF" in failover.call("listSchedulers")
        network.bring_up(IU_HOST)
        monkey.step()
    Observability.uninstall(network)
    return obs


def _span(obs, name):
    (span,) = [s for s in obs.collector.spans() if s["name"] == name]
    return span


def test_one_trace_with_retry_and_failover_events():
    obs = run_portal_request(seed=11)
    assert len(obs.collector.trace_ids()) == 1, "the whole story is one trace"

    # the retry happened between attempts of the *logical* client call
    retry_span = _span(obs, "call supportsScheduler")
    assert RETRY in [e["name"] for e in retry_span["events"]]
    # ... and the retried attempt left a failed child span behind
    attempts = [
        s for s in obs.collector.spans()
        if s["name"] == "supportsScheduler" and s["kind"] == "client"
    ]
    assert [bool(s["error"]) for s in attempts] == [True, False]

    # the failover was recorded on the failover client's rotation span
    failover_span = _span(obs, "failover listSchedulers")
    assert FAILOVER in [e["name"] for e in failover_span["events"]]

    # the event-counter metrics agree
    assert obs.metrics.events[RETRY] >= 1
    assert obs.metrics.events[FAILOVER] >= 1


def test_chaos_events_annotate_the_open_request_span():
    obs = run_portal_request(seed=11)
    root = _span(obs, "portal request")
    assert any(
        e["name"].startswith("Chaos.") for e in root["events"]
    ), "the monkey's schedule is visible on the request it disturbed"


def test_same_seed_exports_byte_identical_traces():
    first = run_portal_request(seed=11)
    second = run_portal_request(seed=11)
    assert first.collector.to_json() == second.collector.to_json()
    assert first.metrics.summary() == second.metrics.summary()


def test_different_seeds_mint_different_ids():
    a = run_portal_request(seed=11)
    b = run_portal_request(seed=12)
    assert a.collector.trace_ids() != b.collector.trace_ids()


@pytest.mark.tier2_trace
def test_chaos_soak_traces_stay_structurally_valid():
    """A full chaos-harness soak over the deployed portal, re-verified with
    the reporter's invariants (the same code the CI trace job runs)."""
    from repro.observability import report
    from repro.portal.uiserver import PortalDeployment, UserInterfaceServer
    from repro.resilience.breaker import CircuitBreakerPolicy

    def soak(seed: int):
        deployment = PortalDeployment.build(observe=True, observe_seed=seed)
        ui = UserInterfaceServer(deployment)
        client = ui.failover_client(
            sticky=False,
            breaker_policy=CircuitBreakerPolicy(
                failure_threshold=3, cooldown=1.0
            ),
        )
        monkey = ChaosMonkey(
            deployment.network, [IU_HOST, SDSC_HOST], seed=seed,
            log=deployment.resilience,
            config=ChaosConfig(p_take_down=0.03, down_duration=(0.5, 2.0),
                               p_fault_burst=0.08, burst_size=(1, 2),
                               p_flap=0.0),
        )

        def request(i: int) -> None:
            deployment.network.clock.advance(0.25)
            client.call("supportsScheduler", "NQS")

        harness_report = ChaosHarness(deployment.network, monkey).run(
            request, 40
        )
        obs = deployment.observability
        Observability.uninstall(deployment.network)
        return obs, harness_report

    obs, harness_report = soak(seed=2002)
    assert harness_report.successes > 0
    spans = report.load_spans(obs.collector.to_json())
    assert len(spans) >= 40
    assert report.check_spans(spans, "soak") == []

    again, _ = soak(seed=2002)
    assert again.collector.to_json() == obs.collector.to_json()
