"""The collector: views, deterministic export, and its SOAP face — plus the
client/server auto-instrumentation that fills it."""

import json

import pytest

from repro.faults import InvalidRequestError
from repro.observability import deploy_trace_collector
from repro.soap.client import SoapClient


def test_soap_call_produces_a_nested_trace(obs, echo_stack):
    _, client = echo_stack
    assert client.call("shout", "hi") == "HI"
    spans = obs.collector.spans()
    # finish order: server span, then the client attempt, then the logical call
    assert [s["name"] for s in spans] == ["shout", "shout", "call shout"]
    server, attempt, logical = spans
    assert {s["trace_id"] for s in spans} == {server["trace_id"]}
    assert server["kind"] == "server" and server["service"] == "Echo"
    assert server["host"] == "echo.example.org"
    assert server["parent_id"] == attempt["span_id"]
    assert attempt["parent_id"] == logical["span_id"]
    assert logical["parent_id"] == ""
    # the server span nests strictly inside the attempt (wire time both ways)
    assert attempt["start"] < server["start"] <= server["end"] < attempt["end"]


def test_red_metrics_recorded_both_sides(obs, echo_stack):
    _, client = echo_stack
    client.call("shout", "hi")
    with pytest.raises(InvalidRequestError):
        client.call("reject", "hi")
    red = {
        (r["service"], r["method"], r["side"]): r
        for r in obs.metrics.summary()["red"]
    }
    server_ok = red[("Echo", "shout", "server")]
    server_bad = red[("Echo", "reject", "server")]
    assert server_ok["errors"] == 0 and server_ok["requests"] == 1
    assert server_bad["errors"] == 1
    # the client saw the fault too, under its service name (the endpoint)
    client_bad = red[(client.service_name, "reject", "client")]
    assert client_bad["errors"] == 1
    # wire latency is client-visible (the handler itself runs in zero
    # virtual time, so only the client-side mean includes transit)
    assert red[(client.service_name, "shout", "client")]["mean_ms"] > 0


def test_fault_code_lands_on_both_spans(obs, echo_stack):
    _, client = echo_stack
    with pytest.raises(InvalidRequestError):
        client.call("reject", "x")
    by_kind = {}
    for span in obs.collector.spans():
        by_kind.setdefault(span["kind"], []).append(span)
    assert all(s["error"] == "Portal.InvalidRequest" for s in by_kind["server"])
    assert all(s["error"] == "Portal.InvalidRequest" for s in by_kind["client"])


def test_untraced_network_is_seed_identical(network, echo_stack):
    # no bundle installed: no headers on the wire, nothing collected
    service, client = echo_stack
    assert client.call("shout", "ok") == "OK"
    assert getattr(network, "observability", None) is None
    assert service.calls_served == 1


def test_traced_false_opts_a_client_out(obs, echo_stack, network):
    _, client = echo_stack
    quiet = SoapClient(
        network, client.endpoint, client.namespace, source="dash", traced=False
    )
    assert quiet.call("shout", "sh") == "SH"
    # the server is still traced (its own span, a fresh root), but the quiet
    # client neither spans nor propagates
    spans = obs.collector.spans()
    assert [s["kind"] for s in spans] == ["server"]
    assert spans[0]["parent_id"] == ""


def test_traces_summary_and_tree(obs, echo_stack):
    _, client = echo_stack
    client.call("shout", "one")
    client.call("shout", "two")
    rows = obs.collector.traces()
    assert len(rows) == 2
    assert all(row["root"] == "call shout" for row in rows)
    assert all(row["spans"] == 3 and row["errors"] == 0 for row in rows)
    tree = obs.collector.tree(rows[0]["trace_id"])
    assert [(r["name"], r["depth"]) for r in tree] == [
        ("call shout", 0), ("shout", 1), ("shout", 2)
    ]


def test_to_json_is_deterministic_jsonl(obs, echo_stack):
    _, client = echo_stack
    client.call("shout", "x")
    text = obs.collector.to_json()
    lines = text.splitlines()
    assert len(lines) == 3
    parsed = [json.loads(line) for line in lines]
    assert all(list(p) == sorted(p) for p in parsed)  # sort_keys
    assert text == obs.collector.to_json()


def test_collector_service_soap_face(obs, echo_stack, network):
    _, client = echo_stack
    client.call("shout", "x")
    impl, url = deploy_trace_collector(network, obs.collector)
    reader = SoapClient(
        network, url, "urn:gce:trace-collector", source="tool", traced=False
    )
    count_before = reader.call("span_count")
    assert count_before == 3
    rows = reader.call("traces")
    tree = reader.call("trace_tree", rows[0]["trace_id"])
    assert [r["depth"] for r in tree] == [0, 1, 2]
    # the collector service never traces itself: reading added no spans
    assert len(obs.collector) == count_before
    # remote span reporting
    total = reader.call("report", {
        "trace_id": "t" * 32, "span_id": "s" * 16, "parent_id": "",
        "name": "remote", "kind": "internal", "service": "ext", "host": "ext",
        "start": 0.0, "end": 1.0, "error": "", "attributes": {}, "events": [],
    })
    assert total == 4 and impl.span_count() == 4


# -- ring-buffer retention (bounded soaks, evict-oldest whole traces) ---------

from repro.observability import Observability, TraceCollector  # noqa: E402
from repro.transport.clock import SimClock  # noqa: E402


def _span_dict(trace_id, span_id, parent_id=""):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent_id,
        "name": "op", "kind": "server", "service": "S", "host": "h",
        "start": 0.0, "end": 1.0, "error": "", "attributes": {}, "events": [],
    }


def test_ring_capacity_evicts_oldest_whole_traces():
    ring = TraceCollector(capacity=4)
    for tid in ("t1", "t2", "t3"):
        ring.export(_span_dict(tid, f"{tid}-root"))
        ring.export(_span_dict(tid, f"{tid}-child", f"{tid}-root"))
    # t3's first span pushed the count to 5 > 4: t1 went, whole
    assert ring.trace_ids() == ["t2", "t3"]
    assert len(ring) == 4
    assert ring.trace_evictions == 1
    assert ring.spans_evicted == 2


def test_eviction_never_splits_the_trace_being_exported():
    ring = TraceCollector(capacity=1)
    ring.export(_span_dict("t1", "a"))
    ring.export(_span_dict("t1", "b", "a"))  # same trace: overflow tolerated
    assert len(ring) == 2
    assert ring.trace_evictions == 0
    ring.export(_span_dict("t2", "c"))  # next trace evicts the old one
    assert ring.trace_ids() == ["t2"]
    assert ring.trace_evictions == 1 and ring.spans_evicted == 2


def test_zero_capacity_is_unbounded():
    store = TraceCollector(capacity=0)
    for i in range(100):
        store.export(_span_dict(f"t{i}", f"s{i}"))
    assert len(store) == 100 and store.trace_evictions == 0


def test_eviction_accounting_feeds_the_gauges():
    obs = Observability(SimClock(), collector_capacity=2)
    for i in range(4):
        obs.collector.export(_span_dict(f"t{i}", f"s{i}"))
    gauges = obs.metrics.gauges
    assert gauges[("collector_evictions", "traces")] == obs.collector.trace_evictions
    assert gauges[("collector_evictions", "spans")] == obs.collector.spans_evicted
    assert obs.collector.trace_evictions == 2
    summary = {
        (row["gauge"], row["label"]): row["value"]
        for row in obs.metrics.summary()["gauges"]
    }
    assert summary[("collector_evictions", "traces")] == 2.0
