"""The offline reporter: invariant checking, waterfall, critical path."""

import json

import pytest

from repro.observability import report


def _span(**over):
    base = {
        "trace_id": "t" * 32, "span_id": "root", "parent_id": "",
        "name": "root", "kind": "server", "service": "S", "host": "h",
        "start": 0.0, "end": 10.0, "error": "", "attributes": {}, "events": [],
    }
    base.update(over)
    return base


def _jsonl(spans):
    return "\n".join(json.dumps(s) for s in spans)


# spans appear in *finish* order, as a tracer exports them (children first)
GOOD = [
    _span(span_id="a", parent_id="root", name="childA", start=1.0, end=4.0),
    _span(span_id="c", parent_id="b", name="leaf", start=6.0, end=8.0),
    _span(span_id="b", parent_id="root", name="childB", start=5.0, end=9.0),
    _span(),
]


class TestLoadSpans:
    def test_round_trip(self):
        spans = report.load_spans(_jsonl(GOOD))
        assert [s["name"] for s in spans] == ["childA", "leaf", "childB", "root"]

    def test_blank_lines_skipped(self):
        assert len(report.load_spans("\n" + _jsonl(GOOD) + "\n\n")) == 4

    def test_malformed_json_raises_with_line_number(self):
        with pytest.raises(ValueError, match="trace:2"):
            report.load_spans(_jsonl(GOOD[:1]) + "\n{broken")

    def test_missing_field_raises(self):
        bad = {k: v for k, v in _span().items() if k != "span_id"}
        with pytest.raises(ValueError, match="span_id"):
            report.load_spans(json.dumps(bad))


class TestCheckSpans:
    def test_clean_export_has_no_problems(self):
        assert report.check_spans(GOOD, "t") == []

    def test_unresolved_parent(self):
        spans = GOOD + [_span(span_id="x", parent_id="ghost", name="orphan")]
        problems = report.check_spans(spans, "t")
        assert any("unknown parent" in p for p in problems)

    def test_child_escaping_parent_window(self):
        spans = [_span(), _span(span_id="x", parent_id="root",
                                name="late", start=9.0, end=11.0)]
        problems = report.check_spans(spans, "t")
        assert any("does not nest" in p for p in problems)

    def test_end_before_start(self):
        problems = report.check_spans([_span(start=5.0, end=1.0)], "t")
        assert any("before it starts" in p for p in problems)

    def test_multiple_roots(self):
        spans = [_span(), _span(span_id="r2", name="second root", end=10.0)]
        problems = report.check_spans(spans, "t")
        assert any("2 root spans" in p for p in problems)

    def test_host_clock_regression(self):
        # spans export at end time; a later line ending earlier on the same
        # host means that host's clock ran backwards
        spans = [
            _span(span_id="a", parent_id="root", name="first",
                  start=0.0, end=8.0),
            _span(),
            _span(trace_id="u" * 32, span_id="z", name="rewound",
                  start=0.0, end=3.0),
        ]
        problems = report.check_spans(spans, "t")
        assert any("clock regressed" in p for p in problems)

    def test_distinct_hosts_may_interleave(self):
        spans = [
            _span(span_id="a", parent_id="root", name="first",
                  start=0.0, end=8.0),
            _span(),
            _span(trace_id="u" * 32, span_id="z", name="elsewhere",
                  host="other", start=0.0, end=3.0),
        ]
        assert report.check_spans(spans, "t") == []


class TestReporting:
    def test_tree_rows_depths(self):
        rows = report.tree_rows(GOOD)
        assert [(r["name"], r["depth"]) for r in rows] == [
            ("root", 0), ("childA", 1), ("childB", 1), ("leaf", 2)
        ]

    def test_waterfall_marks_errors_and_events(self):
        spans = [dict(GOOD[0], error="Portal.Job",
                      events=[{"t": 1.0, "name": "Resilience.Retry",
                               "attributes": {}}])]
        lines = report.waterfall_lines(spans)
        assert "error=Portal.Job" in lines[0]
        assert "Resilience.Retry" in lines[0]

    def test_critical_path_follows_latest_ending_child(self):
        path = [s["name"] for s in report.critical_path(GOOD)]
        assert path == ["root", "childB", "leaf"]

    def test_self_times_subtract_direct_children(self):
        rows = {r["name"]: r for r in report.self_times(GOOD)}
        # root: 10s own, children 3s + 4s -> 3s self
        assert rows["root"]["self_s"] == pytest.approx(3.0)
        # childB: 4s own, leaf 2s -> 2s self
        assert rows["childB"]["self_s"] == pytest.approx(2.0)
        assert rows["leaf"]["self_s"] == pytest.approx(2.0)

    def test_report_lines_mention_critical_path_and_bottlenecks(self):
        lines = report.report_lines(GOOD)
        assert any("critical path: root -> childB -> leaf" in l for l in lines)
        assert any(l.startswith("bottlenecks") for l in lines)


class TestMain:
    def test_check_ok_run(self, tmp_path, capsys):
        (tmp_path / "good.jsonl").write_text(_jsonl(GOOD) + "\n")
        assert report.main(["--check", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ok   good.jsonl (4 spans)" in out
        assert "0 violations" in out

    def test_check_failing_run(self, tmp_path, capsys):
        bad = GOOD + [_span(span_id="x", parent_id="ghost", name="orphan")]
        (tmp_path / "bad.jsonl").write_text(_jsonl(bad) + "\n")
        assert report.main(["--check", str(tmp_path)]) == 1
        assert "FAIL bad.jsonl" in capsys.readouterr().out

    def test_report_mode(self, tmp_path, capsys):
        target = tmp_path / "good.jsonl"
        target.write_text(_jsonl(GOOD) + "\n")
        assert report.main([str(target)]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path):
        assert report.main([]) == 2
        assert report.main([str(tmp_path / "missing.jsonl")]) == 2
