"""Property test: the wizard's form <-> instance round trip holds for
arbitrary generated schemas and values."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wizard.generator import SchemaWizard
from repro.xmlutil.schema import (
    BuiltinType,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
)
from repro.xmlutil.validation import SchemaValidator

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
values = st.text(alphabet=string.ascii_letters + string.digits + " .-_",
                 min_size=1, max_size=20).map(str.strip).filter(bool)


@st.composite
def schemas_and_forms(draw):
    """A random flat complex type plus a matching filled-in form."""
    field_names = draw(st.lists(names, min_size=1, max_size=6, unique=True))
    sequence = []
    form: dict[str, str] = {}
    for field in field_names:
        kind = draw(st.sampled_from(["string", "int", "enum", "repeated"]))
        path = f"root.{field}"
        if kind == "string":
            sequence.append(XsdElement(field, BuiltinType.STRING))
            form[path] = draw(values)
        elif kind == "int":
            sequence.append(XsdElement(field, BuiltinType.INT))
            form[path] = str(draw(st.integers(-10**6, 10**6)))
        elif kind == "enum":
            options = draw(st.lists(values, min_size=1, max_size=4, unique=True))
            sequence.append(
                XsdElement(field, XsdSimpleType("", enumeration=options))
            )
            form[path] = draw(st.sampled_from(options))
        else:
            sequence.append(
                XsdElement(field, BuiltinType.STRING, min_occurs=0,
                           max_occurs=-1)
            )
            items = draw(st.lists(values, max_size=4))
            form[path] = "\n".join(items)
    schema = XsdSchema(target_namespace="")
    schema.add_complex_type(XsdComplexType("Root", sequence=sequence))
    schema.add_element(XsdElement("root", "Root"))
    return schema.resolve(), form


@given(schemas_and_forms())
@settings(max_examples=60, deadline=None)
def test_form_instance_form_roundtrip(case):
    schema, form = case
    wizard = SchemaWizard()
    wizard.load(schema)
    instance = wizard.form_to_instance("root", form)
    assert SchemaValidator(schema).validate(instance) == []
    recovered = wizard.instance_to_values("root", instance)
    for path, value in form.items():
        expected = "\n".join(
            line.strip() for line in value.splitlines() if line.strip()
        )
        assert recovered.get(path, "") == expected


@given(schemas_and_forms())
@settings(max_examples=30, deadline=None)
def test_rendered_form_contains_every_field(case):
    schema, form = case
    wizard = SchemaWizard()
    wizard.load(schema)
    body = wizard.render_form_body("root")
    for path in form:
        assert f'name="{path}"' in body
