import pytest

from repro.faults import SchemaError
from repro.appws.schemas import combined_schema
from repro.transport.client import HttpClient
from repro.transport.http import HttpResponse
from repro.transport.server import HttpServer
from repro.wizard.generator import SchemaWizard
from repro.xmlutil.element import parse_xml
from repro.xmlutil.schema import parse_schema
from repro.xmlutil.validation import SchemaValidator

SIMPLE_XSD = """\
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="Mode">
    <xs:restriction base="xs:string">
      <xs:enumeration value="fast"/><xs:enumeration value="careful"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="Settings">
    <xs:sequence>
      <xs:element name="label" type="xs:string">
        <xs:annotation><xs:documentation>A label.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="mode" type="Mode"/>
      <xs:element name="tag" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:element name="settings" type="Settings"/>
</xs:schema>
"""


@pytest.fixture
def wizard():
    wizard = SchemaWizard()
    wizard.load(SIMPLE_XSD)
    return wizard


def test_stage1_load_from_url(network):
    server = HttpServer("schemas.org", network)
    server.mount("/s.xsd", lambda r: HttpResponse(200, {}, SIMPLE_XSD))
    wizard = SchemaWizard(network)
    schema = wizard.load("http://schemas.org/s.xsd")
    assert "Settings" in schema.complex_types
    with pytest.raises(SchemaError):
        wizard.load("http://schemas.org/missing.xsd")


def test_stage1_rejects_invalid_schema():
    with pytest.raises(SchemaError):
        SchemaWizard().load("<xs:schema xmlns:xs='urn:wrong'/>")


def test_stage2_source_generation(wizard):
    classes = wizard.classes("Gen")
    assert "Settings" in classes
    obj = classes["Settings"](label="x", mode="fast", id="s1")
    assert obj.label == "x"
    assert type(obj).__name__ == "GenSettings"


def test_stage3_constituent_templates(wizard):
    body = wizard.render_form_body("settings")
    # single simple -> text input; enumerated -> select; unbounded -> textarea
    assert '<input type="text" name="settings.label"' in body
    assert '<select name="settings.mode"' in body
    assert '<option value="fast"' in body
    assert '<textarea name="settings.tag"' in body
    # complex wraps everything in a fieldset; attribute rendered as input
    assert "<fieldset" in body
    assert 'name="settings.@id"' in body
    # documentation surfaces as the doc span
    assert "A label." in body


def test_field_names(wizard):
    assert wizard.field_names("settings") == [
        "settings.@id", "settings.label", "settings.mode", "settings.tag"
    ]
    with pytest.raises(SchemaError):
        wizard.field_names("nosuchroot")


def test_form_to_instance_and_back(wizard):
    form = {
        "settings.@id": "s1",
        "settings.label": "hello",
        "settings.mode": "careful",
        "settings.tag": "a\nb\n\n",
    }
    instance = wizard.form_to_instance("settings", form)
    assert SchemaValidator(wizard.schema).validate(instance) == []
    assert instance.get("id") == "s1"
    assert [t.text for t in instance.findall("tag")] == ["a", "b"]
    values = wizard.instance_to_values("settings", instance)
    assert values["settings.label"] == "hello"
    assert values["settings.tag"] == "a\nb"
    assert values["settings.@id"] == "s1"


def test_deployed_webapp_get_post_reload(network):
    wizard = SchemaWizard(network)
    wizard.load(SIMPLE_XSD)
    server = HttpServer("portal.host", network)
    app = wizard.deploy(server, "settings-editor", "settings")
    client = HttpClient(network, "browser")

    page = client.get(app.url())
    assert page.ok and "<form" in page.body

    saved = client.post_form(
        f"http://portal.host{app.base_path}/save",
        {
            "instanceName": "mine",
            "settings.@id": "s9",
            "settings.label": "from the browser",
            "settings.mode": "fast",
            "settings.tag": "t1",
        },
    )
    assert "validated" in saved.body
    assert app.saves == 1

    # "Old instances can be read in and unmarshaled to fill out the form"
    reloaded = client.get(app.form_url("mine")).body
    assert 'value="from the browser"' in reloaded
    assert 'value="s9"' in reloaded

    instance = parse_xml(app.instances["mine"])
    assert instance.findtext("label") == "from the browser"


def test_invalid_submission_reports_issue_count(network):
    wizard = SchemaWizard(network)
    wizard.load(SIMPLE_XSD)
    server = HttpServer("portal2.host", network)
    app = wizard.deploy(server, "ed", "settings")
    issues = app.save_instance("bad", {
        "settings.@id": "x",
        "settings.label": "ok",
        "settings.mode": "turbo",  # not in the enumeration
    })
    assert issues
    assert "enumeration" in issues[0]


def test_wizard_drives_the_real_application_schema(network):
    """Figure 3 end to end against the paper's actual descriptor schema."""
    wizard = SchemaWizard(network)
    wizard.load(combined_schema())
    server = HttpServer("portal3.host", network)
    app = wizard.deploy(server, "queue-editor", "queue")
    issues = app.save_instance("q1", {
        "queue.queuingSystem": "NQS",
        "queue.queueName": "batch",
        "queue.maxWallTime": "7200",
        "queue.maxCpus": "128",
    })
    assert issues == []
    instance = parse_xml(app.instances["q1"])
    assert instance.findtext("queuingSystem") == "NQS"
