import pytest

from repro.corba.orb import CorbaUserException, Orb
from repro.corba.webflow import deploy_webflow
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler


@pytest.fixture
def webflow(network):
    schedulers = {
        "pbs.host": BatchScheduler("pbs.host", make_dialect("PBS"),
                                   clock=network.clock, cpus=8),
        "lsf.host": BatchScheduler("lsf.host", make_dialect("LSF"),
                                   clock=network.clock, cpus=8),
    }
    servant, ior, _orb = deploy_webflow(network, schedulers)
    client = Orb(network, host="gateway").string_to_object(ior)
    return servant, client, schedulers


def test_context_hierarchy(webflow):
    _servant, client, _s = webflow
    client.addContext("alice/proj/s1")
    client.addContext("alice/proj/s2")
    assert client.listContexts("alice/proj") == ["s1", "s2"]
    assert client.listContexts("alice") == ["proj"]
    assert client.hasContext("alice/proj")
    client.removeContext("alice/proj/s1")
    assert client.listContexts("alice/proj") == ["s2"]


def test_direct_submission_to_queuing_system(webflow):
    _servant, client, schedulers = webflow
    client.addContext("u/p/s")
    script = make_dialect("PBS").generate(
        JobSpec(name="direct", executable="echo", arguments=["webflow"],
                wallclock_limit=60)
    )
    handle = client.submitJob("u/p/s", "pbs.host", script)
    assert handle.startswith("wf-")
    schedulers["pbs.host"].run_until_complete()
    assert client.getJobStatus(handle) == "done"
    assert client.getJobOutput(handle) == "webflow\n"
    assert client.listJobs("u/p/s") == [handle]


def test_submission_requires_context(webflow):
    _servant, client, _s = webflow
    script = make_dialect("PBS").generate(
        JobSpec(executable="echo", wallclock_limit=60)
    )
    with pytest.raises(CorbaUserException):
        client.submitJob("ghost/p/s", "pbs.host", script)


def test_unknown_backend_host(webflow):
    _servant, client, _s = webflow
    client.addContext("u/p/s")
    script = make_dialect("PBS").generate(
        JobSpec(executable="echo", wallclock_limit=60)
    )
    with pytest.raises(CorbaUserException):
        client.submitJob("u/p/s", "cray.nowhere", script)


def test_wrong_dialect_script_rejected(webflow):
    _servant, client, _s = webflow
    client.addContext("u/p/s")
    pbs_script = make_dialect("PBS").generate(
        JobSpec(executable="echo", wallclock_limit=60)
    )
    # an LSF host cannot parse a PBS script's resource semantics, but a PBS
    # script parses as bare commands under LSF rules; dialect safety comes
    # from validation: here the LSF parse ignores #PBS lines as comments, so
    # the job still runs — assert the behaviour is defined, not an ORB crash
    handle = client.submitJob("u/p/s", "lsf.host", pbs_script)
    assert handle.startswith("wf-")


def test_cancel(webflow):
    _servant, client, schedulers = webflow
    client.addContext("u/p/s")
    script = make_dialect("PBS").generate(
        JobSpec(executable="sleep", arguments=["500"], wallclock_limit=600)
    )
    handle = client.submitJob("u/p/s", "pbs.host", script)
    assert client.cancelJob(handle)
    assert client.getJobStatus(handle) == "cancelled"


def test_backend_hosts_listing(webflow):
    _servant, client, _s = webflow
    assert client.backendHosts() == ["lsf.host", "pbs.host"]
