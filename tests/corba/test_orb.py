import pytest

from repro.corba.orb import (
    CorbaSystemException,
    CorbaUserException,
    Orb,
    _parse_ior,
)
from repro.transport.server import HttpServer


class Counter:
    def __init__(self):
        self.value = 0

    def increment(self, by):
        self.value += by
        return self.value

    def crash(self):
        raise RuntimeError("servant exploded")

    def _secret(self):  # pragma: no cover - must not be callable remotely
        return "hidden"


@pytest.fixture
def orbs(network):
    server = HttpServer("corba.host", network)
    server_orb = Orb(network, server=server)
    client_orb = Orb(network, host="client.host")
    return server_orb, client_orb


def test_activate_invoke(network, orbs):
    server_orb, client_orb = orbs
    servant = Counter()
    ior = server_orb.activate(servant, "Test::Counter")
    stub = client_orb.string_to_object(ior)
    assert stub.interface == "Test::Counter"
    assert stub.increment(5) == 5
    assert stub.increment(2) == 7
    assert servant.value == 7
    assert server_orb.requests_served == 2


def test_user_exception_relayed(network, orbs):
    server_orb, client_orb = orbs
    ior = server_orb.activate(Counter(), "Test::Counter")
    stub = client_orb.string_to_object(ior)
    with pytest.raises(CorbaUserException) as exc_info:
        stub.crash()
    assert exc_info.value.exc_type == "RuntimeError"
    assert "exploded" in exc_info.value.exc_message


def test_unknown_operation_and_private_blocked(network, orbs):
    server_orb, client_orb = orbs
    ior = server_orb.activate(Counter(), "Test::Counter")
    stub = client_orb.string_to_object(ior)
    with pytest.raises(CorbaSystemException):
        stub.decrement(1)


def test_deactivated_object_unreachable(network, orbs):
    server_orb, client_orb = orbs
    ior = server_orb.activate(Counter(), "Test::Counter")
    stub = client_orb.string_to_object(ior)
    assert stub.increment(1) == 1
    server_orb.deactivate(ior)
    with pytest.raises(CorbaSystemException):
        stub.increment(1)


def test_malformed_ior_rejected(orbs):
    _server_orb, client_orb = orbs
    with pytest.raises(CorbaSystemException):
        client_orb.string_to_object("notanior")
    with pytest.raises(CorbaSystemException):
        _parse_ior("IOR:hostonly")


def test_two_servants_independent(network, orbs):
    server_orb, client_orb = orbs
    a = server_orb.activate(Counter(), "Test::Counter")
    b = server_orb.activate(Counter(), "Test::Counter")
    stub_a = client_orb.string_to_object(a)
    stub_b = client_orb.string_to_object(b)
    stub_a.increment(10)
    assert stub_b.increment(1) == 1
