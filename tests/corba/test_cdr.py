import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba.cdr import CdrError, marshal, unmarshal


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -(2**40),
        2**40,
        1.5,
        "",
        "unicode: naïve ☃",
        [],
        [1, "two", None, [3.0]],
        {},
        {"k": 1, "nested": {"x": [True]}},
    ],
)
def test_roundtrip(value):
    assert unmarshal(marshal(value)) == value


def test_unsupported_type_rejected():
    with pytest.raises(CdrError):
        marshal(object())
    with pytest.raises(CdrError):
        marshal({1: "int key"})


def test_truncated_stream_rejected():
    data = marshal("hello world")
    with pytest.raises(CdrError):
        unmarshal(data[:-3])
    with pytest.raises(CdrError):
        unmarshal(b"")


def test_trailing_bytes_rejected():
    with pytest.raises(CdrError):
        unmarshal(marshal(1) + b"\x00")


def test_unknown_tag_rejected():
    with pytest.raises(CdrError):
        unmarshal(b"\xfe")


cdr_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-2**63, 2**63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=15,
)


@given(cdr_values)
@settings(max_examples=150, deadline=None)
def test_roundtrip_property(value):
    assert unmarshal(marshal(value)) == value
