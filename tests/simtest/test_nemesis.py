"""The nemesis DSL: seeded schedules, total order, JSON round-trips."""

from repro.simtest.nemesis import (
    EVENT_KINDS,
    BreakerFlapNemesis,
    ClockStallNemesis,
    CrashNemesis,
    DiskFullNemesis,
    NemesisEvent,
    NemesisSchedule,
    PartitionNemesis,
    compose,
)


def battery():
    return compose(
        PartitionNemesis(("iu", "sdsc")),
        CrashNemesis(("globusrun.sdsc.edu", "replica.iu.portal.org")),
        BreakerFlapNemesis(("globusrun.sdsc.edu",)),
        DiskFullNemesis(("globusrun.sdsc.edu",)),
        ClockStallNemesis(),
    )


def test_same_seed_same_schedule_byte_identical():
    a = battery().schedule(7, ticks=40).to_json()
    b = battery().schedule(7, ticks=40).to_json()
    assert a == b


def test_different_seeds_differ():
    a = battery().schedule(7, ticks=40)
    b = battery().schedule(8, ticks=40)
    assert a.to_json() != b.to_json()


def test_events_in_seeded_total_order():
    schedule = battery().schedule(11, ticks=60)
    assert len(schedule) > 5
    keys = [(e.t, e.id) for e in schedule.events]
    assert keys == sorted(keys)
    # every event id is unique — the tie-break is a total order
    ids = [e.id for e in schedule.events]
    assert len(ids) == len(set(ids))


def test_event_ids_are_a_seeded_permutation():
    schedule = battery().schedule(11, ticks=60)
    assert sorted(e.id for e in schedule.events) == list(
        range(1, len(schedule) + 1)
    )


def test_adding_a_nemesis_does_not_perturb_the_others():
    """Each nemesis draws from its own derived sub-seed."""
    base = compose(PartitionNemesis(("iu", "sdsc"))).schedule(3, ticks=50)
    extended = compose(
        PartitionNemesis(("iu", "sdsc")), ClockStallNemesis()
    ).schedule(3, ticks=50)
    partitions_base = [
        (e.t, e.kind, e.args)
        for e in base.events
        if e.kind == "partition"
    ]
    partitions_ext = [
        (e.t, e.kind, e.args)
        for e in extended.events
        if e.kind == "partition"
    ]
    assert partitions_base == partitions_ext


def test_known_event_kinds_only():
    schedule = battery().schedule(5, ticks=80)
    assert {e.kind for e in schedule.events} <= set(EVENT_KINDS)


def test_json_round_trip_is_lossless():
    schedule = battery().schedule(9, ticks=40)
    back = NemesisSchedule.from_json(schedule.to_json())
    assert back == schedule
    assert back.to_json() == schedule.to_json()


def test_from_json_rejects_foreign_documents():
    import pytest

    with pytest.raises(ValueError):
        NemesisSchedule.from_json('{"schema": "something/else"}')


def test_subset_preserves_order_and_identity():
    schedule = battery().schedule(13, ticks=60)
    keep = list(schedule.events)[::2]
    sub = schedule.subset(keep)
    assert list(sub.events) == keep
    assert sub.seed == schedule.seed


def test_describe_mentions_every_event():
    schedule = battery().schedule(2, ticks=40)
    text = schedule.describe()
    for event in schedule.events:
        assert f"#{event.id}" in text


def test_event_dict_round_trip():
    event = NemesisEvent(t=3.5, id=2, kind="crash", args={"host": "h"})
    assert NemesisEvent.from_dict(event.to_dict()) == event
