"""The simulation harness: determinism, oracle verdicts, canary detection."""

import json

import pytest

from repro.simtest.harness import (
    CANARIES,
    GLOBUSRUN_HOST,
    SimulationRun,
    default_composition,
)


def test_clean_run_passes_all_oracles():
    result = SimulationRun(0).run()
    assert result.passed, [v.message for v in result.violations]
    # the run actually exercised the system: faults fired, work was acked
    assert result.stats["faults_injected"] > 0
    assert result.stats["acked_batches"] > 0
    assert result.stats["acked_context"] > 0
    assert result.stats["hops_observed"] > 0


def test_same_seed_byte_identical_result():
    a = SimulationRun(5).run().to_dict()
    b = SimulationRun(5).run().to_dict()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["digest"] == b["digest"]


def test_different_seeds_take_different_paths():
    a = SimulationRun(5).run().to_dict()
    b = SimulationRun(6).run().to_dict()
    assert a["digest"] != b["digest"]


def test_explicit_schedule_replays_byte_identically():
    """A printed seed + schedule is a complete repro."""
    first = SimulationRun(7)
    schedule = first.schedule
    result_a = first.run().to_dict()
    result_b = SimulationRun(7, schedule=schedule).run().to_dict()
    assert result_a["digest"] == result_b["digest"]


def test_restarts_happen_and_recovery_holds():
    """Crash events restart hosts from disk; no acked write is lost."""
    result = SimulationRun(2).run()
    assert result.stats["restarts"] > 0
    assert result.passed


def test_canary_ack_before_fsync_is_caught():
    """The sweep must detect a deliberately re-introduced ack-before-fsync
    bug — otherwise the oracles are theater."""
    result = SimulationRun(1, canary="ack-before-fsync").run()
    assert not result.passed
    assert any(v.oracle == "no-lost-acked-writes" for v in result.violations)


def test_canary_violations_carry_spans():
    result = SimulationRun(1, canary="ack-before-fsync").run()
    flagged = [v for v in result.violations if v.oracle == "no-lost-acked-writes"]
    assert flagged and flagged[0].spans  # telemetry attached to the report


def test_unknown_canary_is_rejected():
    with pytest.raises(ValueError):
        SimulationRun(0, canary="definitely-not-a-canary")


def test_canary_registry_names_the_acceptance_bug():
    assert "ack-before-fsync" in CANARIES


def test_default_composition_covers_the_fault_space():
    schedule = default_composition().schedule(0, ticks=120)
    kinds = {event.kind for event in schedule.events}
    assert {
        "partition", "crash", "crash-mid-write", "flap", "breaker-flap",
        "latency-spike", "disk-full", "clock-stall",
    } <= kinds
    assert any(
        event.args.get("host") == GLOBUSRUN_HOST for event in schedule.events
    )


@pytest.mark.tier2_simtest
def test_small_sweep_is_clean():
    from repro.simtest.explorer import sweep

    report = sweep(range(40), shrink=False)
    assert report["verdict"] == "pass"
    assert report["failures"] == 0


@pytest.mark.tier2_simtest
def test_canary_sweep_catches_and_shrinks_everywhere():
    from repro.simtest.explorer import sweep

    report = sweep(range(10), canary="ack-before-fsync")
    assert report["verdict"] == "fail"
    assert report["failures"] == 10
    for entry in report["results"]:
        assert entry["shrunk"]["events"] <= 5
