"""The slo-burn story: nemesis brownouts fire burn-rate alerts that carry
exemplar traces, and the alerts clear once the system heals."""

import pytest

from repro.simtest import nemesis as nem
from repro.simtest.harness import GLOBUSRUN_HOST, SimulationRun
from repro.simtest.nemesis import NemesisEvent, NemesisSchedule
from repro.simtest.oracles import registered_oracles

AVAILABILITY_SLO = "globusrun-submit-availability"


def brownout_schedule(duration: float = 6.0) -> NemesisSchedule:
    """One deterministic brownout: the globusrun disk fills mid-run, so
    every submission journals a failure server-side until it clears."""
    return NemesisSchedule(
        seed="brownout",
        events=(
            NemesisEvent(
                t=2.0, id=1, kind=nem.DISK_FULL,
                args={"host": GLOBUSRUN_HOST, "duration": 6.0},
            ),
        ),
    )


class _AlertLogProbe:
    """A passive tick observer (not an :class:`Oracle` subclass, so the
    registry's every-subclass-is-registered invariant stays true): snapshots
    the SLO engine's alert log so the test can assert on transitions the
    harness never returns."""

    name = "alert-log-probe"
    description = "test-only capture of the SLO alert log"
    when = ("tick", "final")

    def __init__(self):
        self.log: list = []
        self.active_at: list = []

    def check(self, world):
        engine = world.slo_engine
        self.log = [dict(entry) for entry in engine.alert_log]
        if world.phase != "final" and engine.active:
            self.active_at.append(world.clock.now)
        return []


def test_disk_full_brownout_fires_alert_with_exemplars_then_clears():
    probe = _AlertLogProbe()
    result = SimulationRun(
        11,
        ticks=12,
        schedule=brownout_schedule(),
        oracles=registered_oracles() + [probe],
    ).run()
    assert result.passed, [v.message for v in result.violations]
    fired = [e for e in probe.log if e["state"] == "firing"]
    resolved = [e for e in probe.log if e["state"] == "resolved"]
    assert any(e["slo"] == AVAILABILITY_SLO for e in fired)
    alert = next(e for e in fired if e["slo"] == AVAILABILITY_SLO)
    # the tail sampler never drops errors, so the page carries evidence
    assert alert["exemplars"], "availability alert must link exemplar traces"
    assert alert["slow_burn"] >= alert["factor"]
    assert alert["fast_burn"] >= alert["factor"]
    # it was active mid-run and every fired alert eventually resolved
    assert probe.active_at
    assert {e["slo"] for e in resolved} == {e["slo"] for e in fired}
    assert result.stats["slo_alerts_fired"] >= 1
    assert result.stats["slo_alerts_active"] == 0


def test_clean_run_keeps_slo_quiet():
    """With no faults injected, burn-rate alerting must stay silent."""
    probe = _AlertLogProbe()
    result = SimulationRun(
        3,
        ticks=10,
        schedule=NemesisSchedule(seed="quiet", events=()),
        oracles=registered_oracles() + [probe],
    ).run()
    assert result.passed, [v.message for v in result.violations]
    assert probe.log == []
    assert result.stats["slo_alerts_fired"] == 0


def test_brownout_run_is_byte_identical_per_seed():
    """The acceptance bar: same seed + schedule, same report bytes —
    alerting and sampling add no nondeterminism."""
    import json

    a = SimulationRun(11, ticks=12, schedule=brownout_schedule()).run()
    b = SimulationRun(11, ticks=12, schedule=brownout_schedule()).run()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


def test_sampling_ledger_reaches_the_run_stats():
    result = SimulationRun(4, ticks=8).run()
    stats = result.stats
    assert stats["traces_kept"] + stats["traces_dropped"] > 0
    assert stats["traces_dropped"] > 0  # sampling actually dropped traffic


@pytest.mark.tier2_simtest
def test_slo_burn_fifty_seed_sweep_is_clean_and_deterministic():
    """The ISSUE's acceptance sweep: 50 seeds through the full oracle
    battery (slo-burn included), every report byte-identical on re-run."""
    from repro.simtest.explorer import report_json, sweep

    first = sweep(range(50), shrink=False)
    assert first["verdict"] == "pass"
    assert first["failures"] == 0
    # every seed fired-and-cleared or stayed quiet; none ended stuck
    for entry in first["results"]:
        assert entry["stats"]["slo_alerts_active"] == 0
    second = sweep(range(50), shrink=False)
    assert report_json(first) == report_json(second)
