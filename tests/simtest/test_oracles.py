"""The oracle registry and the standard invariant battery."""

from repro.simtest.oracles import (
    AdmissionBreakerSanityOracle,
    DeadlineBudgetOracle,
    JournalChainOracle,
    NoLostAckedWritesOracle,
    Oracle,
    ReplicationConvergenceOracle,
    SpanTreeOracle,
    Violation,
    registered_oracles,
)

STANDARD = {
    "no-lost-acked-writes",
    "journal-chain",
    "deadline-budget",
    "admission-breaker-sanity",
    "replication-convergence",
    "span-tree",
}


def test_standard_battery_is_registered():
    names = {oracle.name for oracle in registered_oracles()}
    assert STANDARD <= names


def test_every_concrete_oracle_subclass_is_registered():
    registered = {type(oracle) for oracle in registered_oracles()}
    concrete = {
        cls for cls in Oracle.__subclasses__() if cls is not Oracle
    }
    assert concrete <= registered


def test_registered_oracles_returns_fresh_instances():
    first = registered_oracles()
    second = registered_oracles()
    assert [type(o) for o in first] == [type(o) for o in second]
    assert all(a is not b for a, b in zip(first, second))


def test_when_phases_are_legal():
    for oracle in registered_oracles():
        assert oracle.when
        assert set(oracle.when) <= {"tick", "final"}


def test_convergence_and_spans_are_final_phase_only():
    assert ReplicationConvergenceOracle.when == ("final",)
    assert SpanTreeOracle.when == ("final",)


def test_continuous_oracles_run_every_tick():
    for cls in (
        NoLostAckedWritesOracle,
        JournalChainOracle,
        DeadlineBudgetOracle,
        AdmissionBreakerSanityOracle,
    ):
        assert "tick" in cls.when


def test_violation_serialization_is_canonical():
    violation = Violation(
        oracle="x",
        message="m",
        t=1.5,
        detail={"b": "2", "a": "1"},
        spans=[{"name": "s"}],
    )
    payload = violation.to_dict()
    assert list(payload["detail"]) == ["a", "b"]
    assert payload["oracle"] == "x"
    assert payload["spans"] == [{"name": "s"}]


def test_oracles_carry_descriptions():
    for oracle in registered_oracles():
        assert oracle.description, f"{oracle.name} has no description"
