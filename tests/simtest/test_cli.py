"""The ``python -m repro.simtest`` command line."""

import json

from repro.simtest.__main__ import main
from repro.simtest.explorer import REPORT_SCHEMA


def test_single_seed_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main(["--seed", "0", "--quiet", "--out", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == REPORT_SCHEMA
    assert report["verdict"] == "pass"
    assert report["seeds"] == 1
    assert report["results"][0]["seed"] == "0"


def test_report_is_byte_identical_across_runs(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["--seed", "4", "--quiet", "--out", str(a)]) == 0
    assert main(["--seed", "4", "--quiet", "--out", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_failing_canary_exits_nonzero_and_writes_artifacts(tmp_path):
    out = tmp_path / "report.json"
    artifacts = tmp_path / "artifacts"
    code = main([
        "--seed", "1", "--canary", "ack-before-fsync", "--quiet",
        "--out", str(out), "--artifacts", str(artifacts),
    ])
    assert code == 1
    report = json.loads(out.read_text())
    assert report["verdict"] == "fail"
    shrunk_files = sorted(artifacts.glob("seed-*-shrunk.json"))
    assert shrunk_files
    shrunk = json.loads(shrunk_files[0].read_text())
    assert shrunk["schema"] == "repro.simtest.schedule/v1"
    assert len(shrunk["events"]) <= 5


def test_schedule_replay_round_trips_through_the_cli(tmp_path):
    # fail once to get a shrunk schedule, then replay it explicitly
    artifacts = tmp_path / "artifacts"
    main([
        "--seed", "1", "--canary", "ack-before-fsync", "--quiet",
        "--out", str(tmp_path / "first.json"), "--artifacts", str(artifacts),
    ])
    shrunk_file = sorted(artifacts.glob("seed-*-shrunk.json"))[0]
    out = tmp_path / "replay.json"
    code = main([
        "--seed", "1", "--canary", "ack-before-fsync", "--quiet",
        "--schedule", str(shrunk_file), "--out", str(out),
    ])
    assert code == 1  # the minimal schedule still reproduces the violation
    report = json.loads(out.read_text())
    assert report["results"][0]["verdict"] == "fail"


def test_schedule_flag_requires_exactly_one_seed(tmp_path, capsys):
    schedule = tmp_path / "s.json"
    schedule.write_text('{"schema": "repro.simtest.schedule/v1", "events": []}')
    code = main([
        "--seed", "1", "--seed", "2", "--schedule", str(schedule), "--quiet",
    ])
    assert code == 2
