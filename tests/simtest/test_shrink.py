"""Failing-schedule shrinking: minimality, reproducibility, bounds."""

from repro.simtest.harness import SimulationRun
from repro.simtest.nemesis import NemesisSchedule
from repro.simtest.shrink import shrink_schedule

CANARY = "ack-before-fsync"


def test_canary_schedule_shrinks_to_at_most_five_events():
    """The acceptance bar: a full nemesis schedule triggering the
    ack-before-fsync canary delta-debugs down to a handful of events."""
    run = SimulationRun(1, canary=CANARY)
    result = shrink_schedule(
        "1", run.schedule, ticks=run.ticks, canary=CANARY
    )
    assert result.original_events > result.events
    assert result.events <= 5
    assert result.violations


def test_shrunk_schedule_still_reproduces_byte_identically():
    run = SimulationRun(2, canary=CANARY)
    shrunk = shrink_schedule("2", run.schedule, ticks=run.ticks, canary=CANARY)
    # round-trip the shrunk schedule through its printed JSON form — the
    # repro artifact a failing CI run uploads — and re-run it twice
    replayed = NemesisSchedule.from_json(shrunk.schedule.to_json())
    a = SimulationRun(2, schedule=replayed, canary=CANARY).run()
    b = SimulationRun(2, schedule=replayed, canary=CANARY).run()
    assert not a.passed
    assert a.to_dict()["digest"] == b.to_dict()["digest"]


def test_shrunk_events_are_a_subset_of_the_original():
    run = SimulationRun(3, canary=CANARY)
    shrunk = shrink_schedule("3", run.schedule, ticks=run.ticks, canary=CANARY)
    original = {(e.t, e.id) for e in run.schedule.events}
    assert {(e.t, e.id) for e in shrunk.schedule.events} <= original


def test_passing_schedule_does_not_shrink():
    run = SimulationRun(0)  # no canary: passes
    result = shrink_schedule("0", run.schedule, ticks=run.ticks)
    assert result.probes == 1
    assert not result.violations


def test_probe_budget_is_respected():
    run = SimulationRun(1, canary=CANARY)
    result = shrink_schedule(
        "1", run.schedule, ticks=run.ticks, canary=CANARY, max_probes=3
    )
    assert result.probes <= 3
    assert result.violations  # still a valid (if unminimized) repro
