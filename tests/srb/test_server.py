import pytest

from repro.faults import (
    AuthenticationError,
    AuthorizationError,
    ResourceExhaustedError,
    ResourceNotFoundError,
)
from repro.srb.server import SrbServer
from repro.srb.storage import StorageResource
from repro.transport.clock import SimClock


ALICE = "/O=G/CN=alice"
BOB = "/O=G/CN=bob"


@pytest.fixture
def srb(ca):
    server = SrbServer(ca, SimClock())
    server.add_resource(StorageResource("disk", capacity_bytes=1000), default=True)
    server.add_resource(StorageResource("tape", capacity_bytes=1000))
    server.register_user(ALICE, "alice")
    server.register_user(BOB, "bob")
    return server


def _session(ca, srb, identity=ALICE):
    cred = ca.issue_credential(identity, lifetime=1000.0, now=0.0)
    return srb.connect(cred.sign_proxy(lifetime=500.0, now=0.0))


def test_connect_requires_registration(ca, srb):
    stranger = ca.issue_credential("/O=G/CN=eve", lifetime=100.0, now=0.0)
    with pytest.raises(AuthorizationError):
        srb.connect(stranger.sign_proxy(lifetime=10.0, now=0.0))


def test_connect_rejects_expired_proxy(ca, srb):
    cred = ca.issue_credential(ALICE, lifetime=1000.0, now=0.0)
    proxy = cred.sign_proxy(lifetime=1.0, now=0.0)
    srb.clock.advance(10.0)
    with pytest.raises(AuthenticationError):
        srb.connect(proxy)


def test_put_get_rm(ca, srb):
    session = _session(ca, srb)
    srb.put(session, "/home/alice/f", b"content")
    assert srb.get(session, "/home/alice/f") == b"content"
    srb.rm(session, "/home/alice/f")
    with pytest.raises(ResourceNotFoundError):
        srb.get(session, "/home/alice/f")
    # physical storage was reclaimed
    assert srb.resources["disk"].used_bytes == 0


def test_overwrite_replaces(ca, srb):
    session = _session(ca, srb)
    srb.put(session, "/home/alice/f", b"v1")
    srb.put(session, "/home/alice/f", b"version2")
    assert srb.get(session, "/home/alice/f") == b"version2"
    assert srb.resources["disk"].used_bytes == len(b"version2")


def test_acl_blocks_other_users(ca, srb):
    alice = _session(ca, srb)
    bob = _session(ca, srb, BOB)
    srb.put(alice, "/home/alice/private", b"x")
    with pytest.raises(AuthorizationError):
        srb.get(bob, "/home/alice/private")
    with pytest.raises(AuthorizationError):
        srb.put(bob, "/home/alice/intruder", b"y")


def test_chmod_grants_read_then_revoke(ca, srb):
    alice = _session(ca, srb)
    bob = _session(ca, srb, BOB)
    srb.put(alice, "/home/alice/shared", b"data")
    srb.chmod(alice, "/home/alice", "bob", "r")
    assert srb.get(bob, "/home/alice/shared") == b"data"
    with pytest.raises(AuthorizationError):
        srb.put(bob, "/home/alice/write-denied", b"z")
    srb.chmod(alice, "/home/alice", "bob", "none")
    with pytest.raises(AuthorizationError):
        srb.get(bob, "/home/alice/shared")


def test_disk_full_is_the_canonical_error(ca, srb):
    session = _session(ca, srb)
    with pytest.raises(ResourceExhaustedError):
        srb.put(session, "/home/alice/big", b"x" * 2000)


def test_replication_and_failover(ca, srb):
    session = _session(ca, srb)
    srb.put(session, "/home/alice/f", b"replicated")
    obj = srb.replicate(session, "/home/alice/f", "tape")
    assert len(obj.replicas) == 2
    # idempotent
    assert len(srb.replicate(session, "/home/alice/f", "tape").replicas) == 2
    # losing the primary replica still allows reads from tape
    primary_blob = obj.replicas[0][1]
    srb.resources["disk"].delete(primary_blob)
    assert srb.get(session, "/home/alice/f") == b"replicated"


def test_metadata_roundtrip_and_query(ca, srb):
    session = _session(ca, srb)
    srb.put(session, "/home/alice/in.dat", b"1", metadata={"kind": "input"})
    srb.set_metadata(session, "/home/alice/in.dat", {"code": "gaussian"})
    hits = srb.query_metadata(session, {"kind": "input"}, "/home/alice")
    assert hits == ["/home/alice/in.dat"]


def test_rmdir_force_reclaims_everything(ca, srb):
    session = _session(ca, srb)
    srb.mkdir(session, "/home/alice/tree/deep")
    srb.put(session, "/home/alice/tree/a", b"aa")
    srb.put(session, "/home/alice/tree/deep/b", b"bb")
    srb.rmdir(session, "/home/alice/tree", force=True)
    assert srb.resources["disk"].used_bytes == 0


def test_closed_session_rejected(ca, srb):
    session = _session(ca, srb)
    srb.disconnect(session)
    with pytest.raises(AuthenticationError):
        srb.ls(session, "/home/alice")
