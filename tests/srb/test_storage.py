import pytest

from repro.faults import ResourceExhaustedError, ResourceNotFoundError
from repro.srb.storage import StorageResource


def test_write_read_delete():
    res = StorageResource("disk", capacity_bytes=100)
    blob = res.write(b"0123456789")
    assert res.read(blob) == b"0123456789"
    assert res.used_bytes == 10
    assert blob in res
    res.delete(blob)
    assert res.used_bytes == 0
    assert blob not in res


def test_capacity_enforced_exactly():
    res = StorageResource("disk", capacity_bytes=10)
    res.write(b"12345")
    res.write(b"12345")  # exactly full is allowed
    with pytest.raises(ResourceExhaustedError) as exc_info:
        res.write(b"x")
    assert exc_info.value.detail["resource"] == "disk"


def test_delete_frees_capacity():
    res = StorageResource("disk", capacity_bytes=10)
    blob = res.write(b"x" * 10)
    res.delete(blob)
    res.write(b"y" * 10)  # fits again


def test_missing_blob_errors():
    res = StorageResource("disk")
    with pytest.raises(ResourceNotFoundError):
        res.read("disk:00000099")
    with pytest.raises(ResourceNotFoundError):
        res.delete("disk:00000099")


def test_blob_ids_unique():
    res = StorageResource("disk")
    assert res.write(b"a") != res.write(b"a")
