import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.srb.catalog import DataObject, Mcat, split_path


@pytest.fixture
def mcat():
    cat = Mcat()
    cat.make_collection("/home/alice/data", "alice")
    cat.put_object("/home/alice/data/f1", DataObject("", size=3, owner="alice"))
    return cat


def test_collection_navigation(mcat):
    assert mcat.collection("/home/alice").name == "alice"
    with pytest.raises(ResourceNotFoundError):
        mcat.collection("/home/bob")


def test_object_lookup_and_listing(mcat):
    obj = mcat.data_object("/home/alice/data/f1")
    assert obj.size == 3
    rows = mcat.listing("/home/alice")
    assert rows == [{"name": "data/", "type": "collection", "size": 0}]
    rows = mcat.listing("/home/alice/data")
    assert rows[0]["name"] == "f1"
    assert rows[0]["owner"] == "alice"


def test_exists(mcat):
    assert mcat.exists("/home/alice/data/f1")
    assert mcat.exists("/home/alice/data")
    assert not mcat.exists("/home/alice/ghost")
    assert not mcat.exists("/no/such/deep/path")


def test_name_collision_rules(mcat):
    with pytest.raises(InvalidRequestError):
        mcat.make_collection("/home/alice/data/f1/sub", "alice")
    with pytest.raises(InvalidRequestError):
        mcat.put_object("/home/alice/data", DataObject(""))


def test_remove_collection_safety(mcat):
    with pytest.raises(InvalidRequestError):
        mcat.remove_collection("/home/alice")
    mcat.remove_collection("/home/alice", force=True)
    assert not mcat.exists("/home/alice")


def test_remove_object(mcat):
    removed = mcat.remove_object("/home/alice/data/f1")
    assert removed.size == 3
    with pytest.raises(ResourceNotFoundError):
        mcat.remove_object("/home/alice/data/f1")


def test_relative_components_rejected():
    with pytest.raises(InvalidRequestError):
        split_path("/home/../etc")


def test_metadata_query(mcat):
    obj = mcat.data_object("/home/alice/data/f1")
    obj.metadata["kind"] = "input"
    mcat.put_object(
        "/home/alice/data/f2",
        DataObject("", metadata={"kind": "output"}),
    )
    hits = mcat.find_by_metadata({"kind": "input"})
    assert [path for path, _ in hits] == ["/home/alice/data/f1"]
    scoped = mcat.find_by_metadata({"kind": "output"}, "/home/alice")
    assert len(scoped) == 1


segments = st.text(alphabet="abcdefg", min_size=1, max_size=5)


@given(st.lists(st.lists(segments, min_size=1, max_size=4), min_size=1,
                max_size=8))
@settings(max_examples=60, deadline=None)
def test_make_then_lookup_property(paths):
    cat = Mcat()
    for parts in paths:
        cat.make_collection("/".join(parts), "u")
    for parts in paths:
        node = cat.collection("/".join(parts))
        assert node.name == parts[-1]
