import pytest

from repro.faults import ResourceNotFoundError
from repro.srb.commands import Scommands
from repro.srb.server import SrbServer
from repro.srb.storage import StorageResource
from repro.transport.clock import SimClock


@pytest.fixture
def scommands(ca):
    server = SrbServer(ca, SimClock())
    server.add_resource(StorageResource("disk"), default=True)
    server.add_resource(StorageResource("tape"))
    server.register_user("/O=G/CN=alice", "alice")
    cred = ca.issue_credential("/O=G/CN=alice", lifetime=1000.0, now=0.0)
    return Scommands(server, cred.sign_proxy(lifetime=500.0, now=0.0))


def test_sinit_returns_user(scommands):
    assert scommands.Sinit() == "alice"


def test_implicit_session_on_first_command(scommands):
    # no explicit Sinit: commands open the session lazily
    scommands.Smkdir("/home/alice/work")
    assert any("work" in row for row in scommands.Sls("/home/alice"))


def test_put_cat_get_roundtrip(scommands):
    size = scommands.Sput("/home/alice/hello.txt", "hello world")
    assert size == 11
    assert scommands.Scat("/home/alice/hello.txt") == "hello world"
    assert scommands.Sget("/home/alice/hello.txt") == b"hello world"


def test_ls_formatting(scommands):
    scommands.Smkdir("/home/alice/sub")
    scommands.Sput("/home/alice/f", b"123")
    rows = scommands.Sls("/home/alice")
    assert rows[0] == "  C- sub/"
    assert "3" in rows[1] and "alice" in rows[1] and rows[1].endswith("f")


def test_replicate_and_metadata(scommands):
    scommands.Sput("/home/alice/d", b"x")
    assert scommands.Sreplicate("/home/alice/d", "tape") == 2
    scommands.Smeta("/home/alice/d", kind="output", code="mm5")
    assert scommands.Squery("/home/alice", kind="output") == ["/home/alice/d"]


def test_rm_and_rmdir(scommands):
    scommands.Smkdir("/home/alice/t")
    scommands.Sput("/home/alice/t/f", b"1")
    scommands.Srm("/home/alice/t/f")
    scommands.Srmdir("/home/alice/t")
    with pytest.raises(ResourceNotFoundError):
        scommands.Scat("/home/alice/t/f")


def test_sexit_closes_session(scommands):
    scommands.Sinit()
    scommands.Sexit()
    # the next command transparently reconnects
    assert scommands.Sls("/home/alice") == []
