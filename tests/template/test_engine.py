import pytest

from repro.template.engine import Template, TemplateError, TemplateLoader, render


def test_variable_substitution():
    assert render("hello $name!", name="world") == "hello world!"
    assert render("${a}-${b}", a=1, b=2) == "1-2"


def test_unresolved_reference_left_verbatim():
    # Velocity convention: unresolvable $refs stay in the output
    assert render("x $missing y") == "x $missing y"


def test_dotted_paths_and_methods():
    class Thing:
        label = "L"

        def describe(self):
            return "described"

    assert render("$t.label/$t.describe()", t=Thing()) == "L/described"
    assert render("$d.key", d={"key": "v"}) == "v"


def test_escaped_variable():
    assert render("$!x", x="<b>&") == "&lt;b&gt;&amp;"
    assert render("$x", x="<b>") == "<b>"


def test_if_elseif_else():
    template = "#if($n > 10)big#elseif($n > 5)mid#else small#end"
    assert render(template, n=20) == "big"
    assert render(template, n=7) == "mid"
    assert render(template, n=1) == " small"


def test_boolean_operators():
    assert render("#if($a && !$b)yes#end", a=True, b=False) == "yes"
    assert render("#if($a || $b)yes#else no#end", a=False, b=False) == " no"
    assert render('#if($s == "x")eq#end', s="x") == "eq"


def test_foreach_with_velocity_count():
    out = render("#foreach($i in $items)$velocityCount:$i;#end", items=["a", "b"])
    assert out == "1:a;2:b;"


def test_foreach_restores_outer_variable():
    out = render("#set($i = 9)#foreach($i in $items)$i#end$i", items=[1, 2])
    assert out == "129"


def test_set_directive():
    assert render('#set($x = "v")$x') == "v"
    assert render("#set($y = $a + 1)$y", a=2) == "3"


def test_string_concatenation():
    assert render('#set($z = $a + "-suffix")$z', a="pre") == "pre-suffix"


def test_include_via_loader():
    loader = TemplateLoader({"inner": "INNER($x)", "outer": 'A#include("inner")B'})
    assert loader.render("outer", x=1) == "AINNER(1)B"


def test_include_without_loader_fails():
    with pytest.raises(TemplateError):
        Template('#include("x")').render()


def test_unterminated_block_rejected():
    with pytest.raises(TemplateError):
        Template("#if($x)unclosed")
    with pytest.raises(TemplateError):
        Template("#end")


def test_nested_structures():
    template = (
        "#foreach($row in $rows)"
        "#if($row.ok)[$row.name]#end"
        "#end"
    )
    rows = [{"ok": True, "name": "a"}, {"ok": False, "name": "b"},
            {"ok": True, "name": "c"}]
    assert render(template, rows=rows) == "[a][c]"


def test_loader_caching_and_update():
    loader = TemplateLoader()
    loader.add("t", "v1 $x")
    assert loader.render("t", x=1) == "v1 1"
    loader.add("t", "v2 $x")
    assert loader.render("t", x=1) == "v2 1"
    with pytest.raises(TemplateError):
        loader.get("missing")


def test_literal_dollar_amount_untouched():
    assert render("costs $5 total") == "costs $5 total"
