"""Property tests for the template engine."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.template.engine import render

plain = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:!?",
    max_size=40,
)

idents = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@given(plain)
@settings(max_examples=80, deadline=None)
def test_plain_text_is_identity(text):
    assert render(text) == text


@given(idents, plain)
@settings(max_examples=80, deadline=None)
def test_single_variable_substitution(name, value):
    assert render(f"[${{{name}}}]", **{name: value}) == f"[{value}]"


@given(st.lists(plain, max_size=5))
@settings(max_examples=50, deadline=None)
def test_foreach_emits_once_per_item(items):
    out = render("#foreach($x in $items)|#end", items=items)
    assert out == "|" * len(items)


@given(st.integers(-100, 100), st.integers(-100, 100))
@settings(max_examples=50, deadline=None)
def test_comparison_matches_python(a, b):
    out = render("#if($a < $b)lt#elseif($a == $b)eq#else gt#end", a=a, b=b)
    expected = "lt" if a < b else ("eq" if a == b else " gt")
    assert out == expected
