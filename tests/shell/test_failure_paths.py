"""Failure paths: retry budgets, terminal branches, crash semantics.

The contract under test: a stage that exhausts its retry budget lands as a
*failed terminal* node — classified under the common fault taxonomy,
sealed into provenance — its descendants are skipped, and independent
branches keep running.  A :class:`ServiceCrash` is different in kind: it
kills the executor (no stage-done lands) so a resumed incarnation
re-drives the stage.
"""

import pytest

from repro.durability.journal import Journal
from repro.portal.uiserver import UserInterfaceServer
from repro.shell import (
    BatchScriptStage,
    GlobusrunStage,
    MetaScheduleStage,
    SrbPutStage,
    Workflow,
    WorkflowExecutor,
    const,
    provenance_tree,
    ref,
)
from repro.transport.network import ServiceCrash, VirtualNetwork
from tests.shell.conftest import (
    CrashingStage,
    EchoStage,
    FlakyStage,
    branch_jobs,
)


def test_non_retryable_failure_is_terminal_and_branch_is_skipped(
    fresh_deployment,
):
    ui = UserInterfaceServer(fresh_deployment, host="ui.fail")
    workflow = Workflow("half-broken", [
        # missing the required 'executable' param: Portal.InvalidRequest,
        # non-retryable, so the budget is not even spent
        BatchScriptStage("bad-script", scheduler="PBS", params={}),
        SrbPutStage("bad-collect", path="/home/portal/bad.out",
                    inputs={"s": ref("bad-script", "script")}),
        # an independent good branch
        MetaScheduleStage("good-place",
                          inputs={"jobs": const(branch_jobs("good", 0))}),
        GlobusrunStage("good-run",
                       inputs={"jobs": ref("good-place", "placed")}),
        SrbPutStage("good-collect", path="/home/portal/good.out",
                    inputs={"r": ref("good-run", "results")}),
    ])
    executor = ui.workflow_executor(workflow, run_id="run-fail", seed=5)
    result = executor.run()

    assert not result.done
    assert set(result.failed) == {"bad-script"}
    assert result.skipped == ("bad-collect",)
    assert set(result.completed) == {"good-place", "good-run", "good-collect"}

    record = executor.store.record(result.failed["bad-script"])
    assert record["status"] == "failed"
    assert record["error"]["code"] == "Portal.InvalidRequest"
    assert record["error"]["attempts"] == "1"  # non-retryable: no budget spent
    assert executor.store.verify() == []

    tree = provenance_tree(executor.store, "run-fail")
    assert "error=Portal.InvalidRequest" in tree


def test_retryable_failure_exhausts_the_declared_budget(stub_runtime):
    stage = FlakyStage("always-down", failures=99,
                       inputs={"seed": const("x")}, retries=3)
    workflow = Workflow("doomed", [stage])
    executor = WorkflowExecutor(workflow, stub_runtime, run_id="run-x", seed=0)
    result = executor.run()
    assert set(result.failed) == {"always-down"}
    record = executor.store.record(result.failed["always-down"])
    assert record["error"]["code"] == "Portal.ServiceUnavailable"
    assert record["error"]["attempts"] == "3"
    assert stage.attempts_seen == 3


def test_retryable_failure_within_budget_recovers(stub_runtime):
    clock = stub_runtime.network.clock
    before = clock.now
    stage = FlakyStage("shaky", failures=2,
                       inputs={"seed": const("x")}, retries=3)
    workflow = Workflow("shaken", [stage])
    result = WorkflowExecutor(
        workflow, stub_runtime, run_id="run-y", seed=0,
    ).run()
    assert result.done
    assert stage.attempts_seen == 3
    assert clock.now > before  # backoff advanced the virtual clock


def test_backoff_schedule_is_seeded(stub_runtime):
    def elapsed(seed):
        runtime = type(stub_runtime)(VirtualNetwork(), {})
        stage = FlakyStage("shaky", failures=2,
                           inputs={"seed": const("x")}, retries=3)
        WorkflowExecutor(
            Workflow("w", [stage]), runtime, run_id="run-z", seed=seed,
        ).run()
        return runtime.network.clock.now

    assert elapsed(1) == elapsed(1)
    assert elapsed(1) != elapsed(2)


def test_service_crash_kills_the_executor_and_resume_redrives(stub_runtime):
    network = stub_runtime.network
    disk = network.disk("ui.crash")
    stage = CrashingStage("fragile", inputs={"seed": const("x")})
    workflow = Workflow("crashy", [
        stage,
        EchoStage("after", inputs={"in": ref("fragile")}),
    ])
    journal = Journal(disk, "wf-crash", clock=network.clock)
    executor = WorkflowExecutor(
        workflow, stub_runtime, journal=journal, run_id="run-c", seed=0,
    )
    with pytest.raises(ServiceCrash):
        executor.run()
    # the stage started but never settled: that is what resume keys off
    starts = [r.data["stage"] for r in journal.by_kind("stage-start")]
    dones = [r.data["stage"] for r in journal.by_kind("stage-done")]
    assert "fragile" in starts and "fragile" not in dones

    resumed = WorkflowExecutor(
        workflow, stub_runtime,
        journal=Journal(disk, "wf-crash", clock=network.clock),
    )
    result = resumed.run()
    assert result.done
    assert result.stage_order == ("fragile", "after")
    assert resumed.store.verify() == []


def test_crash_is_not_counted_against_the_retry_budget(stub_runtime):
    stage = CrashingStage("fragile", inputs={"seed": const("x")}, retries=1)
    workflow = Workflow("w", [stage])
    executor = WorkflowExecutor(workflow, stub_runtime, run_id="run-d", seed=0)
    with pytest.raises(ServiceCrash):
        executor.run()
    # a crash is not a classified stage failure: nothing settled
    assert executor.failed == {}
    assert executor.pending() == ("fragile",)
