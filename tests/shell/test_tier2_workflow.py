"""Tier-2 soak: the workflow-provenance oracle over a 50-seed sweep.

Every seed runs the full deterministic simulation — nemesis faults,
crash-restart supervision, the tick-cadenced workflow workload — and the
workflow-provenance oracle must hold at every tick and after heal.  Run
with ``pytest -m tier2_workflow``.
"""

import pytest

from repro.simtest.harness import SimulationRun

SEEDS = range(50)


@pytest.mark.tier2_workflow
def test_fifty_seed_workflow_provenance_sweep_is_clean():
    drove_workflows = 0
    for seed in SEEDS:
        result = SimulationRun(seed).run()
        assert result.passed, (
            seed, [v.message for v in result.violations],
        )
        drove_workflows += result.stats["workflows_run"]
        assert result.stats["workflow_stages_failed"] <= (
            3 * result.stats["workflows_run"]
        )
    # the sweep exercised the engine, not just the empty path
    assert drove_workflows >= len(SEEDS)


@pytest.mark.tier2_workflow
def test_sweep_seeds_replay_byte_identically():
    for seed in (0, 17, 43):
        a = SimulationRun(seed).run().to_dict()
        b = SimulationRun(seed).run().to_dict()
        assert a["digest"] == b["digest"], seed
