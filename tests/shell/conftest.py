"""Shared helpers for the workflow-engine tests.

``sweep_workflow`` is the acceptance shape: one batch-script root fanning
out into *width* metaschedule→globusrun branches, collected by one SRB
put.  ``EchoStage`` / ``FlakyStage`` / ``CrashingStage`` are pure in-memory
stages for the executor-semantics and property tests — no SOAP calls, so a
:class:`~repro.shell.runtime.WorkflowRuntime` over an empty endpoint map
suffices.
"""

from __future__ import annotations

import pytest

from repro.faults import ServiceUnavailableError
from repro.grid.jobs import JobSpec
from repro.services.jobsubmit import jobs_to_xml
from repro.shell import (
    BatchScriptStage,
    GlobusrunStage,
    MetaScheduleStage,
    SrbPutStage,
    Workflow,
    WorkflowRuntime,
    WorkflowStage,
    const,
    ref,
)
from repro.transport.network import ServiceCrash, VirtualNetwork


def branch_jobs(tag: str, index: int) -> str:
    """A host-less single-job batch document for one sweep branch."""
    return jobs_to_xml([
        ("", JobSpec(
            name=f"{tag}-{index}",
            executable="echo",
            arguments=[f"{tag}-{index}"],
        )),
    ])


def sweep_workflow(width: int = 8, *, tag: str = "sweep") -> Workflow:
    """The acceptance fan-out: script -> (place -> run) x width -> collect."""
    stages: list[WorkflowStage] = [
        BatchScriptStage(
            "script",
            scheduler="PBS",
            params={"executable": "/bin/sweep", "cpus": "1"},
        ),
    ]
    collect_inputs = {}
    for index in range(width):
        stages.append(MetaScheduleStage(
            f"place-{index}",
            inputs={"jobs": const(branch_jobs(tag, index))},
        ))
        stages.append(GlobusrunStage(
            f"run-{index}",
            inputs={
                "jobs": ref(f"place-{index}", "placed"),
                "script": ref("script", "script"),
            },
        ))
        collect_inputs[f"r{index}"] = ref(f"run-{index}", "results")
    stages.append(SrbPutStage(
        "collect", path=f"/home/portal/{tag}.out", inputs=collect_inputs,
    ))
    return Workflow(f"{tag}-wf", stages)


class EchoStage(WorkflowStage):
    """A pure stage: output is a deterministic function of name + inputs."""

    kind = "echo"
    output_ports = ("out",)

    def idempotency_key(self, run: str) -> str:
        return f"wf:{run}:{self.name}:echo"

    def execute(self, ctx, inputs):
        payload = ";".join(f"{port}={inputs[port]}" for port in sorted(inputs))
        return {"out": f"{self.name}({payload})"}


class FlakyStage(EchoStage):
    """Fails with a retryable fault the first *failures* attempts."""

    kind = "flaky"

    def __init__(self, name, *, failures, **kw):
        super().__init__(name, **kw)
        self.failures = failures
        self.attempts_seen = 0

    def execute(self, ctx, inputs):
        self.attempts_seen += 1
        if self.attempts_seen <= self.failures:
            raise ServiceUnavailableError(
                f"stage {self.name} transiently down "
                f"(attempt {self.attempts_seen})"
            )
        return super().execute(ctx, inputs)


class CrashingStage(EchoStage):
    """Dies with the process-death primitive on its first drive only."""

    kind = "crashing"

    def __init__(self, name, **kw):
        super().__init__(name, **kw)
        self.crashes = 0

    def execute(self, ctx, inputs):
        if self.crashes == 0:
            self.crashes += 1
            raise ServiceCrash(f"host died driving {self.name}")
        return super().execute(ctx, inputs)


@pytest.fixture
def stub_runtime() -> WorkflowRuntime:
    """A runtime over an empty endpoint map: enough for pure stages."""
    return WorkflowRuntime(VirtualNetwork(), {})


@pytest.fixture
def fresh_deployment():
    """A private full deployment (the shared module-scoped one must not
    see hosts crashed or services driven to terminal failure)."""
    from repro.portal.uiserver import PortalDeployment

    return PortalDeployment.build()
