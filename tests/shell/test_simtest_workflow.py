"""The workflow-provenance oracle and the harness's workflow workload."""

from repro.simtest.harness import SimulationRun
from repro.simtest.oracles import (
    WorkflowProvenanceOracle,
    registered_oracles,
)
from repro.shell import ProvenanceStore, make_record


class _StubWorld:
    """The minimal world surface an oracle's violation() touches."""

    def __init__(self, stores=(), acked=()):
        self.workflow_stores = list(stores)
        self.acked_stage_records = list(acked)

    class clock:
        now = 0.0

    def spans_near(self, *args, **kwargs):
        return []


def _sealed(store):
    blob = store.put_blob("payload")
    address = store.seal(make_record(
        workflow="w", workflow_digest="d" * 64, run="r", stage="a",
        kind="echo", command={}, inputs={}, outputs={"out": blob},
        parents={},
    ))
    return address, blob


def test_oracle_is_registered():
    assert any(
        oracle.name == "workflow-provenance" for oracle in registered_oracles()
    )


def test_oracle_quiet_on_healthy_store():
    store = ProvenanceStore()
    address, _blob = _sealed(store)
    world = _StubWorld([store], [(store, address)])
    assert WorkflowProvenanceOracle().check(world) == []


def test_oracle_flags_broken_chain():
    store = ProvenanceStore()
    address, blob = _sealed(store)
    del store._blobs[blob]  # the fault: an output blob vanishes
    world = _StubWorld([store], [(store, address)])
    messages = [v.message for v in WorkflowProvenanceOracle().check(world)]
    assert any("provenance broken" in m for m in messages)
    assert any("is gone" in m for m in messages)


def test_oracle_flags_vanished_acked_record():
    store = ProvenanceStore()
    address, _blob = _sealed(store)
    world = _StubWorld([], [(store, "0" * 64)])
    messages = [v.message for v in WorkflowProvenanceOracle().check(world)]
    assert any("vanished" in m for m in messages)
    assert store.has_record(address)  # the real record is untouched


def test_harness_workload_drives_workflows_through_faults():
    result = SimulationRun(3).run()
    assert result.passed, [v.message for v in result.violations]
    assert result.stats["workflows_run"] >= 1
    assert result.stats["acked_stage_records"] >= 3
    assert result.stats["workflow_stages_ok"] >= 3


def test_workflow_workload_is_seed_deterministic():
    a = SimulationRun(9).run().to_dict()
    b = SimulationRun(9).run().to_dict()
    assert a["digest"] == b["digest"]
    assert a["stats"]["workflows_run"] == b["stats"]["workflows_run"]
