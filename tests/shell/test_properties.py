"""Hypothesis properties: scheduling determinism, provenance immutability,
and crash-resume equivalence over randomly shaped DAGs.

The DAG strategy wires each stage to a random subset of earlier stages,
so every shape from a pure pipeline to a wide diamond shows up.  Stages
are pure ``EchoStage``\\ s: output bytes are a function of the stage name
and resolved inputs only, which is exactly the situation in which the
executor's own nondeterminism (if it had any) would be the *sole* source
of divergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shell import (
    ProvenanceStore,
    Workflow,
    WorkflowExecutor,
    WorkflowRuntime,
    const,
    provenance_tree,
    ref,
)
from repro.durability.journal import Journal
from repro.transport.network import VirtualNetwork
from tests.shell.conftest import EchoStage


@st.composite
def dag_shapes(draw):
    """[(stage index, sorted parent indices)], parents always earlier."""
    n = draw(st.integers(min_value=2, max_value=6))
    shape = []
    for j in range(n):
        parents = sorted(draw(st.sets(
            st.integers(min_value=0, max_value=max(0, j - 1)),
            max_size=min(j, 3),
        ))) if j else []
        shape.append((j, parents))
    return shape


def build_workflow(shape) -> Workflow:
    stages = []
    for j, parents in shape:
        inputs = {"seed": const(f"c{j}")}
        for i in parents:
            inputs[f"p{i}"] = ref(f"s{i}")
        stages.append(EchoStage(f"s{j}", inputs=inputs))
    return Workflow("prop", stages)


def run_once(workflow, seed, *, journal=None, max_stages=None):
    executor = WorkflowExecutor(
        workflow,
        WorkflowRuntime(VirtualNetwork(), {}),
        journal=journal,
        run_id="run-p",
        seed=seed,
        max_width=2,
    )
    return executor, executor.run(max_stages=max_stages)


@given(shape=dag_shapes(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_same_seed_runs_are_byte_identical(shape, seed):
    workflow = build_workflow(shape)
    first, result_a = run_once(workflow, seed)
    second, result_b = run_once(workflow, seed)
    assert result_a.stage_order == result_b.stage_order
    assert result_a.completed == result_b.completed
    assert provenance_tree(first.store, "run-p") == provenance_tree(
        second.store, "run-p"
    )


@given(shape=dag_shapes(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_schedule_respects_the_dag_whatever_the_seed(shape, seed):
    workflow = build_workflow(shape)
    _executor, result = run_once(workflow, seed)
    position = {name: i for i, name in enumerate(result.stage_order)}
    for name in workflow.stages:
        for parent in workflow.parents(name):
            assert position[parent] < position[name]


@given(payloads=st.lists(st.text(max_size=40), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_provenance_blobs_are_immutable_and_idempotent(payloads):
    store = ProvenanceStore()
    addresses = [store.put_blob(p) for p in payloads]
    # re-putting is a no-op at the same address; content round-trips
    assert [store.put_blob(p) for p in payloads] == addresses
    for payload, address in zip(payloads, addresses):
        assert store.blob(address) == str(payload)
    assert store.verify() == []


@given(shape=dag_shapes(), seed=st.integers(0, 2**32 - 1),
       data=st.data())
@settings(max_examples=30, deadline=None)
def test_crash_resume_equals_uninterrupted(shape, seed, data):
    workflow = build_workflow(shape)
    total = len(workflow.stages)
    cut = data.draw(st.integers(min_value=0, max_value=total - 1),
                    label="stages before the crash")

    network_a = VirtualNetwork()
    baseline = WorkflowExecutor(
        workflow, WorkflowRuntime(network_a, {}),
        journal=Journal(network_a.disk("a"), "wf", clock=network_a.clock),
        run_id="run-p", seed=seed, max_width=2,
    )
    result_a = baseline.run()

    network_b = VirtualNetwork()
    disk = network_b.disk("b")
    dying = WorkflowExecutor(
        workflow, WorkflowRuntime(network_b, {}),
        journal=Journal(disk, "wf", clock=network_b.clock),
        run_id="run-p", seed=seed, max_width=2,
    )
    dying.run(max_stages=cut)
    survivor = WorkflowExecutor(
        workflow, WorkflowRuntime(network_b, {}),
        journal=Journal(disk, "wf", clock=network_b.clock),
        max_width=2,
    )
    result_b = survivor.run()

    assert result_b.completed == result_a.completed
    assert provenance_tree(survivor.store, "run-p") == provenance_tree(
        baseline.store, "run-p"
    )
    assert survivor.store.verify() == []
