"""The content-addressed provenance store: immutability and recovery."""

import json

import pytest

from repro.durability.journal import Journal
from repro.faults import (
    ResourceExhaustedError,
    ResourceNotFoundError,
    WorkflowError,
)
from repro.shell import (
    PROVENANCE_SCHEMA,
    ProvenanceStore,
    content_address,
    make_record,
)
from repro.transport.network import VirtualNetwork


def record_for(stage: str, *, inputs=None, outputs=None, parents=None,
               status="ok", error=None) -> dict:
    return make_record(
        workflow="w",
        workflow_digest="d" * 64,
        run="run-t",
        stage=stage,
        kind="echo",
        command={},
        inputs=dict(inputs or {}),
        outputs=dict(outputs or {}),
        parents=dict(parents or {}),
        status=status,
        error=error,
    )


# -- blobs -----------------------------------------------------------------------


def test_blob_address_is_sha256_of_content():
    store = ProvenanceStore()
    address = store.put_blob("hello")
    assert address == content_address("hello")
    assert store.blob(address) == "hello"
    assert store.has_blob(address)


def test_put_blob_is_idempotent():
    store = ProvenanceStore()
    assert store.put_blob("x") == store.put_blob("x")


def test_missing_blob_raises():
    store = ProvenanceStore()
    with pytest.raises(ResourceNotFoundError):
        store.blob("0" * 64)


# -- records ---------------------------------------------------------------------


def test_seal_rejects_wrong_schema():
    store = ProvenanceStore()
    bad = record_for("a")
    bad["schema"] = "something/v9"
    with pytest.raises(WorkflowError, match="schema"):
        store.seal(bad)


def test_seal_is_idempotent_and_content_addressed():
    store = ProvenanceStore()
    record = record_for("a")
    address = store.seal(record)
    assert store.seal(record_for("a")) == address
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    assert address == content_address(canonical)


def test_mutating_a_retrieved_record_cannot_reach_the_sealed_state():
    store = ProvenanceStore()
    address = store.seal(record_for("a"))
    fetched = store.record(address)
    fetched.clear()
    assert store.record(address)["stage"] == "a"
    assert store.verify() == []


def test_error_map_only_present_on_failures():
    ok = record_for("a")
    assert "error" not in ok
    failed = record_for("a", status="failed",
                        error={"code": "Portal.Workflow", "message": "x"})
    assert failed["error"]["code"] == "Portal.Workflow"


# -- integrity -------------------------------------------------------------------


def test_verify_clean_on_linked_chain():
    store = ProvenanceStore()
    blob = store.put_blob("payload")
    parent = store.seal(record_for("a", outputs={"out": blob}))
    store.seal(record_for(
        "b", inputs={"in": blob}, outputs={"out": blob},
        parents={"a": parent},
    ))
    assert store.verify() == []


def test_verify_reports_dangling_references():
    store = ProvenanceStore()
    store.seal(record_for(
        "a",
        inputs={"in": "1" * 64},
        outputs={"out": "2" * 64},
        parents={"ghost": "3" * 64},
    ))
    problems = store.verify()
    assert any("missing blob" in p and "'in'" in p for p in problems)
    assert any("missing blob" in p and "'out'" in p for p in problems)
    assert any("missing record" in p for p in problems)


def test_verify_detects_tampered_backing_content():
    store = ProvenanceStore()
    address = store.put_blob("original")
    store._blobs[address] = "tampered"  # reach behind the API, as a fault would
    assert any("does not hash" in p for p in store.verify())


# -- the trace side channel ------------------------------------------------------


def test_link_trace_first_wins_and_skips_empty():
    store = ProvenanceStore()
    address = store.seal(record_for("a"))
    store.link_trace(address, "")
    assert store.exemplar(address) == ""
    store.link_trace(address, "trace-1")
    store.link_trace(address, "trace-2")
    assert store.exemplar(address) == "trace-1"


def test_link_trace_to_unknown_record_raises():
    store = ProvenanceStore()
    with pytest.raises(ResourceNotFoundError):
        store.link_trace("f" * 64, "trace-1")


def test_trace_links_do_not_change_record_addresses():
    with_link = ProvenanceStore()
    address = with_link.seal(record_for("a"))
    with_link.link_trace(address, "trace-1")
    bare = ProvenanceStore()
    assert bare.seal(record_for("a")) == address


# -- journal-backed recovery -----------------------------------------------------


def test_store_rebuilt_over_journal_resolves_everything():
    network = VirtualNetwork()
    disk = network.disk("ui.gridportal.org")
    store = ProvenanceStore(Journal(disk, "wf", clock=network.clock))
    blob = store.put_blob("payload")
    address = store.seal(record_for("a", outputs={"out": blob}))
    store.link_trace(address, "trace-1")

    recovered = ProvenanceStore(Journal(disk, "wf"))
    assert recovered.blob(blob) == "payload"
    assert recovered.record(address)["stage"] == "a"
    assert recovered.exemplar(address) == "trace-1"
    assert recovered.verify() == []


def test_disk_full_fails_before_registering():
    network = VirtualNetwork()
    disk = network.disk("ui.gridportal.org")
    store = ProvenanceStore(Journal(disk, "wf", clock=network.clock))
    disk.set_full(True)
    with pytest.raises(ResourceExhaustedError):
        store.put_blob("payload")
    # write-ahead discipline: nothing registered that the disk never saw
    assert not store.has_blob(content_address("payload"))
    disk.set_full(False)
    assert store.has_blob(store.put_blob("payload"))
