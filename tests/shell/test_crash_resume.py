"""The acceptance drill: crash mid-DAG, resume from journals, and get a
provenance tree byte-identical to the uninterrupted same-seed run.

Two *fresh* deployments (own networks, own clocks) run the same seeded
width-8 fan-out.  One runs straight through.  The other loses its executor
process seven stages in **and** has the Globusrun host crash and restart
from its journal; a new executor over the surviving UI-disk journal then
finishes the DAG.  Because sealed records carry no clocks, no attempt
counts, and no trace ids — and because stage idempotency keys make
re-driven submissions deduplicate — the two provenance trees must match
byte for byte.
"""

import pytest

from repro.durability.journal import Journal
from repro.portal.uiserver import PortalDeployment, UserInterfaceServer
from repro.shell import ProvenanceStore, WorkflowExecutor, provenance_tree
from tests.shell.conftest import sweep_workflow

WIDTH = 8
SEED = 13
RUN = "run-accept"
JOURNAL = "wf-accept"
UI_HOST = "ui.gridportal.org"
GLOBUSRUN_HOST = "globusrun.sdsc.edu"
CUT = 7  # stages driven before the crash (mid-DAG: 7 of 18)


def _executor(deployment):
    ui = UserInterfaceServer(deployment, host=UI_HOST)
    return ui.workflow_executor(
        sweep_workflow(WIDTH, tag="accept"),
        run_id=RUN,
        seed=SEED,
        journal_name=JOURNAL,
    )


def _crash_and_restart_globusrun(deployment):
    """Supervisor semantics: the host dies and is rebuilt from its disk."""
    network = deployment.network
    if network.is_up(GLOBUSRUN_HOST):
        network.take_down(GLOBUSRUN_HOST)
    network.bring_up(GLOBUSRUN_HOST)
    deployment.rebuilders[GLOBUSRUN_HOST]()


@pytest.fixture(scope="module")
def uninterrupted():
    deployment = PortalDeployment.build(durable=True)
    executor = _executor(deployment)
    result = executor.run()
    assert result.done, result.failed
    return executor, result


@pytest.fixture(scope="module")
def resumed():
    deployment = PortalDeployment.build(durable=True)
    first = _executor(deployment)
    partial = first.run(max_stages=CUT)
    assert len(partial.stage_order) == CUT
    assert first.pending()  # genuinely mid-DAG
    # the crash: the executor process is gone, and so is the Globusrun host
    _crash_and_restart_globusrun(deployment)
    second = _executor(deployment)  # same journal name -> recovery path
    result = second.run()
    assert result.done, result.failed
    return deployment, first, second, result


def test_resume_recovers_finished_stages_and_drives_the_rest(resumed):
    _deployment, first, second, result = resumed
    redriven = set(result.stage_order)
    assert len(redriven) == 2 * WIDTH + 2 - CUT
    assert redriven.isdisjoint(first.completed)  # finished stages stay done
    for stage, address in first.completed.items():
        assert result.completed[stage] == address


def test_provenance_tree_byte_identical_to_uninterrupted(uninterrupted,
                                                         resumed):
    baseline_executor, baseline = uninterrupted
    _deployment, _first, second, result = resumed
    assert result.completed == baseline.completed
    tree_a = provenance_tree(baseline_executor.store, RUN)
    tree_b = provenance_tree(second.store, RUN)
    assert tree_a == tree_b
    assert baseline_executor.store.verify() == []
    assert second.store.verify() == []


def test_store_rebuilt_from_surviving_journal_resolves_everything(resumed):
    deployment, _first, _second, result = resumed
    journal = Journal(deployment.network.disk(UI_HOST), JOURNAL)
    rebuilt = ProvenanceStore(journal)
    assert rebuilt.verify() == []
    for address in result.completed.values():
        assert rebuilt.has_record(address)


def test_stage_starts_never_double_submit(resumed):
    """Idempotency keys hold across incarnations: the re-driven stages
    used the same keys, so the journal shows one key per stage even where
    a stage was started by both incarnations."""
    deployment, _first, _second, _result = resumed
    journal = Journal(deployment.network.disk(UI_HOST), JOURNAL)
    keys: dict[str, set] = {}
    for entry in journal.by_kind("stage-start"):
        keys.setdefault(entry.data["stage"], set()).add(entry.data["key"])
    assert keys
    for stage, stage_keys in sorted(keys.items()):
        assert len(stage_keys) == 1, (stage, stage_keys)
