"""The workflow definition layer: build-time validation and canonical form."""

import pytest

from repro.faults import WorkflowError
from repro.shell import (
    GlobusrunStage,
    MetaScheduleStage,
    SoapCallStage,
    SrbGetStage,
    SrbPutStage,
    Workflow,
    const,
    ref,
)
from repro.wsdl.model import WsdlDocument, WsdlOperation, WsdlPart
from tests.shell.conftest import EchoStage, sweep_workflow


def chain(*names):
    """name[0] -> name[1] -> ... as EchoStages."""
    stages = [EchoStage(names[0], inputs={"seed": const("s")})]
    for prev, name in zip(names, names[1:]):
        stages.append(EchoStage(name, inputs={"in": ref(prev)}))
    return stages


# -- stage-level validation -----------------------------------------------------


def test_globusrun_stage_requires_jobs_input():
    with pytest.raises(WorkflowError, match="jobs"):
        GlobusrunStage("run")


def test_metaschedule_stage_requires_jobs_input():
    with pytest.raises(WorkflowError, match="jobs"):
        MetaScheduleStage("place")


def test_srb_put_requires_at_least_one_input():
    with pytest.raises(WorkflowError, match="at least one input"):
        SrbPutStage("collect", path="/home/x")


def test_soap_call_bindings_become_arg_ports():
    stage = SoapCallStage(
        "probe",
        service="monitoring",
        method="tail",
        args=["literal-first", ref("other", "out")],
    )
    assert stage.args == [("literal", "literal-first"), ("port", "arg1")]
    assert set(stage.inputs) == {"arg1"}


# -- graph validation ------------------------------------------------------------


def test_duplicate_stage_name_rejected():
    with pytest.raises(WorkflowError, match="twice"):
        Workflow("w", [
            EchoStage("a", inputs={"seed": const("x")}),
            EchoStage("a", inputs={"seed": const("y")}),
        ])


def test_empty_stage_name_rejected():
    with pytest.raises(WorkflowError, match="empty name"):
        Workflow("w", [EchoStage("", inputs={"seed": const("x")})])


def test_dangling_input_rejected():
    with pytest.raises(WorkflowError, match="dangling"):
        Workflow("w", [EchoStage("a", inputs={"in": ref("ghost")})])


def test_undeclared_output_port_rejected():
    with pytest.raises(WorkflowError, match="undeclared output port"):
        Workflow("w", [
            SrbGetStage("fetch", path="/home/x"),
            # SrbGetStage only declares "data", not "out"
            EchoStage("use", inputs={"in": ref("fetch", "out")}),
        ])


def test_self_reference_rejected():
    with pytest.raises(WorkflowError, match="references itself"):
        Workflow("w", [EchoStage("a", inputs={"in": ref("a")})])


def test_cycle_rejected():
    with pytest.raises(WorkflowError, match="cycle"):
        Workflow("w", [
            EchoStage("a", inputs={"in": ref("b")}),
            EchoStage("b", inputs={"in": ref("a")}),
        ])


# -- structure accessors ---------------------------------------------------------


def test_topo_order_respects_edges_and_is_deterministic():
    wf = sweep_workflow(4)
    order = wf.topo_order()
    position = {name: index for index, name in enumerate(order)}
    for name in wf.stages:
        for parent in wf.parents(name):
            assert position[parent] < position[name]
    assert wf.topo_order() == order
    assert sweep_workflow(4).topo_order() == order


def test_roots_parents_children_descendants():
    wf = Workflow("w", chain("a", "b", "c"))
    assert wf.roots() == ("a",)
    assert wf.parents("c") == ("b",)
    assert wf.children("a") == ("b",)
    assert wf.descendants("a") == ("b", "c")
    assert wf.descendants("c") == ()


# -- canonical form --------------------------------------------------------------


def test_digest_stable_across_rebuilds():
    assert sweep_workflow(3).digest() == sweep_workflow(3).digest()


def test_digest_changes_with_definition():
    assert sweep_workflow(3).digest() != sweep_workflow(4).digest()


def test_to_dict_carries_schema_and_bindings():
    wf = Workflow("w", chain("a", "b"))
    doc = wf.to_dict()
    assert doc["schema"] == "repro.shell.workflow/v1"
    assert doc["stages"]["b"]["inputs"]["in"] == {
        "kind": "ref", "stage": "a", "port": "out",
    }


# -- WSDL arity checking ---------------------------------------------------------


ADDER = WsdlDocument(
    service_name="Adder",
    target_namespace="urn:test:adder",
    endpoint="http://adder/soap",
    operations=[
        WsdlOperation(name="add", inputs=[WsdlPart("a"), WsdlPart("b")]),
    ],
)


def test_soap_call_arity_checked_against_wsdl():
    with pytest.raises(WorkflowError, match="declares 2 part"):
        Workflow(
            "w",
            [SoapCallStage("sum", service="adder", method="add", args=["1"])],
            wsdls={"adder": ADDER},
        )


def test_soap_call_unknown_method_rejected():
    with pytest.raises(WorkflowError, match="does not define"):
        Workflow(
            "w",
            [SoapCallStage("sub", service="adder", method="subtract",
                           args=["1", "2"])],
            wsdls={"adder": ADDER},
        )


def test_soap_call_matching_arity_accepted():
    wf = Workflow(
        "w",
        [SoapCallStage("sum", service="adder", method="add", args=["1", "2"])],
        wsdls={"adder": ADDER},
    )
    assert wf.topo_order() == ("sum",)


def test_soap_call_without_wsdl_on_file_is_unchecked():
    wf = Workflow(
        "w",
        [SoapCallStage("any", service="unknown", method="anything", args=[])],
    )
    assert wf.topo_order() == ("any",)
