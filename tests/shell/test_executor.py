"""The deterministic executor over a live deployment: end-to-end, resume,
reporting, and the portal surface."""

import pytest

from repro.durability.journal import Journal
from repro.faults import WorkflowError
from repro.portal.uiserver import UserInterfaceServer
from repro.shell import (
    ProvenanceStore,
    Workflow,
    WorkflowExecutor,
    const,
    critical_path,
    provenance_tree,
    render_report,
    stage_timings,
)
from tests.shell.conftest import EchoStage, sweep_workflow

WIDTH = 8
UI_HOST = "ui.gridportal.org"


@pytest.fixture(scope="module")
def ui(deployment):
    return UserInterfaceServer(deployment, host="ui.shell-tests")


def test_sweep_runs_end_to_end(ui):
    workflow = sweep_workflow(WIDTH, tag="e2e")
    executor = ui.workflow_executor(workflow, run_id="run-e2e", seed=7)
    result = executor.run()
    assert result.done, result.failed
    # script + width x (place, run) + collect, all sealed
    assert len(result.completed) == 2 + 2 * WIDTH
    assert result.skipped == ()
    assert len(result.stage_order) == len(result.completed)
    assert executor.store.verify() == []
    # every sealed record resolves its output blobs to real content
    for address in result.completed.values():
        record = executor.store.record(address)
        for port in record["outputs"]:
            assert executor.store.blob(record["outputs"][port])


def test_stage_order_is_seeded_not_alphabetical(ui):
    order_a = ui.workflow_executor(
        sweep_workflow(WIDTH, tag="ord-a"), run_id="run-oa", seed=3,
    ).run().stage_order
    order_b = ui.workflow_executor(
        sweep_workflow(WIDTH, tag="ord-b"), run_id="run-ob", seed=4,
    ).run().stage_order
    # same DAG shape, different seeds: the branch start order differs
    # (the root and the collect barrier are forced by the DAG itself)
    assert order_a != order_b


def test_resume_refuses_a_different_definition(ui):
    workflow = sweep_workflow(2, tag="refuse")
    ui.workflow_executor(
        workflow, run_id="run-refuse", journal_name="wf-refuse",
    ).run()
    with pytest.raises(WorkflowError, match="refusing to resume"):
        ui.workflow_executor(
            sweep_workflow(3, tag="refuse"),
            run_id="run-refuse",
            journal_name="wf-refuse",
        )


def test_report_renders_tree_timings_and_critical_path(ui, deployment):
    workflow = sweep_workflow(3, tag="report")
    executor = ui.workflow_executor(
        workflow, run_id="run-report", seed=11, journal_name="wf-report",
    )
    result = executor.run()
    assert result.done

    journal = Journal(deployment.network.disk("ui.shell-tests"), "wf-report")
    timings = stage_timings(journal)
    assert set(timings) == set(result.completed)
    path = critical_path(workflow, timings)
    # the critical path is a real root-to-leaf chain ending at the barrier
    assert path["path"][-1] == "collect"
    assert path["length"] <= result.makespan or path["length"] == 0.0

    report = render_report(workflow, executor.store, journal, "run-report")
    assert "provenance chain: OK" in report
    assert "critical path" in report
    for stage in result.completed:
        assert stage in report


def test_provenance_tree_is_content_only(ui):
    workflow = sweep_workflow(2, tag="tree")
    executor = ui.workflow_executor(workflow, run_id="run-tree", seed=1)
    result = executor.run()
    tree = provenance_tree(executor.store, "run-tree")
    assert tree.startswith("workflow run run-tree: 6 stage record(s)")
    for stage, address in result.completed.items():
        assert stage in tree
        assert address in tree


def test_workflow_portlet_renders_the_chain(ui):
    workflow = sweep_workflow(2, tag="portlet")
    executor = ui.workflow_executor(workflow, run_id="run-portlet", seed=2)
    result = executor.run()
    portlet = ui.add_workflow_portlet(executor.store, "run-portlet")
    markup = portlet.render("http://portal/page")
    for stage in result.completed:
        assert stage in markup
    assert "chain verified" in markup


def test_unjournaled_executor_is_memory_only(stub_runtime):
    workflow = Workflow("mem", [EchoStage("a", inputs={"seed": const("x")})])
    executor = WorkflowExecutor(workflow, stub_runtime, run_id="run-m", seed=0)
    result = executor.run()
    assert result.done
    assert isinstance(executor.store, ProvenanceStore)
    assert executor.journal is None


def test_max_stages_stops_mid_dag(stub_runtime):
    workflow = Workflow("partial", [
        EchoStage("a", inputs={"seed": const("x")}),
        EchoStage("b", inputs={"in": const("y")}),
        EchoStage("c", inputs={"in": const("z")}),
    ])
    executor = WorkflowExecutor(workflow, stub_runtime, run_id="run-p", seed=0)
    result = executor.run(max_stages=2)
    assert len(result.stage_order) == 2
    assert len(executor.pending()) == 1
    rest = executor.run()
    assert not executor.pending()
    assert len(rest.stage_order) == 1
