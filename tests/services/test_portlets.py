"""Portlet rendering: golden-row assertions for the observability portlets
and the hostile-name escaping regression for the seed portlets.

Service-returned strings (hostnames, event messages, span names) are
untrusted input to the portal page; every cell must cross ``html.escape``.
"""

from types import SimpleNamespace

import pytest

from repro.faults import InvalidRequestError
from repro.grid.resources import build_testbed
from repro.observability.runtime import Observability
from repro.resilience.events import RETRY, ResilienceLog
from repro.services.monitoring import (
    GridLoadPortlet,
    MetricsPortlet,
    ResilienceEventsPortlet,
    TraceViewPortlet,
    deploy_monitoring,
)
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

HOSTILE = '<script>alert(1)</script>'


class _Echo:
    def shout(self, text: str) -> str:
        return text.upper()

    def reject(self) -> str:
        raise InvalidRequestError("no")


@pytest.fixture
def observed(network, ca):
    """A traced monitoring stack plus a small traced workload service."""
    obs = Observability.install(network, seed=5)
    log = ResilienceLog()
    obs.observe_log(log)
    testbed = build_testbed(network, ca)
    _, url = deploy_monitoring(
        network, testbed, resilience_log=log, observability=obs
    )
    echo = SoapService("Echo", "urn:test:echo")
    echo.expose_object(_Echo())
    echo_url = echo.mount(HttpServer("echo.example.org", network), "/echo")
    client = SoapClient(network, echo_url, "urn:test:echo", source="portal")
    yield SimpleNamespace(
        network=network, obs=obs, log=log, url=url, echo=client
    )
    Observability.uninstall(network)


# -- escaping regressions (seed portlets) -----------------------------------


def test_grid_load_portlet_escapes_hostile_host(network, ca):
    testbed = build_testbed(
        network, ca, resources=[(HOSTILE, "PBS", 8), ("ok.edu", "LSF", 4)]
    )
    _, url = deploy_monitoring(network, testbed)
    html = GridLoadPortlet(network, url, source="p").render("/portal")
    assert HOSTILE not in html
    assert "&lt;script&gt;alert(1)&lt;/script&gt;" in html
    assert "<td>ok.edu</td>" in html


def test_resilience_portlet_escapes_hostile_event(network, ca):
    log = ResilienceLog()
    log.record(
        RETRY,
        f'retrying {HOSTILE} after "fault"',
        service='<b onmouseover="x">svc</b>',
        operation="op&co",
    )
    _, url = deploy_monitoring(
        network, build_testbed(network, ca), resilience_log=log
    )
    html = ResilienceEventsPortlet(network, url, source="p").render("/portal")
    assert "<script>" not in html and "<b " not in html
    assert "&lt;script&gt;alert(1)&lt;/script&gt;" in html
    assert "&quot;fault&quot;" in html
    assert "op&amp;co" in html


# -- the trace waterfall portlet --------------------------------------------


def test_trace_view_portlet_renders_latest_trace(observed):
    observed.echo.call("shout", "hi")
    html = TraceViewPortlet(observed.network, observed.url).render("/portal")
    trace_id = observed.obs.collector.trace_ids()[0]
    assert f'<table class="trace-view" data-trace="{trace_id}">' in html
    # golden-ish rows: the logical call at depth 0, indented children
    assert '<tr class="span-ok"><td>call shout</td>' in html
    assert "&nbsp;&nbsp;shout" in html          # the attempt, depth 1
    assert "&nbsp;&nbsp;&nbsp;&nbsp;shout" in html  # the server, depth 2
    assert html.count('<div class="bar"') == 3
    assert "<td>Echo</td>" in html


def test_trace_view_portlet_marks_error_spans(observed):
    with pytest.raises(InvalidRequestError):
        observed.echo.call("reject")
    html = TraceViewPortlet(observed.network, observed.url).render("/portal")
    assert '<tr class="span-error">' in html


def test_trace_view_portlet_pins_an_explicit_trace(observed):
    observed.echo.call("shout", "first")
    observed.echo.call("shout", "second")
    first = observed.obs.collector.trace_ids()[0]
    html = TraceViewPortlet(
        observed.network, observed.url, trace_id=first
    ).render("/portal")
    assert f'data-trace="{first}"' in html


def test_trace_view_portlet_without_traces(observed):
    html = TraceViewPortlet(observed.network, observed.url).render("/portal")
    assert html == '<p class="trace-view">no traces collected</p>'


def test_trace_view_portlet_unknown_trace(observed):
    html = TraceViewPortlet(
        observed.network, observed.url, trace_id="f" * 32
    ).render("/portal")
    assert "no spans for trace" in html


# -- the RED metrics portlet ------------------------------------------------


def test_metrics_portlet_renders_red_and_gauge_tables(observed):
    observed.echo.call("shout", "hi")
    with pytest.raises(InvalidRequestError):
        observed.echo.call("reject")
    html = MetricsPortlet(observed.network, observed.url).render("/portal")
    assert '<table class="red-metrics">' in html
    assert "<td>Echo</td><td>shout</td><td>server</td><td>1</td><td>0</td>" in html
    assert "<td>Echo</td><td>reject</td><td>server</td><td>1</td><td>1</td>" in html
    # queue-depth gauges are sampled per testbed host at read time
    assert '<table class="gauges">' in html
    assert "<td>queue_depth</td><td>blue.sdsc.edu</td><td>0.0</td>" in html


def test_metrics_portlet_never_traces_itself(observed):
    before = len(observed.obs.collector)
    MetricsPortlet(observed.network, observed.url).render("/portal")
    TraceViewPortlet(observed.network, observed.url).render("/portal")
    assert len(observed.obs.collector) == before


# -- the new monitoring operations over SOAP --------------------------------


def test_monitoring_trace_and_metrics_operations(observed):
    observed.echo.call("shout", "one")
    observed.echo.call("shout", "two")
    monitor = SoapClient(
        observed.network, observed.url,
        "urn:gce:monitoring", source="ui", traced=False,
    )
    rows = monitor.call("traces")
    assert len(rows) == 2
    assert monitor.call("traces", 1) == rows[-1:]
    tree = monitor.call("trace_tree", rows[0]["trace_id"])
    assert [r["depth"] for r in tree] == [0, 1, 2]
    summary = monitor.call("metrics_summary")
    assert any(r["service"] == "Echo" for r in summary["red"])
    assert any(g["gauge"] == "queue_depth" for g in summary["gauges"])
    slowest = monitor.call("slowest_operations", 3)
    assert slowest and all(r["side"] == "server" for r in slowest)


def test_monitoring_metrics_summary_without_observability(network, ca):
    _, url = deploy_monitoring(network, build_testbed(network, ca))
    monitor = SoapClient(network, url, "urn:gce:monitoring", source="ui")
    assert monitor.call("metrics_summary") == {
        "red": [], "gauges": [], "events": []
    }
    assert monitor.call("traces") == []
    assert monitor.call("trace_tree", "f" * 32) == []
    assert monitor.call("slowest_operations", 5) == []
