import pytest

from repro.faults import InvalidRequestError, JobError
from repro.corba.webflow import deploy_webflow
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.resources import build_testbed
from repro.services.jobsubmit import (
    BATCHJOB_NAMESPACE,
    GLOBUSRUN_NAMESPACE,
    WEBFLOW_NAMESPACE,
    deploy_batchjob,
    deploy_globusrun,
    deploy_webflow_bridge,
    jobs_from_xml,
    jobs_to_xml,
)
from repro.soap.client import SoapClient
from repro.xmlutil.element import parse_xml

IDENTITY = "/O=G/CN=portal"


@pytest.fixture
def stack(network, ca):
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    impl, url = deploy_globusrun(network, testbed, proxy)
    return testbed, impl, url


def _client(network, url, ns=GLOBUSRUN_NAMESPACE):
    return SoapClient(network, url, ns, source="ui")


def test_run_plain_strings(network, stack):
    _testbed, impl, url = stack
    client = _client(network, url)
    output = client.call("run", "modi4.iu.edu", "echo", "a b c", 1, "", 600)
    assert output == "a b c\n"
    assert impl.jobs_run == 1


def test_run_failure_is_job_error(network, stack):
    _testbed, _impl, url = stack
    client = _client(network, url)
    with pytest.raises(JobError) as exc_info:
        client.call("run", "modi4.iu.edu", "fail", "9", 1, "", 600)
    assert exc_info.value.detail["exit_code"] == "9"
    with pytest.raises(JobError):
        client.call("run", "unknown.host", "echo", "", 1, "", 600)


def test_multi_job_xml_document_roundtrip():
    specs = [
        ("h1", JobSpec(name="a", executable="x", arguments=["1"], cpus=2,
                       queue="q", wallclock_limit=60)),
        ("h2", JobSpec(name="b", executable="y", wallclock_limit=120)),
    ]
    parsed = jobs_from_xml(jobs_to_xml(specs))
    assert [(c, s.name, s.executable, s.cpus) for c, s in parsed] == [
        ("h1", "a", "x", 2), ("h2", "b", "y", 1)
    ]


def test_run_xml_executes_sequentially_and_reports_per_job(network, stack):
    _testbed, impl, url = stack
    client = _client(network, url)
    xml = jobs_to_xml([
        ("modi4.iu.edu", JobSpec(name="ok", executable="echo",
                                 arguments=["fine"], wallclock_limit=60)),
        ("blue.sdsc.edu", JobSpec(name="boom", executable="fail",
                                  wallclock_limit=60)),
        ("nowhere.example", JobSpec(name="lost", executable="echo",
                                    wallclock_limit=60)),
    ])
    results = parse_xml(client.call("run_xml", xml))
    rows = results.findall("result")
    assert [r.get("status") for r in rows] == ["ok", "failed", "error"]
    assert rows[0].findtext("output") == "fine\n"
    assert rows[1].findtext("exitCode") == "1"
    assert "unknown gatekeeper" in rows[2].findtext("error")


def test_run_xml_rejects_bad_document(network, stack):
    _testbed, _impl, url = stack
    client = _client(network, url)
    with pytest.raises(InvalidRequestError):
        client.call("run_xml", "<wrong/>")
    with pytest.raises(InvalidRequestError):
        client.call("run_xml", "<jobs><job><name>n</name></job></jobs>")


def test_empty_argument_elements_roundtrip():
    """``<argument/>`` means the empty string, not a dropped argument."""
    specs = [("h", JobSpec(name="e", executable="x", arguments=["", "a", ""],
                           wallclock_limit=60))]
    parsed = jobs_from_xml(jobs_to_xml(specs))
    assert parsed[0][1].arguments == ["", "a", ""]


def test_batch_service_composes_globusrun(network, stack):
    _testbed, globusrun_impl, url = stack
    batch_impl, batch_url = deploy_batchjob(network, url)
    client = _client(network, batch_url, BATCHJOB_NAMESPACE)
    output = client.call(
        "submit_batch", "blue.sdsc.edu", "echo composed count=1 walltime=60"
    )
    assert output == "composed\n"
    # the batch service really went through the Globusrun web service
    assert globusrun_impl.jobs_run == 1
    assert batch_impl.requests_handled == 1
    with pytest.raises(InvalidRequestError):
        client.call("submit_batch", "blue.sdsc.edu", "   ")
    with pytest.raises(InvalidRequestError):
        client.call("submit_batch", "blue.sdsc.edu", "count=2")


def test_batch_service_rejects_malformed_numeric_settings(network, stack):
    _testbed, _globusrun_impl, url = stack
    batch_impl, batch_url = deploy_batchjob(network, url)
    client = _client(network, batch_url, BATCHJOB_NAMESPACE)
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("submit_batch", "blue.sdsc.edu", "echo hi count=abc")
    assert "count" in exc_info.value.message
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("submit_batch", "blue.sdsc.edu", "echo hi walltime=1h")
    assert "walltime" in exc_info.value.message
    # failed submissions are not counted as handled requests
    assert batch_impl.requests_handled == 0
    client.call("submit_batch", "blue.sdsc.edu", "echo hi count=1 walltime=60")
    assert batch_impl.requests_handled == 1


def test_webflow_bridge_soap_to_iiop(network, stack):
    testbed, _impl, _url = stack
    schedulers = {host: r.scheduler for host, r in testbed.items()}
    _servant, ior, _orb = deploy_webflow(network, schedulers)
    bridge, bridge_url = deploy_webflow_bridge(network, ior)
    client = _client(network, bridge_url, WEBFLOW_NAMESPACE)
    client.call("add_context", "u/p/s")
    script = make_dialect("PBS").generate(
        JobSpec(name="bridged", executable="echo", arguments=["via corba"],
                wallclock_limit=60)
    )
    handle = client.call("submit_job", "u/p/s", "modi4.iu.edu", script)
    testbed["modi4.iu.edu"].scheduler.run_until_complete()
    assert client.call("get_job_status", handle) == "done"
    assert client.call("get_job_output", handle) == "via corba\n"
    assert client.call("list_jobs", "u/p/s") == [handle]
    assert bridge.bridged_calls >= 4
    assert bridge.orb_initialized()


def test_webflow_bridge_relays_corba_errors_as_portal_errors(network, stack):
    testbed, _impl, _url = stack
    schedulers = {host: r.scheduler for host, r in testbed.items()}
    _servant, ior, _orb = deploy_webflow(network, schedulers)
    _bridge, bridge_url = deploy_webflow_bridge(network, ior)
    client = _client(network, bridge_url, WEBFLOW_NAMESPACE)
    with pytest.raises(JobError) as exc_info:
        client.call("submit_job", "ghost/p/s", "modi4.iu.edu", "#!/bin/sh\ntrue\n")
    assert exc_info.value.detail.get("corba_exception") == "ContextError"
