import pytest

from repro.faults import ContextError
from repro.services.context import (
    ContextManagerService,
    ContextStore,
    PropertyService,
    SessionArchiveService,
    UserContextService,
    deploy_context_manager,
    deploy_decomposed_context_services,
)
from repro.soap.client import SoapClient
from repro.transport.clock import SimClock


@pytest.fixture
def cm():
    return ContextManagerService(clock=SimClock())


def test_interface_has_over_sixty_methods(cm):
    methods = [
        name
        for name in dir(cm)
        if not name.startswith("_") and callable(getattr(cm, name))
    ]
    assert len(methods) > 60  # the paper: "contained over 60 methods"


def test_three_level_hierarchy(cm):
    cm.createUserContext("alice")
    cm.createProblemContext("alice", "chem")
    cm.createSessionContext("alice", "chem", "s1")
    cm.createSessionContext("alice", "chem", "s2")
    assert cm.listUserContexts() == ["alice"]
    assert cm.listProblemContexts("alice") == ["chem"]
    assert cm.listSessionContexts("alice", "chem") == ["s1", "s2"]
    assert cm.countProblems("alice") == 1
    assert cm.countSessions("alice", "chem") == 2


def test_levels_enforce_parents(cm):
    with pytest.raises(ContextError):
        cm.createProblemContext("ghost", "p")
    cm.createUserContext("u")
    with pytest.raises(ContextError):
        cm.createSessionContext("u", "ghost", "s")


def test_properties_at_each_level(cm):
    cm.createUserContext("u")
    cm.createProblemContext("u", "p")
    cm.createSessionContext("u", "p", "s")
    cm.setUserProperty("u", "email", "u@example.org")
    cm.setProblemProperty("u", "p", "code", "g98")
    cm.setSessionProperty("u", "p", "s", "basis", "300")
    assert cm.getUserProperty("u", "email") == "u@example.org"
    assert cm.getProblemProperty("u", "p", "code") == "g98"
    assert cm.getSessionProperty("u", "p", "s", "basis") == "300"
    assert cm.listSessionProperties("u", "p", "s") == ["basis"]
    assert cm.hasSessionProperty("u", "p", "s", "basis")
    assert cm.removeSessionProperty("u", "p", "s", "basis")
    assert not cm.hasSessionProperty("u", "p", "s", "basis")


def test_rename_copy_move(cm):
    cm.createUserContext("u")
    cm.createProblemContext("u", "p")
    cm.createSessionContext("u", "p", "s")
    cm.setSessionProperty("u", "p", "s", "k", "v")
    cm.copySessionContext("u", "p", "s", "s-copy")
    assert cm.getSessionProperty("u", "p", "s-copy", "k") == "v"
    cm.createProblemContext("u", "p2")
    cm.moveSessionContext("u", "p", "s", "p2")
    assert not cm.hasSessionContext("u", "p", "s")
    assert cm.getSessionProperty("u", "p2", "s", "k") == "v"
    cm.renameProblemContext("u", "p2", "renamed")
    assert cm.hasProblemContext("u", "renamed")


def test_archive_restore_roundtrip(cm):
    cm.createUserContext("u")
    cm.createProblemContext("u", "p")
    cm.createSessionContext("u", "p", "s")
    cm.setSessionProperty("u", "p", "s", "result", "42")
    cm.setSessionDescriptor("u", "p", "s", "<instance/>")
    key = cm.archiveSession("u", "p", "s")
    # mutate and delete the live session
    cm.setSessionProperty("u", "p", "s", "result", "clobbered")
    cm.removeSessionContext("u", "p", "s")
    # recover the archived snapshot
    cm.restoreSession(key, "u", "p", "recovered")
    assert cm.getSessionProperty("u", "p", "recovered", "result") == "42"
    assert cm.getSessionDescriptor("u", "p", "recovered") == "<instance/>"
    assert key in cm.listArchivedSessions("u")
    assert cm.getArchiveCount() == 1
    assert cm.purgeArchive("u") == 1


def test_export_import_xml(cm):
    cm.createUserContext("u")
    cm.createProblemContext("u", "p")
    cm.createSessionContext("u", "p", "s")
    cm.setSessionProperty("u", "p", "s", "k", "v")
    xml = cm.exportSessionXml("u", "p", "s")
    cm.createUserContext("w")
    cm.createProblemContext("w", "p")
    path = cm.importSessionXml("w", "p", xml)
    assert path == "w/p/s"
    assert cm.getSessionProperty("w", "p", "s", "k") == "v"


def test_placeholder_contexts(cm):
    path = cm.createPlaceholderContext()
    assert cm.isPlaceholder(path)
    assert cm.placeholderCount() == 1
    cm.removePlaceholder(path)
    assert cm.placeholderCount() == 0
    # non-placeholder contexts cannot be removed through the placeholder API
    cm.createUserContext("real")
    with pytest.raises(ContextError):
        cm.removePlaceholder("real")


def test_module_contexts(cm):
    cm.registerModule("batch-script", "<module/>")
    cm.setModuleProperty("batch-script", "version", "2")
    assert cm.listModules() == ["batch-script"]
    assert cm.hasModule("batch-script")
    assert cm.getModuleProperty("batch-script", "version") == "2"
    cm.unregisterModule("batch-script")
    assert cm.listModules() == []


def test_timestamps_move_with_clock(cm):
    cm.createUserContext("u")
    created = cm.getUserCreated("u")
    cm.store.clock.advance(10)
    cm.touchUser("u")
    assert cm.getUserModified("u") == created + 10


def test_monolith_over_soap(network):
    impl, url = deploy_context_manager(network)
    client = SoapClient(network, url, "urn:iu:context-manager", source="ui")
    client.call("createUserContext", "remote")
    client.call("createProblemContext", "remote", "p")
    client.call("createSessionContext", "remote", "p", "s")
    assert client.call("listSessionContexts", "remote", "p") == ["s"]
    with pytest.raises(ContextError):
        client.call("removeUserContext", "ghost")


def test_decomposed_services_share_one_store(network):
    endpoints = deploy_decomposed_context_services(network)
    user = SoapClient(network, endpoints["user-context"],
                      "urn:gce:user-context", source="ui")
    prop = SoapClient(network, endpoints["property"],
                      "urn:gce:context-property", source="ui")
    archive = SoapClient(network, endpoints["session-archive"],
                         "urn:gce:session-archive", source="ui")
    user.call("create", "alice/chem/run1")
    prop.call("set", "alice/chem/run1", "basis", "300")
    key = archive.call("archive", "alice/chem/run1")
    user.call("remove", "alice/chem/run1")
    archive.call("restore", key, "alice/chem/run1")
    assert prop.call("get", "alice/chem/run1", "basis") == "300"
    info = user.call("info", "alice/chem")
    assert info["children"] == 1


def test_decomposed_interfaces_are_small():
    store = ContextStore(SimClock())
    for cls in (UserContextService, PropertyService, SessionArchiveService):
        service = cls(store)
        methods = [
            n for n in dir(service)
            if not n.startswith("_") and callable(getattr(service, n))
        ]
        assert len(methods) <= 8, f"{cls.__name__} grew too large: {methods}"
