"""External errors speak the common vocabulary (§3 of the paper).

Regression suite for the fault-taxonomy contract: malformed requests to
the job-submission surfaces come back as ``Portal.*`` faults that decode
into :class:`~repro.faults.PortalError` subclasses with a stable code and
an explicit retryable classification — never as opaque ``Server`` faults
from a bare ``ValueError`` escaping SOAP dispatch.
"""

import pytest

from repro.faults import InvalidRequestError, PortalError
from repro.grid.resources import build_testbed
from repro.loadmgmt.metascheduler import (
    METASCHEDULER_NAMESPACE,
    deploy_metascheduler,
)
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, deploy_globusrun
from repro.soap.client import SoapClient

IDENTITY = "/O=G/CN=portal"


@pytest.fixture
def stack(network, ca):
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    _globusrun, globusrun_url = deploy_globusrun(network, testbed, proxy)
    _meta, meta_url = deploy_metascheduler(
        network, testbed, [globusrun_url], seed=7
    )
    return globusrun_url, meta_url


def _client(network, url, ns):
    return SoapClient(network, url, ns, source="ui")


def test_globusrun_malformed_xml_is_invalid_request(network, stack):
    globusrun_url, _ = stack
    client = _client(network, globusrun_url, GLOBUSRUN_NAMESPACE)
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("run_xml", "<jobs><job>truncated")
    assert exc_info.value.code == "Portal.InvalidRequest"
    assert exc_info.value.retryable is False


def test_globusrun_non_numeric_count_is_invalid_request(network, stack):
    globusrun_url, _ = stack
    client = _client(network, globusrun_url, GLOBUSRUN_NAMESPACE)
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("run", "modi4.iu.edu", "echo", "x", "three", "", 600)
    assert exc_info.value.code == "Portal.InvalidRequest"
    assert exc_info.value.retryable is False


def test_metascheduler_malformed_xml_is_invalid_request(network, stack):
    _, meta_url = stack
    client = _client(network, meta_url, METASCHEDULER_NAMESPACE)
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("place", "not xml at all")
    assert exc_info.value.code == "Portal.InvalidRequest"
    assert exc_info.value.retryable is False


def test_metascheduler_non_numeric_limit_is_invalid_request(network, stack):
    _, meta_url = stack
    client = _client(network, meta_url, METASCHEDULER_NAMESPACE)
    with pytest.raises(InvalidRequestError) as exc_info:
        client.call("placements", "many")
    assert exc_info.value.code == "Portal.InvalidRequest"


def test_no_bare_exceptions_escape_soap_dispatch(network, stack):
    """Every malformed request decodes to a PortalError with a Portal.*
    code and a boolean retryable — the interoperability contract."""
    globusrun_url, meta_url = stack
    attempts = [
        (globusrun_url, GLOBUSRUN_NAMESPACE, "run_xml", ["<broken"]),
        (globusrun_url, GLOBUSRUN_NAMESPACE,
         "run", ["modi4.iu.edu", "echo", "x", "NaN-ish", "", "soon"]),
        (meta_url, METASCHEDULER_NAMESPACE, "place", ["<broken"]),
        (meta_url, METASCHEDULER_NAMESPACE, "placements", ["lots"]),
    ]
    for url, ns, op, args in attempts:
        with pytest.raises(Exception) as exc_info:
            _client(network, url, ns).call(op, *args)
        err = exc_info.value
        assert isinstance(err, PortalError), (op, type(err).__name__)
        assert err.code.startswith("Portal."), (op, err.code)
        assert isinstance(err.retryable, bool)
