import pytest

from repro.faults import ResourceNotFoundError
from repro.grid.gram import rsl_for
from repro.grid.jobs import JobSpec
from repro.services.monitoring import (
    MONITORING_NAMESPACE,
    GridLoadPortlet,
)
from repro.soap.client import SoapClient


@pytest.fixture
def monitor(deployment):
    return SoapClient(
        deployment.network, deployment.endpoints["monitoring"],
        MONITORING_NAMESPACE, source="ui.mon",
    )


def test_hosts_and_grid_load(deployment, monitor):
    assert monitor.call("hosts") == sorted(deployment.testbed)
    rows = monitor.call("grid_load")
    assert len(rows) == len(deployment.testbed)
    by_host = {row["host"]: row for row in rows}
    assert by_host["blue.sdsc.edu"]["system"] == "LSF"
    assert by_host["blue.sdsc.edu"]["cpus"] == 256
    assert all(row["free_cpus"] <= row["cpus"] for row in rows)


def test_qstat_and_job_status(deployment, monitor):
    scheduler = deployment.testbed["octopus.iu.edu"].scheduler
    job_id = scheduler.submit(JobSpec(name="watched", executable="sleep",
                                      arguments=["50"], wallclock_limit=600))
    rows = monitor.call("qstat", "octopus.iu.edu")
    assert any(row["job_id"] == job_id for row in rows)
    status = monitor.call("job_status", "octopus.iu.edu", job_id)
    assert status["name"] == "watched"
    with pytest.raises(ResourceNotFoundError):
        monitor.call("job_status", "octopus.iu.edu", "999.nope")
    with pytest.raises(ResourceNotFoundError):
        monitor.call("qstat", "cray.nowhere")


def test_user_jobs_across_the_grid(deployment, monitor):
    """GRAM stamps LOGNAME; monitoring finds a user's jobs on every host."""
    from repro.grid.gram import GramClient

    cred = deployment.ca.issue_credential(
        "/O=G/CN=watcher", lifetime=10**6, now=deployment.network.clock.now
    )
    proxy = cred.sign_proxy(lifetime=10**5, now=deployment.network.clock.now)
    for resource in deployment.testbed.values():
        resource.gatekeeper.add_gridmap_entry("/O=G/CN=watcher", "watcher")
    gram = GramClient(deployment.network, proxy, source="ui.mon")
    for host in ("modi4.iu.edu", "t3e.sdsc.edu"):
        gram.submit(host, rsl_for(JobSpec(name=f"on-{host}", executable="sleep",
                                          arguments=["20"],
                                          wallclock_limit=600)))
    mine = monitor.call("user_jobs", "watcher")
    assert {row["host"] for row in mine} == {"modi4.iu.edu", "t3e.sdsc.edu"}


def test_grid_load_portlet_renders_table(deployment):
    portlet = GridLoadPortlet(
        deployment.network, deployment.endpoints["monitoring"], source="p.mon"
    )
    html = portlet.render("/portal")
    assert '<table class="grid-load">' in html
    for host in deployment.testbed:
        assert host in html


def test_shell_monitoring_commands(deployment):
    from repro.portal.uiserver import UserInterfaceServer

    shell = UserInterfaceServer(deployment, host="ui.moncmd").make_shell("alice")
    load = shell.run("gridload")
    assert "blue.sdsc.edu" in load and "LSF" in load
    table = shell.run("qstat modi4.iu.edu")
    assert table  # jobs from earlier tests or "(no jobs)"


def test_replication_summary_empty_without_topology(deployment, monitor):
    # the classic single-region portal: the view exists but reports nothing
    assert monitor.call("replication_summary") == []


def test_replication_portlet_reports_missing_topology(deployment):
    from repro.services.monitoring import ReplicationPortlet

    portlet = ReplicationPortlet(
        deployment.network, deployment.endpoints["monitoring"], source="p.rep"
    )
    assert "no replication topology" in portlet.render("/portal")


@pytest.fixture(scope="module")
def regioned():
    from repro.portal.uiserver import PortalDeployment

    return PortalDeployment.build(observe=True, regions=("iu", "sdsc"))


def test_replication_summary_rows_and_gauges(regioned):
    from repro.services.monitoring import MONITORING_NAMESPACE

    monitor = SoapClient(
        regioned.network, regioned.endpoints["monitoring"],
        MONITORING_NAMESPACE, source="ui.rep",
    )
    regioned.replication.nodes["iu"].registry.register_service(
        "svc/iu/monitoring-probe", {"kind": "probe"}
    )
    regioned.replication.run_anti_entropy()
    rows = monitor.call("replication_summary")
    assert [row["region"] for row in rows] == ["iu", "sdsc"]
    for row in rows:
        assert set(row) >= {
            "region", "host", "entries", "digest", "lag_s",
            "hint_backlog", "context_seq", "last_heal_t",
        }
        assert row["entries"] >= 1
    # converged regions show identical digests
    assert len({row["digest"] for row in rows}) == 1
    # the gauges mirror the live rows (a level, not a flow)
    gauges = regioned.observability.metrics.gauges
    lag_gauges = {
        key: value for key, value in gauges.items()
        if key[0] == "replication_lag"
    }
    assert set(lag_gauges) == {("replication_lag", "iu"),
                               ("replication_lag", "sdsc")}


def test_replication_portlet_renders_and_escapes(regioned):
    from repro.services.monitoring import ReplicationPortlet

    portlet = ReplicationPortlet(
        regioned.network, regioned.endpoints["monitoring"], source="p.rep2"
    )
    html = portlet.render("/portal")
    assert '<table class="replication">' in html
    assert "<td>iu</td>" in html and "<td>sdsc</td>" in html
    # untrusted cells are escaped: nothing a remote row says becomes markup
    from repro.services.monitoring import _esc

    assert _esc("<img onerror=x>") == "&lt;img onerror=x&gt;"
