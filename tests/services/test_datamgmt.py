import base64

import pytest

from repro.faults import InvalidRequestError, ResourceNotFoundError
from repro.services.datamgmt import (
    SRBWS_NAMESPACE,
    deploy_srb_service,
    make_request_xml,
    parse_results_xml,
)
from repro.soap.client import SoapClient
from repro.srb.commands import Scommands
from repro.srb.server import SrbServer
from repro.srb.storage import StorageResource
from repro.transport.client import HttpClient

IDENTITY = "/O=G/CN=portal"


@pytest.fixture
def stack(network, ca):
    srb = SrbServer(ca, network.clock)
    srb.add_resource(StorageResource("disk"), default=True)
    srb.add_resource(StorageResource("tape"))
    srb.register_user(IDENTITY, "portal")
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    scommands = Scommands(srb, cred.sign_proxy(lifetime=10**5, now=0.0))
    impl, url = deploy_srb_service(network, scommands)
    client = SoapClient(network, url, SRBWS_NAMESPACE, source="ui")
    return srb, impl, client


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def test_put_get_cat_ls(stack):
    _srb, _impl, client = stack
    assert client.call("put", "/home/portal/f.txt", _b64(b"hello")) == 5
    assert client.call("cat", "/home/portal/f.txt") == "hello"
    assert base64.b64decode(client.call("get", "/home/portal/f.txt")) == b"hello"
    listing = client.call("ls", "/home/portal", "")
    assert any("f.txt" in row for row in listing)
    # the ls(collection, directory) two-argument form from the paper
    listing2 = client.call("ls", "/home", "portal")
    assert listing == listing2


def test_put_rejects_non_base64(stack):
    _srb, _impl, client = stack
    with pytest.raises(InvalidRequestError):
        client.call("put", "/home/portal/x", "not base64!!!")


def test_missing_file_error_relayed(stack):
    _srb, _impl, client = stack
    with pytest.raises(ResourceNotFoundError):
        client.call("cat", "/home/portal/ghost")


def test_xml_call_batches_commands(stack):
    _srb, impl, client = stack
    request = make_request_xml([
        ("mkdir", ["/home/portal/batch"]),
        ("put", ["/home/portal/batch/a", _b64(b"abc")]),
        ("ls", ["/home/portal/batch"]),
        ("cat", ["/home/portal/batch/a"]),
        ("cat", ["/home/portal/batch/missing"]),
        ("rm", ["/home/portal/batch/a"]),
    ])
    results = parse_results_xml(client.call("xml_call", request))
    statuses = [(r["command"], r["status"]) for r in results]
    assert statuses == [
        ("mkdir", "ok"), ("put", "ok"), ("ls", "ok"), ("cat", "ok"),
        ("cat", "error"), ("rm", "ok"),
    ]
    assert results[3]["value"] == "abc"
    assert "Portal.ResourceNotFound" in results[4]["error"]


def test_xml_call_rejects_malformed_requests(stack):
    _srb, _impl, client = stack
    with pytest.raises(InvalidRequestError):
        client.call("xml_call", "<wrongroot/>")
    with pytest.raises(InvalidRequestError):
        client.call("xml_call", "not xml at all <")
    # wrong arity is an in-band per-command error
    results = parse_results_xml(
        client.call("xml_call", make_request_xml([("cat", [])]))
    )
    assert results[0]["status"] == "error"
    # unknown command likewise
    results = parse_results_xml(
        client.call("xml_call", make_request_xml([("chown", ["x"])]))
    )
    assert results[0]["status"] == "error"


def test_xml_call_uses_one_request(network, stack):
    _srb, _impl, client = stack
    before = network.stats.snapshot()
    request = make_request_xml([("ls", ["/home/portal"])] * 10)
    client.call("xml_call", request)
    delta = network.stats.delta(before)
    assert delta.requests == 1


def test_out_of_band_transfer(network, stack):
    _srb, _impl, client = stack
    payload = bytes(range(256)) * 4
    client.call("put", "/home/portal/blob", _b64(payload))
    path = client.call("transfer_url", "/home/portal/blob")
    raw = HttpClient(network, "ui").get(f"http://srbws.sdsc.edu{path}")
    assert raw.ok
    assert raw.body.encode("latin-1") == payload
    # tokens are one-time
    again = HttpClient(network, "ui").get(f"http://srbws.sdsc.edu{path}")
    assert again.status == 404


def test_transfer_url_checks_existence_up_front(stack):
    _srb, _impl, client = stack
    with pytest.raises(ResourceNotFoundError):
        client.call("transfer_url", "/home/portal/nothere")


def test_soap_string_transfer_amplifies_bytes(network, stack):
    """The C1 claim in miniature: SOAP string streaming moves more bytes
    than the out-of-band path for the same payload."""
    _srb, _impl, client = stack
    payload = bytes(range(256)) * 64  # 16 KiB, incompressible
    client.call("put", "/home/portal/big", _b64(payload))

    before = network.stats.snapshot()
    client.call("get", "/home/portal/big")
    soap_bytes = network.stats.delta(before).bytes_received

    path = client.call("transfer_url", "/home/portal/big")
    before = network.stats.snapshot()
    HttpClient(network, "ui").get(f"http://srbws.sdsc.edu{path}")
    oob_bytes = network.stats.delta(before).bytes_received

    assert soap_bytes > oob_bytes * 1.25  # base64 + envelope overhead
