import pytest

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.services.batchscript import (
    IuBatchScriptGenerator,
    IuLegacyBatchScriptGenerator,
    JavaStyleBsgClient,
    PythonStyleBsgClient,
    SdscBatchScriptGenerator,
    bsg_interface_wsdl,
    deploy_batch_script_generator,
    params_to_spec,
)
from repro.services.context import ContextManagerService
from repro.transport.clock import SimClock
from repro.wsdl.proxy import fetch_wsdl


def test_params_to_spec_coerces_strings_and_types():
    typed = params_to_spec({"executable": "/x", "cpus": 4, "wallTime": 60.0})
    stringly = params_to_spec({"executable": "/x", "cpus": "4", "wallTime": "60"})
    assert typed == stringly
    assert typed.cpus == 4 and typed.wallclock_limit == 60.0


def test_params_to_spec_rejects_bad_input():
    with pytest.raises(InvalidRequestError):
        params_to_spec({"cpus": 1})  # no executable
    with pytest.raises(InvalidRequestError):
        params_to_spec({"executable": "/x", "cpus": "four"})
    with pytest.raises(InvalidRequestError):
        params_to_spec({"executable": "/x", "mystery": "y"})


def test_supported_schedulers_per_provider():
    iu = IuBatchScriptGenerator()
    sdsc = SdscBatchScriptGenerator()
    assert iu.listSchedulers() == ["PBS", "GRD"]
    assert sdsc.listSchedulers() == ["LSF", "NQS"]
    assert iu.supportsScheduler("pbs")
    assert not iu.supportsScheduler("LSF")
    with pytest.raises(InvalidRequestError):
        iu.generateScript("LSF", {"executable": "/x"})


def test_generated_scripts_parse_under_target_dialect():
    iu = IuBatchScriptGenerator()
    script = iu.generateScript(
        "GRD", {"executable": "/apps/code", "cpus": "8", "wallTime": "3600",
                "queue": "workq", "jobName": "j1"}
    )
    spec = make_dialect("GRD").parse(script)
    assert spec.cpus == 8 and spec.queue == "workq" and spec.name == "j1"
    assert iu.validateScript("GRD", script) == []


def test_validate_reports_problems():
    sdsc = SdscBatchScriptGenerator()
    problems = sdsc.validateScript("LSF", "#!/bin/sh\n#BSUB -ZZ\n/x\n")
    assert problems
    assert sdsc.validateScript("LSF", "#!/bin/sh\n# nothing\n") != []


def test_interop_matrix_all_pairs(network):
    """The C6 experiment in unit form: 2 providers x 2 client styles x their
    schedulers, everything interoperating through the common interface."""
    iu_url, _ = deploy_batch_script_generator(
        network, IuBatchScriptGenerator(), "bsg.iu.edu"
    )
    sdsc_url, _ = deploy_batch_script_generator(
        network, SdscBatchScriptGenerator(), "bsg.sdsc.edu"
    )
    spec = JobSpec(name="ix", executable="/apps/g98", arguments=["300"],
                   cpus=4, wallclock_limit=3600, queue="workq")
    for client_cls in (JavaStyleBsgClient, PythonStyleBsgClient):
        for url, schedulers in ((iu_url, ("PBS", "GRD")),
                                (sdsc_url, ("LSF", "NQS"))):
            client = client_cls(network, url, source="ui")
            assert sorted(client.list_schedulers()) == sorted(schedulers)
            for scheduler in schedulers:
                script = client.generate(scheduler, spec)
                assert client.validate(scheduler, script) == []
                parsed = make_dialect(scheduler).parse(script)
                assert parsed.name == "ix" and parsed.cpus == 4


def test_wsdl_published_and_identical_interface(network):
    iu_url, iu_wsdl = deploy_batch_script_generator(
        network, IuBatchScriptGenerator(), "bsg.iu.edu"
    )
    sdsc_url, sdsc_wsdl = deploy_batch_script_generator(
        network, SdscBatchScriptGenerator(), "bsg.sdsc.edu"
    )
    fetched = fetch_wsdl(network, iu_url + ".wsdl", source="ui")
    assert fetched.operation_names() == iu_wsdl.operation_names()
    # the agreed interface: same operations, same namespace, different endpoint
    assert iu_wsdl.operation_names() == sdsc_wsdl.operation_names()
    assert iu_wsdl.target_namespace == sdsc_wsdl.target_namespace
    assert iu_wsdl.endpoint != sdsc_wsdl.endpoint


def test_interface_wsdl_document_shape():
    doc = bsg_interface_wsdl("X", "http://h/bsg")
    assert set(doc.operation_names()) == {
        "listSchedulers", "supportsScheduler", "generateScript", "validateScript"
    }


def test_legacy_generator_needs_placeholder_contexts():
    cm = ContextManagerService(clock=SimClock())
    legacy = IuLegacyBatchScriptGenerator(cm)
    params = {"executable": "/x", "cpus": "1", "wallTime": "60"}
    # stateless (HotPage-style) call: a placeholder context is created+removed
    script = legacy.generateScript("PBS", params)
    assert script.startswith("#!/bin/sh")
    assert legacy.placeholders_created == 1
    assert cm.placeholderCount() == 0  # cleaned up afterwards
    # a Gateway-style call inside a real session needs no placeholder
    cm.createUserContext("u")
    cm.createProblemContext("u", "p")
    cm.createSessionContext("u", "p", "s")
    legacy.generateScript("PBS", params, "u/p/s")
    assert legacy.placeholders_created == 1
    assert cm.getSessionProperty("u", "p", "s", "lastScript").startswith("#!")
