import pytest

from repro.faults import (
    AuthenticationError,
    InvalidRequestError,
    ResourceNotFoundError,
)
from repro.soap.client import SoapClient
from repro.soap.message import SoapEnvelope, SoapFaultError
from repro.soap.server import SoapService
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement


@pytest.fixture
def service(network):
    server = HttpServer("svc.example", network)
    svc = SoapService("calc", "urn:calc")

    def add(a, b):
        """Add two numbers."""
        return a + b

    def fail_portal(path):
        raise ResourceNotFoundError("nope", {"path": path})

    def fail_random():
        raise ValueError("unexpected internal thing")

    svc.expose(add)
    svc.expose(fail_portal)
    svc.expose(fail_random)
    url = svc.mount(server)
    return svc, url


@pytest.fixture
def client(network, service):
    _svc, url = service
    return SoapClient(network, url, "urn:calc", source="client.example")


def test_rpc_roundtrip(client, service):
    assert client.call("add", 2, 3) == 5
    assert client.add(10, -4) == 6  # attribute-magic stub
    assert service[0].calls_served == 2


def test_unknown_method_is_invalid_request(client):
    with pytest.raises(InvalidRequestError):
        client.call("subtract", 1, 2)


def test_portal_error_reraised_with_type_and_detail(client):
    with pytest.raises(ResourceNotFoundError) as exc_info:
        client.fail_portal("/x")
    assert exc_info.value.detail == {"path": "/x"}


def test_unhandled_exception_becomes_generic_fault(client, service):
    with pytest.raises(SoapFaultError) as exc_info:
        client.fail_random()
    assert "ValueError" in str(exc_info.value)
    assert service[0].faults_returned >= 1


def test_header_provider_attaches_headers(network, service):
    svc, url = service
    seen = []

    def interceptor(method, params, envelope: SoapEnvelope):
        header = envelope.header("Token")
        seen.append(header.text if header is not None else None)

    svc.add_interceptor(interceptor)
    client = SoapClient(network, url, "urn:calc")
    client.add_header_provider(
        lambda method, params: [XmlElement("Token", text=f"tok-{method}")]
    )
    client.add(1, 1)
    assert seen == ["tok-add"]


def test_interceptor_rejection_blocks_dispatch(network, service):
    svc, url = service

    def deny(method, params, envelope):
        raise AuthenticationError("no token")

    svc.add_interceptor(deny)
    served_before = svc.calls_served
    client = SoapClient(network, url, "urn:calc")
    with pytest.raises(AuthenticationError):
        client.add(1, 1)
    assert svc.calls_served == served_before


def test_expose_object_bulk(network):
    class Impl:
        def visible(self):
            return "v"

        def _hidden(self):  # pragma: no cover - must not be exposed
            return "h"

    svc = SoapService("bulk", "urn:bulk")
    svc.expose_object(Impl())
    assert "visible" in svc.methods
    assert "_hidden" not in svc.methods


def test_malformed_request_returns_client_fault(network, service):
    _svc, url = service
    from repro.transport.client import HttpClient

    response = HttpClient(network, "c").post(url, "this is not xml")
    assert response.status == 500
    assert "malformed SOAP request" in response.body


def test_get_rejected(network, service):
    _svc, url = service
    from repro.transport.client import HttpClient

    assert HttpClient(network, "c").get(url).status == 405
