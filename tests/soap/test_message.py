import pytest

from repro.faults import PortalError, ResourceExhaustedError
from repro.soap.message import (
    SoapEnvelope,
    SoapFault,
    request_envelope,
    response_envelope,
)
from repro.xmlutil.element import XmlElement


def test_envelope_roundtrip_with_headers():
    body = XmlElement("call", text="payload")
    header = XmlElement("Assertion", {"id": "a1"})
    envelope = SoapEnvelope(body, [header])
    parsed = SoapEnvelope.parse(envelope.serialize())
    assert parsed.body == body
    assert parsed.header("Assertion").get("id") == "a1"
    assert parsed.header("Missing") is None
    assert not parsed.is_fault


def test_envelope_requires_single_body_element():
    with pytest.raises(ValueError):
        SoapEnvelope.parse("<notanenvelope/>")
    bare = (
        '<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">'
        "<e:Body/></e:Envelope>"
    )
    with pytest.raises(ValueError):
        SoapEnvelope.parse(bare)


def test_fault_roundtrip():
    fault = SoapFault("Client", "you messed up", "actor-x", {"k": "v"})
    parsed = SoapFault.from_xml(
        SoapEnvelope.parse(SoapEnvelope(fault.to_xml()).serialize()).body
    )
    assert parsed == fault


def test_portal_error_travels_through_fault():
    err = ResourceExhaustedError("disk was full", {"resource": "hpss"})
    fault = SoapFault.from_portal_error(err, actor="srb-ws")
    reconstructed = fault.to_portal_error()
    assert isinstance(reconstructed, ResourceExhaustedError)
    assert reconstructed.message == "disk was full"
    assert reconstructed.detail == {"resource": "hpss"}


def test_generic_fault_has_no_portal_error():
    assert SoapFault("Server", "boom").to_portal_error() is None


def test_unknown_code_falls_back_to_base_error():
    err = PortalError.from_detail({"code": "Portal.Novel", "message": "m"})
    assert type(err) is PortalError
    assert err.message == "m"


def test_request_response_envelopes():
    req = request_envelope("urn:s", "doIt", ["x", 2])
    assert req.body.tag.local == "doIt"
    assert len(req.body.children) == 2
    resp = response_envelope("urn:s", "doIt", {"ok": True})
    assert resp.body.tag.local == "doItResponse"
    assert resp.body.find("return") is not None
