import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.encoding import SoapEncodingError, decode_value, encode_value
from repro.xmlutil.element import XmlElement, parse_xml


@pytest.mark.parametrize(
    "value",
    [
        "plain string",
        "",
        42,
        -1,
        3.14,
        True,
        False,
        None,
        b"\x00\x01binary\xff",
        ["a", 1, None],
        {"k": "v", "nested": {"x": [1, 2]}},
        [],
        {},
    ],
)
def test_roundtrip_values(value):
    node = encode_value("p", value)
    assert decode_value(node) == value


def test_roundtrip_through_wire_text():
    value = {"items": [1, "two", 3.0, False, None], "blob": b"abc"}
    text = encode_value("p", value).serialize()
    assert decode_value(parse_xml(text)) == value


def test_xml_literal_passthrough():
    payload = XmlElement("jobs")
    payload.child("job", text="j1")
    node = encode_value("p", payload)
    decoded = decode_value(parse_xml(node.serialize()))
    assert isinstance(decoded, XmlElement)
    assert decoded == payload


def test_unencodable_type_rejected():
    with pytest.raises(SoapEncodingError):
        encode_value("p", object())
    with pytest.raises(SoapEncodingError):
        encode_value("p", {1: "non-string key"})


def test_bool_not_confused_with_int():
    assert decode_value(encode_value("p", True)) is True
    assert decode_value(encode_value("p", 1)) == 1


# strings that survive XML text content (no control chars, no lone CR)
wire_text = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\r",
                           categories=("L", "N", "P", "S", "Zs")),
    max_size=40,
)

soap_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-2**53, 2**53),
        st.floats(allow_nan=False, allow_infinity=False),
        wire_text,
        st.binary(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(soap_values)
@settings(max_examples=120, deadline=None)
def test_encode_decode_property(value):
    text = encode_value("p", value).serialize()
    assert decode_value(parse_xml(text)) == value
