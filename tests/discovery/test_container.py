import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.container import MetadataContainer


@pytest.fixture
def tree():
    root = MetadataContainer("")
    root.ensure_path("portals/IU/script-generators/gateway").set_meta(
        "queuing-system", "PBS", "GRD"
    ).set_meta("wsdl", "http://iu/bsg.wsdl")
    root.ensure_path("portals/SDSC/script-generators/hotpage").set_meta(
        "queuing-system", "LSF", "NQS"
    )
    root.ensure_path("portals/SDSC/data/srb").set_meta("kind", "data-management")
    return root


def test_lookup_and_ensure(tree):
    node = tree.lookup("portals/IU/script-generators/gateway")
    assert node is not None
    assert node.meta("queuing-system") == ["PBS", "GRD"]
    assert tree.lookup("portals/nowhere") is None
    # ensure_path is idempotent
    again = tree.ensure_path("portals/IU/script-generators/gateway")
    assert again is node


def test_query_by_metadata(tree):
    hits = tree.query({"queuing-system": "LSF"})
    assert [path for path, _ in hits] == ["/portals/SDSC/script-generators/hotpage"]
    assert tree.query({"queuing-system": "PBS"}, scope="portals/SDSC") == []
    assert len(tree.query({})) >= 6  # every node matches an empty filter


def test_query_requires_all_pairs(tree):
    gateway = tree.lookup("portals/IU/script-generators/gateway")
    gateway.add_meta("interface", "urn:bsg")
    assert tree.query({"queuing-system": "PBS", "interface": "urn:bsg"})
    assert not tree.query({"queuing-system": "LSF", "interface": "urn:bsg"})


def test_remove_subtree(tree):
    assert tree.remove("portals/SDSC/data")
    assert tree.lookup("portals/SDSC/data") is None
    assert not tree.remove("portals/SDSC/data")


def test_walk_paths(tree):
    paths = [path for path, _ in tree.walk()]
    assert "/portals/IU/script-generators/gateway" in paths


def test_xml_self_description_roundtrip(tree):
    text = tree.serialize()
    back = MetadataContainer.from_xml(text)
    assert back == tree


names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@given(
    paths=st.lists(st.lists(names, min_size=1, max_size=4), min_size=1, max_size=6),
    key=names,
    value=names,
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(paths, key, value):
    root = MetadataContainer("")
    for parts in paths:
        root.ensure_path("/".join(parts)).add_meta(key, value)
    assert MetadataContainer.from_xml(root.serialize()) == root
    # every registered path is findable by its metadata
    hits = {path for path, _ in root.query({key: value})}
    for parts in paths:
        assert "/" + "/".join(parts) in hits
