import pytest

from repro.faults import DiscoveryError
from repro.discovery.wsil import (
    InspectionDocument,
    inspect,
    publish_inspection,
)
from repro.transport.server import HttpServer


@pytest.fixture
def federation(network):
    """Three sites: IU links to SDSC, SDSC links to NCSA and back to IU
    (a cycle), NCSA is a leaf."""
    iu = HttpServer("iu.wsil", network)
    sdsc = HttpServer("sdsc.wsil", network)
    ncsa = HttpServer("ncsa.wsil", network)

    iu_doc = InspectionDocument()
    iu_doc.add_service("Gateway BSG", "http://iu.wsil/bsg.wsdl", "PBS+GRD scripts")
    iu_doc.add_link("http://sdsc.wsil/inspection.wsil")
    publish_inspection(iu, iu_doc)

    sdsc_doc = InspectionDocument()
    sdsc_doc.add_service("HotPage BSG", "http://sdsc.wsil/bsg.wsdl")
    sdsc_doc.add_service("SRB WS", "http://sdsc.wsil/srb.wsdl")
    sdsc_doc.add_link("http://ncsa.wsil/inspection.wsil")
    sdsc_doc.add_link("http://iu.wsil/inspection.wsil")  # cycle
    publish_inspection(sdsc, sdsc_doc)

    ncsa_doc = InspectionDocument()
    ncsa_doc.add_service("NCSA jobs", "http://ncsa.wsil/jobs.wsdl")
    publish_inspection(ncsa, ncsa_doc)
    return network


def test_document_roundtrip():
    doc = InspectionDocument()
    doc.add_service("S", "http://h/s.wsdl", "an abstract")
    doc.add_link("http://other/inspection.wsil")
    back = InspectionDocument.parse(doc.serialize())
    assert back.services[0].name == "S"
    assert back.services[0].wsdl_location == "http://h/s.wsdl"
    assert back.services[0].abstract == "an abstract"
    assert back.links == ["http://other/inspection.wsil"]


def test_parse_rejects_non_wsil():
    with pytest.raises(DiscoveryError):
        InspectionDocument.parse("<registry/>")


def test_crawl_follows_links_once(federation):
    services = inspect(federation, "http://iu.wsil/inspection.wsil",
                       source="crawler")
    names = sorted(s.name for s in services)
    assert names == ["Gateway BSG", "HotPage BSG", "NCSA jobs", "SRB WS"]
    # the IU<->SDSC cycle did not duplicate anything
    assert len(names) == len(set(names))


def test_crawl_without_links(federation):
    services = inspect(federation, "http://sdsc.wsil/inspection.wsil",
                       follow_links=False)
    assert sorted(s.name for s in services) == ["HotPage BSG", "SRB WS"]


def test_crawl_survives_dead_links(federation, network):
    network.take_down("ncsa.wsil")
    services = inspect(federation, "http://iu.wsil/inspection.wsil")
    names = sorted(s.name for s in services)
    # decentralization: partial answers when a site is down
    assert names == ["Gateway BSG", "HotPage BSG", "SRB WS"]
    network.bring_up("ncsa.wsil")


def test_crawl_bounded(federation):
    services = inspect(federation, "http://iu.wsil/inspection.wsil",
                       max_documents=1)
    assert sorted(s.name for s in services) == ["Gateway BSG"]
