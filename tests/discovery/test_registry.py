import pytest

from repro.faults import DiscoveryError
from repro.discovery.registry import DiscoveryClient, deploy_discovery


@pytest.fixture
def discovery(network):
    registry, url = deploy_discovery(network)
    client = DiscoveryClient(network, url, source="ui")
    client.register(
        "portals/IU/script-generators/gateway",
        {"queuing-system": ["PBS", "GRD"], "endpoint": "http://iu/bsg"},
    )
    client.register(
        "portals/SDSC/script-generators/hotpage",
        {"queuing-system": ["LSF", "NQS"], "endpoint": "http://sdsc/bsg"},
    )
    return registry, client


def test_structured_query_is_precise(discovery):
    _registry, client = discovery
    hits = client.query({"queuing-system": "GRD"})
    assert len(hits) == 1
    assert hits[0]["path"] == "/portals/IU/script-generators/gateway"
    assert hits[0]["metadata"]["endpoint"] == ["http://iu/bsg"]


def test_query_scoped_to_subtree(discovery):
    _registry, client = discovery
    assert client.query({"queuing-system": "PBS"}, scope="portals/SDSC") == []


def test_children_listing(discovery):
    _registry, client = discovery
    assert client.children("portals") == ["IU", "SDSC"]
    with pytest.raises(DiscoveryError):
        client.children("nowhere")


def test_describe_returns_self_describing_xml(discovery):
    _registry, client = discovery
    subtree = client.describe("portals/IU")
    assert subtree.name == "IU"
    node = subtree.lookup("script-generators/gateway")
    assert node.meta("queuing-system") == ["PBS", "GRD"]


def test_unregister(discovery):
    _registry, client = discovery
    assert client.unregister("portals/IU/script-generators/gateway")
    assert client.query({"queuing-system": "PBS"}) == []
    with pytest.raises(DiscoveryError):
        client.unregister("portals/IU/script-generators/gateway")


def test_reregistration_updates_metadata(discovery):
    _registry, client = discovery
    client.register(
        "portals/IU/script-generators/gateway", {"queuing-system": ["PBS"]}
    )
    hits = client.query({"queuing-system": "GRD"})
    assert hits == []
