"""Property test: WSDL generation and parsing are inverse operations.

The paper's interoperability story depends on the WSDL surface being a
faithful description of the live service: a client that builds its proxy
from ``parse_wsdl(generate_wsdl(svc).serialize())`` must see exactly the
operations (and input parts) the service dispatches.  This holds for
every SOAP service the full portal deployment registers, and for
arbitrary synthetic documents.
"""

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.portal import PortalDeployment
from repro.soap.server import SoapService
from repro.wsdl.model import (
    WsdlDocument,
    WsdlOperation,
    WsdlPart,
    generate_wsdl,
    parse_wsdl,
)


@lru_cache(maxsize=1)
def portal_catalog() -> tuple:
    """Every SOAP service the full Figure 4 deployment registers, found by
    walking the virtual network's HTTP servers and their mounted routes."""
    deployment = PortalDeployment.build()
    services = {}
    for host in deployment.network.hosts():
        server = deployment.network._hosts[host]
        for path in getattr(server, "routes", lambda: [])():
            handler = server._routes[path]
            bound = getattr(handler, "__self__", None)
            if isinstance(bound, SoapService):
                services[(host, path)] = bound
    assert len(services) >= 5, sorted(services)
    return tuple(sorted(services.items()))


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_every_registered_service_round_trips(data):
    (host, path), svc = data.draw(
        st.sampled_from(portal_catalog()), label="service"
    )
    endpoint = f"http://{host}{path}"
    generated = generate_wsdl(svc, endpoint)
    parsed = parse_wsdl(generated.serialize())

    assert parsed.service_name == generated.service_name
    assert parsed.target_namespace == generated.target_namespace
    assert parsed.endpoint == endpoint
    assert parsed.operation_names() == generated.operation_names()
    for op in generated.operations:
        round_tripped = parsed.operation(op.name)
        assert round_tripped is not None
        assert [p.name for p in round_tripped.inputs] == [
            p.name for p in op.inputs
        ]
    # and the WSDL surface matches the dispatch surface itself
    assert set(parsed.operation_names()) == set(svc.methods)


IDENT = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,15}", fullmatch=True)
XSD_TYPES = st.sampled_from(["xsd:anyType", "xsd:string", "xsd:int"])

OPERATIONS = st.lists(
    st.builds(
        WsdlOperation,
        name=IDENT,
        documentation=st.just(""),
        inputs=st.lists(
            st.builds(WsdlPart, name=IDENT, type=XSD_TYPES), max_size=4
        ),
        output=st.builds(WsdlPart, name=st.just("return"), type=XSD_TYPES),
    ),
    max_size=5,
    unique_by=lambda op: op.name,
)


@settings(max_examples=60, deadline=None)
@given(name=IDENT, namespace=IDENT, operations=OPERATIONS)
def test_synthetic_documents_round_trip(name, namespace, operations):
    document = WsdlDocument(
        service_name=name,
        target_namespace=f"urn:{namespace}",
        endpoint=f"http://{name}.example.org/soap",
        operations=operations,
    )
    parsed = parse_wsdl(document.serialize())
    assert parsed.service_name == document.service_name
    assert parsed.target_namespace == document.target_namespace
    assert parsed.endpoint == document.endpoint
    assert parsed.operation_names() == document.operation_names()
    for original, round_tripped in zip(document.operations, parsed.operations):
        assert [(p.name, p.type) for p in round_tripped.inputs] == [
            (p.name, p.type) for p in original.inputs
        ]
        assert round_tripped.output.type == original.output.type
