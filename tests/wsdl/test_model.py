from repro.soap.server import SoapService
from repro.wsdl.model import WsdlDocument, WsdlOperation, WsdlPart, generate_wsdl, parse_wsdl


def _sample_doc() -> WsdlDocument:
    return WsdlDocument(
        service_name="BatchScript",
        target_namespace="urn:gce:bsg",
        endpoint="http://bsg.iu.edu/bsg",
        documentation="the agreed interface",
        operations=[
            WsdlOperation(
                "generateScript",
                "renders a script",
                [WsdlPart("scheduler", "xsd:string"), WsdlPart("params")],
            ),
            WsdlOperation("listSchedulers", "", []),
        ],
    )


def test_serialize_parse_roundtrip():
    doc = _sample_doc()
    parsed = parse_wsdl(doc.serialize())
    assert parsed.service_name == doc.service_name
    assert parsed.target_namespace == doc.target_namespace
    assert parsed.endpoint == doc.endpoint
    assert parsed.documentation == doc.documentation
    assert parsed.operation_names() == doc.operation_names()
    op = parsed.operation("generateScript")
    assert [p.name for p in op.inputs] == ["scheduler", "params"]
    assert op.documentation == "renders a script"


def test_generate_from_live_service():
    svc = SoapService("Echo", "urn:echo")

    def shout(message, times):
        """Repeat the message."""
        return message * times

    svc.expose(shout)
    doc = generate_wsdl(svc, "http://h/echo")
    op = doc.operation("shout")
    assert op is not None
    assert [p.name for p in op.inputs] == ["message", "times"]
    assert op.documentation == "Repeat the message."
    assert doc.endpoint == "http://h/echo"


def test_parse_rejects_other_documents():
    import pytest

    with pytest.raises(ValueError):
        parse_wsdl("<random/>")


def test_operation_lookup_missing():
    assert _sample_doc().operation("nope") is None
