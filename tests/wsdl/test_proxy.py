import pytest

from repro.soap.server import SoapService
from repro.transport.server import HttpServer
from repro.wsdl.model import generate_wsdl
from repro.wsdl.proxy import client_from_wsdl, fetch_wsdl, publish_wsdl


@pytest.fixture
def published(network):
    server = HttpServer("svc.host", network)
    svc = SoapService("Adder", "urn:adder")
    svc.expose(lambda a, b: a + b, "add")
    endpoint = svc.mount(server, "/adder")
    wsdl_url = publish_wsdl(server, generate_wsdl(svc, endpoint), "/adder.wsdl")
    return wsdl_url


def test_fetch_and_bind(network, published):
    doc = fetch_wsdl(network, published, source="ui.host")
    assert doc.endpoint == "http://svc.host/adder"
    client = client_from_wsdl(network, doc, source="ui.host")
    assert client.add(2, 5) == 7
    assert client.wsdl.operation("add") is not None


def test_bind_directly_from_url(network, published):
    client = client_from_wsdl(network, published, source="ui.host")
    assert client.call("add", 1, 1) == 2


def test_fetch_missing_wsdl_fails(network, published):
    with pytest.raises(ConnectionError):
        fetch_wsdl(network, "http://svc.host/ghost.wsdl")


def test_bind_requires_endpoint(network, published):
    doc = fetch_wsdl(network, published)
    doc.endpoint = ""
    with pytest.raises(ValueError):
        client_from_wsdl(network, doc)
