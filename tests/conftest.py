"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.security.gsi import SimpleCA
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork


@pytest.fixture
def network() -> VirtualNetwork:
    """A fresh virtual network with its own clock."""
    return VirtualNetwork()


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def ca() -> SimpleCA:
    return SimpleCA()


@pytest.fixture(scope="module")
def deployment():
    """The full portal deployment (module-scoped: building it brings up the
    whole Figure 4 architecture)."""
    from repro.portal.uiserver import PortalDeployment

    return PortalDeployment.build()
