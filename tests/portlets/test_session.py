"""Distributed portlet session state (§3.3's future-work hook)."""

import pytest

from repro.portlets.registry import PortletEntry
from repro.portlets.session import (
    DistributedSessionContainer,
    deploy_session_state,
)
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.server import HttpServer

PAGE_ONE = (
    '<html><body><p>page one</p><a href="two.html">next</a></body></html>'
)
PAGE_TWO = '<html><body><p>page two, session {sid}</p></body></html>'


@pytest.fixture
def stack(network):
    """A remote stateful app plus two portal servers sharing session state."""
    remote = HttpServer("app.host", network)

    def page_one(request: HttpRequest) -> HttpResponse:
        headers = {}
        if "sid=" not in request.headers.get("Cookie", ""):
            headers["Set-Cookie"] = "sid=s-123"
        return HttpResponse(200, headers, PAGE_ONE)

    def page_two(request: HttpRequest) -> HttpResponse:
        cookie = request.headers.get("Cookie", "(none)")
        return HttpResponse(200, {}, PAGE_TWO.format(sid=cookie))

    remote.mount("/ui", page_one)
    remote.mount("/ui/two.html", page_two)

    _service, endpoint = deploy_session_state(network)

    def make_portal(host: str) -> DistributedSessionContainer:
        container = DistributedSessionContainer(network, host, endpoint)
        container.registry.register(
            PortletEntry("app", "WebFormPortlet", "http://app.host/ui",
                         title="The app")
        )
        container.set_layout("alice", ["app"])
        return container

    return make_portal("portal-a.host"), make_portal("portal-b.host"), _service


def test_state_survives_moving_between_portal_servers(network, stack):
    portal_a, portal_b, service = stack
    # alice browses on portal A: lands on page one, follows the link
    portal_a.render_page("alice")
    portlet_a = portal_a.portlet_for("alice", "app")
    portlet_a.interact("/portal?user=alice",
                       target="http://app.host/ui/two.html")
    assert portlet_a.remote_cookies() == {"sid": "s-123"}
    assert portal_a.checkpoint("alice") == 1
    assert service.saves == 1

    # alice's next request lands on portal B: same page, same remote session
    page = portal_b.render_page("alice")
    assert "page two" in page
    assert "sid=s-123" in page  # the cookie went with her


def test_no_state_means_fresh_start(network, stack):
    _portal_a, portal_b, _service = stack
    page = portal_b.render_page("alice")
    assert "page one" in page


def test_checkpoint_counts_only_remote_portlets(network, stack):
    portal_a, _portal_b, _service = stack
    from repro.portlets.base import LocalPortlet

    portal_a.add_local_portlet(LocalPortlet("motd", lambda: "<p>x</p>"))
    portal_a.set_layout("alice", ["app", "motd"])
    portal_a.render_page("alice")
    assert portal_a.checkpoint("alice") == 1  # motd not checkpointed


def test_drop_forgets_user(network, stack):
    portal_a, _portal_b, service = stack
    portal_a.render_page("alice")
    portal_a.checkpoint("alice")
    assert service.drop("alice") == 1
    assert service.drop("alice") == 0
    assert service.load("alice", "app") == ""
