import pytest

from repro.faults import InvalidRequestError
from repro.portlets.base import LocalPortlet
from repro.portlets.container import PortletContainer
from repro.portlets.registry import PortletEntry
from repro.transport.client import HttpClient
from repro.transport.http import HttpResponse
from repro.transport.server import HttpServer

REMOTE_PAGE = (
    '<html><body><p>remote stuff</p><a href="next">go</a></body></html>'
)


@pytest.fixture
def container(network):
    remote = HttpServer("content.host", network)
    remote.mount("/ui", lambda r: HttpResponse(200, {}, REMOTE_PAGE))
    remote.mount(
        "/ui/next",
        lambda r: HttpResponse(200, {}, "<html><body>page two</body></html>"),
    )
    container = PortletContainer(network, "portal.host", columns=2)
    container.registry.register(
        PortletEntry("remote-ui", "WebFormPortlet", "http://content.host/ui",
                     title="Remote UI")
    )
    container.add_local_portlet(
        LocalPortlet("motd", lambda: "<p>welcome to the portal</p>",
                     title="Message of the day")
    )
    return container


def test_composite_page_is_nested_tables(container):
    page = container.render_page("alice")
    assert page.count('<table class="portlet">') == 2
    assert '<table class="portal">' in page
    assert "welcome to the portal" in page
    assert "remote stuff" in page
    assert "Remote UI" in page  # portlet title bar


def test_user_layout_customization(container):
    container.set_layout("bob", ["motd"])
    page = container.render_page("bob")
    assert "welcome to the portal" in page
    assert "remote stuff" not in page
    # alice still sees everything
    assert "remote stuff" in container.render_page("alice")
    with pytest.raises(InvalidRequestError):
        container.set_layout("bob", ["nonexistent"])


def test_per_user_portlet_instances(container):
    a = container.portlet_for("alice", "remote-ui")
    b = container.portlet_for("bob", "remote-ui")
    assert a is not b
    assert container.portlet_for("alice", "remote-ui") is a
    # local portlets are shared
    assert container.portlet_for("alice", "motd") is container.portlet_for(
        "bob", "motd"
    )


def test_http_interaction_routes_to_portlet(network, container):
    client = HttpClient(network, "browser")
    page = client.get("http://portal.host/portal?user=alice").body
    assert "remote stuff" in page
    # follow the remapped link through the container
    target = "http%3A%2F%2Fcontent.host%2Fui%2Fnext"
    follow = client.get(
        f"http://portal.host/portal?user=alice&portlet=remote-ui&target={target}"
    ).body
    assert "page two" in follow
    # other portlets still present: the full page re-rendered
    assert "welcome to the portal" in follow


def test_interaction_requires_target(network, container):
    client = HttpClient(network, "browser")
    response = client.get(
        "http://portal.host/portal?user=alice&portlet=remote-ui"
    )
    assert response.status == 400


def test_pages_rendered_counter(container):
    container.render_page("alice")
    container.render_page("alice")
    assert container.pages_rendered == 2
