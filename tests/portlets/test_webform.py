import pytest

from repro.portlets.webform import WebFormPortlet
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.server import HttpServer

FORM_PAGE = """\
<html><head><title>Editor</title></head>
<body>
<a href="other.html">next page</a>
<a href="/abs/path">absolute</a>
<a href="#frag">fragment</a>
<form action="save" method="GET">
<input type="text" name="field"/>
</form>
</body></html>
"""


@pytest.fixture
def remote(network):
    server = HttpServer("apps.host", network)
    state = {"saved": None, "visits": 0}

    def editor(request: HttpRequest) -> HttpResponse:
        state["visits"] += 1
        headers = {}
        if "sid=" not in request.headers.get("Cookie", ""):
            headers["Set-Cookie"] = "sid=tomcat1"
        return HttpResponse(200, headers, FORM_PAGE)

    def save(request: HttpRequest) -> HttpResponse:
        state["saved"] = request.form()
        cookie = request.headers.get("Cookie", "")
        body = (
            "<html><body><p>saved in session "
            f"{cookie}</p><a href=\"/webapps/editor\">back</a></body></html>"
        )
        return HttpResponse(200, {}, body)

    server.mount("/webapps/editor", editor)
    server.mount("/webapps/save", save)
    server.mount(
        "/webapps/other.html",
        lambda r: HttpResponse(
            200, {}, "<html><body><p>the other page</p></body></html>"
        ),
    )
    return state


@pytest.fixture
def portlet(network, remote):
    return WebFormPortlet(
        "editor", "http://apps.host/webapps/editor", network,
        container_host="portal.host",
    )


def test_feature3_urls_remapped_into_portlet_window(portlet):
    fragment = portlet.render("/portal?user=alice")
    # links and form actions now route through the container
    assert 'href="/portal?user=alice&portlet=editor&target=' in fragment.replace(
        "&amp;", "&"
    )
    assert "http%3A%2F%2Fapps.host%2Fwebapps%2Fother.html" in fragment
    assert 'method="POST"' in fragment
    assert "method=POST" in fragment  # the form action carries method=POST
    # fragment-only links untouched
    assert 'href="#frag"' in fragment


def test_following_a_link_stays_inside_the_portlet(portlet):
    portlet.render("/portal")
    fragment = portlet.interact(
        "/portal", target="http://apps.host/webapps/other.html", method="GET"
    )
    assert "the other page" in fragment


def test_feature1_post_form_parameters(portlet, remote):
    portlet.render("/portal")
    fragment = portlet.interact(
        "/portal",
        target="http://apps.host/webapps/save",
        method="POST",
        fields={"field": "typed value"},
    )
    assert remote["saved"] == {"field": "typed value"}
    assert "saved in session" in fragment
    # the response's link got remapped too
    assert "portlet=editor" in fragment


def test_feature2_session_state_maintained(portlet, remote):
    portlet.render("/portal")
    assert portlet.remote_cookies() == {"sid": "tomcat1"}
    fragment = portlet.interact(
        "/portal", target="http://apps.host/webapps/save", method="POST",
        fields={"field": "x"},
    )
    # the Tomcat session cookie accompanied the POST
    assert "sid=tomcat1" in fragment


def test_repeated_renders_do_not_rewrap_urls(portlet):
    """Remapping must be idempotent across renders: the in-memory copy is
    cloned, so URLs never get wrapped in container URLs twice."""
    first = portlet.render("/portal?user=alice")
    for _ in range(5):
        again = portlet.render("/portal?user=alice")
    assert again == first
    assert again.count("portlet=editor") == first.count("portlet=editor")


def test_sessions_independent_per_portlet_instance(network, remote):
    a = WebFormPortlet("a", "http://apps.host/webapps/editor", network)
    b = WebFormPortlet("b", "http://apps.host/webapps/editor", network)
    a.render("/portal")
    assert b.remote_cookies() == {}
