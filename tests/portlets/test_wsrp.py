import pytest

from repro.faults import InvalidRequestError
from repro.portlets.base import LocalPortlet, Portlet
from repro.portlets.container import PortletContainer
from repro.portlets.wsrp import (
    WsrpConsumerPortlet,
    WsrpProducer,
    deploy_wsrp_producer,
    discover_portlets,
)


class StatefulPortlet(Portlet):
    """A producer-side portlet with per-instance state."""

    def __init__(self, user: str):
        super().__init__("counter", f"Counter for {user}")
        self.user = user
        self.count = 0

    def render(self, container_base: str) -> str:
        return (f'<p>{self.user} clicked {self.count} times</p>'
                f'<a href="{container_base}&portlet=counter&target=click">+1</a>')

    def interact(self, container_base, *, target, method="GET", fields=None):
        if target == "click":
            self.count += 1
        return self.render(container_base)


@pytest.fixture
def producer_stack(network):
    producer = WsrpProducer()
    producer.register_portlet("counter", StatefulPortlet, "Click counter")
    producer.register_portlet(
        "motd",
        lambda user: LocalPortlet("motd", lambda: f"<p>hello {user}</p>"),
        "Message",
    )
    endpoint = deploy_wsrp_producer(network, producer, "producer.host")
    return producer, endpoint


def test_discovery(network, producer_stack):
    _producer, endpoint = producer_stack
    offered = discover_portlets(network, endpoint)
    assert [(o["handle"], o["title"]) for o in offered] == [
        ("counter", "Click counter"), ("motd", "Message"),
    ]


def test_remote_markup_and_interaction(network, producer_stack):
    producer, endpoint = producer_stack
    portlet = WsrpConsumerPortlet(
        "remote-counter", network, endpoint, "counter", "alice",
        title="Counter",
    )
    markup = portlet.render("/portal?user=alice")
    assert "alice clicked 0 times" in markup
    markup = portlet.interact("/portal?user=alice", target="click")
    assert "alice clicked 1 times" in markup
    assert producer.markup_requests == 1
    assert producer.interactions == 1


def test_per_user_state_on_the_producer(network, producer_stack):
    _producer, endpoint = producer_stack
    alice = WsrpConsumerPortlet("c", network, endpoint, "counter", "alice")
    bob = WsrpConsumerPortlet("c", network, endpoint, "counter", "bob")
    alice.interact("/p", target="click")
    alice.interact("/p", target="click")
    assert "alice clicked 2 times" in alice.render("/p")
    assert "bob clicked 0 times" in bob.render("/p")


def test_unknown_handle(network, producer_stack):
    _producer, endpoint = producer_stack
    portlet = WsrpConsumerPortlet("x", network, endpoint, "ghost", "alice")
    with pytest.raises(InvalidRequestError):
        portlet.render("/p")


def test_release_session_resets_state(network, producer_stack):
    producer, endpoint = producer_stack
    portlet = WsrpConsumerPortlet("c", network, endpoint, "counter", "alice")
    portlet.interact("/p", target="click")
    assert producer.release_session("counter", "alice")
    assert not producer.release_session("counter", "alice")  # already gone
    # the next markup request lazily creates a fresh (zeroed) instance
    assert "alice clicked 0 times" in portlet.render("/p")


def test_wsrp_portlet_inside_container(network, producer_stack):
    """The §6 vision: the container aggregates a *remote* portlet through
    WSRP instead of HTML scraping."""
    _producer, endpoint = producer_stack
    container = PortletContainer(network, "consumer.host")
    container.add_local_portlet(
        WsrpConsumerPortlet("remote-counter", network, endpoint, "counter",
                            "alice", title="Remote counter",
                            consumer_host="consumer.host")
    )
    container.set_layout("alice", ["remote-counter"])
    page = container.render_page("alice")
    assert "Remote counter" in page
    assert "alice clicked 0 times" in page
