import pytest

from repro.faults import InvalidRequestError
from repro.portlets.registry import PortletEntry, PortletRegistry
from repro.portlets.webform import WebFormPortlet
from repro.portlets.webpage import WebPagePortlet


@pytest.fixture
def registry():
    reg = PortletRegistry()
    reg.register(PortletEntry("news", "WebPagePortlet", "http://news.host/",
                              title="News"))
    reg.register(PortletEntry("gaussian-ui", "WebFormPortlet",
                              "http://apps.host/webapps/gaussian",
                              title="Gaussian",
                              parameters={"column": "left"}))
    return reg


def test_register_and_lookup(registry):
    assert registry.names() == ["gaussian-ui", "news"]
    entry = registry.entry("news")
    assert entry.type == "WebPagePortlet"
    assert registry.entry("missing") is None


def test_unknown_type_rejected(registry):
    with pytest.raises(InvalidRequestError):
        registry.register(PortletEntry("x", "AppletPortlet", "http://h/"))
    with pytest.raises(InvalidRequestError):
        registry.register(PortletEntry("x", "WebPagePortlet", ""))


def test_xreg_roundtrip(registry):
    text = registry.to_xreg()
    assert "local-portlets" or True  # the format, not the filename
    back = PortletRegistry.from_xreg(text)
    assert back.names() == registry.names()
    entry = back.entry("gaussian-ui")
    assert entry.url == "http://apps.host/webapps/gaussian"
    assert entry.title == "Gaussian"
    assert entry.parameters == {"column": "left"}


def test_xreg_rejects_other_documents():
    with pytest.raises(InvalidRequestError):
        PortletRegistry.from_xreg("<portlets/>")


def test_instantiate_types(registry, network):
    page = registry.instantiate("news", network, container_host="portal")
    form = registry.instantiate("gaussian-ui", network, container_host="portal")
    assert type(page) is WebPagePortlet
    assert type(form) is WebFormPortlet
    with pytest.raises(InvalidRequestError):
        registry.instantiate("ghost", network, container_host="portal")


def test_unregister(registry):
    registry.unregister("news")
    assert registry.names() == ["gaussian-ui"]
