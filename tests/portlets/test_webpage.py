import pytest

from repro.portlets.webpage import WebPagePortlet
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.server import HttpServer

PAGE = """\
<html><head><title>Remote</title></head>
<body><h1>Remote content</h1><p>hello</p></body></html>
"""


@pytest.fixture
def remote(network):
    server = HttpServer("remote.host", network)
    server.mount("/page", lambda r: HttpResponse(200, {}, PAGE))
    server.mount("/plain", lambda r: HttpResponse(200, {}, "not <xml"))
    return server


def test_fetch_keeps_in_memory_copy(network, remote):
    portlet = WebPagePortlet("p", "http://remote.host/page", network)
    portlet.fetch()
    assert portlet.document is not None  # the in-memory object
    assert portlet.fetches == 1


def test_render_extracts_body(network, remote):
    portlet = WebPagePortlet("p", "http://remote.host/page", network)
    fragment = portlet.render("/portal")
    assert "<h1>Remote content</h1>" in fragment
    assert "<title>" not in fragment  # head stripped


def test_non_xml_content_passes_through_raw(network, remote):
    portlet = WebPagePortlet("p", "http://remote.host/plain", network)
    assert portlet.render("/portal") == "not <xml"
    assert portlet.document is None


def test_unreachable_host_renders_error_box(network, remote):
    portlet = WebPagePortlet("p", "http://gone.host/", network)
    fragment = portlet.render("/portal")
    assert "portlet-error" in fragment


def test_http_error_rendered(network, remote):
    portlet = WebPagePortlet("p", "http://remote.host/missing", network)
    fragment = portlet.render("/portal")
    assert "HTTP 404" in fragment
