from repro.durability.journal import Journal
from repro.srb.server import SrbServer
from repro.srb.storage import StorageResource

ALICE = "/O=G/CN=alice"
BOB = "/O=G/CN=bob"
HOST = "srb.sdsc.edu"


def _server(network, ca, journal=None):
    server = SrbServer(ca, network.clock, journal=journal)
    server.add_resource(StorageResource("disk", capacity_bytes=10_000), default=True)
    server.add_resource(StorageResource("tape", capacity_bytes=10_000))
    return server


def _session(ca, server, identity=ALICE):
    cred = ca.issue_credential(identity, lifetime=10**6, now=0.0)
    return server.connect(cred.sign_proxy(lifetime=10**5, now=0.0))


def test_replay_rebuilds_catalogue_and_blobs(network, ca):
    journal = Journal(network.disk(HOST), "srb", clock=network.clock)
    server = _server(network, ca, journal=journal)
    server.register_user(ALICE, "alice")
    server.register_user(BOB, "bob")
    session = _session(ca, server)
    server.mkdir(session, "/home/alice/results")
    server.put(session, "/home/alice/results/out.dat", b"payload-1")
    server.put(session, "/home/alice/results/tmp.dat", b"scratch")
    server.chmod(session, "/home/alice/results", "bob", "r")
    server.rm(session, "/home/alice/results/tmp.dat")
    # overwrite journals an rm + a fresh put (and resets metadata/replicas)
    server.put(session, "/home/alice/results/out.dat", b"payload-2")
    server.replicate(session, "/home/alice/results/out.dat", "tape")
    server.set_metadata(
        session, "/home/alice/results/out.dat", {"run": "42"}
    )

    # crash: fresh server + fresh (empty) storage over the surviving journal
    rebuilt = _server(network, ca)
    applied = rebuilt.replay(Journal(network.disk(HOST), "srb"))
    assert applied > 0
    assert rebuilt.snapshot() == server.snapshot()

    session2 = _session(ca, rebuilt)
    assert rebuilt.get(session2, "/home/alice/results/out.dat") == b"payload-2"
    obj = rebuilt.mcat.data_object("/home/alice/results/out.dat")
    assert obj.metadata == {"run": "42"}
    assert not rebuilt.mcat.exists("/home/alice/results/tmp.dat")
    # ACL grants replayed too: bob can read alice's results collection
    bob = _session(ca, rebuilt, BOB)
    assert rebuilt.ls(bob, "/home/alice/results")


def test_replicas_survive_replay(network, ca):
    journal = Journal(network.disk(HOST), "srb", clock=network.clock)
    server = _server(network, ca, journal=journal)
    server.register_user(ALICE, "alice")
    session = _session(ca, server)
    server.put(session, "/home/alice/data", b"abc")
    server.replicate(session, "/home/alice/data", "tape")

    rebuilt = _server(network, ca)
    rebuilt.replay(Journal(network.disk(HOST), "srb"))
    obj = rebuilt.mcat.data_object("/home/alice/data")
    assert sorted(res for res, _ in obj.replicas) == ["disk", "tape"]
    # losing the primary replica still leaves the data readable
    primary = next(bid for res, bid in obj.replicas if res == "disk")
    rebuilt.resources["disk"].delete(primary)
    session2 = _session(ca, rebuilt)
    assert rebuilt.get(session2, "/home/alice/data") == b"abc"


def test_rmdir_force_replays_cleanly(network, ca):
    journal = Journal(network.disk(HOST), "srb", clock=network.clock)
    server = _server(network, ca, journal=journal)
    server.register_user(ALICE, "alice")
    session = _session(ca, server)
    server.mkdir(session, "/home/alice/tree/deep")
    server.put(session, "/home/alice/tree/a.dat", b"a")
    server.put(session, "/home/alice/tree/deep/b.dat", b"b")
    server.rmdir(session, "/home/alice/tree", force=True)

    rebuilt = _server(network, ca)
    rebuilt.replay(Journal(network.disk(HOST), "srb"))
    assert rebuilt.snapshot() == server.snapshot()
    assert not rebuilt.mcat.exists("/home/alice/tree")
