from repro.durability.idempotency import (
    IdempotencyIndex,
    idempotency_header,
    key_from_headers,
)
from repro.durability.journal import Journal
from repro.grid.gram import GramClient, rsl_for
from repro.grid.jobs import JobSpec
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer


def test_header_roundtrip():
    entry = idempotency_header("portal:42")
    assert key_from_headers([entry]) == "portal:42"
    assert key_from_headers([]) == ""


def test_index_first_writer_wins(network):
    journal = Journal(network.disk("h"), "idem")
    index = IdempotencyIndex(journal)
    assert index.get("k1") is None
    index.put("k1", "first")
    index.put("k1", "second")  # ignored
    assert index.get("k1") == "first"
    assert index.duplicates_served == 1
    # a fresh index over the same journal remembers across a "restart"
    rebuilt = IdempotencyIndex(Journal(network.disk("h"), "idem"))
    assert rebuilt.get("k1") == "first"
    assert "k1" in rebuilt and len(rebuilt) == 1


def test_empty_keys_are_never_recorded(network):
    index = IdempotencyIndex(Journal(network.disk("h"), "idem"))
    index.put("", "whatever")
    assert len(index) == 0 and index.get("") is None


class _Counter:
    def __init__(self):
        self.runs = 0

    def bump(self, label: str) -> str:
        self.runs += 1
        return f"{label}:{self.runs}"


def test_soap_replay_cache_survives_service_restart(network):
    host = "svc.example.org"
    impl = _Counter()

    def deploy():
        service = SoapService("Counter", "urn:test:counter")
        service.expose(impl.bump)
        service.enable_replay(Journal(network.disk(host), "soap-replay"))
        return service, service.mount(HttpServer(host, network), "/counter")

    service, url = deploy()
    client = SoapClient(network, url, "urn:test:counter", source="c")
    first = client.call("bump", "a", idempotency_key="req-1")
    again = client.call("bump", "a", idempotency_key="req-1")
    assert first == again and impl.runs == 1
    assert service.replays_served == 1
    # an un-keyed call is never cached
    assert client.call("bump", "a") != first
    # restart: a fresh service over the same disk still replays req-1
    service2, url2 = deploy()
    client2 = SoapClient(network, url2, "urn:test:counter", source="c")
    assert client2.call("bump", "a", idempotency_key="req-1") == first
    assert service2.replays_served == 1


def test_gatekeeper_deduplicates_keyed_submissions(network, durable_stack):
    testbed, _impl, _url, proxy = durable_stack
    contact = "modi4.iu.edu"
    gram = GramClient(network, proxy, source="portal")
    rsl = rsl_for(JobSpec(name="j", executable="echo", arguments=["hi"]))
    job_id = gram.submit(contact, rsl, "portal:batch-1:0")
    repeat = gram.submit(contact, rsl, "portal:batch-1:0")
    assert repeat == job_id
    scheduler = testbed[contact].scheduler
    assert len(scheduler.jobs()) == 1
    assert testbed[contact].gatekeeper.idempotency.duplicates_served == 1
    # the key -> job mapping is journaled on the resource host's disk
    keys = Journal(network.disk(contact), "gatekeeper").by_kind("idem")
    assert [r.data["key"] for r in keys] == ["portal:batch-1:0"]


def test_unkeyed_submissions_are_not_deduplicated(network, durable_stack):
    testbed, _impl, _url, proxy = durable_stack
    contact = "modi4.iu.edu"
    gram = GramClient(network, proxy, source="portal")
    rsl = rsl_for(JobSpec(name="j", executable="echo"))
    first = gram.submit(contact, rsl)
    second = gram.submit(contact, rsl)
    assert first != second
    assert len(testbed[contact].scheduler.jobs()) == 2
