"""The end-to-end crash-restart scenario (the PR's acceptance test).

A fixed-seed run: the Globusrun host dies mid-``run_xml`` after exactly one
job has completed, the host is brought back, the service is re-deployed over
its surviving disk, and the reconciler drives the orphaned batch to a
terminal state.  The journals then prove that no accepted job was lost and
no job ran twice.
"""

import pytest

from repro.durability.journal import Journal
from repro.durability.reconciler import (
    ORPHAN,
    RECONCILED,
    RECOVERED,
    deploy_reconciler,
    record_recovery,
)
from repro.grid.jobs import JobSpec
from repro.grid.resources import build_testbed
from repro.resilience.chaos import RESTART, ChaosConfig, ChaosMonkey
from repro.resilience.events import ResilienceLog
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    deploy_globusrun,
    jobs_to_xml,
)
from repro.services.monitoring import deploy_monitoring
from repro.soap.client import SoapClient
from repro.transport.network import TransportError, VirtualNetwork
from repro.xmlutil.element import parse_xml

from tests.durability.conftest import IDENTITY

GLOBUSRUN_HOST = "globusrun.sdsc.edu"

JOBS = [
    ("modi4.iu.edu", "alpha"),
    ("blue.sdsc.edu", "beta"),
    ("modi4.iu.edu", "gamma"),
]


def _jobs_xml():
    return jobs_to_xml(
        [(host, JobSpec(name=name, executable="echo", arguments=[name]))
         for host, name in JOBS]
    )


def _run_scenario(seed: int):
    """One full deterministic crash-restart run; returns its observables."""
    network = VirtualNetwork(seed=seed)
    from repro.security.gsi import SimpleCA

    ca = SimpleCA()
    log = ResilienceLog()
    testbed = build_testbed(network, ca, durable=True)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=network.clock.now)
    proxy = cred.sign_proxy(lifetime=10**5, now=network.clock.now)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    impl, url = deploy_globusrun(network, testbed, proxy, durable=True)
    client = SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="portal")

    # the process dies after the first job of the batch completes
    impl.crash_after_jobs = 1
    with pytest.raises(TransportError):
        client.call("run_xml", _jobs_xml(), idempotency_key="workflow-001")

    # the crash took the host with it; later the operator restarts it
    network.take_down(GLOBUSRUN_HOST)
    network.clock.advance(30.0)
    network.bring_up(GLOBUSRUN_HOST)
    impl2, url2 = deploy_globusrun(network, testbed, proxy, durable=True)
    record_recovery(log, "globusrun", GLOBUSRUN_HOST, len(impl2.snapshot()["accepted"]))

    reconciler, _rec_url = deploy_reconciler(network, resilience_log=log)
    reconciler.watch(GLOBUSRUN_HOST, "globusrun", url2, GLOBUSRUN_NAMESPACE)
    orphans = reconciler.scan()
    outcome = reconciler.reconcile()

    monitoring, _mon_url = deploy_monitoring(
        network, testbed, resilience_log=log
    )
    return {
        "network": network,
        "testbed": testbed,
        "impl2": impl2,
        "client2": SoapClient(network, url2, GLOBUSRUN_NAMESPACE, source="portal"),
        "log": log,
        "monitoring": monitoring,
        "orphans": orphans,
        "outcome": outcome,
    }


def test_no_job_lost_and_none_run_twice():
    run = _run_scenario(seed=0)
    network, testbed = run["network"], run["testbed"]

    # the orphan was found and re-driven to a terminal state
    assert [o["batch"] for o in run["orphans"]] == ["batch-000001"]
    assert run["outcome"][0]["status"] == "reconciled"

    # a client retrying the original submission gets the completed results:
    # the idempotency key maps to the originally accepted batch
    results = run["client2"].call(
        "run_xml", _jobs_xml(), idempotency_key="workflow-001"
    )
    rows = parse_xml(results).findall("result")
    assert [r.get("name") for r in rows] == ["alpha", "beta", "gamma"]
    assert all(r.get("status") == "ok" for r in rows)

    # no accepted job was lost: every job reached a scheduler and finished
    submits = {}
    for host in ("modi4.iu.edu", "blue.sdsc.edu"):
        journal = Journal(network.disk(host), "scheduler")
        journal.verify()
        submits[host] = journal.by_kind("job-submit")
        finishes = {r.data["job"] for r in journal.by_kind("job-finish")}
        assert {r.data["job"] for r in submits[host]} <= finishes
    # ... and no job ran twice: 3 accepted jobs -> exactly 3 submissions
    # grid-wide, even though the first job was attempted both before the
    # crash and during reconciliation (the gatekeeper deduplicated it)
    assert len(submits["modi4.iu.edu"]) + len(submits["blue.sdsc.edu"]) == 3
    assert testbed["modi4.iu.edu"].gatekeeper.idempotency.duplicates_served >= 1

    # the recovery is visible through monitoring
    summary = {
        row["code"]: row["count"]
        for row in run["monitoring"].recovery_summary()
    }
    assert summary[ORPHAN] == 1
    assert summary[RECONCILED] == 1
    assert summary[RECOVERED] == 1


def test_scenario_is_deterministic():
    first = _run_scenario(seed=0)
    second = _run_scenario(seed=0)
    assert first["orphans"] == second["orphans"]
    assert first["outcome"] == second["outcome"]
    codes_a = [e.code for e in first["log"].events]
    codes_b = [e.code for e in second["log"].events]
    assert codes_a == codes_b
    dump_a = Journal(first["network"].disk(GLOBUSRUN_HOST), "globusrun").dump()
    dump_b = Journal(second["network"].disk(GLOBUSRUN_HOST), "globusrun").dump()
    assert dump_a == dump_b


def test_chaos_monkey_restarts_via_rebuilder(network, ca):
    """A repair with a registered rebuilder re-deploys from the journal."""
    testbed = build_testbed(network, ca, durable=True)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=network.clock.now)
    proxy = cred.sign_proxy(lifetime=10**5, now=network.clock.now)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    deployed = {}

    def rebuild():
        deployed["impl"], deployed["url"] = deploy_globusrun(
            network, testbed, proxy, durable=True
        )

    rebuild()
    log = ResilienceLog()
    monkey = ChaosMonkey(
        network,
        [GLOBUSRUN_HOST],
        seed=7,
        config=ChaosConfig(p_take_down=1.0, down_duration=(1.0, 2.0)),
        log=log,
        rebuilders={GLOBUSRUN_HOST: rebuild},
    )
    monkey.step()  # takes the host down
    assert GLOBUSRUN_HOST in monkey._down
    network.clock.advance(5.0)
    monkey.config = ChaosConfig(p_take_down=0.0, p_fault_burst=0.0,
                                p_latency_spike=0.0, p_flap=0.0)
    monkey.step()  # repair fires the rebuilder
    assert monkey.restarts_performed == 1
    assert RESTART in [e.code for e in log.events]
    client = SoapClient(
        network, deployed["url"], GLOBUSRUN_NAMESPACE, source="ui"
    )
    assert client.call("list_contacts") == sorted(testbed)
