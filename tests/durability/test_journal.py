import pytest

from repro.durability.journal import (
    GENESIS_CRC,
    Journal,
    JournalCorruptError,
    JournalRecord,
)
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork


def _journal(network, host="svc.example.org", name="log"):
    return Journal(network.disk(host), name, clock=network.clock)


def test_append_builds_a_checksum_chain(network):
    journal = _journal(network)
    first = journal.append("open", user="alice")
    network.clock.advance(1.5)
    second = journal.append("write", path="/a", size=3)
    assert first.seq == 1 and second.seq == 2
    assert second.t == pytest.approx(1.5)
    assert first.crc != GENESIS_CRC and second.crc != first.crc
    journal.verify()
    assert [r.kind for r in journal] == ["open", "write"]
    assert len(journal.by_kind("write")) == 1


def test_two_handles_share_one_log(network):
    a = _journal(network)
    b = _journal(network)
    a.append("x")
    assert len(b) == 1
    assert b.last().kind == "x"


def test_disk_survives_take_down(network):
    journal = _journal(network)
    journal.append("accept", batch="b1")
    network.take_down("svc.example.org")
    network.bring_up("svc.example.org")
    # a "restarted" process opens a new handle over the same disk
    reopened = _journal(network)
    assert [r.kind for r in reopened] == ["accept"]
    reopened.verify()


def test_tampering_is_detected(network):
    journal = _journal(network)
    journal.append("a", n=1)
    journal.append("b", n=2)
    log = network.disk("svc.example.org").log("log")
    honest = log[0]
    log[0] = JournalRecord(
        seq=honest.seq, kind=honest.kind, data={"n": 999},
        t=honest.t, crc=honest.crc,
    )
    with pytest.raises(JournalCorruptError):
        journal.verify()
    log[0] = honest  # undo, so the CI export hook ships a valid chain
    journal.verify()


def test_reordering_is_detected(network):
    journal = _journal(network)
    journal.append("a")
    journal.append("b")
    log = network.disk("svc.example.org").log("log")
    log[0], log[1] = log[1], log[0]
    with pytest.raises(JournalCorruptError):
        journal.verify()
    log[0], log[1] = log[1], log[0]  # undo for the CI export hook
    journal.verify()


def test_dump_and_load_roundtrip(network):
    journal = _journal(network)
    journal.append("a", x="1")
    journal.append("b", y=[1, 2])
    records = Journal.load_records(journal.dump())
    assert [r.kind for r in records] == ["a", "b"]
    assert records[1].data == {"y": [1, 2]}


def test_load_detects_truncation_from_the_middle(network):
    journal = _journal(network)
    for kind in ("a", "b", "c"):
        journal.append(kind)
    lines = journal.dump().splitlines()
    del lines[1]
    with pytest.raises(JournalCorruptError):
        Journal.load_records("\n".join(lines))


def test_journal_without_clock_stamps_zero():
    network = VirtualNetwork(SimClock())
    journal = Journal(network.disk("h"), "log")
    assert journal.append("k").t == 0.0
