from repro.durability.journal import Journal
from repro.durability.recovery import Recoverable, recover
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler


def _scheduler(network, host="modi4.iu.edu"):
    journal = Journal(network.disk(host), "scheduler", clock=network.clock)
    return BatchScheduler(
        host, make_dialect("PBS"), clock=network.clock, cpus=8, journal=journal
    ), journal


def _spec(name, seconds=1.0):
    return JobSpec(name=name, executable="sleep", arguments=[str(seconds)])


def test_scheduler_satisfies_recoverable_protocol(network):
    scheduler, _ = _scheduler(network)
    assert isinstance(scheduler, Recoverable)


def test_replay_restores_finished_and_requeues_unfinished(network):
    scheduler, journal = _scheduler(network)
    done = scheduler.submit(_spec("done"))
    scheduler.wait_for(done)
    pending = scheduler.submit(_spec("pending", 5.0))
    cancelled = scheduler.submit(_spec("cancelled", 5.0))
    scheduler.cancel(cancelled)
    before = scheduler.snapshot()

    # crash: process state gone, disk survives; replay via recover()
    restarted = BatchScheduler(
        "modi4.iu.edu", make_dialect("PBS"), clock=network.clock, cpus=8
    )
    applied = recover(
        restarted, Journal(network.disk("modi4.iu.edu"), "scheduler")
    )
    assert applied >= 4

    after = restarted.snapshot()
    # the finished job is terminal with its recorded output, never re-run
    assert after["jobs"][done] == before["jobs"][done]
    assert restarted.completed_count == 1
    assert after["jobs"][cancelled]["state"] == "cancelled"
    # the unfinished job was re-queued under its original id and completes
    record = restarted.wait_for(pending)
    assert record.state.value == "done"
    # fresh ids continue past the replayed ones — no id reuse
    fresh = restarted.submit(_spec("fresh"))
    assert int(fresh.split(".", 1)[0]) > int(pending.split(".", 1)[0])


def test_requeued_job_journals_a_fresh_start(network):
    scheduler, _ = _scheduler(network)
    job = scheduler.submit(_spec("j", 5.0))
    restarted = BatchScheduler(
        "modi4.iu.edu", make_dialect("PBS"), clock=network.clock, cpus=8
    )
    journal = Journal(network.disk("modi4.iu.edu"), "scheduler")
    restarted.replay(journal)
    restarted.wait_for(job)
    # exactly one submit record, but start/finish from the second incarnation
    assert len(journal.by_kind("job-submit")) == 1
    assert len(journal.by_kind("job-finish")) == 1
    journal.verify()


def test_replay_twice_is_equivalent(network):
    scheduler, _ = _scheduler(network)
    job = scheduler.submit(_spec("j"))
    scheduler.wait_for(job)
    disk = network.disk("modi4.iu.edu")
    snapshots = []
    for _ in range(2):
        fresh = BatchScheduler(
            "modi4.iu.edu", make_dialect("PBS"), clock=network.clock, cpus=8
        )
        fresh.replay(Journal(disk, "scheduler"))
        snapshots.append(fresh.snapshot())
    assert snapshots[0] == snapshots[1]
