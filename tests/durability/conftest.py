"""Durability fixtures, including the CI journal-export hook.

When ``REPRO_JOURNAL_DIR`` is set (the tier-2 recovery CI job does this),
every journal a test produced is exported as one ``.jsonl`` file so
``python -m repro.durability.check`` can re-verify the checksum chains and
lifecycle invariants offline.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.durability.journal import created_journals
from repro.grid.resources import build_testbed
from repro.services.jobsubmit import deploy_globusrun

IDENTITY = "/O=G/CN=portal"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


@pytest.fixture(autouse=True)
def export_journals(request):
    """Export every journal this test created (only with REPRO_JOURNAL_DIR)."""
    before = len(created_journals())
    yield
    out_dir = os.environ.get("REPRO_JOURNAL_DIR")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    seen: set[tuple[str, str]] = set()
    for journal in created_journals()[before:]:
        ident = (journal.disk.host, journal.name)
        # several handles over one log dump identically; export once
        if ident in seen or not len(journal):
            continue
        seen.add(ident)
        name = _slug(f"{request.node.name}-{journal.disk.host}-{journal.name}")
        path = os.path.join(out_dir, f"{name}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(journal.dump() + "\n")


@pytest.fixture
def durable_stack(network, ca):
    """A durable testbed plus a durable Globusrun deployment.

    Returns (testbed, globusrun impl, endpoint URL, portal proxy).
    """
    testbed = build_testbed(network, ca, durable=True)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=network.clock.now)
    proxy = cred.sign_proxy(lifetime=10**5, now=network.clock.now)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    impl, url = deploy_globusrun(network, testbed, proxy, durable=True)
    return testbed, impl, url, proxy
