import pytest

from repro.durability.journal import Journal
from repro.faults import ContextError
from repro.services.context import (
    CONTEXT_NAMESPACE,
    ContextStore,
    deploy_context_manager,
)
from repro.soap.client import SoapClient

HOST = "gateway.iu.edu"


def _mutate(store: ContextStore) -> str:
    store.create("alice/cfd/run1")
    store.set_property("alice", "email", "alice@iu.edu")
    store.set_property("alice/cfd/run1", "solver", "mm5")
    store.set_descriptor("alice/cfd/run1", "<d>first run</d>")
    key = store.archive("alice/cfd/run1")
    store.set_property("alice/cfd/run1", "solver", "mm5-v2")
    store.restore(key, "alice/cfd/restored")
    store.create("alice/cfd/scratch")
    store.remove("alice/cfd/scratch")
    store.rename("alice/cfd/run1", "run1-final")
    store.remove_property("alice", "email")
    return key


def test_replay_rebuilds_the_exact_tree(network):
    journal = Journal(network.disk(HOST), "context", clock=network.clock)
    store = ContextStore(network.clock, journal=journal)
    key = _mutate(store)

    rebuilt = ContextStore(network.clock)
    applied = rebuilt.replay(Journal(network.disk(HOST), "context"))
    assert applied > 0
    assert rebuilt.snapshot() == store.snapshot()
    # the restored session kept the pre-archive property value
    assert rebuilt.node("alice/cfd/restored").properties["solver"] == "mm5"
    assert rebuilt.node("alice/cfd/run1-final").properties["solver"] == "mm5-v2"
    assert key in rebuilt.archives


def test_replay_restores_placeholder_counter(network):
    from repro.services.context import ContextManagerService

    journal = Journal(network.disk(HOST), "context", clock=network.clock)
    service = ContextManagerService(ContextStore(network.clock, journal=journal))
    first = service.createPlaceholderContext()

    rebuilt = ContextStore(network.clock)
    rebuilt.replay(Journal(network.disk(HOST), "context"))
    second = ContextManagerService(rebuilt).createPlaceholderContext()
    assert first != second  # no id reuse after the restart


def test_durable_deployment_survives_crash_restart(network):
    impl, url = deploy_context_manager(network, durable=True)
    client = SoapClient(network, url, CONTEXT_NAMESPACE, source="ui")
    client.call("createUserContext", "alice")
    client.call("createProblemContext", "alice", "cfd")
    client.call("createSessionContext", "alice", "cfd", "run1")
    client.call("setSessionProperty", "alice", "cfd", "run1", "solver", "mm5")
    archive_key = client.call("archiveSession", "alice", "cfd", "run1")
    before = impl.store.snapshot()

    network.take_down(HOST)
    network.bring_up(HOST)
    impl2, url2 = deploy_context_manager(network, durable=True)
    assert impl2.store.snapshot() == before
    client2 = SoapClient(network, url2, CONTEXT_NAMESPACE, source="ui")
    assert client2.call("hasSessionContext", "alice", "cfd", "run1") is True
    assert client2.call(
        "getSessionProperty", "alice", "cfd", "run1", "solver"
    ) == "mm5"
    assert client2.call("restoreSession", archive_key, "alice", "cfd", "run2")
    assert client2.call("listSessionContexts", "alice", "cfd") == ["run1", "run2"]


def test_removed_archive_stays_removed_after_replay(network):
    journal = Journal(network.disk(HOST), "context", clock=network.clock)
    store = ContextStore(network.clock, journal=journal)
    store.create("alice/cfd/run1")
    key = store.archive("alice/cfd/run1")
    store.remove_archive(key)
    with pytest.raises(ContextError):
        store.remove_archive(key)

    rebuilt = ContextStore(network.clock)
    rebuilt.replay(Journal(network.disk(HOST), "context"))
    assert rebuilt.archives == {}
