"""Property: journal recovery is idempotent.

Whatever sequence of accepts and resolves a prior incarnation journaled,
recovering from that journal is a pure function of the records:

- recovering twice leaves exactly the state of recovering once;
- crashing *mid-recovery* (a prefix of the records applied, then the
  process dies) and recovering again from the full journal also equals
  recovering once.

This is what makes restart loops safe: a supervisor can bounce a crashing
service any number of times without replay amplifying or losing state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.journal import Journal, verify_chain
from repro.security.gsi import SimpleCA
from repro.services.jobsubmit import GlobusrunService
from repro.transport.network import VirtualNetwork

# one delegated credential for every incarnation (recovery never uses it,
# but the GRAM client encodes the chain eagerly at construction)
_PROXY = SimpleCA().issue_credential(
    "/O=G/CN=portal", lifetime=10**6, now=0.0
).sign_proxy(lifetime=10**5, now=0.0)

# a prior incarnation's lifetime: accept new batches, resolve existing ones
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["accept", "resolve"]), st.integers(0, 9)),
    min_size=1,
    max_size=24,
)


def _write_history(journal: Journal, ops) -> None:
    """Journal a plausible accept/resolve history (what a live service
    following the write-ahead discipline would have produced)."""
    accepted: list[str] = []
    resolved: set = set()
    for kind, pick in ops:
        if kind == "accept":
            batch = f"batch-{len(accepted) + 1:06d}"
            journal.append(
                "batch-accept",
                batch=batch,
                xml=f"<jobs><job name='{batch}'/></jobs>",
                key=f"key-{batch}" if pick % 2 else "",
            )
            accepted.append(batch)
        elif accepted:
            batch = accepted[pick % len(accepted)]
            if batch not in resolved:
                journal.append(
                    "batch-resolve", batch=batch, results="<results/>"
                )
                resolved.add(batch)


def _recover(network: VirtualNetwork, journal: Journal) -> GlobusrunService:
    """A fresh incarnation attaching to the surviving journal."""
    return GlobusrunService(network, {}, _PROXY, journal=journal)


@given(ops=ops_strategy)
@settings(max_examples=50, deadline=None)
def test_recovering_twice_equals_recovering_once(ops):
    network = VirtualNetwork()
    disk = network.disk("globusrun.sdsc.edu")
    _write_history(Journal(disk, "globusrun", clock=network.clock), ops)

    once = _recover(network, Journal(disk, "globusrun"))
    baseline = once.snapshot()

    again = _recover(network, Journal(disk, "globusrun"))
    again.replay(Journal(disk, "globusrun"))  # a second full recovery
    assert again.snapshot() == baseline
    # batch-id allocation also recovers identically: both incarnations
    # would hand out the same next id
    assert next(again._batch_ids) == next(once._batch_ids)


@given(ops=ops_strategy, cut=st.integers(0, 23))
@settings(max_examples=50, deadline=None)
def test_crash_mid_recovery_then_recovery_equals_recovering_once(ops, cut):
    network = VirtualNetwork()
    disk = network.disk("globusrun.sdsc.edu")
    _write_history(Journal(disk, "globusrun", clock=network.clock), ops)
    records = list(Journal(disk, "globusrun").records())

    baseline = _recover(network, Journal(disk, "globusrun")).snapshot()

    # the crash: recovery applied only a prefix of the journal, then the
    # process died.  Recovery never writes, so the disk is untouched —
    # model the half-recovered incarnation, then recover it for real.
    prefix_disk = network.disk("staging.sdsc.edu")
    prefix_disk.log("globusrun").extend(records[:cut % (len(records) + 1)])
    survivor = _recover(network, Journal(prefix_disk, "globusrun"))
    survivor.replay(Journal(disk, "globusrun"))
    assert survivor.snapshot() == baseline


@given(ops=ops_strategy)
@settings(max_examples=50, deadline=None)
def test_history_chain_always_verifies(ops):
    network = VirtualNetwork()
    disk = network.disk("globusrun.sdsc.edu")
    journal = Journal(disk, "globusrun", clock=network.clock)
    _write_history(journal, ops)
    verify_chain(list(journal.records()), name="globusrun")  # must not raise
