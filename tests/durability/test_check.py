import json

from repro.durability.check import check_file, check_records, main
from repro.durability.journal import GENESIS_CRC, JournalRecord, _crc


def _records(*entries):
    """Build a properly chained record list from (kind, data) pairs.

    Chained by hand rather than through a Journal so the deliberately
    invalid lifecycles here never land on a disk the CI export hook would
    ship to the checker.
    """
    records = []
    prev = GENESIS_CRC
    for seq, (kind, data) in enumerate(entries, 1):
        bare = JournalRecord(seq=seq, kind=kind, data=data, t=0.0)
        record = JournalRecord(
            seq=seq, kind=kind, data=data, t=0.0, crc=_crc(bare.payload(prev))
        )
        records.append(record)
        prev = record.crc
    return records


def test_clean_lifecycle_passes():
    records = _records(
        ("batch-accept", {"batch": "b1", "key": "k"}),
        ("job-submit", {"job": "1.h"}),
        ("job-start", {"job": "1.h"}),
        ("job-finish", {"job": "1.h"}),
        ("batch-resolve", {"batch": "b1"}),
        ("idem", {"key": "k", "result": "r"}),
    )
    assert check_records(records, "j") == []


def test_lifecycle_violations_are_reported():
    records = _records(
        ("job-submit", {"job": "1.h"}),
        ("job-submit", {"job": "1.h"}),            # duplicate submit
        ("job-finish", {"job": "1.h"}),
        ("job-finish", {"job": "1.h"}),            # double finish
        ("job-start", {"job": "ghost.h"}),         # start without submit
        ("batch-resolve", {"batch": "b9"}),        # resolve without accept
        ("idem", {"key": "k", "result": "a"}),
        ("idem", {"key": "k", "result": "b"}),     # key -> two results
    )
    problems = check_records(records, "j")
    assert len(problems) == 5
    assert any("submitted twice" in p for p in problems)
    assert any("finished twice" in p for p in problems)
    assert any("without a prior job-submit" in p for p in problems)
    assert any("without a prior accept" in p for p in problems)
    assert any("two results" in p for p in problems)


def test_check_file_detects_chain_corruption(tmp_path):
    records = _records(("a", {}), ("b", {}))
    lines = [json.dumps(r.to_dict(), sort_keys=True) for r in records]
    good = tmp_path / "good.jsonl"
    good.write_text("\n".join(lines) + "\n")
    assert check_file(good) == []
    bad = tmp_path / "bad.jsonl"
    bad.write_text(lines[1] + "\n")  # truncated from the front
    assert check_file(bad)


def test_main_over_a_directory(tmp_path, capsys):
    records = _records(("job-submit", {"job": "1.h"}))
    (tmp_path / "ok.jsonl").write_text(
        "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in records)
    )
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ok   ok.jsonl" in out and "0 violations" in out

    (tmp_path / "bad.jsonl").write_text("{not json")
    assert main([str(tmp_path)]) == 1
    assert main([]) == 2
    assert main([str(tmp_path / "missing-dir")]) == 2
