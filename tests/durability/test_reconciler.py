from repro.durability.journal import Journal
from repro.durability.reconciler import (
    ORPHAN,
    RECONCILE_FAILED,
    RECONCILED,
    deploy_reconciler,
    find_orphans,
)
from repro.grid.jobs import JobSpec
from repro.resilience.events import ResilienceLog
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, jobs_to_xml
from repro.services.monitoring import deploy_monitoring
from repro.soap.client import SoapClient

GLOBUSRUN_HOST = "globusrun.sdsc.edu"


def _xml(*names):
    return jobs_to_xml(
        [("modi4.iu.edu", JobSpec(name=n, executable="echo", arguments=[n]))
         for n in names]
    )


def test_find_orphans_pairs_accepts_with_resolves(network):
    journal = Journal(network.disk("h"), "globusrun")
    journal.append("batch-accept", batch="b1", xml="<jobs/>", key="k1")
    journal.append("batch-accept", batch="b2", xml="<jobs/>", key="")
    journal.append("batch-resolve", batch="b1", results="<results/>")
    orphans = find_orphans(journal)
    assert [o["batch"] for o in orphans] == ["b2"]


def test_scan_and_reconcile_drive_orphans_to_done(network, durable_stack):
    _testbed, impl, url, _proxy = durable_stack
    log = ResilienceLog()
    client = SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="ui")
    batch = client.call("submit_async", _xml("a", "b"))

    reconciler, rec_url = deploy_reconciler(network, resilience_log=log)
    rec_client = SoapClient(
        network, rec_url, "urn:gce:reconciler", source="operator"
    )
    rec_client.call("watch", GLOBUSRUN_HOST, "globusrun", url, GLOBUSRUN_NAMESPACE)
    assert rec_client.call("watched") == [f"{GLOBUSRUN_HOST}:globusrun"]

    rows = rec_client.call("scan")
    assert rows == [{"host": GLOBUSRUN_HOST, "batch": batch, "key": ""}]
    assert reconciler.orphans_found == 1
    # scanning again reports the same orphan but logs it only once
    rec_client.call("scan")
    assert [e.code for e in log.events].count(ORPHAN) == 1

    outcome = rec_client.call("reconcile")
    assert outcome == [
        {"host": GLOBUSRUN_HOST, "batch": batch, "status": "reconciled"}
    ]
    assert impl.jobs_run == 2
    assert rec_client.call("scan") == []  # no orphans left
    codes = [e.code for e in log.events]
    assert RECONCILED in codes and RECONCILE_FAILED not in codes


def test_reconcile_failure_is_reported_not_raised(network, durable_stack):
    _testbed, _impl, url, _proxy = durable_stack
    log = ResilienceLog()
    client = SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="ui")
    batch = client.call("submit_async", _xml("a"))
    reconciler, _ = deploy_reconciler(network, resilience_log=log)
    reconciler.watch(GLOBUSRUN_HOST, "globusrun", url, GLOBUSRUN_NAMESPACE)
    network.take_down(GLOBUSRUN_HOST)  # the owning service is unreachable
    rows = reconciler.reconcile()
    assert rows == [
        {"host": GLOBUSRUN_HOST, "batch": batch, "status": "failed"}
    ]
    assert [e.code for e in log.events].count(RECONCILE_FAILED) == 1
    network.bring_up(GLOBUSRUN_HOST)
    assert reconciler.reconcile()[0]["status"] == "reconciled"


def test_monitoring_reports_durability_events_and_journals(
    network, durable_stack
):
    testbed, _impl, url, _proxy = durable_stack
    log = ResilienceLog()
    client = SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="ui")
    client.call("submit_async", _xml("a"))
    reconciler, _ = deploy_reconciler(network, resilience_log=log)
    reconciler.watch(GLOBUSRUN_HOST, "globusrun", url, GLOBUSRUN_NAMESPACE)
    reconciler.scan()
    reconciler.reconcile()

    monitoring, mon_url = deploy_monitoring(
        network, testbed, resilience_log=log
    )
    mon = SoapClient(network, mon_url, "urn:gce:job-monitoring", source="ui")
    summary = {row["code"]: row["count"] for row in mon.call("recovery_summary")}
    assert summary[ORPHAN] == 1 and summary[RECONCILED] == 1
    journals = mon.call("journals")
    names = {(row["host"], row["journal"]) for row in journals}
    assert (GLOBUSRUN_HOST, "globusrun") in names
    assert (GLOBUSRUN_HOST, "soap-replay") in names
    assert ("modi4.iu.edu", "scheduler") in names
    assert all(row["records"] >= 0 for row in journals)
