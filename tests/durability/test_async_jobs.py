import pytest

from repro.faults import ResourceNotFoundError
from repro.grid.jobs import JobSpec
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    deploy_globusrun,
    jobs_to_xml,
)
from repro.soap.client import SoapClient
from repro.xmlutil.element import parse_xml


def _xml(*names):
    return jobs_to_xml(
        [("modi4.iu.edu", JobSpec(name=n, executable="echo", arguments=[n]))
         for n in names]
    )


def _client(network, url):
    return SoapClient(network, url, GLOBUSRUN_NAMESPACE, source="ui")


def test_submit_poll_result_lifecycle(network, durable_stack):
    _testbed, impl, url, _proxy = durable_stack
    client = _client(network, url)
    batch = client.call("submit_async", _xml("a", "b"))
    assert batch.startswith("batch-")
    assert client.call("poll", batch) == "accepted"
    assert impl.jobs_run == 0  # accepted durably, nothing run yet
    results = client.call("result", batch)
    assert client.call("poll", batch) == "done"
    root = parse_xml(results)
    assert [n.get("status") for n in root.findall("result")] == ["ok", "ok"]
    assert impl.jobs_run == 2


def test_result_is_idempotent(network, durable_stack):
    _testbed, impl, url, _proxy = durable_stack
    client = _client(network, url)
    batch = client.call("submit_async", _xml("a"))
    first = client.call("result", batch)
    again = client.call("result", batch)
    assert first == again
    assert impl.jobs_run == 1  # resolved once, served from record after


def test_unknown_batch_faults(network, durable_stack):
    _testbed, _impl, url, _proxy = durable_stack
    client = _client(network, url)
    with pytest.raises(ResourceNotFoundError):
        client.call("poll", "batch-999999")
    with pytest.raises(ResourceNotFoundError):
        client.call("result", "batch-999999")


def test_accepted_batch_survives_restart(network, durable_stack):
    testbed, _impl, url, proxy = durable_stack
    client = _client(network, url)
    batch = client.call("submit_async", _xml("a", "b"))

    # crash and restart the globusrun host: redeploying durably replays
    network.take_down("globusrun.sdsc.edu")
    network.bring_up("globusrun.sdsc.edu")
    impl2, url2 = deploy_globusrun(network, testbed, proxy, durable=True)
    client2 = _client(network, url2)
    assert client2.call("poll", batch) == "accepted"
    results = client2.call("result", batch)
    assert impl2.batches_redriven == 1
    root = parse_xml(results)
    assert [n.get("status") for n in root.findall("result")] == ["ok", "ok"]


def test_batch_ids_continue_after_restart(network, durable_stack):
    testbed, _impl, url, proxy = durable_stack
    client = _client(network, url)
    first = client.call("submit_async", _xml("a"))
    impl2, url2 = deploy_globusrun(network, testbed, proxy, durable=True)
    second = _client(network, url2).call("submit_async", _xml("b"))
    assert first == "batch-000001" and second == "batch-000002"
    assert impl2.snapshot()["accepted"] == [first, second]
