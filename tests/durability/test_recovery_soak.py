"""Tier-2 soak: a seeded chaos schedule against the durable stack.

The monkey repeatedly kills and restarts the Globusrun host (restarts go
through the journal-replay rebuilder); the workload keeps submitting keyed
batches through a retrying client.  At the end, reconciliation must leave no
orphans, every journal must verify, and the checker must find no lifecycle
violations — at-least-once delivery with exactly-once execution.
"""

import pytest

from repro.durability.check import check_records
from repro.durability.journal import Journal
from repro.durability.reconciler import ReconcilerService
from repro.grid.jobs import JobSpec
from repro.grid.resources import build_testbed
from repro.resilience.chaos import ChaosConfig, ChaosHarness, ChaosMonkey
from repro.resilience.events import ResilienceLog
from repro.resilience.policy import RetryPolicy
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    deploy_globusrun,
    jobs_to_xml,
)
from repro.soap.client import SoapClient
from repro.transport.network import VirtualNetwork

IDENTITY = "/O=G/CN=portal"
GLOBUSRUN_HOST = "globusrun.sdsc.edu"


@pytest.mark.tier2_recovery
@pytest.mark.parametrize("seed", [3, 11])
def test_crash_restart_soak(seed):
    from repro.security.gsi import SimpleCA

    network = VirtualNetwork(seed=seed)
    ca = SimpleCA()
    log = ResilienceLog()
    testbed = build_testbed(network, ca, durable=True)
    cred = ca.issue_credential(IDENTITY, lifetime=10**8, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**7, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")

    state = {}

    def rebuild():
        state["impl"], state["url"] = deploy_globusrun(
            network, testbed, proxy, durable=True
        )

    rebuild()
    monkey = ChaosMonkey(
        network,
        [GLOBUSRUN_HOST],
        seed=seed,
        config=ChaosConfig(p_take_down=0.25, down_duration=(1.0, 5.0)),
        log=log,
        rebuilders={GLOBUSRUN_HOST: rebuild},
    )

    def workload(index: int) -> None:
        xml = jobs_to_xml([
            ("modi4.iu.edu",
             JobSpec(name=f"job-{index}", executable="echo",
                     arguments=[str(index)])),
        ])
        if index % 5 == 4:
            # the process dies mid-batch (after the job, before the
            # resolve record): the client's keyed retry must not rerun it
            state["impl"].crash_after_jobs = 1
        client = SoapClient(
            network, state["url"], GLOBUSRUN_NAMESPACE, source="portal",
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.5),
        )
        client.call("run_xml", xml, idempotency_key=f"soak-{seed}-{index}")

    harness = ChaosHarness(network, monkey)
    report = harness.run(workload, iterations=30)
    assert report.iterations == 30

    # drain whatever the crashes orphaned
    reconciler = ReconcilerService(network, resilience_log=log)
    reconciler.watch(
        GLOBUSRUN_HOST, "globusrun", state["url"], GLOBUSRUN_NAMESPACE
    )
    for row in reconciler.reconcile():
        assert row["status"] == "reconciled"
    assert reconciler.scan() == []

    # every journal verifies and satisfies the lifecycle invariants
    problems = []
    for host in list(testbed) + [GLOBUSRUN_HOST]:
        for name in network.disk(host).log_names():
            journal = Journal(network.disk(host), name)
            journal.verify()
            problems += check_records(list(journal.records()), f"{host}:{name}")
    assert problems == []

    # exactly-once execution: every accepted batch resolved, and the grid
    # ran at most one scheduler job per accepted batch job
    globusrun = Journal(network.disk(GLOBUSRUN_HOST), "globusrun")
    accepted = {r.data["batch"] for r in globusrun.by_kind("batch-accept")}
    resolved = {r.data["batch"] for r in globusrun.by_kind("batch-resolve")}
    assert accepted == resolved
    submits = sum(
        len(Journal(network.disk(host), "scheduler").by_kind("job-submit"))
        for host in testbed
    )
    assert submits == len(accepted)
