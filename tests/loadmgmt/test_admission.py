"""Admission-controller tests: the three gates, retry hints, disabled-mode
accounting, and weight-proportional fair shares under sustained overload."""

import pytest

from repro.faults import ServerBusyError
from repro.loadmgmt import AdmissionController, LaneConfig
from repro.resilience import events
from repro.resilience.events import ResilienceLog
from repro.transport.clock import SimClock


def test_bulkhead_refuses_when_full_and_release_frees_a_slot():
    clock = SimClock()
    controller = AdmissionController(clock, capacity=100.0, max_concurrent=1)
    ticket = controller.admit("alice")
    with pytest.raises(ServerBusyError) as excinfo:
        controller.admit("bob")
    assert excinfo.value.detail["reason"] == "bulkhead"
    assert excinfo.value.retryable
    controller.release(ticket)
    controller.release(ticket)  # idempotent
    assert controller.in_flight == 0
    controller.admit("bob")


def test_queue_gate_sheds_beyond_max_wait_with_a_retry_hint():
    clock = SimClock()
    # capacity 1/s -> each admitted request charges 1 virtual second
    controller = AdmissionController(clock, capacity=1.0, max_wait=2.0)
    waits = [controller.admit("u").queue_wait for _ in range(3)]
    assert waits == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.0)]
    with pytest.raises(ServerBusyError) as excinfo:
        controller.admit("u")
    err = excinfo.value
    assert err.detail["reason"] == "queue"
    # the computed wait would be 3s, 1s over budget
    assert err.retry_after == pytest.approx(1.0)
    # the refused request's charge was withdrawn: the same arrival retried
    # after the hint is admitted
    clock.advance(1.001)
    controller.admit("u")


def test_retry_hint_is_never_below_one_service_time():
    clock = SimClock()
    controller = AdmissionController(
        clock, capacity=10.0, rate=1.0, burst=1.0, max_wait=50.0
    )
    controller.admit("u")
    with pytest.raises(ServerBusyError) as excinfo:
        controller.admit("u")
    assert excinfo.value.detail["reason"] == "rate"
    assert excinfo.value.retry_after >= 1.0 / 10.0


def test_backlog_drains_at_capacity():
    clock = SimClock()
    controller = AdmissionController(clock, capacity=2.0, max_wait=10.0)
    for _ in range(6):
        controller.admit("u")
    assert controller.backlog_wait() == pytest.approx(3.0)
    clock.advance(1.5)
    assert controller.backlog_wait() == pytest.approx(1.5)
    clock.advance(10.0)
    assert controller.backlog_wait() == pytest.approx(0.0)


def test_disabled_controller_accounts_but_never_sheds():
    clock = SimClock()
    controller = AdmissionController(
        clock, capacity=1.0, max_wait=0.5, max_concurrent=1, enabled=False
    )
    tickets = [controller.admit("u") for _ in range(5)]
    assert controller.shed == 0
    assert controller.arrived == controller.admitted == 5
    # the capacity model still runs: waits grow past max_wait honestly
    assert tickets[-1].queue_wait == pytest.approx(4.0)
    assert controller.in_flight == 5  # bulkhead ignored but tracked


def test_shed_and_queue_wait_events_reach_the_resilience_log():
    clock = SimClock()
    log = ResilienceLog()
    controller = AdmissionController(
        clock, capacity=1.0, max_wait=1.0, service="Echo", log=log
    )
    controller.admit("alice")
    controller.admit("alice")  # waits 1s -> QUEUE_WAIT event
    with pytest.raises(ServerBusyError):
        controller.admit("alice")
    codes = [event.code for event in log.events]
    assert events.QUEUE_WAIT in codes
    assert events.BUSY in codes
    busy = next(e for e in log.events if e.code == events.BUSY)
    assert busy.service == "Echo"
    assert busy.detail["principal"] == "alice"
    assert float(busy.detail["retryAfter"]) > 0


def test_overload_shares_track_lane_weights():
    """Three principals hammering at 9x capacity: admitted counts split by
    weight (3:2:1), and goodput stays pinned at the modelled capacity."""
    clock = SimClock()
    controller = AdmissionController(
        clock,
        capacity=10.0,
        max_wait=2.0,
        lanes={
            "alice": LaneConfig(weight=3.0),
            "bob": LaneConfig(weight=2.0),
            "carol": LaneConfig(weight=1.0),
        },
    )
    duration = 50.0
    step = 1.0 / 30.0  # each principal offers 30/s vs capacity 10/s
    while clock.now < duration:
        for principal in ("alice", "bob", "carol"):
            try:
                controller.release(controller.admit(principal))
            except ServerBusyError:
                pass
        clock.advance(step)
    stats = controller.lane_stats
    total = sum(s.admitted for s in stats.values())
    assert total / duration == pytest.approx(controller.capacity, rel=0.1)
    for principal, weight in (("alice", 3.0), ("bob", 2.0), ("carol", 1.0)):
        share = stats[principal].admitted / total
        assert share == pytest.approx(weight / 6.0, rel=0.15), principal


def test_priority_parameter_classes_an_unknown_lane():
    clock = SimClock()
    controller = AdmissionController(clock, capacity=10.0)
    controller.admit("vip", priority=5)
    assert controller.queue.lanes["vip"].priority == 5
    # an explicit config always wins over the header's hint
    controller2 = AdmissionController(
        clock, capacity=10.0, lanes={"vip": LaneConfig(priority=1)}
    )
    controller2.admit("vip", priority=5)
    assert controller2.queue.lanes["vip"].priority == 1


def test_parameter_validation():
    with pytest.raises(ValueError):
        AdmissionController(SimClock(), capacity=0.0)
    with pytest.raises(ValueError):
        AdmissionController(SimClock(), capacity=1.0, max_wait=0.0)
    with pytest.raises(ValueError):
        AdmissionController(SimClock(), capacity=1.0, max_concurrent=0)


def test_lane_rows_and_summary_shapes():
    clock = SimClock()
    controller = AdmissionController(clock, capacity=5.0, service="Echo")
    controller.admit("alice")
    with_wait = controller.admit("alice")
    rows = controller.lane_rows()
    assert [row["lane"] for row in rows] == ["alice"]
    assert rows[0]["service"] == "Echo"
    assert rows[0]["admitted"] == 2
    assert rows[0]["max_wait"] == pytest.approx(with_wait.queue_wait)
    summary = controller.summary()
    assert summary["arrived"] == 2 and summary["shed"] == 0
    assert summary["enabled"] is True
