"""Weighted-fair-queue unit and property tests.

The three SFQ properties the admission layer relies on, property-tested
over random operation sequences:

- **work conservation** — a non-empty queue always dequeues something;
- **lane FIFO** — one lane's entries leave in arrival order;
- **no starvation** — under a sustained backlog every lane's share of
  dequeues tracks its weight fraction, so no positive-weight lane waits
  forever behind heavier ones.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.loadmgmt import LaneConfig, WeightedFairQueue


def test_lane_config_rejects_nonpositive_weight():
    with pytest.raises(ValueError):
        LaneConfig(weight=0.0)
    with pytest.raises(ValueError):
        WeightedFairQueue(default_weight=-1.0)
    queue = WeightedFairQueue()
    with pytest.raises(ValueError):
        queue.enqueue("a", cost=0.0)


def test_unknown_lane_gets_the_default_weight():
    queue = WeightedFairQueue(default_weight=2.5)
    queue.enqueue("newcomer")
    assert queue.lanes["newcomer"].weight == 2.5
    assert queue.lanes["newcomer"].priority == 0


def test_single_lane_is_fifo():
    queue = WeightedFairQueue()
    entries = [queue.enqueue("a", item=i) for i in range(5)]
    assert [queue.dequeue().item for _ in range(5)] == [0, 1, 2, 3, 4]
    assert queue.dequeue() is None
    assert (queue.enqueued, queue.dequeued) == (5, 5)


def test_weights_split_a_sustained_backlog():
    queue = WeightedFairQueue({
        "heavy": LaneConfig(weight=3.0),
        "light": LaneConfig(weight=1.0),
    })
    for i in range(80):
        queue.enqueue("heavy", item=i)
        queue.enqueue("light", item=i)
    drained = [queue.dequeue().lane for _ in range(40)]
    assert drained.count("heavy") == 30
    assert drained.count("light") == 10


def test_priority_classes_drain_strictly():
    queue = WeightedFairQueue({
        "bulk": LaneConfig(weight=100.0, priority=0),
        "express": LaneConfig(weight=0.1, priority=5),
    })
    for i in range(3):
        queue.enqueue("bulk", item=i)
        queue.enqueue("express", item=i)
    lanes = [queue.dequeue().lane for _ in range(6)]
    assert lanes == ["express"] * 3 + ["bulk"] * 3


def test_remove_only_withdraws_the_lanes_newest_entry():
    queue = WeightedFairQueue()
    first = queue.enqueue("a", item=1)
    second = queue.enqueue("a", item=2)
    assert not queue.remove(first)  # not the newest
    assert queue.remove(second)
    assert not queue.remove(second)  # already gone
    # the withdrawn charge no longer pushes the lane's future work back
    third = queue.enqueue("a", item=3)
    assert third.start_tag == pytest.approx(second.start_tag)
    assert len(queue) == 2


def test_position_counts_entries_leaving_first():
    queue = WeightedFairQueue()
    a = queue.enqueue("a")
    b = queue.enqueue("b")
    c = queue.enqueue("a")
    assert queue.position(a) == 0
    assert queue.position(c) == 2
    assert queue.position(b) in (0, 1)
    assert queue.depths() == {"a": 2, "b": 1}


# -- properties over random operation sequences ---------------------------------

lane_names = st.sampled_from(["a", "b", "c"])
# an op is an enqueue into one lane, or a dequeue (None)
ops = st.lists(st.one_of(lane_names, st.none()), max_size=200)


@given(ops=ops, weights=st.tuples(*([st.floats(0.1, 10.0)] * 3)))
def test_work_conservation_and_lane_fifo(ops, weights):
    """Against a shadow model: whenever any lane holds entries a dequeue
    yields one, and each lane's items leave in their arrival order."""
    queue = WeightedFairQueue({
        name: LaneConfig(weight=w) for name, w in zip("abc", weights)
    })
    shadow = {"a": [], "b": [], "c": []}
    counter = 0
    for op in ops:
        if op is None:
            entry = queue.dequeue()
            if any(shadow.values()):
                assert entry is not None, "non-empty queue refused to dequeue"
                assert shadow[entry.lane][0] == entry.item, "lane not FIFO"
                shadow[entry.lane].pop(0)
            else:
                assert entry is None
        else:
            queue.enqueue(op, item=counter)
            shadow[op].append(counter)
            counter += 1
    # a full drain returns every remaining entry, still lane-FIFO
    while any(shadow.values()):
        entry = queue.dequeue()
        assert entry is not None
        assert shadow[entry.lane].pop(0) == entry.item
    assert queue.dequeue() is None


@given(
    heavy=st.floats(min_value=0.5, max_value=10.0),
    light=st.floats(min_value=0.1, max_value=10.0),
)
def test_no_starvation_under_sustained_backlog(heavy, light):
    """With both lanes continuously backlogged, each lane's share of the
    first N dequeues is its weight fraction to within rounding — the
    light lane is never starved however heavy the other."""
    queue = WeightedFairQueue({
        "heavy": LaneConfig(weight=heavy),
        "light": LaneConfig(weight=light),
    })
    for i in range(400):
        queue.enqueue("heavy", item=i)
        queue.enqueue("light", item=i)
    drains = 200
    got = {"heavy": 0, "light": 0}
    for _ in range(drains):
        got[queue.dequeue().lane] += 1
    for lane, weight in (("heavy", heavy), ("light", light)):
        expected = drains * weight / (heavy + light)
        assert got[lane] >= math.floor(expected) - 2, (
            f"{lane} starved: {got[lane]} of {drains} "
            f"(weight share {expected:.1f})"
        )
