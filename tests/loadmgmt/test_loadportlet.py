"""LoadPortlet rendering: lane occupancy, queue load, placements — and
HTML escaping of client-supplied principal names."""

import pytest

from repro.faults import ServerBusyError
from repro.portal.uiserver import PortalDeployment, UserInterfaceServer
from repro.services.jobsubmit import jobs_to_xml
from repro.grid.jobs import JobSpec
from repro.soap.client import SoapClient
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE


@pytest.fixture(scope="module")
def ui():
    deployment = PortalDeployment.build(observe=True)
    return UserInterfaceServer(deployment)


def test_portlet_renders_all_three_sections(ui):
    # generate some traffic so every section has rows
    shell = ui.make_shell("alice")
    shell.run("submit modi4.iu.edu /bin/hostname")
    ui.client("metascheduler").call(
        "run_xml",
        jobs_to_xml([("", JobSpec(name="placed", executable="echo",
                                  arguments=["x"]))]),
    )
    portlet = ui.add_load_portlet()
    html = portlet.render("/portal")
    assert 'class="load-lanes"' in html
    assert 'class="queue-load"' in html
    assert 'class="placement-targets"' in html
    assert 'class="placement-decisions"' in html
    assert "anonymous" in html  # the shell's un-principaled submit
    assert "modi4.iu.edu" in html


def test_portlet_is_registered_with_the_container(ui):
    portlet = ui.add_load_portlet()
    assert portlet.name in ui.container.available_portlets()


def test_principal_names_are_escaped(ui):
    hostile = "<script>alert(1)</script>"
    client = SoapClient(
        ui.network,
        ui.deployment.endpoints["globusrun"],
        GLOBUSRUN_NAMESPACE,
        source="attacker.org",
        principal=hostile,
    )
    try:
        client.call("run", "modi4.iu.edu", "echo", "hi", 1, "", 600)
    except ServerBusyError:
        pass  # shed or not, the lane was recorded
    html = ui.add_load_portlet().render("/portal")
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_monitoring_views_back_the_portlet(ui):
    monitoring = ui.client("monitoring")
    lanes = monitoring.call("load_lanes")
    assert any(row["service"] == "Globusrun" for row in lanes)
    queues = monitoring.call("queue_load")
    hosts = {row["host"] for row in queues}
    assert hosts == set(ui.deployment.testbed)
    summary = monitoring.call("load_summary")
    assert summary and summary[0]["capacity"] > 0
