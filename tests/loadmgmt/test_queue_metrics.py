"""Backpressure signals: per-queue scheduler stats and the gatekeeper's
gauge publication into the metrics registry."""

import pytest

from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler, QueueDefinition
from repro.grid.resources import build_testbed
from repro.observability import Observability
from repro.transport.clock import SimClock
from repro.transport.network import VirtualNetwork


def _scheduler(clock, cpus=4):
    return BatchScheduler(
        "host.test.org",
        make_dialect("PBS"),
        clock=clock,
        cpus=cpus,
        queues=[
            QueueDefinition("workq", default=True),
            QueueDefinition("express", priority=10, max_wallclock=3600),
        ],
    )


def test_queue_stats_report_depth_running_and_completions():
    clock = SimClock()
    scheduler = _scheduler(clock, cpus=1)
    for i in range(3):
        scheduler.submit(JobSpec(name=f"j{i}", executable="sleep",
                                 arguments=["10"]))
    rows = {row["queue"]: row for row in scheduler.queue_stats()}
    assert set(rows) == {"workq", "express"}
    assert rows["workq"]["running"] == 1
    assert rows["workq"]["depth"] == 2
    assert rows["express"]["depth"] == 0
    clock.advance(35.0)  # all three ran to completion, serially
    rows = {row["queue"]: row for row in scheduler.queue_stats()}
    assert rows["workq"]["completed"] == 3
    assert rows["workq"]["depth"] == 0


def test_drain_rate_is_completions_over_the_trailing_window():
    clock = SimClock()
    scheduler = _scheduler(clock, cpus=4)
    for i in range(4):
        scheduler.submit(JobSpec(name=f"j{i}", executable="sleep",
                                 arguments=["10"]))
    clock.advance(20.0)
    rows = {row["queue"]: row for row in scheduler.queue_stats(window=100.0)}
    assert rows["workq"]["drain_rate"] == pytest.approx(4 / 100.0)
    # completions age out of the window
    clock.advance(200.0)
    rows = {row["queue"]: row for row in scheduler.queue_stats(window=100.0)}
    assert rows["workq"]["drain_rate"] == 0.0
    assert rows["workq"]["completed"] == 4  # lifetime counter keeps them


def test_gatekeeper_publishes_per_queue_gauges():
    from repro.security.gsi import SimpleCA

    network = VirtualNetwork()
    obs = Observability.install(network)
    ca = SimpleCA()
    testbed = build_testbed(network, ca)
    identity = "/O=G/CN=portal"
    cred = ca.issue_credential(identity, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    resource = testbed["modi4.iu.edu"]
    resource.gatekeeper.add_gridmap_entry(identity, "portal")

    rows = resource.gatekeeper.publish_queue_gauges()
    assert rows, "no stat rows returned"
    label = "modi4.iu.edu/workq"
    assert ("queue_depth", label) in obs.metrics.gauges
    assert ("queue_drain_rate", label) in obs.metrics.gauges

    # submission refreshes the gauges
    from repro.grid.gram import rsl_for, serialize_chain

    chain = serialize_chain(proxy)
    rsl = rsl_for(JobSpec(name="j", executable="sleep", arguments=["500"],
                          cpus=128, wallclock_limit=600))
    resource.gatekeeper.submit(chain, rsl, key="first")
    resource.gatekeeper.submit(chain, rsl, key="second")
    assert obs.metrics.gauges[("queue_depth", label)] >= 1


def test_monitoring_metrics_summary_samples_queue_gauges():
    from repro.portal.uiserver import PortalDeployment

    deployment = PortalDeployment.build(observe=True)
    summary = deployment.monitoring.metrics_summary()
    labels = {
        (row["gauge"], row["label"]) for row in summary["gauges"]
    }
    for host in deployment.testbed:
        assert ("queue_depth", host) in labels  # per-host (pre-existing)
        assert ("queue_depth", f"{host}/workq") in labels
        assert ("queue_drain_rate", f"{host}/workq") in labels
