"""Token-bucket unit and property tests.

The properties pinned here are the two the admission layer relies on:
the level never exceeds the burst, and over any run starting from a full
bucket the admitted count never exceeds ``burst + rate * elapsed`` (the
long-run admitted rate is at most the configured rate).
"""

import pytest
from hypothesis import given, strategies as st

from repro.loadmgmt import TokenBucket
from repro.transport.clock import SimClock


def test_starts_full_and_drains():
    bucket = TokenBucket(SimClock(), rate=1.0, burst=3)
    assert bucket.level == pytest.approx(3.0)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.acquired == 3
    assert bucket.rejected == 1


def test_refills_at_the_configured_rate():
    clock = SimClock()
    bucket = TokenBucket(clock, rate=2.0, burst=2)
    assert bucket.try_acquire(2.0)
    assert not bucket.try_acquire()
    assert bucket.time_until() == pytest.approx(0.5)
    clock.advance(0.5)
    assert bucket.try_acquire()


def test_time_until_is_observational():
    clock = SimClock()
    bucket = TokenBucket(clock, rate=1.0, burst=1)
    assert bucket.time_until() == 0.0
    bucket.try_acquire()
    before = bucket.time_until()
    assert bucket.time_until() == pytest.approx(before)  # nothing taken


def test_tokens_beyond_burst_can_never_be_awaited():
    bucket = TokenBucket(SimClock(), rate=1.0, burst=2)
    with pytest.raises(ValueError):
        bucket.time_until(3.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        TokenBucket(SimClock(), rate=0.0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(SimClock(), rate=1.0, burst=0.5)
    bucket = TokenBucket(SimClock(), rate=1.0, burst=1)
    with pytest.raises(ValueError):
        bucket.try_acquire(0.0)


@given(
    rate=st.floats(min_value=0.1, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=50,
    ),
)
def test_level_never_exceeds_burst(rate, burst, steps):
    clock = SimClock()
    bucket = TokenBucket(clock, rate, burst)
    for delta, takes in steps:
        clock.advance(delta)
        assert bucket.level <= burst + 1e-9
        for _ in range(takes):
            bucket.try_acquire()
        assert bucket.level <= burst + 1e-9
        assert bucket.level >= -1e-9


@given(
    rate=st.floats(min_value=0.1, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    gaps=st.lists(st.floats(min_value=0.0, max_value=3.0), max_size=40),
)
def test_long_run_admitted_rate_is_bounded(rate, burst, gaps):
    """Greedy acquisition between arbitrary clock steps never admits more
    than the full bucket plus what the refill rate supplied."""
    clock = SimClock()
    bucket = TokenBucket(clock, rate, burst)
    admitted = 0
    for gap in gaps:
        clock.advance(gap)
        while bucket.try_acquire():
            admitted += 1
    assert admitted <= burst + rate * clock.now + 1e-6
