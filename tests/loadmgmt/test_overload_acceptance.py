"""The overload acceptance criteria, end to end through the SOAP stack.

Three principals with 3:2:1 fair-share weights drive an open-loop arrival
schedule against an admission-controlled service:

- at **5x capacity with admission on**, goodput stays within 10% of the
  1x-capacity goodput and every principal's admitted share is within 15%
  of its weight fraction;
- with **admission off** (the controller accounts but never refuses),
  unbounded modelled queue wait turns every late request into a deadline
  shed and goodput collapses;
- both runs are **deterministic under a fixed seed**.

A longer 5-minute soak of the same harness runs under the ``tier2_load``
marker (dedicated CI job).
"""

from __future__ import annotations

import pytest

from repro.faults import PortalError
from repro.loadmgmt import AdmissionController, LaneConfig
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

ECHO_NAMESPACE = "urn:test:echo"
CAPACITY = 4.0  # modelled requests per virtual second
WEIGHTS = {"alice": 3.0, "bob": 2.0, "carol": 1.0}


def run_overload(
    *,
    multiple: float,
    duration: float,
    seed: int,
    enabled: bool = True,
    timeout: float | None = None,
) -> dict:
    """Offer ``multiple`` x capacity for ``duration`` virtual seconds.

    Arrivals are an open-loop schedule: each principal fires at its own
    fixed inter-arrival interval regardless of outcomes (no closed-loop
    backpressure masking the overload).  Returns goodput, per-principal
    shares, and shed counts.
    """
    network = VirtualNetwork(seed=seed)
    controller = AdmissionController(
        network.clock,
        capacity=CAPACITY,
        max_wait=2.5,
        lanes={name: LaneConfig(weight=w) for name, w in WEIGHTS.items()},
        enabled=enabled,
        service="Echo",
    )
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose(lambda text: text, name="work")
    service.enable_admission(controller)
    url = service.mount(HttpServer("echo.test.org", network), "/echo")

    total_rate = multiple * CAPACITY
    clients, next_at, interval = {}, {}, {}
    for index, name in enumerate(sorted(WEIGHTS)):
        clients[name] = SoapClient(
            network, url, ECHO_NAMESPACE, source=f"{name}.org", principal=name
        )
        interval[name] = len(WEIGHTS) / total_rate
        # stagger the lanes so arrivals interleave deterministically
        next_at[name] = index * interval[name] / len(WEIGHTS)

    started = network.clock.now
    succeeded: dict[str, int] = {name: 0 for name in WEIGHTS}
    shed: dict[str, int] = {name: 0 for name in WEIGHTS}
    while True:
        name = min(next_at, key=lambda n: (next_at[n], n))
        at = next_at[name]
        if at - started >= duration:
            break
        network.clock.sleep_until(at)
        try:
            clients[name].call("work", "payload", timeout=timeout)
            succeeded[name] += 1
        except PortalError:
            shed[name] += 1
        next_at[name] = at + interval[name]

    # the driver is serial, so at extreme multiples the virtual clock can
    # outrun the nominal schedule; goodput divides by real elapsed time
    elapsed = max(network.clock.now - started, duration)
    total_ok = sum(succeeded.values())
    return {
        "goodput": total_ok / elapsed,
        "succeeded": succeeded,
        "shed": shed,
        "shares": {
            name: (succeeded[name] / total_ok if total_ok else 0.0)
            for name in WEIGHTS
        },
        "admitted_total": controller.admitted,
        "shed_total": controller.shed,
    }


def weight_fraction(name: str) -> float:
    return WEIGHTS[name] / sum(WEIGHTS.values())


def test_admission_holds_goodput_and_fair_shares_at_5x():
    baseline = run_overload(multiple=1.0, duration=60.0, seed=42)
    overload = run_overload(multiple=5.0, duration=60.0, seed=42)

    # at 1x nothing is refused and goodput is the offered rate
    assert baseline["shed_total"] == 0
    assert baseline["goodput"] == pytest.approx(CAPACITY, rel=0.05)

    # at 5x: goodput within 10% of the 1x goodput
    assert overload["goodput"] == pytest.approx(
        baseline["goodput"], rel=0.10
    ), f"goodput collapsed under admission control: {overload['goodput']}"

    # fair shares: admitted share within 15% of each weight fraction
    for name in WEIGHTS:
        assert overload["shares"][name] == pytest.approx(
            weight_fraction(name), rel=0.15
        ), f"{name} share {overload['shares'][name]:.3f}"
    # and the overload was real: most offered work was refused
    assert overload["shed_total"] > overload["admitted_total"]


def test_without_admission_goodput_collapses():
    baseline = run_overload(multiple=1.0, duration=60.0, seed=42)
    collapsed = run_overload(
        multiple=5.0, duration=60.0, seed=42, enabled=False, timeout=3.0
    )
    # the unprotected server spends its time queueing work whose callers
    # have given up: deadline sheds dominate and goodput falls away
    assert collapsed["goodput"] < 0.5 * baseline["goodput"], (
        f"expected collapse, got {collapsed['goodput']:.2f}/s "
        f"vs baseline {baseline['goodput']:.2f}/s"
    )
    assert sum(collapsed["shed"].values()) > sum(collapsed["succeeded"].values())


def test_runs_are_deterministic_under_a_fixed_seed():
    first = run_overload(multiple=5.0, duration=30.0, seed=7)
    second = run_overload(multiple=5.0, duration=30.0, seed=7)
    assert first == second
    off1 = run_overload(multiple=5.0, duration=20.0, seed=7, enabled=False,
                        timeout=3.0)
    off2 = run_overload(multiple=5.0, duration=20.0, seed=7, enabled=False,
                        timeout=3.0)
    assert off1 == off2


@pytest.mark.tier2_load
def test_overload_soak_five_minutes():
    """The same criteria over a 300-virtual-second soak at 5x and 8x."""
    baseline = run_overload(multiple=1.0, duration=300.0, seed=11)
    assert baseline["goodput"] == pytest.approx(CAPACITY, rel=0.05)
    for multiple in (5.0, 8.0):
        overload = run_overload(multiple=multiple, duration=300.0, seed=11)
        assert overload["goodput"] == pytest.approx(
            baseline["goodput"], rel=0.10
        ), f"{multiple}x goodput {overload['goodput']:.2f}"
        for name in WEIGHTS:
            assert overload["shares"][name] == pytest.approx(
                weight_fraction(name), rel=0.15
            ), f"{multiple}x {name} share {overload['shares'][name]:.3f}"
    collapsed = run_overload(
        multiple=5.0, duration=300.0, seed=11, enabled=False, timeout=3.0
    )
    assert collapsed["goodput"] < 0.25 * baseline["goodput"]
