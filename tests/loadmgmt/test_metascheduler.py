"""MetaScheduler placement tests: policies, breaker exclusion, explicit
hosts, and the Globusrun composition feeding outcomes back."""

import pytest

from repro.faults import InvalidRequestError, JobError
from repro.grid.jobs import JobSpec
from repro.grid.resources import build_testbed
from repro.loadmgmt.metascheduler import (
    METASCHEDULER_NAMESPACE,
    deploy_metascheduler,
)
from repro.resilience import events
from repro.resilience.breaker import OPEN
from repro.resilience.events import ResilienceLog
from repro.services.jobsubmit import deploy_globusrun, jobs_from_xml, jobs_to_xml
from repro.soap.client import SoapClient

IDENTITY = "/O=G/CN=portal"


@pytest.fixture
def stack(network, ca):
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    log = ResilienceLog()
    _globusrun, globusrun_url = deploy_globusrun(network, testbed, proxy)
    impl, url = deploy_metascheduler(
        network, testbed, [globusrun_url], log=log, seed=7
    )
    return testbed, impl, url, log


def _batch(count, **spec_kwargs):
    spec_kwargs.setdefault("executable", "echo")
    spec_kwargs.setdefault("arguments", ["hi"])
    return jobs_to_xml([
        ("", JobSpec(name=f"job-{i}", **spec_kwargs)) for i in range(count)
    ])


def _client(network, url):
    return SoapClient(network, url, METASCHEDULER_NAMESPACE, source="ui")


def test_place_fills_every_missing_host(network, stack):
    testbed, impl, url, _log = stack
    client = _client(network, url)
    placed = jobs_from_xml(client.call("place", _batch(6)), require_host=False)
    assert len(placed) == 6
    for contact, spec in placed:
        assert contact in testbed
        assert spec.queue in testbed[contact].scheduler.queues
    assert impl.jobs_placed == 6


def test_explicit_hosts_are_honoured(network, stack):
    _testbed, impl, url, _log = stack
    client = _client(network, url)
    batch = jobs_to_xml([
        ("t3e.sdsc.edu", JobSpec(name="pinned", executable="echo")),
        ("", JobSpec(name="floating", executable="echo")),
    ])
    placed = dict(
        (spec.name, contact)
        for contact, spec in jobs_from_xml(
            client.call("place", batch), require_host=False
        )
    )
    assert placed["pinned"] == "t3e.sdsc.edu"
    assert placed["floating"]  # filled in
    assert impl.jobs_placed == 1  # only the floating job was a decision


def test_least_loaded_avoids_the_deep_queue(network, stack):
    testbed, _impl, url, _log = stack
    client = _client(network, url)
    # pile queued work onto one host so its default queue is deepest
    busy = testbed["modi4.iu.edu"].scheduler
    for i in range(40):
        busy.submit(JobSpec(name=f"filler-{i}", executable="sleep",
                            arguments=["500"], cpus=64))
    placed = jobs_from_xml(client.call("place", _batch(8)), require_host=False)
    assert all(contact != "modi4.iu.edu" for contact, _spec in placed)


def test_round_robin_rotates_over_all_contacts(network, stack):
    testbed, _impl, url, _log = stack
    client = _client(network, url)
    client.call("set_policy", "round-robin")
    placed = jobs_from_xml(client.call("place", _batch(8)), require_host=False)
    contacts = [contact for contact, _spec in placed]
    assert contacts[:4] == sorted(testbed)
    assert contacts[4:] == contacts[:4]


def test_latency_weighted_is_deterministic_under_the_seed():
    from repro.security.gsi import SimpleCA
    from repro.transport.network import VirtualNetwork

    def placements(seed):
        net = VirtualNetwork()
        local_ca = SimpleCA()
        testbed = build_testbed(net, local_ca)
        cred = local_ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
        proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
        for resource in testbed.values():
            resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
        _g, g_url = deploy_globusrun(net, testbed, proxy)
        impl, url = deploy_metascheduler(
            net, testbed, [g_url], policy="latency-weighted", seed=seed
        )
        client = _client(net, url)
        placed = jobs_from_xml(client.call("place", _batch(10)),
                               require_host=False)
        return [contact for contact, _spec in placed]

    assert placements(3) == placements(3)


def test_affinity_prefers_configured_hosts_then_hashes(network, ca):
    testbed = build_testbed(network, ca)
    cred = ca.issue_credential(IDENTITY, lifetime=10**6, now=0.0)
    proxy = cred.sign_proxy(lifetime=10**5, now=0.0)
    for resource in testbed.values():
        resource.gatekeeper.add_gridmap_entry(IDENTITY, "portal")
    _g, g_url = deploy_globusrun(network, testbed, proxy)
    impl, url = deploy_metascheduler(
        network, testbed, [g_url], policy="affinity",
        affinities={"g98": ["blue.sdsc.edu"]},
    )
    client = _client(network, url)
    placed = jobs_from_xml(
        client.call("place", jobs_to_xml([
            ("", JobSpec(name="gauss", executable="g98")),
            ("", JobSpec(name="anon1", executable="echo")),
            ("", JobSpec(name="anon2", executable="echo")),
        ])),
        require_host=False,
    )
    by_name = {spec.name: contact for contact, spec in placed}
    assert by_name["gauss"] == "blue.sdsc.edu"
    # hash affinity: the same executable keeps landing on the same host
    assert by_name["anon1"] == by_name["anon2"]


def test_breaker_open_hosts_are_excluded_from_placement(network, stack):
    testbed, impl, url, _log = stack
    client = _client(network, url)
    breaker = impl._breaker("blue.sdsc.edu")
    while breaker.state != OPEN:
        breaker.record_failure()
    targets = {row["contact"]: row for row in client.call("targets")}
    assert targets["blue.sdsc.edu"]["excluded"] is True
    placed = jobs_from_xml(client.call("place", _batch(12)), require_host=False)
    assert all(contact != "blue.sdsc.edu" for contact, _spec in placed)


def test_no_eligible_host_is_a_job_error(network, stack):
    _testbed, _impl, url, _log = stack
    client = _client(network, url)
    with pytest.raises(JobError):
        client.call("place", _batch(1, cpus=100000))


def test_unknown_policy_is_rejected(network, stack):
    _testbed, _impl, url, _log = stack
    client = _client(network, url)
    with pytest.raises(InvalidRequestError):
        client.call("set_policy", "coin-flip")
    assert client.call("policy") == "least-loaded"


def test_run_xml_executes_and_learns(network, stack):
    _testbed, impl, url, log = stack
    client = _client(network, url)
    results = client.call("run_xml", _batch(4))
    assert results.count("<result ") == 4
    # outcomes fed back: latency histograms and healthy breakers
    assert impl._latency, "no per-contact latency recorded"
    placements = client.call("placements", 10)
    assert len(placements) == 4
    assert all(p["policy"] == "least-loaded" for p in placements)
    codes = [event.code for event in log.events]
    assert codes.count(events.PLACEMENT) == 4
