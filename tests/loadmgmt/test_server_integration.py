"""End-to-end admission control through the SOAP stack.

ServerBusy faults must survive the wire with their retryAfter hint, the
client retry loop must honour that hint instead of its blind exponential
backoff, sheds must land in the resilience stream (and on spans when the
observability layer is bridged), and deadline sheds must carry the
modelled queue wait so callers can tell overload from a tight budget.
"""

import pytest

from repro.faults import DeadlineExceededError, ServerBusyError
from repro.loadmgmt import AdmissionController, LaneConfig
from repro.resilience import events
from repro.resilience.events import ResilienceLog
from repro.resilience.policy import RetryPolicy
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

ECHO_NAMESPACE = "urn:test:echo"


def _stack(network=None, *, log=None, **admission_kwargs):
    network = network or VirtualNetwork()
    admission_kwargs.setdefault("capacity", 1.0)
    controller = AdmissionController(network.clock, **admission_kwargs)
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose(lambda text: text.upper(), name="shout")
    service.enable_admission(controller, log)
    url = service.mount(HttpServer("echo.test.org", network), "/echo")
    return network, service, controller, url


def test_server_busy_fault_round_trips_with_its_hint():
    network, _service, _controller, url = _stack(max_wait=1.0)
    client = SoapClient(network, url, ECHO_NAMESPACE, principal="alice")
    assert client.call("shout", "hi") == "HI"
    # saturate the 1/s modelled capacity within one virtual instant
    with pytest.raises(ServerBusyError) as excinfo:
        for _ in range(10):
            client.call("shout", "hi")
    err = excinfo.value
    assert err.retryable
    assert err.retry_after is not None and err.retry_after > 0
    assert err.detail["principal"] == "alice"


def test_client_honours_the_retry_after_hint():
    log = ResilienceLog()
    network, _service, controller, url = _stack(max_wait=0.5, log=log)
    # a policy whose blind backoff (50 ms) is far below the server's hint:
    # only honouring retryAfter lets the retried attempt land
    client = SoapClient(
        network, url, ECHO_NAMESPACE,
        principal="alice",
        retry_policy=RetryPolicy(max_attempts=5, base_delay=0.05, jitter=0.0),
        resilience_log=log,
    )
    for _ in range(5):
        assert client.call("shout", "hi") == "HI"
    assert controller.shed > 0
    assert client.busy_backoffs > 0
    retry = next(
        e for e in log.events
        if e.code == events.RETRY and "retryAfter" in e.detail
    )
    # the backoff actually used IS the server's hint
    assert retry.detail["backoff"] == retry.detail["retryAfter"]
    assert float(retry.detail["retryAfter"]) > 0.05


def test_principals_map_to_fair_queue_lanes():
    network, _service, controller, url = _stack(
        capacity=10.0, max_wait=2.0,
        lanes={"alice": LaneConfig(weight=3.0), "bob": LaneConfig(weight=1.0)},
    )
    alice = SoapClient(network, url, ECHO_NAMESPACE, principal="alice")
    bob = SoapClient(network, url, ECHO_NAMESPACE, principal="bob")
    anon = SoapClient(network, url, ECHO_NAMESPACE)
    for client in (alice, bob, anon):
        try:
            client.call("shout", "x")
        except ServerBusyError:
            pass
    stats = controller.lane_stats
    assert stats["alice"].arrived == 1
    assert stats["bob"].arrived == 1
    assert stats["anonymous"].arrived == 1


def test_busy_events_reach_log_and_spans_when_bridged():
    from repro.observability import Observability

    network = VirtualNetwork()
    obs = Observability.install(network)
    log = ResilienceLog()
    obs.observe_log(log)
    network, _service, _controller, url = _stack(network, max_wait=1.0, log=log)
    client = SoapClient(network, url, ECHO_NAMESPACE, principal="alice")
    with pytest.raises(ServerBusyError):
        for _ in range(10):
            client.call("shout", "hi")
    busy = [e for e in log.events if e.code == events.BUSY]
    assert busy, "no Load.Busy event recorded"
    assert obs.metrics.events.get(events.BUSY, 0) == len(busy)
    annotated = [
        span_event
        for span in obs.collector.spans()
        for span_event in span["events"]
        if span_event["name"] == events.BUSY
    ]
    assert annotated, "shed never landed on a span"


def test_deadline_shed_reports_queue_wait_context():
    """Satellite (b): a caller whose budget would expire while the request
    waits its turn is shed up front, and the fault's detail separates
    'server overloaded' (queueWait) from 'deadline too tight'."""
    network, service, controller, url = _stack(capacity=1.0, max_wait=30.0)
    # build a 10-second modelled backlog *in alice's own lane* — charges
    # queued by other lanes would not delay her under fair queuing
    for _ in range(10):
        controller.release(controller.admit("alice"))
    client = SoapClient(network, url, ECHO_NAMESPACE, principal="alice")
    with pytest.raises(DeadlineExceededError) as excinfo:
        client.call("shout", "hi", timeout=2.0)
    detail = excinfo.value.detail
    assert float(detail["queueWait"]) > 2.0
    assert "remaining" in detail
    assert float(detail["remaining"]) < float(detail["queueWait"])
    assert service.requests_shed == 1


def test_deadline_shed_lands_in_the_resilience_stream():
    log = ResilienceLog()
    network, _service, controller, url = _stack(
        capacity=1.0, max_wait=30.0, log=log
    )
    for _ in range(10):
        controller.release(controller.admit())  # anonymous, like the client
    client = SoapClient(network, url, ECHO_NAMESPACE)
    with pytest.raises(DeadlineExceededError):
        client.call("shout", "hi", timeout=2.0)
    shed = [e for e in log.events if e.code == events.SHED]
    assert len(shed) == 1
    assert shed[0].service == "Echo"
    assert "queueWait" in shed[0].detail


def test_admission_disabled_services_stay_seed_compatible():
    network, service, _controller, url = _stack(
        capacity=1000.0, enabled=False
    )
    client = SoapClient(network, url, ECHO_NAMESPACE)
    for _ in range(20):
        assert client.call("shout", "ok") == "OK"
    assert service.faults_returned == 0
