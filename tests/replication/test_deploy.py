"""The assembled multi-region topology: build, converge, rebuild, report."""

from __future__ import annotations

from repro.replication import MultiRegionReplication, region_host
from repro.resilience.events import STALE_READ, ResilienceLog
from repro.uddi.model import BusinessEntity


def test_build_wires_every_region(network):
    topo = MultiRegionReplication.build(network, ("iu", "sdsc"))
    assert topo.regions == ("iu", "sdsc")
    assert topo.hosts() == ["replica.iu.portal.org", "replica.sdsc.portal.org"]
    assert topo.region_groups() == {
        "iu": (region_host("iu"),), "sdsc": (region_host("sdsc"),),
    }
    assert set(topo.rebuilders()) == set(topo.hosts())
    # every node runs all three services on one host
    node = topo.nodes["iu"]
    assert node.replication_endpoint.startswith("http://replica.iu")
    assert node.discovery_endpoint.startswith("http://replica.iu")
    assert node.context_endpoint.startswith("http://replica.iu")


def test_registry_writes_converge_through_gossip(network):
    topo = MultiRegionReplication.build(network)
    topo.nodes["iu"].registry.register_service(
        "svc/batch/IU", {"os": "AIX"}
    )
    assert not topo.converged()
    topo.run_anti_entropy(2)
    assert topo.converged()
    rows, stale = topo.query_registry("sdsc", {"os": "AIX"})
    assert len(rows) == 1 and not stale


def test_query_marks_stale_when_sync_is_old(network):
    log = ResilienceLog()
    topo = MultiRegionReplication.build(
        network, log=log, staleness_bound=10.0
    )
    topo.nodes["iu"].registry.register_service("svc/a", {"os": "AIX"})
    # never synced: the very first query is already stale
    rows, stale = topo.query_registry("iu", {"os": "AIX"})
    assert stale
    assert any(e.code == STALE_READ for e in log.events)
    topo.run_anti_entropy()
    _, stale = topo.query_registry("iu", {"os": "AIX"})
    assert not stale
    network.clock.advance(11.0)
    _, stale = topo.query_registry("iu", {"os": "AIX"})
    assert stale


def test_rebuild_region_recovers_registry_and_context(network):
    topo = MultiRegionReplication.build(network)
    topo.nodes["iu"].registry.save_business(BusinessEntity("", "IU Gateway"))
    topo.context.create("/users/alice/session")
    topo.run_anti_entropy(2)
    assert topo.converged()
    before = topo.nodes["sdsc"].registry.export_state()
    # sdsc crashes: fresh processes, empty stores, same host
    node = topo.rebuild_region("sdsc")
    assert len(node.store) == 0
    topo.run_anti_entropy(2)
    topo.context.sync_all()
    assert topo.converged()
    assert topo.nodes["sdsc"].registry.export_state() == before
    assert topo.nodes["sdsc"].context.applied == topo.context.seq


def test_replication_rows_report_posture(network):
    topo = MultiRegionReplication.build(network)
    topo.nodes["iu"].registry.register_service("svc/a", {"os": "AIX"})
    topo.context.create("/users/alice")
    topo.run_anti_entropy()
    rows = topo.replication_rows()
    assert [row["region"] for row in rows] == ["iu", "sdsc"]
    for row in rows:
        assert row["entries"] == 1
        assert row["lag_s"] >= 0
        assert row["hint_backlog"] == 0
        assert row["context_seq"] == 1
        assert len(row["digest"]) == 12
    digests = {row["digest"] for row in rows}
    assert len(digests) == 1  # converged ⇒ identical digests
