"""The LWW store: versions, tombstones, merge, and merkle digests."""

from __future__ import annotations

import pytest

from repro.faults import ReplicationError
from repro.replication.store import Entry, ReplicatedStore, Version


def test_version_orders_by_counter_then_region():
    assert Version(1, "sdsc") < Version(2, "iu")
    # equal counters: the region name breaks the tie, deterministically
    assert Version(3, "iu") < Version(3, "sdsc")
    assert Version(3, "iu") == Version(3, "iu")


def test_version_roundtrip_and_malformed():
    version = Version(7, "iu")
    assert Version.from_dict(version.to_dict()) == version
    with pytest.raises(ReplicationError):
        Version.from_dict({"counter": "nope"})
    with pytest.raises(ReplicationError):
        Entry.from_dict({"value": 1})  # no key, no version


def test_put_get_delete_and_live_views():
    store = ReplicatedStore("iu")
    store.put("a", {"x": 1})
    store.put("b", "two")
    assert store.get("a") == {"x": 1}
    assert store.has("b")
    assert len(store) == 2
    store.delete("b")
    assert store.get("b") is None
    assert not store.has("b")
    assert [key for key, _ in store.items()] == ["a"]
    assert store.keys() == ["a"]
    # the tombstone still exists for replication purposes
    assert store.bucket_entries(store._bucket_of("b"))


def test_local_writes_monotonic_and_vector_tracks():
    store = ReplicatedStore("iu")
    first = store.put("a", 1)
    second = store.put("a", 2)
    assert second.version > first.version
    assert store.vector == {"iu": 2}


def test_lww_merge_higher_version_wins():
    local = ReplicatedStore("iu")
    local.put("job", "local")
    remote = ReplicatedStore("sdsc")
    remote.put("ignored", 0)  # bump sdsc's counter past iu's
    remote.put("job", "remote")
    entry = remote.bucket_entries(remote._bucket_of("job"))
    winning = [e for e in entry if e["key"] == "job"]
    assert local.apply_many(winning) == 1
    assert local.get("job") == "remote"
    # and the merge is idempotent
    assert local.apply_many(winning) == 0


def test_lww_merge_lower_version_loses():
    local = ReplicatedStore("iu")
    local.put("pad", 0)
    local.put("job", "newer")  # counter 2
    stale = Entry("job", "older", Version(1, "sdsc")).to_dict()
    assert local.apply(stale) is False
    assert local.get("job") == "newer"


def test_counter_jumps_past_merged_remote():
    local = ReplicatedStore("iu")
    local.apply(Entry("k", "v", Version(41, "sdsc")).to_dict())
    entry = local.put("k", "mine")
    # the next local write must order after everything merged so far
    assert entry.version > Version(41, "sdsc")
    assert local.vector["sdsc"] == 41


def test_tombstone_beats_concurrent_recreate():
    alpha = ReplicatedStore("iu")
    beta = ReplicatedStore("sdsc")
    alpha.put("svc", "v1")
    for data in alpha.bucket_entries(alpha._bucket_of("svc")):
        beta.apply(data)
    # partition: alpha deletes (counter 2), beta re-writes (counter 2);
    # the region name is the deterministic tiebreak on both sides
    alpha.delete("svc")
    beta.put("svc", "recreated")
    for data in list(beta.bucket_entries(beta._bucket_of("svc"))):
        alpha.apply(data)
    for data in list(alpha.bucket_entries(alpha._bucket_of("svc"))):
        beta.apply(data)
    assert alpha.get("svc") == beta.get("svc")
    assert alpha.root_digest() == beta.root_digest()


def test_digests_equal_iff_state_identical():
    alpha = ReplicatedStore("iu")
    beta = ReplicatedStore("iu")
    for store in (alpha, beta):
        store.put("x", [1, 2])
        store.put("y", {"k": "v"})
    assert alpha.root_digest() == beta.root_digest()
    beta.put("y", {"k": "w"})
    assert alpha.root_digest() != beta.root_digest()
    differing = [
        b for b in range(alpha.buckets)
        if alpha.bucket_digest(b) != beta.bucket_digest(b)
    ]
    assert differing == [beta._bucket_of("y")]


def test_constructor_validation():
    with pytest.raises(ReplicationError):
        ReplicatedStore("")
    with pytest.raises(ReplicationError):
        ReplicatedStore("iu", buckets=0)
