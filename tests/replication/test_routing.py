"""Region-aware failover: local first, cross-region under failure, spring-back."""

from __future__ import annotations

import pytest

from repro.faults import DiscoveryError
from repro.replication import RegionAwareFailoverClient
from repro.resilience.breaker import CircuitBreakerPolicy
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

ECHO_NAMESPACE = "urn:test:regional-echo"


def deploy_echo(network, host, answer):
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose(lambda: answer, name="who")
    return service.mount(HttpServer(host, network), "/echo")


def make_client(network, **kwargs):
    endpoints = {
        "iu": (deploy_echo(network, "echo.iu", "iu"),),
        "sdsc": (deploy_echo(network, "echo.sdsc", "sdsc"),),
    }
    client = RegionAwareFailoverClient(
        network, endpoints, ECHO_NAMESPACE, region="iu",
        source="client.iu", **kwargs
    )
    return endpoints, client


def test_endpoints_ordered_local_first(network):
    endpoints, client = make_client(network)
    assert client.endpoints[0] in client.local_endpoints
    assert client.region_of(client.endpoints[0]) == "iu"
    assert client.region_of(client.endpoints[1]) == "sdsc"
    assert client.region_of("http://nowhere/") == ""


def test_unknown_caller_region_rejected(network):
    endpoints, _ = make_client(network)
    with pytest.raises(DiscoveryError):
        RegionAwareFailoverClient(
            network,
            {"iu": endpoints["iu"]},
            ECHO_NAMESPACE,
            region="ncsa",
        )


def test_calls_stay_local_while_healthy(network):
    _, client = make_client(network)
    for _ in range(5):
        assert client.call("who") == "iu"
    assert client.local_calls == 5
    assert client.cross_region_calls == 0


def test_cross_region_failover_when_local_down(network):
    _, client = make_client(
        network,
        breaker_policy=CircuitBreakerPolicy(failure_threshold=1, cooldown=30.0),
    )
    network.take_down("echo.iu")
    # first call rotates onto sdsc (and trips iu's breaker)
    assert client.call("who") == "sdsc"
    assert client.failovers_performed >= 1
    # with iu's breaker open, subsequent calls *start* cross-region
    assert client.call("who") == "sdsc"
    assert client.cross_region_calls >= 1


def test_traffic_springs_back_after_cooldown(network):
    _, client = make_client(
        network,
        breaker_policy=CircuitBreakerPolicy(failure_threshold=1, cooldown=5.0),
    )
    network.take_down("echo.iu")
    assert client.call("who") == "sdsc"
    assert client.call("who") == "sdsc"
    network.bring_up("echo.iu")
    network.clock.advance(6.0)  # iu's breaker half-opens
    # the next rotation starts back at the local replica
    assert client.call("who") == "iu"
    assert client.local_calls >= 1
