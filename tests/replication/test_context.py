"""Quorum context replication: acks, hints, handoff, stale reads."""

from __future__ import annotations

import pytest

from repro.faults import (
    ContextError,
    QuorumLostError,
    StaleReadError,
)
from repro.replication import (
    ContextReplicaService,
    ReplicatedContextStore,
    deploy_context_replica,
)
from repro.resilience.events import HANDOFF, HINT, STALE_READ, ResilienceLog
from repro.services.context import ContextStore


def topology(network, regions=("iu", "ncsa", "sdsc"), *, quorum=None, log=None):
    replicas, endpoints = {}, {}
    for region in regions:
        replicas[region], endpoints[region] = deploy_context_replica(
            network, f"ctx.{region}", region
        )
    coordinator = ReplicatedContextStore(
        network, endpoints, region=regions[0], quorum=quorum, log=log
    )
    return replicas, coordinator


def test_replica_applies_in_order_and_refuses_gaps(clock):
    replica = ContextReplicaService("iu", clock=clock)
    assert replica.apply_op(1, "ctx-create", {"path": "/users/alice"}) == 1
    # duplicate offers are acknowledged without effect
    assert replica.apply_op(1, "ctx-create", {"path": "/users/alice"}) == 1
    assert replica.ops_applied == 1
    with pytest.raises(ContextError):
        replica.apply_op(3, "ctx-create", {"path": "/users/bob"})
    with pytest.raises(ContextError):
        replica.apply_op(2, "ctx-bogus", {})


def test_apply_context_op_covers_the_mutation_surface(clock):
    from repro.replication import apply_context_op

    store = ContextStore(clock)
    apply_context_op(store, "ctx-create", {"path": "/users/alice/job1"})
    apply_context_op(
        store, "ctx-prop-set",
        {"path": "/users/alice/job1", "key": "state", "value": "queued"},
    )
    apply_context_op(store, "ctx-rename", {"path": "/users/alice/job1", "new": "job2"})
    node = store.node("/users/alice/job2")
    assert node.properties["state"] == "queued"
    apply_context_op(store, "ctx-remove", {"path": "/users/alice/job2"})
    with pytest.raises(ContextError):
        apply_context_op(store, "ctx-nope", {})


def test_quorum_write_reaches_every_replica(network):
    replicas, coordinator = topology(network)
    seq = coordinator.create("/users/alice/session")
    assert seq == 1
    assert coordinator.writes_acknowledged == 1
    assert {r.applied for r in replicas.values()} == {1}
    assert coordinator.hint_backlog() == {"iu": 0, "ncsa": 0, "sdsc": 0}


def test_write_survives_one_replica_down_with_hint(network):
    log = ResilienceLog()
    replicas, coordinator = topology(network, log=log)
    network.take_down("ctx.sdsc")
    coordinator.create("/users/alice/session")
    coordinator.set_property("/users/alice/session", "state", "active")
    assert coordinator.writes_acknowledged == 2  # quorum 2/3 held
    assert coordinator.hint_backlog()["sdsc"] == 2
    assert any(e.code == HINT for e in log.events)
    # heal: handoff replays the gap in order
    network.bring_up("ctx.sdsc")
    delivered = coordinator.sync_all()
    assert delivered["sdsc"] == 2
    assert replicas["sdsc"].applied == 2
    assert any(e.code == HANDOFF for e in log.events)
    snapshots = coordinator.snapshots()
    assert len({repr(s["state"]) for s in snapshots.values()}) == 1


def test_below_quorum_raises_but_keeps_the_op(network):
    replicas, coordinator = topology(network)
    network.take_down("ctx.ncsa")
    network.take_down("ctx.sdsc")
    with pytest.raises(QuorumLostError):
        coordinator.create("/users/alice/session")
    # the op stays logged; the heal path still delivers it everywhere
    assert coordinator.seq == 1
    network.bring_up("ctx.ncsa")
    network.bring_up("ctx.sdsc")
    coordinator.sync_all()
    assert {r.applied for r in replicas.values()} == {1}


def test_invalid_op_faults_before_logging(network):
    replicas, coordinator = topology(network)
    with pytest.raises(ContextError):
        coordinator.remove("/users/never-created")
    # the bad mutation never reached the log or any replica
    assert coordinator.seq == 0
    assert {r.applied for r in replicas.values()} == {0}
    coordinator.create("/users/alice")  # the store still works
    assert coordinator.seq == 1


def test_crash_restarted_replica_replays_from_scratch(network):
    replicas, coordinator = topology(network)
    coordinator.create("/users/alice/job")
    coordinator.set_property("/users/alice/job", "state", "done")
    # sdsc restarts with empty process state on the same host
    fresh, _ = deploy_context_replica(network, "ctx.sdsc", "sdsc")
    assert fresh.applied == 0
    delivered = coordinator.flush_hints("sdsc")
    assert delivered == 2
    assert fresh.applied == 2
    assert fresh.store.node("/users/alice/job").properties["state"] == "done"


def test_next_write_also_heals_a_restarted_replica(network):
    """The write path itself replays missing prefixes (no explicit flush)."""
    replicas, coordinator = topology(network)
    coordinator.create("/users/alice")
    fresh, _ = deploy_context_replica(network, "ctx.sdsc", "sdsc")
    coordinator.create("/users/alice/job")
    assert fresh.applied == 2  # prefix replayed, then the new op


def test_reads_prefer_local_and_mark_stale(network):
    log = ResilienceLog()
    replicas, coordinator = topology(network, log=log)
    coordinator.create("/users/alice")
    answer = coordinator.read_node("/users/alice")
    assert answer["region"] == "iu" and not answer["stale"]
    # iu misses the next write; its answers are behind the op log
    network.take_down("ctx.iu")
    coordinator.set_property("/users/alice", "state", "active")
    network.bring_up("ctx.iu")
    answer = coordinator.read_node("/users/alice")
    assert answer["region"] == "iu"
    assert answer["stale"] and answer["lag"] == 1
    assert coordinator.stale_reads_served == 1
    assert any(e.code == STALE_READ for e in log.events)
    with pytest.raises(StaleReadError):
        coordinator.read_node("/users/alice", allow_stale=False)


def test_reads_fail_over_cross_region(network):
    replicas, coordinator = topology(network)
    coordinator.create("/users/alice")
    network.take_down("ctx.iu")
    answer = coordinator.read_node("/users/alice")
    assert answer["region"] in ("ncsa", "sdsc")
    assert not answer["stale"]
    network.take_down("ctx.ncsa")
    network.take_down("ctx.sdsc")
    with pytest.raises(QuorumLostError):
        coordinator.read_node("/users/alice")


def test_quorum_validation(network):
    _, endpoints = deploy_context_replica(network, "ctx.iu", "iu")
    with pytest.raises(ContextError):
        ReplicatedContextStore(network, {}, region="iu")
    with pytest.raises(ContextError):
        ReplicatedContextStore(
            network, {"iu": endpoints}, region="iu", quorum=2
        )
