"""The replicated registry: discovery + UDDI over the LWW keyspace."""

from __future__ import annotations

import pytest

from repro.faults import DiscoveryError, InvalidRequestError
from repro.replication import ReplicatedRegistry
from repro.replication.store import ReplicatedStore
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
)


def make_pair():
    stores = {r: ReplicatedStore(r) for r in ("iu", "sdsc")}
    return stores, {r: ReplicatedRegistry(s) for r, s in stores.items()}


def sync(stores):
    """Converge a pair of bare stores without the SOAP transport."""
    for a, b in (("iu", "sdsc"), ("sdsc", "iu")):
        for bucket in range(stores[a].buckets):
            stores[b].apply_many(stores[a].bucket_entries(bucket))


def test_discovery_entry_replicates_and_queries(network):
    stores, registries = make_pair()
    registries["iu"].register_service(
        "gridservices/batch/IU", {"wsdlurl": "http://iu/wsdl", "os": "AIX"}
    )
    sync(stores)
    rows = registries["sdsc"].soap_query({"os": "AIX"}, "")
    assert len(rows) == 1
    assert rows[0]["path"] == "/gridservices/batch/IU"
    assert registries["iu"].export_state() == registries["sdsc"].export_state()


def test_register_merges_metadata_into_existing_entry():
    _, registries = make_pair()
    registry = registries["iu"]
    registry.register_service("svc/a", {"os": "AIX"})
    registry.register_service("svc/a", {"scheduler": ["PBS", "LSF"]})
    node = registry.container.root.lookup("/svc/a")
    assert node.metadata["os"] == ["AIX"]
    assert node.metadata["scheduler"] == ["PBS", "LSF"]


def test_unregister_tombstones_subtree_and_wins_remotely(network):
    stores, registries = make_pair()
    registries["iu"].register_service("svc/batch/IU", {"os": "AIX"})
    registries["iu"].register_service("svc/batch/IU/queue", {"name": "long"})
    sync(stores)
    assert registries["sdsc"].soap_query({"os": "AIX"}, "")
    registries["iu"].unregister("svc/batch/IU")
    sync(stores)
    assert registries["sdsc"].soap_query({"os": "AIX"}, "") == []
    assert registries["iu"].export_state() == registries["sdsc"].export_state()
    with pytest.raises(DiscoveryError):
        registries["iu"].unregister("svc/never-there")


def test_uddi_keys_are_region_prefixed_and_partition_safe():
    stores, registries = make_pair()
    # both regions publish *while partitioned* — no exchanges yet
    be_iu = registries["iu"].save_business(BusinessEntity("", "IU Gateway"))
    be_sdsc = registries["sdsc"].save_business(BusinessEntity("", "SDSC Gateway"))
    assert be_iu.key == "uuid:be-iu-00000001"
    assert be_sdsc.key == "uuid:be-sdsc-00000001"
    sync(stores)
    # after the heal both registries hold both entities under distinct keys
    for registry in registries.values():
        names = sorted(b.name for b in registry.find_business())
        assert names == ["IU Gateway", "SDSC Gateway"]


def test_key_allocation_resumes_after_state_resync():
    stores, registries = make_pair()
    registries["iu"].save_business(BusinessEntity("", "First"))
    registries["iu"].save_business(BusinessEntity("", "Second"))
    sync(stores)
    # a crash-restarted iu: fresh empty store, state returns by anti-entropy
    reborn_store = ReplicatedStore("iu")
    for bucket in range(stores["sdsc"].buckets):
        reborn_store.apply_many(stores["sdsc"].bucket_entries(bucket))
    reborn = ReplicatedRegistry(reborn_store)
    entity = reborn.save_business(BusinessEntity("", "Third"))
    assert entity.key == "uuid:be-iu-00000003"  # never re-issues 1 or 2


def test_service_publish_validates_against_merged_state():
    stores, registries = make_pair()
    be = registries["iu"].save_business(BusinessEntity("", "IU Gateway"))
    tm = registries["iu"].save_tmodel(TModel("", "batch-script-v1"))
    sync(stores)
    # sdsc can publish a service against iu's business + tModel
    service = registries["sdsc"].save_service(BusinessService(
        "", be.key, "BatchScript",
        category_bag=[KeyedReference(tm.key, "spec")],
        bindings=[BindingTemplate("", "", "http://sdsc/soap")],
    ))
    assert service.key.startswith("uuid:bs-sdsc-")
    assert service.bindings[0].key == f"{service.key}-bt-0001"
    with pytest.raises(DiscoveryError):
        registries["sdsc"].save_service(
            BusinessService("", "uuid:be-nowhere-00000001", "Ghost")
        )
    with pytest.raises(InvalidRequestError):
        registries["sdsc"].save_service(BusinessService(
            "", be.key, "BadCat",
            category_bag=[KeyedReference("uuid:tm-nowhere-00000001", "spec")],
        ))


def test_save_binding_rewrites_service_entry(network):
    stores, registries = make_pair()
    be = registries["iu"].save_business(BusinessEntity("", "IU"))
    service = registries["iu"].save_service(
        BusinessService("", be.key, "Job")
    )
    registries["iu"].save_binding(
        BindingTemplate("", service.key, "http://iu/soap")
    )
    sync(stores)
    detail = registries["sdsc"].get_service_detail(service.key)
    assert [b.access_point for b in detail.bindings] == ["http://iu/soap"]
    with pytest.raises(DiscoveryError):
        registries["iu"].save_binding(
            BindingTemplate("", "uuid:bs-nowhere-00000001", "http://x")
        )


def test_delete_service_replicates(network):
    stores, registries = make_pair()
    be = registries["iu"].save_business(BusinessEntity("", "IU"))
    service = registries["iu"].save_service(BusinessService("", be.key, "Job"))
    sync(stores)
    assert registries["sdsc"].find_service(name_pattern="Job")
    registries["sdsc"].delete_service(service.key)
    sync(stores)
    assert registries["iu"].find_service(name_pattern="Job") == []
    with pytest.raises(DiscoveryError):
        registries["iu"].delete_service(service.key)


def test_export_state_and_digest_witness_convergence():
    stores, registries = make_pair()
    registries["iu"].register_service("svc/a", {"os": "AIX"})
    assert registries["iu"].state_digest() != registries["sdsc"].state_digest()
    sync(stores)
    assert registries["iu"].state_digest() == registries["sdsc"].state_digest()
    assert registries["iu"].export_state() == registries["sdsc"].export_state()
