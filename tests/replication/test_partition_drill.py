"""The disaster drill: partitions and crashes mid-write, then convergence.

A seeded :class:`ChaosMonkey` drives region partitions (full, one-way,
partial), host crashes with rebuild-from-nothing restarts, fault bursts,
and latency spikes against a three-region topology while a workload keeps
writing to the registry and the quorum context store.  The acceptance
criteria, asserted per run:

- **deterministic convergence** — after the heal, every region holds
  byte-identical registry state and identical context snapshots, and the
  same seed reproduces the same final digest and event stream;
- **zero lost acknowledged context writes** — every op the coordinator
  acknowledged is present on every replica after the heal;
- **bounded, surfaced staleness** — reads served from behind the op log
  are explicitly marked and counted, never silent;
- **availability** — the replicated portal keeps serving through faults
  that make the single-region control case visibly unavailable.

The short drill runs in tier 1; the multi-seed soak and the
``BENCH_replication.json`` verdict run under ``tier2_partition``.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.faults import QuorumLostError
from repro.replication import MultiRegionReplication
from repro.resilience.chaos import (
    PARTITION,
    PARTITION_HEAL,
    ChaosConfig,
    ChaosHarness,
    ChaosMonkey,
)
from repro.resilience.events import STALE_READ, ResilienceLog
from repro.transport.network import VirtualNetwork

REGIONS = ("iu", "ncsa", "sdsc")

DRILL_CONFIG = ChaosConfig(
    p_take_down=0.06,
    down_duration=(2.0, 8.0),
    p_fault_burst=0.04,
    burst_size=(1, 2),
    p_latency_spike=0.05,
    p_flap=0.0,
    p_partition=0.25,
    partition_duration=(2.0, 8.0),
)

MAX_HEAL_ROUNDS = 10


def run_drill(seed: int, *, regions=REGIONS, iterations: int = 60) -> dict:
    """One complete drill; returns the measurements the assertions need."""
    network = VirtualNetwork(seed=seed)
    log = ResilienceLog()
    topo = MultiRegionReplication.build(
        network, regions, seed=seed, log=log, staleness_bound=30.0
    )
    monkey = ChaosMonkey(
        network,
        topo.hosts(),
        seed=seed,
        config=DRILL_CONFIG,
        log=log,
        rebuilders=topo.rebuilders(),
        regions=topo.region_groups(),
    )
    harness = ChaosHarness(network, monkey)
    rng = random.Random(seed)
    acked: list[int] = []
    max_read_lag = 0

    def write_with_retry(path: str) -> int:
        """A quorum write with the retry the error contract promises.

        ``QuorumLostError`` is retryable: the op stays in the coordinator's
        log, so the client waits a beat and re-drives delivery instead of
        re-submitting (a resubmit would be a *new* op).  Only a retry that
        still cannot reach quorum counts as client-visible downtime.
        """
        try:
            return topo.context.create(path)
        except QuorumLostError:
            network.clock.advance(1.0)
            topo.context.sync_all()
            seq = topo.context.seq
            acks = sum(1 for n in topo.context.acked.values() if n >= seq)
            if acks < topo.context.quorum:
                raise
            return seq

    def workload(index: int) -> None:
        # one op per virtual second: outage and partition durations (2-8 s)
        # then span a handful of iterations instead of the whole run
        network.clock.advance(1.0)
        region = rng.choice(sorted(topo.regions))
        topo.nodes[region].registry.register_service(
            f"svc/{region}/job{index}", {"step": str(index)}
        )
        if index % 3 == 0:
            topo.run_anti_entropy()
        # the context write is the availability probe: a QuorumLostError
        # that survives the retry escapes to the harness as downtime
        seq = write_with_retry(f"/drill/op{index:04d}")
        acked.append(seq)
        answer = topo.context.read_node(f"/drill/op{index:04d}")
        nonlocal max_read_lag
        max_read_lag = max(max_read_lag, answer["lag"])

    report = harness.run(workload, iterations)

    # -- the heal: bring everything back, measure time to convergence --------
    heal_started = network.clock.now
    rounds = 0
    while not topo.converged() and rounds < MAX_HEAL_ROUNDS:
        topo.run_anti_entropy()
        rounds += 1
    topo.context.sync_all()
    recovery_time = network.clock.now - heal_started

    exports = {r: node.registry.export_state() for r, node in topo.nodes.items()}
    snapshots = topo.context.snapshots()
    return {
        "seed": seed,
        "iterations": iterations,
        "success_rate": report.success_rate,
        "client_errors": list(report.client_errors),
        "faults_injected": report.faults_injected,
        "partitions_injected": monkey.partitions_injected,
        "restarts": monkey.restarts_performed,
        "converged": topo.converged(),
        "heal_rounds": rounds,
        "recovery_time_s": round(recovery_time, 6),
        "exports": exports,
        "digest": topo.nodes[regions[0]].registry.state_digest(),
        "snapshots": snapshots,
        "local_snapshot": topo.context.local.snapshot(),
        "acked_writes": len(acked),
        "acked_seqs": acked,
        "oplog_len": topo.context.seq,
        "replica_seqs": {r: s["seq"] for r, s in snapshots.items()},
        "hint_backlog": topo.context.hint_backlog(),
        "stale_reads": topo.context.stale_reads_served,
        "max_read_lag": max_read_lag,
        "event_codes": [e.code for e in log.events],
        "rows": topo.replication_rows(),
    }


def assert_drill_invariants(result: dict) -> None:
    regions = sorted(result["exports"])
    # deterministic convergence: byte-identical registry state everywhere
    assert result["converged"], "registry failed to converge after the heal"
    assert len(set(result["exports"].values())) == 1
    # zero lost acknowledged context writes: every replica applied the full
    # op log, and its state equals the coordinator's validating copy
    assert set(result["replica_seqs"]) == set(regions)
    for region in regions:
        assert result["replica_seqs"][region] == result["oplog_len"]
        assert (
            repr(result["snapshots"][region]["state"])
            == repr(result["local_snapshot"])
        )
    assert result["hint_backlog"] == {r: 0 for r in regions}
    assert max(result["acked_seqs"], default=0) <= result["oplog_len"]
    # staleness is bounded and surfaced, never silent
    stale_events = result["event_codes"].count(STALE_READ)
    assert stale_events >= result["stale_reads"]
    assert result["max_read_lag"] <= result["oplog_len"]


def test_drill_survives_partitions_and_crashes():
    result = run_drill(seed=11, iterations=40)
    assert_drill_invariants(result)
    # the schedule actually exercised the failure modes under test
    assert result["partitions_injected"] >= 1
    assert result["faults_injected"] >= 3
    assert PARTITION in result["event_codes"]
    assert PARTITION_HEAL in result["event_codes"]


def test_drill_is_deterministic_per_seed():
    first = run_drill(seed=11, iterations=40)
    second = run_drill(seed=11, iterations=40)
    assert first["digest"] == second["digest"]
    assert first["event_codes"] == second["event_codes"]
    assert first["client_errors"] == second["client_errors"]
    assert first["recovery_time_s"] == second["recovery_time_s"]
    assert first["exports"] == second["exports"]


def test_control_without_replication_loses_availability():
    """The ablation: one region, same faults, visibly worse availability."""
    replicated = run_drill(seed=11, iterations=40)
    control = run_drill(seed=11, iterations=40, regions=("iu",))
    assert control["success_rate"] < replicated["success_rate"]
    assert control["client_errors"].count("Portal.QuorumLost") > len(
        replicated["client_errors"]
    )


@pytest.mark.tier2_partition
def test_partition_drill_soak_and_benchmark():
    """The full drill across seeds; the verdict lands in
    ``BENCH_replication.json`` for the CI artifact."""
    seeds = (3, 11, 29)
    runs = []
    for seed in seeds:
        result = run_drill(seed=seed, iterations=120)
        assert_drill_invariants(result)
        rerun = run_drill(seed=seed, iterations=120)
        assert rerun["digest"] == result["digest"]
        assert rerun["event_codes"] == result["event_codes"]
        runs.append(result)
    assert any(r["partitions_injected"] for r in runs)
    assert any(r["restarts"] for r in runs)

    controls = [
        run_drill(seed=seed, iterations=120, regions=("iu",))
        for seed in seeds
    ]
    mean = lambda rs: sum(r["success_rate"] for r in rs) / len(rs)
    assert mean(controls) < mean(runs)

    out = Path(__file__).resolve().parents[2] / "BENCH_replication.json"
    out.write_text(json.dumps({
        "benchmark": "multi-region partition disaster drill",
        "regions": list(REGIONS),
        "iterations": 120,
        "replicated": [
            {
                "seed": r["seed"],
                "success_rate": round(r["success_rate"], 4),
                "quorum_losses": r["client_errors"].count("Portal.QuorumLost"),
                "faults_injected": r["faults_injected"],
                "partitions": r["partitions_injected"],
                "restarts": r["restarts"],
                "recovery_time_s": r["recovery_time_s"],
                "heal_rounds": r["heal_rounds"],
                "acked_writes": r["acked_writes"],
                "lost_acked_writes": 0,
                "stale_reads": r["stale_reads"],
                "max_read_lag_ops": r["max_read_lag"],
                "converged": r["converged"],
            }
            for r in runs
        ],
        "control_single_region": [
            {
                "seed": control["seed"],
                "success_rate": round(control["success_rate"], 4),
                "quorum_losses": control["client_errors"].count(
                    "Portal.QuorumLost"
                ),
            }
            for control in controls
        ],
        "deterministic": True,
    }, indent=2) + "\n")
