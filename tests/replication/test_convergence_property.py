"""Property test: arbitrary writes + one partition/heal cycle always converge.

Hypothesis drives a random interleaving of discovery registrations,
deletions, and UDDI publishes across two regions, cuts the regions apart
partway through (writes continue on both sides of the cut), heals, and runs
anti-entropy: every region must end holding byte-identical registry state.
The same seed must reproduce the same final digest bit for bit.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import MultiRegionReplication
from repro.transport.network import VirtualNetwork
from repro.uddi.model import BusinessEntity

REGIONS = ("iu", "sdsc")

path_segments = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
paths = st.lists(path_segments, min_size=1, max_size=3).map("/".join)

write_ops = st.lists(
    st.tuples(
        st.sampled_from(REGIONS),
        st.sampled_from(["register", "unregister", "business"]),
        paths,
    ),
    min_size=1,
    max_size=20,
)


def apply_op(topo, region, op, path):
    registry = topo.nodes[region].registry
    if op == "register":
        registry.register_service(path, {"origin": region})
    elif op == "unregister":
        try:
            registry.unregister(path)
        except Exception:
            pass  # deleting a path that never existed is a no-op here
    else:
        registry.save_business(BusinessEntity("", f"biz-{path}"))


def run_schedule(ops, cut_at, seed):
    network = VirtualNetwork(seed=seed)
    topo = MultiRegionReplication.build(network, REGIONS, seed=seed)
    cut_at = min(cut_at, len(ops))
    partition_id = None
    for index, (region, op, path) in enumerate(ops):
        if index == cut_at:
            partition_id = network.partition(
                {topo.nodes["iu"].host}, {topo.nodes["sdsc"].host}
            )
        apply_op(topo, region, op, path)
    if partition_id is not None:
        network.heal_partition(partition_id)
    topo.run_anti_entropy(2)
    exports = {
        region: node.registry.export_state()
        for region, node in sorted(topo.nodes.items())
    }
    return exports, topo.nodes["iu"].registry.state_digest()


@settings(max_examples=40, deadline=None)
@given(ops=write_ops, cut_at=st.integers(0, 20), seed=st.integers(0, 2**16))
def test_partitioned_writes_always_converge(ops, cut_at, seed):
    exports, digest = run_schedule(ops, cut_at, seed)
    assert exports["iu"] == exports["sdsc"]
    # same-seed determinism: the whole run replays bit for bit
    exports_again, digest_again = run_schedule(ops, cut_at, seed)
    assert digest_again == digest
    assert exports_again == exports
