"""Anti-entropy gossip: digest narrowing, convergence, partition tolerance."""

from __future__ import annotations

from repro.replication import (
    AntiEntropySession,
    GossipScheduler,
    ReplicationPeer,
    deploy_replication,
)
from repro.replication.store import ReplicatedStore
from repro.resilience.events import SYNC, SYNC_FAILED, ResilienceLog
from repro.transport.network import VirtualNetwork


def two_regions(network):
    """Two mounted regions plus a peer handle each way."""
    stores = {r: ReplicatedStore(r) for r in ("iu", "sdsc")}
    services, endpoints = {}, {}
    for region, store in stores.items():
        services[region], endpoints[region] = deploy_replication(
            network, f"replica.{region}", store
        )
    peers = {
        "iu": ReplicationPeer(
            network, endpoints["sdsc"], local_store=stores["iu"],
            source="replica.iu",
        ),
        "sdsc": ReplicationPeer(
            network, endpoints["iu"], local_store=stores["sdsc"],
            source="replica.sdsc",
        ),
    }
    return stores, services, peers


def test_identical_stores_exchange_nothing(network):
    stores, _, peers = two_regions(network)
    stats = AntiEntropySession(stores["iu"], peers["iu"]).run()
    assert stats == {"buckets": 0, "differing": 0, "pulled": 0, "pushed": 0}


def test_one_session_converges_a_pair_both_ways(network):
    stores, _, peers = two_regions(network)
    stores["iu"].put("only-iu", 1)
    stores["sdsc"].put("only-sdsc", 2)
    stores["sdsc"].put("shared", "theirs")
    stats = AntiEntropySession(stores["iu"], peers["iu"]).run()
    assert stats["pulled"] >= 2 and stats["pushed"] >= 1
    assert stores["iu"].root_digest() == stores["sdsc"].root_digest()
    assert stores["iu"].get("only-sdsc") == 2
    assert stores["sdsc"].get("only-iu") == 1


def test_only_differing_buckets_cross_the_wire(network):
    stores, services, peers = two_regions(network)
    for index in range(8):
        key = f"k{index}"
        stores["iu"].put(key, index)
        bucket = stores["iu"]._bucket_of(key)
        stores["sdsc"].apply(next(
            e for e in stores["iu"].bucket_entries(bucket) if e["key"] == key
        ))
    stores["iu"].put("fresh", "delta")
    stats = AntiEntropySession(stores["sdsc"], peers["sdsc"]).run()
    assert stats["differing"] == 1  # one key ⇒ one bucket differs
    assert stores["iu"].root_digest() == stores["sdsc"].root_digest()


def test_inbound_calls_record_peer_vectors(network):
    stores, services, peers = two_regions(network)
    stores["iu"].put("a", 1)
    AntiEntropySession(stores["iu"], peers["iu"]).run()
    assert services["sdsc"].peer_vectors.get("iu") == {"iu": 1}
    assert "iu" in services["sdsc"].peer_seen_at
    info = services["sdsc"].replication_info()
    assert info["region"] == "sdsc"
    assert info["peers"]["iu"] == {"iu": 1}


def gossip_three(network, seed=0, log=None):
    regions = ("iu", "ncsa", "sdsc")
    stores = {r: ReplicatedStore(r) for r in regions}
    endpoints = {}
    for region, store in stores.items():
        _, endpoints[region] = deploy_replication(
            network, f"replica.{region}", store
        )
    nodes = {
        region: (
            stores[region],
            {
                other: ReplicationPeer(
                    network, endpoints[other],
                    local_store=stores[region],
                    source=f"replica.{region}",
                )
                for other in regions if other != region
            },
        )
        for region in regions
    }
    return stores, GossipScheduler(
        nodes, clock=network.clock, seed=seed, log=log
    )


def test_gossip_converges_three_regions(network):
    log = ResilienceLog()
    stores, gossip = gossip_three(network, log=log)
    stores["iu"].put("svc/a", {"host": "iu"})
    stores["ncsa"].put("svc/b", {"host": "ncsa"})
    stores["sdsc"].put("svc/c", {"host": "sdsc"})
    gossip.run(2)
    assert gossip.converged()
    assert {e.code for e in log.events} >= {SYNC}
    assert all(region in gossip.last_sync for region in stores)


def test_gossip_skips_cut_pair_and_continues(network):
    log = ResilienceLog()
    stores, gossip = gossip_three(network, log=log)
    stores["iu"].put("x", 1)
    network.partition({"replica.iu"}, {"replica.sdsc"})
    outcomes = gossip.round()
    # the cut pair failed, the others exchanged
    assert any("error" in stats for stats in outcomes.values())
    assert any("error" not in stats for stats in outcomes.values())
    assert any(e.code == SYNC_FAILED for e in log.events)
    network.heal_partitions()
    gossip.run(2)
    assert gossip.converged()


def test_gossip_schedule_is_seed_deterministic():
    def run(seed):
        network = VirtualNetwork(seed=seed)
        stores, gossip = gossip_three(network, seed=seed)
        stores["iu"].put("a", 1)
        stores["sdsc"].put("b", 2)
        labels = []
        for _ in range(3):
            labels.extend(sorted(gossip.round()))
        return labels, {r: s.root_digest() for r, s in stores.items()}

    assert run(7) == run(7)
    assert run(7)[1] == run(11)[1]  # converged state is seed-independent
