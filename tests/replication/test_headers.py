"""The urn:gce:replication Replica header: encode, decode, tolerance."""

from __future__ import annotations

from repro.headers import is_registered
from repro.replication.headers import (
    REPLICA_HEADER,
    decode_vector,
    encode_vector,
    replica_from_headers,
    replica_header,
)
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName


def test_vector_wire_form_is_sorted_and_roundtrips():
    vector = {"sdsc": 5, "iu": 3}
    wire = encode_vector(vector)
    assert wire == "iu:3,sdsc:5"
    assert decode_vector(wire) == vector


def test_decode_skips_malformed_parts():
    assert decode_vector("iu:3,,broken,sdsc:x,ncsa:7") == {"iu": 3, "ncsa": 7}
    assert decode_vector("") == {}


def test_header_roundtrip():
    entry = replica_header("iu", {"iu": 3, "sdsc": 5})
    region, vector = replica_from_headers([entry])
    assert region == "iu"
    assert vector == {"iu": 3, "sdsc": 5}


def test_absent_and_malformed_headers_never_fault():
    assert replica_from_headers([]) == (None, {})
    other = XmlElement(QName("urn:other", "Thing"), text="x")
    assert replica_from_headers([other]) == (None, {})
    # a present header with a garbage vector still yields the region
    entry = replica_header("sdsc")
    entry.set("vector", ":::,,,")
    region, vector = replica_from_headers([entry])
    assert region == "sdsc"
    assert vector == {}


def test_header_is_registered():
    assert is_registered(REPLICA_HEADER)
