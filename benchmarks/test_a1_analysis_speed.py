"""Experiment A1 — whole-program analysis speed, cold vs warm cache.

The analyzer's cost story has two regimes: a cold run pays for parsing,
graph construction, and every interprocedural fixpoint; a warm run over
an unchanged tree proves all per-file digests valid and reassembles the
report from ``.analysis-cache/`` without running a single checker.  This
benchmark measures both over the real ``src/repro`` tree, checks the
reports are byte-identical, and records cold µs/file, files/sec, and the
warm speedup in ``BENCH_analysis.json`` so cache regressions are
diffable across PRs (see ``benchmarks/ratchet_analysis.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import record_table
from repro.analysis.reporting import (
    exit_code_for,
    render_json,
    split_without_baseline,
)
from repro.analysis.runner import analyze_paths_cached

REPO_ROOT = Path(__file__).parent.parent
TREE = REPO_ROOT / "src" / "repro"

#: the cache's reason to exist: a warm full-tree pass must beat cold by
#: at least this factor
MIN_WARM_SPEEDUP = 3.0


def _timed_run(cache_dir: Path, **kwargs):
    start = time.perf_counter()
    result, stats = analyze_paths_cached(
        [TREE], root=REPO_ROOT, cache_dir=cache_dir, **kwargs
    )
    return result, stats, time.perf_counter() - start


def _rendered(result) -> str:
    split = split_without_baseline(result.findings)
    return render_json(
        result, split, None, paths=["src/repro"], exit_code=exit_code_for(split)
    )


def test_analysis_speed_cold_vs_warm(tmp_path):
    cache_dir = tmp_path / "analysis-cache"

    cold_result, cold_stats, cold_s = _timed_run(cache_dir)
    assert cold_stats.misses == cold_result.files_scanned
    assert cold_stats.wrote

    warm_result, warm_stats, warm_s = _timed_run(cache_dir)
    assert warm_stats.fast_path
    assert warm_stats.hits == warm_result.files_scanned

    # the cache must never change what the analyzer reports
    assert _rendered(warm_result) == _rendered(cold_result)

    files = cold_result.files_scanned
    speedup = cold_s / warm_s
    verdict = {
        "files": files,
        "findings": len(cold_result.findings),
        "cold_s": round(cold_s, 4),
        "cold_us_per_file": round(cold_s / files * 1e6, 1),
        "cold_files_per_s": round(files / cold_s, 2),
        "warm_s": round(warm_s, 4),
        "warm_us_per_file": round(warm_s / files * 1e6, 1),
        "warm_files_per_s": round(files / warm_s, 2),
        "warm_speedup": round(speedup, 2),
    }
    assert speedup >= MIN_WARM_SPEEDUP, verdict

    record_table(
        "A1  whole-program analysis: cold vs warm cache (src/repro)",
        ["files", "cold s", "cold µs/file", "warm s", "warm µs/file", "speedup"],
        [[files, verdict["cold_s"], verdict["cold_us_per_file"],
          verdict["warm_s"], verdict["warm_us_per_file"],
          verdict["warm_speedup"]]],
    )

    out = REPO_ROOT / "BENCH_analysis.json"
    out.write_text(json.dumps({
        "benchmark": "a1_analysis_speed",
        "tree": "src/repro",
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        **verdict,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
