"""Experiment C7 — §3.1: a Web Service using another Web Service.

"The interaction between the batch job submission Web Service and the
Globusrun Web Service demonstrates a Web Service using another Web Service
to perform a task."

We measure the cost of the extra hop: submitting the same job directly to
the Globusrun service versus through the composed batch-job service, across
a sweep of job runtimes.

Expected shape: the composition adds a fixed wire cost (one extra SOAP
round trip), so its *relative* overhead shrinks as the job runtime grows —
service composition is essentially free for real workloads, which is the
paper's architectural bet.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.services.jobsubmit import BATCHJOB_NAMESPACE, GLOBUSRUN_NAMESPACE, deploy_batchjob
from repro.soap.client import SoapClient

RUNTIMES = [0.1, 1.0, 10.0, 60.0]


@pytest.fixture(scope="module")
def c7(deployment):
    network = deployment.network
    _impl, batch_url = deploy_batchjob(
        network, deployment.endpoints["globusrun"], "batchjob.c7"
    )
    direct = SoapClient(network, deployment.endpoints["globusrun"],
                        GLOBUSRUN_NAMESPACE, source="ui.c7")
    composed = SoapClient(network, batch_url, BATCHJOB_NAMESPACE,
                          source="ui.c7")
    direct.call("run", "blue.sdsc.edu", "sleep", "0.01", 1, "", 600)
    composed.call("submit_batch", "blue.sdsc.edu", "sleep 0.01 walltime=600")

    rows = []
    for runtime in RUNTIMES:
        start = network.clock.now
        direct.call("run", "blue.sdsc.edu", "sleep", str(runtime), 1, "", 600)
        direct_vtime = network.clock.now - start

        start = network.clock.now
        composed.call(
            "submit_batch", "blue.sdsc.edu", f"sleep {runtime} walltime=600"
        )
        composed_vtime = network.clock.now - start

        overhead = composed_vtime - direct_vtime
        rows.append([
            runtime, direct_vtime, composed_vtime, overhead * 1000,
            overhead / composed_vtime * 100,
        ])
    record_table(
        "C7 / §3.1 — direct Globusrun vs composed batch-job service",
        ["job_runtime_s", "direct_vtime_s", "composed_vtime_s",
         "overhead_ms", "overhead_%"],
        rows,
    )
    # shape: absolute overhead ~constant; relative overhead monotonically down
    overheads_ms = [row[3] for row in rows]
    assert max(overheads_ms) < min(overheads_ms) * 3 + 50
    relative = [row[4] for row in rows]
    assert relative == sorted(relative, reverse=True)
    assert relative[-1] < 1.0  # under 1% for a 60s job

    return {"direct": direct, "composed": composed}


def test_c7_direct_globusrun(benchmark, c7):
    benchmark(
        lambda: c7["direct"].call("run", "blue.sdsc.edu", "sleep", "0.05",
                                  1, "", 600)
    )


def test_c7_composed_batch_service(benchmark, c7):
    benchmark(
        lambda: c7["composed"].call(
            "submit_batch", "blue.sdsc.edu", "sleep 0.05 walltime=600"
        )
    )
