"""CI ratchet for the analysis-speed benchmark.

Compares a fresh ``BENCH_analysis.json`` against the committed baseline
and fails (exit 1) when the warm-cache speedup regressed more than the
tolerance.  The compared figure is the *speedup ratio* — cold seconds
over warm seconds — because absolute timings differ machine to machine
while the ratio is the property the incremental cache actually guards:
a warm run must skip the checkers, not merely run them faster.

Usage::

    python benchmarks/ratchet_analysis.py BASELINE.json CURRENT.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: a regression is a warm-cache speedup more than 25% below baseline
TOLERANCE = 1.25


def compare(
    baseline: dict, current: dict, tolerance: float = TOLERANCE
) -> list[str]:
    """Regression messages, empty when the ratchet holds."""
    base = baseline["warm_speedup"]
    cur = current["warm_speedup"]
    failures = []
    if base > 0 and cur < base / tolerance:
        failures.append(
            f"warm-cache speedup regressed: {cur:.2f}x vs {base:.2f}x at "
            f"baseline (tolerance: within {tolerance:g}x of baseline)"
        )
    floor = current.get("min_warm_speedup", 0)
    if cur < floor:
        failures.append(
            f"warm-cache speedup {cur:.2f}x is below the hard floor "
            f"{floor:g}x — the fast path is no longer skipping the checkers"
        )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = json.loads(Path(argv[1]).read_text(encoding="utf-8"))
    current = json.loads(Path(argv[2]).read_text(encoding="utf-8"))
    failures = compare(baseline, current)
    for line in failures:
        print(f"RATCHET FAIL: {line}", file=sys.stderr)
    if not failures:
        print(
            f"ratchet holds: warm cache {current['warm_speedup']:.2f}x "
            f"faster than cold (baseline {baseline['warm_speedup']:.2f}x, "
            f"tolerance {TOLERANCE:g}x)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
