"""Experiment C5 — §3.4: UDDI cannot describe queuing-system support.

"UDDI lacked flexible descriptions that could be used to distinguish between
something as simple as one script generator service that supports PBS and
GRD and another that supports LSF and NQS ... We developed workarounds with
the string description, but this works only by convention."

Workload: a registry of script-generator services published by groups that
each follow *their own* description convention (as real 2002 portal groups
did).  Query: "find a generator that supports LSF".  We compare:

- UDDI description-substring search (the paper's workaround),
- UDDI general-keyword categoryBag search (only partially adopted —
  conventions again),
- the paper's proposed container-hierarchy registry with structured
  ``queuing-system`` metadata.

Expected shape: the container hierarchy achieves perfect precision and
recall; the substring workaround suffers false positives (negated mentions)
and false negatives (spelled-out scheduler names); the category search has
perfect precision but poor recall (not everyone categorizes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.discovery.registry import ContainerRegistry, DiscoveryClient, deploy_discovery
from repro.uddi.model import BusinessEntity, BusinessService, KeyedReference
from repro.uddi.registry import UddiRegistry
from repro.uddi.service import UddiClient, deploy_uddi

# (name, schedulers actually supported, description text, categorizes?)
PROVIDERS = [
    ("HotPage Generator", {"LSF", "NQS"},
     "Batch script generation. schedulers: LSF,NQS", True),
    ("Gateway Generator", {"PBS", "GRD"},
     "Batch script generation. schedulers: PBS,GRD", True),
    ("NPACI Legacy Generator", {"LSF"},
     "Generates scripts for the Load Sharing Facility on blue horizon", False),
    ("Cactus Portal Generator", {"PBS"},
     "PBS script tool. We formerly supported LSF but dropped it in 2001",
     False),
    ("Unicore Bridge", {"NQS"},
     "NQS request generator for the T3E", True),
    ("Alliance Generator", {"LSF", "PBS"},
     "supports LSF and PBS queuing systems", False),
]

TARGET = "LSF"
TRUTH = {name for name, schedulers, _d, _c in PROVIDERS if TARGET in schedulers}


def _metrics(found: set[str]) -> tuple[float, float]:
    if not found:
        return 0.0, 0.0
    true_positives = len(found & TRUTH)
    precision = true_positives / len(found)
    recall = true_positives / len(TRUTH)
    return precision, recall


@pytest.fixture(scope="module")
def c5(deployment):
    network = deployment.network
    uddi_registry, uddi_url = deploy_uddi(network, "uddi.c5",
                                          registry=UddiRegistry())
    container_registry, discovery_url = deploy_discovery(
        network, "discovery.c5", registry=ContainerRegistry()
    )
    uddi = UddiClient(network, uddi_url, source="ui.c5")
    discovery = DiscoveryClient(network, discovery_url, source="ui.c5")

    entity = uddi.save_business(BusinessEntity("", "GCE testbed"))
    for name, schedulers, description, categorizes in PROVIDERS:
        category_bag = []
        if categorizes:
            category_bag = [
                KeyedReference("uddi:general-keywords", "scheduler", s)
                for s in sorted(schedulers)
            ]
        uddi.save_service(BusinessService(
            "", entity.key, name, description=description,
            category_bag=category_bag,
        ))
        discovery.register(
            f"script-generators/{name.replace(' ', '-').lower()}",
            {"queuing-system": sorted(schedulers), "name": name},
        )

    results = {}
    # (a) the string-description workaround
    found = {s.name for s in uddi.find_service(description_contains=TARGET)}
    results["UDDI description substring"] = found
    # (b) the keyword categoryBag convention
    found = {
        s.name
        for s in uddi.find_service(
            category_refs=[KeyedReference("uddi:general-keywords", "", TARGET)]
        )
    }
    results["UDDI category keyword"] = found
    # (c) the proposed container hierarchy
    found = {
        hit["metadata"]["name"][0]
        for hit in discovery.query({"queuing-system": TARGET})
    }
    results["container hierarchy"] = found

    rows = []
    for label, found in results.items():
        precision, recall = _metrics(found)
        rows.append([label, len(found), precision, recall])
    record_table(
        f"C5 / §3.4 — discovering 'supports {TARGET}' "
        f"({len(PROVIDERS)} services, {len(TRUTH)} true)",
        ["mechanism", "returned", "precision", "recall"],
        rows,
    )

    by_label = {row[0]: (row[2], row[3]) for row in rows}
    # the container hierarchy is exact
    assert by_label["container hierarchy"] == (1.0, 1.0)
    # the substring workaround has both error kinds
    precision, recall = by_label["UDDI description substring"]
    assert precision < 1.0    # "formerly supported LSF" false positive
    assert recall < 1.0       # "Load Sharing Facility" false negative
    # the category convention is precise but incomplete
    precision, recall = by_label["UDDI category keyword"]
    assert precision == 1.0 and recall < 1.0

    return {"uddi": uddi, "discovery": discovery}


def test_c5_uddi_description_search(benchmark, c5):
    benchmark(lambda: c5["uddi"].find_service(description_contains=TARGET))


def test_c5_container_structured_query(benchmark, c5):
    benchmark(lambda: c5["discovery"].query({"queuing-system": TARGET}))
