"""Experiment F1 — Figure 1: the basic Web-Services interaction.

The figure's flow: the User Interface server consults the UDDI registry,
follows the service's WSDL link, binds a client proxy to the SOAP Service
Provider, and invokes.  We regenerate the figure as a cost series:

- ``stovepipe``  — the three-tier baseline: a permanently wired client
  (no discovery, connection already warm).
- ``ws-cold``    — the full Figure 1 path per request.
- ``ws-warm``    — Figure 1 with the proxy bound once and reused (how the
  paper's UI server actually works: it "maintains client proxies").

plus a sweep of UDDI inquiry cost against registry size.  Expected shape:
cold discovery costs several extra round trips, the warm path is within a
connection-setup of the stovepipe — interoperability is nearly free once
bound.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.uddi.model import BindingTemplate, BusinessEntity, BusinessService
from repro.uddi.service import UddiClient
from repro.wsdl.proxy import client_from_wsdl

PARAMS = {"executable": "/apps/code", "cpus": "1", "wallTime": "600"}


@pytest.fixture(scope="module")
def fig1(deployment):
    """Measure the three paths in virtual time and record the series."""
    network = deployment.network
    uddi = UddiClient(network, deployment.endpoints["uddi"], source="ui.f1")

    def cold_call():
        services = uddi.find_service("%batch script generator%")
        wsdl_url = services[0].bindings[0].wsdl_url
        client = client_from_wsdl(network, wsdl_url, source="ui.f1.cold")
        return client.generateScript("PBS", PARAMS)

    warm = client_from_wsdl(
        network,
        uddi.find_service("%Gateway%")[0].bindings[0].wsdl_url,
        source="ui.f1",
    )

    def warm_call():
        return warm.generateScript("PBS", PARAMS)

    # the stovepipe baseline: same wire, no discovery, proxy pre-wired
    from repro.soap.client import SoapClient
    from repro.services.batchscript import BSG_NAMESPACE

    stovepipe = SoapClient(
        network, deployment.endpoints["bsg-iu"], BSG_NAMESPACE, source="ui.f1"
    )
    stovepipe.call("listSchedulers")  # warm the connection

    def stovepipe_call():
        return stovepipe.call("generateScript", "PBS", PARAMS)

    def vtime(func, repeat=5):
        start = network.clock.now
        before = network.stats.snapshot()
        for _ in range(repeat):
            func()
        delta = network.stats.delta(before)
        return (network.clock.now - start) / repeat, delta.requests / repeat

    rows = []
    for label, func in (
        ("stovepipe", stovepipe_call),
        ("ws-cold", cold_call),
        ("ws-warm", warm_call),
    ):
        per_call_vtime, per_call_requests = vtime(func)
        rows.append([label, per_call_vtime * 1000, per_call_requests])
    record_table(
        "F1 / Figure 1 — interaction cost per request (virtual network)",
        ["path", "vtime_ms", "requests"],
        rows,
    )

    # shape assertions: cold pays for discovery, warm is near the stovepipe
    by_label = {row[0]: row for row in rows}
    assert by_label["ws-cold"][1] > by_label["ws-warm"][1] * 1.5
    assert by_label["ws-warm"][1] < by_label["stovepipe"][1] * 2.0
    assert by_label["ws-cold"][2] >= 3  # find + wsdl + invoke

    # UDDI inquiry cost vs registry size
    size_rows = []
    for extra in (0, 50, 200, 800):
        entity = deployment.uddi.save_business(
            BusinessEntity("", f"filler-org-{extra}")
        )
        for index in range(extra):
            deployment.uddi.save_service(
                BusinessService(
                    "", entity.key, f"filler-service-{extra}-{index}",
                    description="unrelated",
                )
            )
        start = network.clock.now
        hits = uddi.find_service("%batch script generator%")
        size_rows.append(
            [len(deployment.uddi._services), len(hits),
             (network.clock.now - start) * 1000]
        )
    record_table(
        "F1 — UDDI inquiry vs registry size",
        ["registry_size", "hits", "inquiry_vtime_ms"],
        size_rows,
    )
    assert all(row[1] == 2 for row in size_rows)  # precision holds

    return {"cold": cold_call, "warm": warm_call, "stovepipe": stovepipe_call}


def test_fig1_cold_discovery_and_invoke(benchmark, fig1):
    benchmark(fig1["cold"])


def test_fig1_warm_bound_proxy_invoke(benchmark, fig1):
    benchmark(fig1["warm"])


def test_fig1_stovepipe_baseline(benchmark, fig1):
    benchmark(fig1["stovepipe"])
