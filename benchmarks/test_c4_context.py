"""Experiment C4 — §3.3: the 60-method context manager and placeholder
contexts.

Two of the paper's observations, measured:

1. "this service contained over 60 methods ... the service will have to be
   broken up into more reasonable parts" — we count the method surface of
   the monolith against the decomposed services.
2. "Making this into an independent service introduced unnecessary overhead
   because we needed to create artificial contexts (sessions) for HotPage
   users" — we measure script generation through the legacy
   context-coupled generator (placeholder create + property write + remove
   per stateless call) against the refactored, context-free generator.

Expected shape: the decomposed services are an order of magnitude smaller
per interface; the legacy path costs 3 extra context-manager round trips
per script for stateless callers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.services.batchscript import (
    BSG_NAMESPACE,
    IuBatchScriptGenerator,
    IuLegacyBatchScriptGenerator,
)
from repro.services.context import (
    CONTEXT_NAMESPACE,
    ContextManagerService,
    PropertyService,
    SessionArchiveService,
    UserContextService,
    ContextStore,
)
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

PARAMS = {"executable": "/apps/x", "cpus": "1", "wallTime": "600"}


def _method_count(obj) -> int:
    return len([
        name for name in dir(obj)
        if not name.startswith("_") and callable(getattr(obj, name))
    ])


@pytest.fixture(scope="module")
def c4(deployment):
    network = deployment.network
    store = ContextStore(network.clock)
    monolith = ContextManagerService(store)
    rows = [
        ["ContextManager (monolith)", _method_count(monolith)],
        ["UserContextService", _method_count(UserContextService(store))],
        ["PropertyService", _method_count(PropertyService(store))],
        ["SessionArchiveService", _method_count(SessionArchiveService(store))],
    ]
    record_table(
        "C4 / §3.3 — interface surface: monolith vs decomposition",
        ["service", "public methods"],
        rows,
    )
    assert rows[0][1] > 60
    assert all(row[1] <= 8 for row in rows[1:])

    # deploy a context manager + both generator styles as remote services
    cm_host = HttpServer("cm.c4", network)
    cm_soap = SoapService("cm", CONTEXT_NAMESPACE)
    cm_impl = ContextManagerService(clock=network.clock)
    cm_soap.expose_object(cm_impl)
    cm_url = cm_soap.mount(cm_host, "/cm")
    cm_client = SoapClient(network, cm_url, CONTEXT_NAMESPACE, source="bsg.c4")

    class RemoteContextFacade:
        """The legacy generator's view of the (now remote) context manager."""

        def createPlaceholderContext(self):
            return cm_client.call("createPlaceholderContext")

        def setSessionProperty(self, user, problem, session, key, value):
            return cm_client.call("setSessionProperty", user, problem,
                                  session, key, value)

        def removePlaceholder(self, path):
            return cm_client.call("removePlaceholder", path)

    legacy = IuLegacyBatchScriptGenerator(RemoteContextFacade())
    refactored = IuBatchScriptGenerator()

    server = HttpServer("bsg.c4", network)
    legacy_soap = SoapService("legacy", BSG_NAMESPACE)
    legacy_soap.expose(legacy.generateScript)
    legacy_url = legacy_soap.mount(server, "/legacy")
    refactored_soap = SoapService("refactored", BSG_NAMESPACE)
    refactored_soap.expose(refactored.generateScript)
    refactored_url = refactored_soap.mount(server, "/refactored")

    legacy_client = SoapClient(network, legacy_url, BSG_NAMESPACE, source="ui.c4")
    refactored_client = SoapClient(network, refactored_url, BSG_NAMESPACE,
                                   source="ui.c4")
    for client in (legacy_client, refactored_client):
        client.call("generateScript", "PBS", PARAMS)  # warm

    def measure(client, repeat=5):
        start = network.clock.now
        before = network.stats.snapshot()
        for _ in range(repeat):
            client.call("generateScript", "PBS", PARAMS)
        delta = network.stats.delta(before)
        return ((network.clock.now - start) / repeat * 1000,
                delta.requests / repeat,
                delta.per_host_requests.get("cm.c4", 0) / repeat)

    overhead_rows = []
    stats = {}
    for label, client in (("legacy (context-coupled)", legacy_client),
                          ("refactored (independent)", refactored_client)):
        vtime, requests, cm_requests = measure(client)
        stats[label] = (vtime, requests, cm_requests)
        overhead_rows.append([label, vtime, requests, cm_requests])
    record_table(
        "C4 — stateless (HotPage-style) script generation cost per call",
        ["generator", "vtime_ms", "total_reqs", "context_mgr_reqs"],
        overhead_rows,
    )
    legacy_stats = stats["legacy (context-coupled)"]
    clean_stats = stats["refactored (independent)"]
    assert legacy_stats[2] == 3.0    # placeholder create + set + remove
    assert clean_stats[2] == 0.0
    assert legacy_stats[0] > clean_stats[0] * 2

    return {"legacy": legacy_client, "refactored": refactored_client}


def test_c4_legacy_contextful_generation(benchmark, c4):
    benchmark(lambda: c4["legacy"].call("generateScript", "PBS", PARAMS))


def test_c4_refactored_generation(benchmark, c4):
    benchmark(lambda: c4["refactored"].call("generateScript", "PBS", PARAMS))
