"""Experiment F2 — Figure 2: the SAML/Kerberos authentication service.

Regenerates the protocol's cost profile: the one-time login (kinit + TGS +
GSS establishment + begin_session), then the per-request "atomic step" in
three configurations:

- ``unauthenticated`` — no security (the baseline SSP).
- ``atomic-step``     — the paper's protocol: signed assertion per request,
  SPP forwards to the Authentication Service for verification.
- ``cached-verify``   — the extension: the SPP caches positive verdicts
  until the assertion expires.

Expected shape: the atomic step roughly doubles per-request wire time (one
extra round trip SPP->AuthService); caching recovers almost all of it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.security.authservice import AssertionInterceptor, ClientSecuritySession
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.server import HttpServer

NS = "urn:bench:protected"


def _make_ssp(deployment, host, *, interceptor=None):
    server = HttpServer(host, deployment.network)
    soap = SoapService(host, NS)
    soap.expose(lambda x: x, "echo")
    if interceptor is not None:
        soap.add_interceptor(interceptor)
    return soap.mount(server, "/svc")


@pytest.fixture(scope="module")
def fig2(deployment):
    network = deployment.network
    auth_url = deployment.endpoints["auth"]

    open_url = _make_ssp(deployment, "open.bench")
    atomic_url = _make_ssp(
        deployment, "atomic.bench",
        interceptor=AssertionInterceptor(
            network, auth_url, spp_host="atomic.bench", clock=network.clock
        ),
    )
    cached_url = _make_ssp(
        deployment, "cached.bench",
        interceptor=AssertionInterceptor(
            network, auth_url, spp_host="cached.bench", clock=network.clock,
            cache=True,
        ),
    )

    # one-time login cost
    start = network.clock.now
    session = ClientSecuritySession(network, deployment.kdc, auth_url,
                                    ui_host="ui.f2")
    session.login("alice", "alpine")
    login_vtime = network.clock.now - start

    bare = SoapClient(network, open_url, NS, source="ui.f2")
    atomic = session.secure(SoapClient(network, atomic_url, NS, source="ui.f2"))
    # the cached interceptor needs a stable assertion to get cache hits;
    # give it a window long enough to outlive thousands of benchmark rounds
    # of virtual time (each round advances the shared clock)
    session.assertion_lifetime = 10**7
    stable = session.make_assertion()
    session.assertion_lifetime = 300.0
    cached = SoapClient(network, cached_url, NS, source="ui.f2")
    cached.add_header_provider(lambda m, p: [stable.to_xml()])
    for client in (bare, atomic, cached):
        client.call("echo", "warmup")

    def measure(client, repeat=10):
        start = network.clock.now
        before = network.stats.snapshot()
        for _ in range(repeat):
            client.call("echo", "x")
        delta = network.stats.delta(before)
        return (network.clock.now - start) / repeat * 1000, delta.requests / repeat

    rows = [["login (one-time)", login_vtime * 1000, "-"]]
    results = {}
    for label, client in (
        ("unauthenticated", bare),
        ("atomic-step", atomic),
        ("cached-verify", cached),
    ):
        vtime_ms, requests = measure(client)
        results[label] = (vtime_ms, requests)
        rows.append([label, vtime_ms, requests])
    record_table(
        "F2 / Figure 2 — per-request cost of the authentication protocol",
        ["configuration", "vtime_ms", "requests/call"],
        rows,
    )

    # shape: atomic step ~2x the unauthenticated wire cost; caching recovers it
    assert results["atomic-step"][1] == results["unauthenticated"][1] + 1
    assert results["atomic-step"][0] > results["unauthenticated"][0] * 1.5
    assert results["cached-verify"][0] < results["atomic-step"][0] * 0.75

    return {
        "bare": bare, "atomic": atomic, "cached": cached,
        "session": session, "network": network, "deployment": deployment,
    }


def test_fig2_unauthenticated_call(benchmark, fig2):
    benchmark(lambda: fig2["bare"].call("echo", "x"))


def test_fig2_atomic_step_call(benchmark, fig2):
    benchmark(lambda: fig2["atomic"].call("echo", "x"))


def test_fig2_cached_verification_call(benchmark, fig2):
    benchmark(lambda: fig2["cached"].call("echo", "x"))


def test_fig2_login_flow(benchmark, fig2):
    deployment = fig2["deployment"]

    def login():
        session = ClientSecuritySession(
            deployment.network, deployment.kdc, deployment.endpoints["auth"],
            ui_host="ui.f2.login",
        )
        session.login("bob", "builder")
        session.logout()

    benchmark(login)


def test_fig2_assertion_sign_and_verify(benchmark, fig2):
    """CPU cost of the cryptographic core (no network)."""
    session = fig2["session"]

    def sign_verify():
        assertion = session.make_assertion()
        assert assertion.verify_signature(session._context.session_key())

    benchmark(sign_verify)
