"""Experiment O1 — the cost of watching: SOAP dispatch with tracing off/on.

The observability layer instruments every client call and server dispatch
(spans, trace headers on the wire, RED samples).  This benchmark runs the
same echo workload on two identical networks — one bare, one with
``Observability`` installed — and compares wall-clock dispatch cost and
bytes on the wire.  The verdict lands in ``BENCH_observability.json`` at
the repo root so regressions in the instrumentation hot path are diffable
across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import record_table
from repro.observability.runtime import Observability
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

CALLS = 400
ECHO_NAMESPACE = "urn:bench:echo"

def _stack(traced: bool):
    network = VirtualNetwork()
    obs = Observability.install(network, seed=1) if traced else None
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose(lambda text: text.upper(), name="shout")
    url = service.mount(HttpServer("echo.bench.org", network), "/echo")
    client = SoapClient(network, url, ECHO_NAMESPACE, source="bench")
    return network, obs, client

def _run(traced: bool) -> dict:
    network, obs, client = _stack(traced)
    client.call("shout", "warm")  # warm caches outside the timed window
    spans_before = len(obs.collector) if obs is not None else 0
    before = network.stats.snapshot()
    started = time.perf_counter()
    for _ in range(CALLS):
        client.call("shout", "payload")
    elapsed = time.perf_counter() - started
    delta = network.stats.delta(before)
    spans = (len(obs.collector) - spans_before) if obs is not None else 0
    if obs is not None:
        Observability.uninstall(network)
    return {
        "calls": CALLS,
        "wall_s": elapsed,
        "us_per_call": 1e6 * elapsed / CALLS,
        "bytes_sent": delta.bytes_sent,
        "spans": spans,
    }

def test_tracing_overhead_per_dispatch():
    off = _run(traced=False)
    on = _run(traced=True)

    # tracing must actually have traced: three spans per call (logical
    # client call, attempt, server dispatch)
    assert on["spans"] == 3 * CALLS
    assert off["spans"] == 0
    # the trace header rides in the envelope, so the wire grows a little
    assert on["bytes_sent"] > off["bytes_sent"]

    overhead = on["us_per_call"] - off["us_per_call"]
    ratio = on["wall_s"] / off["wall_s"]
    record_table(
        "O1  tracing overhead per SOAP dispatch (off vs on)",
        ["tracing", "calls", "us/call", "bytes sent", "spans"],
        [
            ["off", off["calls"], off["us_per_call"], off["bytes_sent"], 0],
            ["on", on["calls"], on["us_per_call"], on["bytes_sent"],
             on["spans"]],
            ["delta", "", overhead, on["bytes_sent"] - off["bytes_sent"],
             ""],
        ],
    )

    out = Path(__file__).parent.parent / "BENCH_observability.json"
    out.write_text(json.dumps({
        "benchmark": "o1_tracing_overhead",
        "calls": CALLS,
        "untraced": off,
        "traced": on,
        "overhead_us_per_call": overhead,
        "slowdown_ratio": ratio,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    # a generous guard, not a tuning target: instrumentation must stay in
    # the same order of magnitude as the bare dispatch path
    assert ratio < 10, f"tracing slowed dispatch {ratio:.1f}x"
