"""Experiment O1 — the cost of watching: SOAP dispatch with tracing
off / on / on-with-tail-sampling.

The observability layer instruments every client call and server dispatch
(spans, trace propagation, RED samples).  This benchmark runs the same
workload on three identical networks — bare, fully traced, and traced
with the tail sampler deciding retention — and compares wall-clock
dispatch cost and bytes on the wire.  The sampled mode is the ROADMAP's
production configuration, so it carries the hard budget: under 20%
overhead (``slowdown_ratio < 1.2``) while error and latency-outlier
traces are still retained.

Measurement discipline: the three modes are timed in small *interleaved
chunks* — an off chunk, an on chunk, a sampled chunk, milliseconds apart
— and the reported ratio is the median of the per-chunk paired ratios.
Machine noise (scheduler bursts, CPU frequency drift) lands on adjacent
chunks alike and cancels out of the pairs; a run-level "measure one mode
start to finish, then the next" design is visibly unstable on shared
hardware.

The verdict lands in ``BENCH_observability.json`` at the repo root; CI's
ratchet step (tier2-trace) fails the build if the normalized overhead
regresses more than 15% against the committed baseline.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from statistics import median

from benchmarks.conftest import record_table
from repro.faults import PortalError
from repro.observability.runtime import Observability
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

CALLS = 400
#: calls per timing chunk; chunks are interleaved across the three modes
CHUNK = 50
#: interleaved passes over fresh stacks (ratio sample size = passes x chunks)
REPS = 5
ECHO_NAMESPACE = "urn:bench:echo"

#: a representative request body — portal calls carry job descriptors
#: (RSL), not single words, and the overhead budget is a statement about
#: production traffic; instrumentation cost is flat per call, so a
#: realistic payload is what the ratio must be measured against
PAYLOAD = (
    "&(executable=/usr/local/bin/povray)"
    '(arguments="+i scene.pov" "+o frame042.png" "+w 1024" "+h 768")'
    "(directory=/home/gridsphere/renders/job-042)"
    "(stdout=frame042.out)(stderr=frame042.err)"
    "(count=4)(maxWallTime=30)(queue=normal)"
)


class _Stack:
    """One mode's deployment: network, optional observability, client."""

    def __init__(self, mode: str):
        self.mode = mode
        self.network = VirtualNetwork()
        self.obs = None
        if mode != "off":
            self.obs = Observability.install(
                self.network, seed=1, sampling=(mode == "sampled")
            )
        service = SoapService("Echo", ECHO_NAMESPACE)
        service.expose(lambda text: text.upper(), name="shout")

        def flaky(text: str) -> str:
            raise PortalError(f"injected failure for {text!r}")

        service.expose(flaky, name="stumble")
        url = service.mount(HttpServer("echo.bench.org", self.network), "/echo")
        self.client = SoapClient(
            self.network, url, ECHO_NAMESPACE, source="bench"
        )
        self.client.call("shout", "warm")  # warm caches before any timing
        self.stats_before = self.network.stats.snapshot()

    def time_chunk(self) -> float:
        call = self.client.call
        started = time.perf_counter()
        for _ in range(CHUNK):
            call("shout", PAYLOAD)
        return time.perf_counter() - started

    def finish(self, chunks: list[float]) -> dict:
        delta = self.network.stats.delta(self.stats_before)
        # one failed call after the timed window: under tail sampling the
        # error trace must survive the policy chain
        try:
            self.client.call("stumble", "probe")
        except PortalError:
            pass
        obs = self.obs
        if obs is not None and obs.sampler is not None:
            obs.sampler.flush()
        spans = len(obs.collector) if obs is not None else 0
        kept_error_traces = 0
        accounting: dict = {}
        if obs is not None and obs.sampler is not None:
            accounting = obs.sampler.accounting()
            kept_error_traces = len(
                {s["trace_id"] for s in obs.collector.spans() if s["error"]}
            )
        if obs is not None:
            Observability.uninstall(self.network)
        return {
            "calls": CALLS,
            "us_per_call": 1e6 * median(chunks) / CHUNK,
            "bytes_sent": delta.bytes_sent,
            "spans": spans,
            "kept_error_traces": kept_error_traces,
            "accounting": accounting,
        }


MODES = ("off", "on", "sampled")


def _measure() -> tuple[dict[str, dict], dict[str, float]]:
    """REPS interleaved passes; per-mode results and paired median ratios."""
    runs: dict[str, list[dict]] = {mode: [] for mode in MODES}
    paired: dict[str, list[float]] = {"on": [], "sampled": []}
    for _ in range(REPS):
        stacks = {mode: _Stack(mode) for mode in MODES}
        chunks: dict[str, list[float]] = {mode: [] for mode in MODES}
        gc.collect()
        for _ in range(CALLS // CHUNK):
            for mode in MODES:
                chunks[mode].append(stacks[mode].time_chunk())
        for i, off_chunk in enumerate(chunks["off"]):
            paired["on"].append(chunks["on"][i] / off_chunk)
            paired["sampled"].append(chunks["sampled"][i] / off_chunk)
        for mode in MODES:
            runs[mode].append(stacks[mode].finish(chunks[mode]))
    best = {
        mode: min(runs[mode], key=lambda r: r["us_per_call"]) for mode in MODES
    }
    ratios = {mode: median(paired[mode]) for mode in paired}
    return best, ratios


def test_tracing_overhead_per_dispatch():
    best, ratios = _measure()
    off, on, sampled = best["off"], best["on"], best["sampled"]

    # tracing must actually have traced: three spans per call (logical
    # client call, attempt, server dispatch), plus the post-window error
    # probe's trace
    assert on["spans"] >= 3 * CALLS
    assert off["spans"] == 0
    # trace context rides the transport header, so the wire still grows
    assert on["bytes_sent"] > off["bytes_sent"]

    # the tail sampler must have dropped the boring bulk ...
    acct = sampled["accounting"]
    assert acct["dropped_traces"] > 0
    assert sampled["spans"] < on["spans"] / 2
    # ... while retaining every error trace (the probe call at minimum)
    assert sampled["kept_error_traces"] >= 1
    assert acct["kept_by_policy"].get("errors", 0) >= 1

    overhead_on = on["us_per_call"] - off["us_per_call"]
    overhead_sampled = sampled["us_per_call"] - off["us_per_call"]
    ratio_on = ratios["on"]
    ratio_sampled = ratios["sampled"]
    record_table(
        "O1  tracing overhead per SOAP dispatch (off / on / sampled)",
        ["tracing", "calls", "us/call", "bytes sent", "spans"],
        [
            ["off", off["calls"], off["us_per_call"], off["bytes_sent"], 0],
            ["on", on["calls"], on["us_per_call"], on["bytes_sent"],
             on["spans"]],
            ["sampled", sampled["calls"], sampled["us_per_call"],
             sampled["bytes_sent"], sampled["spans"]],
            ["ratio on", "", ratio_on, "", ""],
            ["ratio sampled", "", ratio_sampled, "", ""],
        ],
    )

    out = Path(__file__).parent.parent / "BENCH_observability.json"
    out.write_text(json.dumps({
        "benchmark": "o1_tracing_overhead",
        "calls": CALLS,
        "untraced": {k: v for k, v in off.items() if k != "accounting"},
        "traced": {k: v for k, v in on.items() if k != "accounting"},
        "sampled": sampled,
        "overhead_us_per_call": overhead_on,
        "sampled_overhead_us_per_call": overhead_sampled,
        "slowdown_ratio": ratio_on,
        "sampled_slowdown_ratio": ratio_sampled,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    # full tracing keeps its generous same-order-of-magnitude guard ...
    assert ratio_on < 10, f"tracing slowed dispatch {ratio_on:.1f}x"
    # ... but the sampled mode is the production configuration and holds
    # the ROADMAP's hard budget: under 20% overhead
    assert ratio_sampled < 1.2, (
        f"tail-sampled tracing slowed dispatch {ratio_sampled:.2f}x "
        "(budget: < 1.2x)"
    )
