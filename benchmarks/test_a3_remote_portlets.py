"""Ablation A3 — remote UI aggregation: HTML scraping vs WSRP.

§5.4 builds WebFormPortlet (proxy the remote page, rewrite its URLs); §6
points at WSRP as the standards-track alternative.  This ablation puts the
same wizard-generated editor behind both mechanisms and compares the
per-render wire cost and the interaction path.

Measured shape (an honest surprise): WSRP is *not* byte-cheaper — the
markup travels inside a SOAP string, so the envelope plus XML escaping of
every ``<`` and ``"`` inflate it past the raw page the scraper fetches.
What WSRP buys instead is structural: no client-side HTML parsing and URL
rewriting (the producer renders against the consumer's base directly), and
per-user portlet state lives on the producer.  Both support form
interaction.  This is the classic SOAP tax the paper's string-heavy
interfaces keep running into (compare C1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.appws.schemas import combined_schema
from repro.portlets.webform import WebFormPortlet
from repro.portlets.wsrp import (
    WsrpConsumerPortlet,
    WsrpProducer,
    deploy_wsrp_producer,
)
from repro.portlets.base import Portlet
from repro.transport.server import HttpServer
from repro.wizard.generator import SchemaWizard


class _ProducerEditorPortlet(Portlet):
    """Producer-side portlet rendering the wizard form *locally* — no HTTP
    hop between the portlet and the webapp because they share the host."""

    def __init__(self, user: str, wizard: SchemaWizard):
        super().__init__("editor", "Editor")
        self.user = user
        self.wizard = wizard

    def render(self, container_base: str) -> str:
        return self.wizard.render_page(
            "queue", action=f"{container_base}&portlet=editor&target=save",
            base=container_base,
        )


@pytest.fixture(scope="module")
def a3(deployment):
    network = deployment.network

    # the scraping path: a wizard webapp on apps.a3, proxied by WebFormPortlet
    apps_server = HttpServer("apps.a3", network)
    wizard = SchemaWizard(network, source_host="apps.a3")
    wizard.load(combined_schema())
    webapp = wizard.deploy(apps_server, "editor", "queue")
    scraping = WebFormPortlet("editor", webapp.url(), network,
                              container_host="portal.a3")

    # the WSRP path: the same editor rendered producer-side
    producer = WsrpProducer()
    producer.register_portlet(
        "editor", lambda user: _ProducerEditorPortlet(user, wizard), "Editor"
    )
    endpoint = deploy_wsrp_producer(network, producer, "producer.a3")
    wsrp = WsrpConsumerPortlet("editor", network, endpoint, "editor", "alice",
                               consumer_host="portal.a3")

    def measure(portlet, repeat=5):
        portlet.render("/portal?user=alice")  # warm
        before = network.stats.snapshot()
        start = network.clock.now
        for _ in range(repeat):
            if isinstance(portlet, WebFormPortlet):
                portlet.fetch()  # scraping refetches the page
            fragment = portlet.render("/portal?user=alice")
        delta = network.stats.delta(before)
        return (
            delta.bytes_received / repeat,
            delta.requests / repeat,
            (network.clock.now - start) / repeat * 1000,
            fragment,
        )

    rows = []
    stats = {}
    for label, portlet in (("WebFormPortlet (scrape+rewrite)", scraping),
                           ("WSRP (remote render)", wsrp)):
        rx, requests, vtime, fragment = measure(portlet)
        assert 'name="queue.queuingSystem"' in fragment
        stats[label] = (rx, requests, vtime)
        rows.append([label, rx, requests, vtime])
    record_table(
        "A3 (ablation) — per-render cost: HTML scraping vs WSRP",
        ["mechanism", "rx_bytes/render", "requests/render", "vtime_ms/render"],
        rows,
    )
    # the SOAP tax: WSRP's escaped-markup-in-envelope costs MORE bytes than
    # fetching the raw page, by roughly the XML-escaping amplification
    wsrp_bytes = stats["WSRP (remote render)"][0]
    scrape_bytes = stats["WebFormPortlet (scrape+rewrite)"][0]
    assert scrape_bytes < wsrp_bytes < scrape_bytes * 2.5
    # both cost one request per render
    assert stats["WSRP (remote render)"][1] == 1.0
    assert stats["WebFormPortlet (scrape+rewrite)"][1] == 1.0

    return {"scraping": scraping, "wsrp": wsrp}


def test_a3_scraping_render(benchmark, a3):
    portlet = a3["scraping"]

    def render():
        portlet.fetch()
        portlet.render("/portal?user=alice")

    benchmark(render)


def test_a3_wsrp_render(benchmark, a3):
    benchmark(lambda: a3["wsrp"].render("/portal?user=alice"))
