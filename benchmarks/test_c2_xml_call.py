"""Experiment C2 — §3.2: xml_call batches SRB commands over one connection.

"The xml_call method allows the client to create a single request string
consisting of multiple SRB commands expressed in XML and sent to the Web
Service using a single connection."

We sweep the batch size K and compare K separate SOAP calls (each on a
fresh connection, as a 2002 non-keep-alive client would) against a single
xml_call carrying all K commands.

Expected shape: the separate path pays K connections and K round trips; the
batched path pays exactly 1 of each, so its advantage grows linearly with K
and is dominated by connection setup + latency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.services.datamgmt import SRBWS_NAMESPACE, make_request_xml, parse_results_xml
from repro.soap.client import SoapClient
from repro.transport.client import HttpClient

BATCH_SIZES = [1, 4, 16, 64]


@pytest.fixture(scope="module")
def c2(deployment):
    network = deployment.network
    # the 2002-style client: a fresh connection per call
    fresh_http = HttpClient(network, "ui.c2", keep_alive=False)
    per_call = SoapClient(
        network, deployment.endpoints["srb"], SRBWS_NAMESPACE,
        source="ui.c2", http_client=fresh_http,
    )
    batched = SoapClient(
        network, deployment.endpoints["srb"], SRBWS_NAMESPACE,
        source="ui.c2b",
        http_client=HttpClient(network, "ui.c2b", keep_alive=False),
    )
    per_call.call("ls", "/home/portal", "")  # ensure the path exists / warm

    rows = []
    results = {}
    for k in BATCH_SIZES:
        commands = [("ls", ["/home/portal"])] * k

        before = network.stats.snapshot()
        start = network.clock.now
        for name, args in commands:
            per_call.call(name, args[0], "")
        separate_vtime = network.clock.now - start
        separate = network.stats.delta(before)

        before = network.stats.snapshot()
        start = network.clock.now
        response = batched.call("xml_call", make_request_xml(commands))
        batch_vtime = network.clock.now - start
        batch = network.stats.delta(before)
        assert len(parse_results_xml(response)) == k

        results[k] = (separate, batch, separate_vtime, batch_vtime)
        rows.append([
            k, separate.connections, batch.connections,
            separate.requests, batch.requests,
            separate_vtime * 1000, batch_vtime * 1000,
            separate_vtime / batch_vtime,
        ])
    record_table(
        "C2 / §3.2 — K separate SOAP calls vs one xml_call",
        ["K", "sep_conns", "batch_conns", "sep_reqs", "batch_reqs",
         "sep_vtime_ms", "batch_vtime_ms", "speedup"],
        rows,
    )
    # shape: the batch always uses exactly one connection and one request,
    # and its advantage grows with K
    for row in rows:
        assert row[2] == 1 and row[4] == 1
        assert row[1] == row[0] and row[3] == row[0]
    speedups = [row[7] for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 10  # at K=64 batching wins by an order of magnitude

    return {"per_call": per_call, "batched": batched}


def test_c2_sixteen_separate_calls(benchmark, c2):
    client = c2["per_call"]

    def run():
        for _ in range(16):
            client.call("ls", "/home/portal", "")

    benchmark(run)


def test_c2_one_xml_call_of_sixteen(benchmark, c2):
    client = c2["batched"]
    request = make_request_xml([("ls", ["/home/portal"])] * 16)
    benchmark(lambda: client.call("xml_call", request))
