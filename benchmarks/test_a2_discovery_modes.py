"""Ablation A2 — three discovery mechanisms under partial failure.

§2 names UDDI *and* WSIL as the discovery options; §3.4 proposes the
container hierarchy.  This ablation compares all three on the same
federation of service providers:

- lookup cost (round trips + virtual time) to enumerate every batch-script
  service;
- behaviour when one provider site is down: the central registries still
  answer completely (stale entries included), while the WSIL crawl returns
  a partial answer but only costs the reachable sites.

There is no single winner — which is the honest 2002 state of the art the
paper describes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.discovery.registry import ContainerRegistry, DiscoveryClient, deploy_discovery
from repro.discovery.wsil import InspectionDocument, inspect, publish_inspection
from repro.transport.server import HttpServer
from repro.uddi.model import BusinessEntity, BusinessService
from repro.uddi.registry import UddiRegistry
from repro.uddi.service import UddiClient, deploy_uddi

SITES = [f"site{i}.a2" for i in range(6)]


@pytest.fixture(scope="module")
def a2(deployment):
    network = deployment.network
    # one service per site, advertised in all three systems
    uddi_registry, uddi_url = deploy_uddi(network, "uddi.a2",
                                          registry=UddiRegistry())
    container_registry, container_url = deploy_discovery(
        network, "container.a2", registry=ContainerRegistry()
    )
    uddi = UddiClient(network, uddi_url, source="ui.a2")
    containers = DiscoveryClient(network, container_url, source="ui.a2")

    entity = uddi.save_business(BusinessEntity("", "A2 federation"))
    previous_doc: InspectionDocument | None = None
    for index, site in enumerate(SITES):
        server = HttpServer(site, network)
        document = InspectionDocument()
        document.add_service(f"bsg-{index}", f"http://{site}/bsg.wsdl",
                             "batch script generation")
        if previous_doc is not None:
            document.add_link(f"http://{SITES[index - 1]}/inspection.wsil")
        publish_inspection(server, document)
        previous_doc = document
        uddi.save_service(BusinessService(
            "", entity.key, f"bsg-{index}",
            description="batch script generation",
        ))
        containers.register(f"services/bsg-{index}",
                            {"kind": "batch-script", "site": site})
    crawl_root = f"http://{SITES[-1]}/inspection.wsil"

    def measure(func):
        before = network.stats.snapshot()
        start = network.clock.now
        found = func()
        delta = network.stats.delta(before)
        return len(found), delta.requests, (network.clock.now - start) * 1000

    queries = {
        "UDDI (central)": lambda: uddi.find_service("bsg-%"),
        "container hierarchy (central)": lambda: containers.query(
            {"kind": "batch-script"}
        ),
        "WSIL crawl (decentralized)": lambda: inspect(
            network, crawl_root, source="ui.a2"
        ),
    }

    rows = []
    healthy = {}
    for label, func in queries.items():
        found, requests, vtime = measure(func)
        healthy[label] = found
        rows.append([label, "all sites up", found, requests, vtime])

    # take a mid-chain site down: the crawl loses everything behind it
    network.take_down(SITES[3])
    degraded = {}
    for label, func in queries.items():
        found, requests, vtime = measure(func)
        degraded[label] = found
        rows.append([label, f"{SITES[3]} down", found, requests, vtime])
    network.bring_up(SITES[3])

    record_table(
        "A2 (ablation) — discovery mechanisms and partial failure",
        ["mechanism", "condition", "services_found", "requests", "vtime_ms"],
        rows,
    )
    # everyone finds everything when healthy
    assert set(healthy.values()) == {len(SITES)}
    # central registries keep answering (stale or not); the crawl degrades
    assert degraded["UDDI (central)"] == len(SITES)
    assert degraded["container hierarchy (central)"] == len(SITES)
    assert degraded["WSIL crawl (decentralized)"] < len(SITES)
    # the crawl costs one request per site; central costs one total
    crawl_row = next(r for r in rows if r[0].startswith("WSIL") and r[1] == "all sites up")
    central_row = next(r for r in rows if r[0].startswith("UDDI") and r[1] == "all sites up")
    assert crawl_row[3] == len(SITES)
    assert central_row[3] == 1

    return {"uddi": uddi, "containers": containers, "network": network,
            "crawl_root": crawl_root}


def test_a2_uddi_lookup(benchmark, a2):
    benchmark(lambda: a2["uddi"].find_service("bsg-%"))


def test_a2_container_lookup(benchmark, a2):
    benchmark(lambda: a2["containers"].query({"kind": "batch-script"}))


def test_a2_wsil_crawl(benchmark, a2):
    benchmark(lambda: inspect(a2["network"], a2["crawl_root"], source="ui.a2"))
