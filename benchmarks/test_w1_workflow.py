"""Experiment W1 — workflow engine throughput, schedule quality, resume cost.

Seeded fan-out sweeps (script -> place/run x width -> collect) run through
a full portal deployment at widths 2..16.  For each width we report the
virtual-time makespan, stage throughput, and how close the executor's
schedule comes to the DAG's critical-path lower bound — the longest
weighted root-to-leaf path no executor width can beat.  A final run
crashes the executor mid-DAG and resumes from the journal, and the
overhead of the crash (extra virtual seconds and re-driven stages versus
the uninterrupted baseline) is the resume cost.  The verdict lands in
``BENCH_workflow.json`` at the repo root so regressions in the executor
hot path are diffable across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import record_table
from repro.grid.jobs import JobSpec
from repro.portal.uiserver import PortalDeployment, UserInterfaceServer
from repro.services.jobsubmit import jobs_to_xml
from repro.shell import (
    BatchScriptStage,
    GlobusrunStage,
    MetaScheduleStage,
    SrbPutStage,
    Workflow,
    const,
    critical_path,
    provenance_tree,
    ref,
    stage_timings,
)

SEED = 7
UI_HOST = "ui.bench.org"
GLOBUSRUN_HOST = "globusrun.sdsc.edu"
WIDTHS = (2, 4, 8, 16)
RESUME_WIDTH = 8
RESUME_CUT = 7


def _sweep(width: int) -> Workflow:
    stages = [
        BatchScriptStage(
            "script",
            scheduler="PBS",
            params={"executable": "/bin/sweep", "cpus": "1"},
        ),
    ]
    collect_inputs = {}
    for index in range(width):
        jobs = jobs_to_xml([
            ("", JobSpec(
                name=f"bench-{index}",
                executable="echo",
                arguments=[f"point-{index}"],
            )),
        ])
        stages.append(MetaScheduleStage(
            f"place-{index}", inputs={"jobs": const(jobs)},
        ))
        stages.append(GlobusrunStage(
            f"run-{index}",
            inputs={
                "jobs": ref(f"place-{index}", "placed"),
                "script": ref("script", "script"),
            },
        ))
        collect_inputs[f"r{index}"] = ref(f"run-{index}", "results")
    stages.append(SrbPutStage(
        "collect", path="/home/portal/bench-sweep.out", inputs=collect_inputs,
    ))
    return Workflow(f"bench-w{width}", stages)


def _executor(deployment, width: int, run_id: str):
    ui = UserInterfaceServer(deployment, host=UI_HOST)
    return ui.workflow_executor(
        _sweep(width), run_id=run_id, seed=SEED, journal_name=f"wf-{run_id}",
    )


def _run_width(width: int) -> dict:
    deployment = PortalDeployment.build(durable=True)
    executor = _executor(deployment, width, f"run-w{width}")
    result = executor.run()
    assert result.done, result.failed
    timings = stage_timings(executor.journal)
    bound = critical_path(executor.workflow, timings)
    stages = len(result.stage_order)
    return {
        "width": width,
        "stages": stages,
        "makespan_s": round(result.makespan, 6),
        "stages_per_s": round(stages / result.makespan, 4),
        "critical_path_s": round(bound["length"], 6),
        "slowdown_vs_bound": round(result.makespan / bound["length"], 4),
    }


def _run_resume() -> dict:
    baseline_deployment = PortalDeployment.build(durable=True)
    baseline = _executor(baseline_deployment, RESUME_WIDTH, "run-resume")
    whole = baseline.run()
    assert whole.done, whole.failed

    deployment = PortalDeployment.build(durable=True)
    first = _executor(deployment, RESUME_WIDTH, "run-resume")
    started = deployment.network.clock.now
    first.run(max_stages=RESUME_CUT)
    network = deployment.network
    network.take_down(GLOBUSRUN_HOST)
    network.bring_up(GLOBUSRUN_HOST)
    deployment.rebuilders[GLOBUSRUN_HOST]()
    second = _executor(deployment, RESUME_WIDTH, "run-resume")
    resumed = second.run()
    assert resumed.done, resumed.failed
    total = deployment.network.clock.now - started
    assert provenance_tree(second.store, "run-resume") == provenance_tree(
        baseline.store, "run-resume"
    )
    return {
        "width": RESUME_WIDTH,
        "cut_after_stages": RESUME_CUT,
        "baseline_makespan_s": round(whole.makespan, 6),
        "resumed_total_s": round(total, 6),
        "overhead_s": round(total - whole.makespan, 6),
        "stages_recovered": len(second.completed) - len(resumed.stage_order),
        "stages_redriven": len(resumed.stage_order),
    }


def test_workflow_throughput_schedule_quality_and_resume_cost():
    runs = [_run_width(width) for width in WIDTHS]
    resume = _run_resume()

    for run in runs:
        # the schedule stays within a small factor of the lower bound
        assert run["slowdown_vs_bound"] < 20.0, run
        assert run["stages_per_s"] > 0.0, run
    # resume re-drives only the unfinished stages, never the whole DAG
    assert resume["stages_redriven"] == 2 * RESUME_WIDTH + 2 - RESUME_CUT
    # journal replay costs no virtual time beyond re-driving those stages
    assert resume["overhead_s"] < resume["baseline_makespan_s"]

    record_table(
        "W1  sweep makespan vs critical-path lower bound",
        ["width", "stages", "makespan s", "stages/s", "bound s", "slowdown"],
        [
            [r["width"], r["stages"], r["makespan_s"], r["stages_per_s"],
             r["critical_path_s"], r["slowdown_vs_bound"]]
            for r in runs
        ],
    )
    record_table(
        "W1  crash/resume overhead (width 8, cut after 7 stages)",
        ["baseline s", "crashed+resumed s", "overhead s", "re-driven stages"],
        [[resume["baseline_makespan_s"], resume["resumed_total_s"],
          resume["overhead_s"], resume["stages_redriven"]]],
    )

    out = Path(__file__).parent.parent / "BENCH_workflow.json"
    out.write_text(json.dumps({
        "benchmark": "w1_workflow",
        "seed": SEED,
        "widths": list(WIDTHS),
        "runs": runs,
        "resume": resume,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
