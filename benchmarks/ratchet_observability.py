"""CI ratchet for the tracing-overhead benchmark.

Compares a fresh ``BENCH_observability.json`` against the committed
baseline and fails (exit 1) when instrumentation overhead regressed more
than the tolerance.  The compared figure is the *normalized* overhead —
``overhead_us_per_call / untraced us_per_call`` — because absolute
microseconds differ machine to machine (a CI runner is not the laptop
that committed the baseline) while the overhead *fraction* is the
property the hot-path work actually guards.

Usage::

    python benchmarks/ratchet_observability.py BASELINE.json CURRENT.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: a regression is a normalized overhead more than 15% over baseline
TOLERANCE = 1.15


def normalized_overheads(report: dict) -> dict[str, float]:
    """Per-mode overhead as a fraction of the untraced per-call cost."""
    off = report["untraced"]["us_per_call"]
    return {
        "traced": report["overhead_us_per_call"] / off,
        "sampled": report["sampled_overhead_us_per_call"] / off,
    }


def compare(
    baseline: dict, current: dict, tolerance: float = TOLERANCE
) -> list[str]:
    """Regression messages, empty when the ratchet holds."""
    base = normalized_overheads(baseline)
    cur = normalized_overheads(current)
    failures = []
    for mode in sorted(base):
        if base[mode] <= 0:  # degenerate baseline: nothing to ratchet against
            continue
        if cur[mode] > base[mode] * tolerance:
            failures.append(
                f"{mode} tracing overhead regressed: {cur[mode]:.3f}x of an "
                f"untraced call vs {base[mode]:.3f}x at baseline "
                f"(tolerance {tolerance:g}x)"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = json.loads(Path(argv[1]).read_text(encoding="utf-8"))
    current = json.loads(Path(argv[2]).read_text(encoding="utf-8"))
    failures = compare(baseline, current)
    for line in failures:
        print(f"RATCHET FAIL: {line}", file=sys.stderr)
    if not failures:
        cur = normalized_overheads(current)
        print(
            "ratchet holds: traced "
            f"{cur['traced']:.3f}x, sampled {cur['sampled']:.3f}x "
            f"of an untraced call (tolerance {TOLERANCE:g}x vs baseline)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
