"""Experiment L1 — goodput under overload, with and without admission control.

Three principals with 3:2:1 fair-share weights offer an open-loop arrival
schedule at 1x, 2x and 5x the modelled service capacity.  With the
admission controller on, excess work is refused early with a retry-after
hint and goodput stays pinned at capacity; with it off, the unprotected
server queues work whose callers have already given up and goodput
collapses into deadline sheds.  The verdict lands in ``BENCH_loadmgmt.json``
at the repo root so regressions in the admission hot path are diffable
across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import record_table
from repro.faults import PortalError
from repro.loadmgmt import AdmissionController, LaneConfig
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

ECHO_NAMESPACE = "urn:bench:echo"
CAPACITY = 4.0  # modelled requests per virtual second
WEIGHTS = {"alice": 3.0, "bob": 2.0, "carol": 1.0}
DURATION = 60.0  # virtual seconds per run
SEED = 42


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _run(*, multiple: float, enabled: bool) -> dict:
    network = VirtualNetwork(seed=SEED)
    controller = AdmissionController(
        network.clock,
        capacity=CAPACITY,
        max_wait=2.5,
        lanes={name: LaneConfig(weight=w) for name, w in WEIGHTS.items()},
        enabled=enabled,
        service="Echo",
    )
    service = SoapService("Echo", ECHO_NAMESPACE)
    service.expose(lambda text: text, name="work")
    service.enable_admission(controller)
    url = service.mount(HttpServer("echo.bench.org", network), "/echo")

    total_rate = multiple * CAPACITY
    clients, next_at, interval = {}, {}, {}
    for index, name in enumerate(sorted(WEIGHTS)):
        clients[name] = SoapClient(
            network, url, ECHO_NAMESPACE, source=f"{name}.org", principal=name
        )
        interval[name] = len(WEIGHTS) / total_rate
        next_at[name] = index * interval[name] / len(WEIGHTS)

    timeout = None if enabled else 3.0
    started = network.clock.now
    succeeded = shed = 0
    latencies: list[float] = []
    while True:
        name = min(next_at, key=lambda n: (next_at[n], n))
        at = next_at[name]
        if at - started >= DURATION:
            break
        network.clock.sleep_until(at)
        t0 = network.clock.now
        try:
            clients[name].call("work", "payload", timeout=timeout)
            succeeded += 1
            latencies.append(network.clock.now - t0)
        except PortalError:
            shed += 1
        next_at[name] = at + interval[name]

    # the driver is serial, so at high multiples the virtual clock can
    # outrun the nominal schedule; goodput divides by real elapsed time
    elapsed = max(network.clock.now - started, DURATION)
    offered = succeeded + shed
    return {
        "multiple": multiple,
        "admission": "on" if enabled else "off",
        "offered": offered,
        "succeeded": succeeded,
        "shed": shed,
        "goodput_per_s": succeeded / elapsed,
        "shed_rate": shed / offered if offered else 0.0,
        "p99_latency_s": _percentile(latencies, 0.99),
    }


def test_overload_throughput_with_and_without_admission():
    runs = [
        _run(multiple=m, enabled=on)
        for m in (1.0, 2.0, 5.0)
        for on in (True, False)
    ]
    by_key = {(r["multiple"], r["admission"]): r for r in runs}

    # admission holds goodput at capacity even at 5x offered load
    protected = by_key[(5.0, "on")]
    assert protected["goodput_per_s"] > 0.9 * CAPACITY
    # without it, goodput collapses under the same offered load
    unprotected = by_key[(5.0, "off")]
    assert unprotected["goodput_per_s"] < 0.5 * protected["goodput_per_s"]
    # admitted requests see bounded queueing: p99 stays within the
    # controller's max modelled wait plus the wire round trip
    assert protected["p99_latency_s"] < 2.5 + 0.5

    record_table(
        "L1  goodput under overload (admission on vs off)",
        ["offered", "admission", "goodput/s", "shed rate", "p99 latency s"],
        [
            [f"{r['multiple']:.0f}x", r["admission"], r["goodput_per_s"],
             r["shed_rate"], r["p99_latency_s"]]
            for r in runs
        ],
    )

    out = Path(__file__).parent.parent / "BENCH_loadmgmt.json"
    out.write_text(json.dumps({
        "benchmark": "l1_overload_throughput",
        "capacity_per_s": CAPACITY,
        "duration_s": DURATION,
        "weights": WEIGHTS,
        "seed": SEED,
        "runs": runs,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
