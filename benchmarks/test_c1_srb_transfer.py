"""Experiment C1 — §3.2: "This transfer mechanism does not scale well."

The SRB web service's ``get`` streams the file as a (base64) string inside
the SOAP envelope.  We sweep file sizes and compare bytes-on-wire and
virtual transfer time against the out-of-band transfer extension
(``transfer_url`` + raw HTTP).

Expected shape: the SOAP path carries ~4/3 the payload bytes plus envelope
overhead at every size; the relative overhead is flat (~33%+) so the
absolute waste grows linearly with file size — exactly why the paper calls
string streaming "only ... a proof of concept".
"""

from __future__ import annotations

import base64

import pytest

from benchmarks.conftest import record_table
from repro.services.datamgmt import SRBWS_NAMESPACE
from repro.soap.client import SoapClient
from repro.transport.client import HttpClient

SIZES = [1024, 8 * 1024, 64 * 1024, 512 * 1024, 2 * 1024 * 1024]


@pytest.fixture(scope="module")
def c1(deployment):
    network = deployment.network
    client = SoapClient(
        network, deployment.endpoints["srb"], SRBWS_NAMESPACE, source="ui.c1"
    )
    http = HttpClient(network, "ui.c1")
    payloads = {}
    for size in SIZES:
        data = bytes((i * 131 + 7) % 256 for i in range(size))
        payloads[size] = data
        client.call(
            "put", f"/home/portal/c1-{size}",
            base64.b64encode(data).decode("ascii"),
        )

    rows = []
    for size in SIZES:
        path = f"/home/portal/c1-{size}"
        before = network.stats.snapshot()
        start = network.clock.now
        client.call("get", path)
        soap_vtime = network.clock.now - start
        soap_bytes = network.stats.delta(before).bytes_received

        url_path = client.call("transfer_url", path)
        before = network.stats.snapshot()
        start = network.clock.now
        response = http.get(f"http://srbws.sdsc.edu{url_path}")
        oob_vtime = network.clock.now - start
        oob_bytes = network.stats.delta(before).bytes_received
        assert response.body.encode("latin-1") == payloads[size]

        rows.append([
            size, soap_bytes, oob_bytes, soap_bytes / oob_bytes,
            soap_vtime * 1000, oob_vtime * 1000,
        ])
    record_table(
        "C1 / §3.2 — SOAP string streaming vs out-of-band transfer (get)",
        ["file_bytes", "soap_wire_bytes", "oob_wire_bytes", "amplification",
         "soap_vtime_ms", "oob_vtime_ms"],
        rows,
    )
    # shape: amplification stays >= ~1.3x at every size and the absolute gap grows
    assert all(row[3] > 1.25 for row in rows)
    gaps = [row[1] - row[2] for row in rows]
    assert gaps == sorted(gaps)
    # the virtual transfer time gap also widens with size
    assert (rows[-1][4] - rows[-1][5]) > (rows[0][4] - rows[0][5])

    return {"client": client, "http": http, "network": network}


def test_c1_soap_get_64k(benchmark, c1):
    benchmark(lambda: c1["client"].call("get", "/home/portal/c1-65536"))


def test_c1_oob_get_64k(benchmark, c1):
    client, http = c1["client"], c1["http"]

    def transfer():
        path = client.call("transfer_url", "/home/portal/c1-65536")
        return http.get(f"http://srbws.sdsc.edu{path}")

    benchmark(transfer)


def test_c1_soap_put_64k(benchmark, c1):
    payload = base64.b64encode(b"y" * 65536).decode("ascii")
    benchmark(lambda: c1["client"].call("put", "/home/portal/c1-put", payload))
