"""Experiment C8 — §5.4: WebFormPortlet aggregation.

"a particular portlet could contain application interfaces for structural
mechanics, chemistry, physics, and fluid dynamics applications, but each
individual user's interface consists only of the interfaces that interest
him."

We sweep the number of remote application UIs aggregated into one portal
page, measure the composite render cost, and measure the three
WebFormPortlet features (link following, form posting, session keeping)
through the container.

Expected shape: page aggregation cost grows linearly with the portlet
count (one remote fetch each on first render; cached copies after);
per-user layouts only pay for the portlets a user selected.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.appws.schemas import combined_schema
from repro.portlets.container import PortletContainer
from repro.portlets.registry import PortletEntry
from repro.transport.client import HttpClient
from repro.transport.server import HttpServer
from repro.wizard.generator import SchemaWizard

PORTLET_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def c8(deployment):
    network = deployment.network
    # eight wizard-generated application editors on a remote host
    apps_server = HttpServer("apps.c8", network)
    wizard = SchemaWizard(network, source_host="apps.c8")
    wizard.load(combined_schema())
    webapps = []
    for index in range(max(PORTLET_COUNTS)):
        webapps.append(
            wizard.deploy(apps_server, f"editor-{index}", "queue",
                          title=f"Application editor {index}")
        )

    container = PortletContainer(network, "portal.c8", columns=3)
    for index, webapp in enumerate(webapps):
        container.registry.register(PortletEntry(
            f"editor-{index}", "WebFormPortlet", webapp.url(),
            title=f"Editor {index}",
        ))

    rows = []
    for count in PORTLET_COUNTS:
        user = f"user{count}"
        container.set_layout(user, [f"editor-{i}" for i in range(count)])
        before = network.stats.snapshot()
        start = network.clock.now
        page = container.render_page(user)
        cold = network.clock.now - start
        cold_fetches = network.stats.delta(before).requests

        start = network.clock.now
        before = network.stats.snapshot()
        container.render_page(user)
        warm = network.clock.now - start
        warm_fetches = network.stats.delta(before).requests

        assert page.count('<table class="portlet">') == count
        rows.append([count, cold * 1000, cold_fetches, warm * 1000,
                     warm_fetches])
    record_table(
        "C8 / §5.4 — portal page aggregation vs portlet count",
        ["portlets", "cold_vtime_ms", "cold_fetches", "warm_vtime_ms",
         "warm_fetches"],
        rows,
    )
    # shape: one remote fetch per portlet on the cold render, none warm
    for row in rows:
        assert row[2] == row[0]
        assert row[4] == 0
    cold_times = [row[1] for row in rows]
    assert cold_times == sorted(cold_times)

    browser = HttpClient(network, "browser.c8")
    return {"container": container, "browser": browser, "network": network}


def test_c8_cold_aggregation_four_portlets(benchmark, c8):
    container = c8["container"]
    container.set_layout("bench-user", [f"editor-{i}" for i in range(4)])

    def cold_render():
        # drop the per-user instances so every render re-fetches
        for key in [k for k in container._instances if k[0] == "bench-user"]:
            del container._instances[key]
        container.render_page("bench-user")

    benchmark(cold_render)


def test_c8_warm_aggregation_four_portlets(benchmark, c8):
    container = c8["container"]
    container.set_layout("warm-user", [f"editor-{i}" for i in range(4)])
    container.render_page("warm-user")
    benchmark(lambda: container.render_page("warm-user"))


def test_c8_form_submission_through_portlet(benchmark, c8):
    container, browser = c8["container"], c8["browser"]
    container.set_layout("poster", ["editor-0"])
    browser.get("http://portal.c8/portal?user=poster")
    target = "http%3A%2F%2Fapps.c8%2Fwebapps%2Feditor-0%2Fsave"
    url = (
        "http://portal.c8/portal?user=poster&portlet=editor-0"
        f"&target={target}&method=POST"
    )
    fields = {
        "instanceName": "bench",
        "queue.queuingSystem": "PBS",
        "queue.queueName": "workq",
        "queue.maxWallTime": "600",
        "queue.maxCpus": "4",
    }
    benchmark(lambda: browser.post_form(url, fields))
