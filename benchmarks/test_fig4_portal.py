"""Experiment F4 — Figure 4: the integrated service-based portal.

Regenerates the "distributed operating system" view as measurements of the
two interface levels: a shell command (tool-chest level) versus the
system-level grid calls it encapsulates, and the cost of composing core
services into pipelines.

Expected shape: each added pipeline stage costs roughly one more
service round trip; the full application run (runapp) touches the
batch-script, job-submission, and context services without the UI host ever
contacting a gatekeeper directly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.portal.uiserver import UserInterfaceServer


@pytest.fixture(scope="module")
def fig4(deployment):
    ui = UserInterfaceServer(deployment, host="ui.f4")
    ui.login("alice", "alpine")
    shell = ui.make_shell("alice")
    network = deployment.network
    shell.run("srbls /home/portal")  # warm connections

    pipelines = [
        ("echo hello", "echo hello"),
        ("genscript", "genscript PBS executable=/x cpus=1 wallTime=600"),
        ("genscript|srbput",
         "genscript PBS executable=/x cpus=1 wallTime=600"
         " | srbput /home/portal/f4.pbs"),
        ("genscript|validate|srbput",
         "genscript PBS executable=/x cpus=1 wallTime=600"
         " | validate PBS | srbput /home/portal/f4b.pbs"),
    ]
    rows = []
    for label, line in pipelines:
        start = network.clock.now
        before = network.stats.snapshot()
        shell.run(line)
        delta = network.stats.delta(before)
        rows.append([label, (network.clock.now - start) * 1000, delta.requests])
    record_table(
        "F4 / Figure 4 — portal shell pipelines (tool-chest level)",
        ["pipeline", "vtime_ms", "service_requests"],
        rows,
    )
    assert rows[0][2] == 0      # pure-local stages cost no wire traffic
    assert rows[1][2] == 1      # one core-service call
    assert rows[2][2] == 2      # two core-service calls
    assert rows[3][2] == 3      # each pipeline stage adds one round trip

    # the two interface levels: a runapp touches services, which touch the grid
    before = network.stats.snapshot()
    start = network.clock.now
    shell.run("runapp Gaussian modi4.iu.edu basisSize=60 | archive alice/f4/run")
    delta = network.stats.delta(before)
    per_host = {
        host: count for host, count in delta.per_host_requests.items() if count
    }
    record_table(
        "F4 — full application run: requests per host (two interface levels)",
        ["host", "requests"],
        sorted(per_host.items()),
    )
    # the UI talked to appws + context; appws talked to bsg + globusrun;
    # only globusrun talked to the gatekeeper
    assert per_host.get("appws.gridportal.org", 0) >= 3
    assert per_host.get("modi4.iu.edu", 0) >= 1
    assert per_host.get("bsg.iu.edu", 0) >= 1

    return {"shell": shell, "ui": ui}


def test_fig4_shell_single_service_command(benchmark, fig4):
    benchmark(
        lambda: fig4["shell"].run(
            "genscript PBS executable=/x cpus=1 wallTime=600"
        )
    )


def test_fig4_shell_two_stage_pipeline(benchmark, fig4):
    benchmark(
        lambda: fig4["shell"].run(
            "genscript GRD executable=/x cpus=1 wallTime=600"
            " | srbput /home/portal/bench.grd"
        )
    )


def test_fig4_full_application_run(benchmark, fig4):
    benchmark(
        lambda: fig4["shell"].run("runapp Gaussian modi4.iu.edu basisSize=40")
    )


def test_fig4_portal_page_render(benchmark, fig4):
    container = fig4["ui"].container
    benchmark(lambda: container.render_page("alice"))
