"""Shared infrastructure for the experiment benchmarks.

Each benchmark module regenerates one paper artifact (figure or claim; see
DESIGN.md §4 and EXPERIMENTS.md).  Modules record their series with
:func:`record_table`; after the run, every table is printed in the terminal
summary so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the regenerated figures alongside pytest-benchmark's timing table.

Wall-clock timings (pytest-benchmark) measure the *implementation* cost;
virtual-time/bytes/request columns measure the *modelled network* cost, which
is what the paper's architectural claims are about.
"""

from __future__ import annotations

import pytest

_TABLES: list[tuple[str, list[str], list[list[object]]]] = []


def record_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Register a regenerated figure/claim series for the final report."""
    _TABLES.append((title, headers, rows))


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REPRODUCED PAPER ARTIFACTS (see EXPERIMENTS.md for interpretation)")
    write("=" * 78)
    for title, headers, rows in _TABLES:
        write("")
        write(f"--- {title}")
        widths = [
            max(len(headers[i]), *(len(_format_cell(r[i])) for r in rows))
            for i in range(len(headers))
        ]
        write("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        for row in rows:
            write(
                "  "
                + "  ".join(
                    _format_cell(cell).ljust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
    write("")


@pytest.fixture(scope="session")
def deployment():
    """One full portal deployment shared by the benchmark session."""
    from repro.portal.uiserver import PortalDeployment

    return PortalDeployment.build()
