"""Experiment F3 — Figure 3: the schema wizard pipeline.

Regenerates the pipeline's stage costs (schema -> SOM -> generated classes
-> template-rendered form page) and the scaling of page generation with
schema size, plus the form -> instance -> form round trip.

Expected shape: every stage is sub-millisecond-to-millisecond CPU work;
page-generation cost grows linearly with the number of schema elements
(each element renders one template nugget).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_table
from repro.appws.schemas import combined_schema
from repro.wizard.generator import SchemaWizard
from repro.xmlutil.schema import (
    BuiltinType,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    parse_schema,
)


def _synthetic_schema(n_elements: int) -> XsdSchema:
    schema = XsdSchema(target_namespace="urn:bench")
    ctype = XsdComplexType(
        "Big",
        sequence=[
            XsdElement(f"field{i:04d}", BuiltinType.STRING,
                       documentation=f"Field number {i}")
            for i in range(n_elements)
        ],
    )
    schema.add_complex_type(ctype)
    schema.add_element(XsdElement("big", "Big"))
    return schema.resolve()


@pytest.fixture(scope="module")
def fig3(deployment):
    xsd_text = combined_schema().serialize()

    # per-stage wall time on the real descriptor schema
    stages = []
    t0 = time.perf_counter()
    wizard = SchemaWizard()
    schema = wizard.load(xsd_text)
    t1 = time.perf_counter()
    classes = wizard.classes()
    t2 = time.perf_counter()
    page = wizard.render_page("application", action="/save", base="/form")
    t3 = time.perf_counter()
    stages.append(["parse schema -> SOM", (t1 - t0) * 1000])
    stages.append(["generate binding classes", (t2 - t1) * 1000])
    stages.append(["render form page", (t3 - t2) * 1000])
    record_table(
        "F3 / Figure 3 — wizard stage costs (application schema, wall ms)",
        ["stage", "wall_ms"],
        stages,
    )
    assert len(classes) >= 8
    assert "<form" in page

    # scaling of page generation with schema size
    rows = []
    timings = {}
    for n in (8, 32, 128, 512):
        big = _synthetic_schema(n)
        w = SchemaWizard()
        w.load(big)
        start = time.perf_counter()
        body = w.render_form_body("big")
        elapsed = (time.perf_counter() - start) * 1000
        timings[n] = elapsed
        rows.append([n, elapsed, body.count("<input")])
    record_table(
        "F3 — form generation vs schema size",
        ["elements", "wall_ms", "inputs_rendered"],
        rows,
    )
    # linear-ish growth: 64x the elements should be way under 64^2 the time
    assert timings[512] < timings[8] * 64 * 8
    assert rows[-1][2] == 512

    return {"wizard": wizard, "xsd": xsd_text}


def test_fig3_stage1_parse_schema(benchmark, fig3):
    benchmark(lambda: SchemaWizard().load(fig3["xsd"]))


def test_fig3_stage2_generate_classes(benchmark, fig3):
    xsd = fig3["xsd"]

    def generate():
        wizard = SchemaWizard()
        wizard.load(xsd)
        return wizard.classes()

    benchmark(generate)


def test_fig3_stage3_render_application_form(benchmark, fig3):
    wizard = fig3["wizard"]
    benchmark(
        lambda: wizard.render_page("application", action="/save", base="/f")
    )


def test_fig3_form_instance_roundtrip(benchmark, fig3):
    wizard = fig3["wizard"]
    form = {
        "queue.queuingSystem": "PBS",
        "queue.queueName": "workq",
        "queue.maxWallTime": "3600",
        "queue.maxCpus": "64",
    }

    def roundtrip():
        instance = wizard.form_to_instance("queue", form)
        values = wizard.instance_to_values("queue", instance)
        assert values["queue.queueName"] == "workq"

    benchmark(roundtrip)
