"""Ablation A1 — scheduler policy: strict FIFO vs backfill.

The batch schedulers default to strict FIFO (a blocked head-of-line job
holds everything behind it), which is the conservative 2002 default; the
``backfill`` knob lets smaller jobs start in the holes.  This ablation
quantifies what the design choice costs on a mixed wide/narrow workload —
the kind of load the paper's portals actually submitted (a few big MPI runs
among many small pre/post-processing jobs).

Expected shape: backfill strictly reduces makespan and raises utilization
on mixed workloads, with identical results when every job is the same
width.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.grid.jobs import JobSpec
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler
from repro.transport.clock import SimClock


def _mixed_workload() -> list[JobSpec]:
    """A head-of-line-blocking workload: a long narrow job holds a few
    cpus; a full-width job queued behind it blocks the head; a train of
    narrow jobs then idles behind the blocked head under strict FIFO even
    though most of the machine is free."""
    jobs: list[JobSpec] = [
        JobSpec(name="holder", executable="sleep", arguments=["200"],
                cpus=8, wallclock_limit=600),
        JobSpec(name="wide", executable="sleep", arguments=["100"],
                cpus=64, wallclock_limit=600),
    ]
    for narrow in range(10):
        jobs.append(JobSpec(name=f"narrow-{narrow}", executable="sleep",
                            arguments=["30"], cpus=4, wallclock_limit=600))
    return jobs


def _uniform_workload() -> list[JobSpec]:
    return [
        JobSpec(name=f"u{i}", executable="sleep", arguments=["50"],
                cpus=16, wallclock_limit=600)
        for i in range(12)
    ]


def _run(jobs: list[JobSpec], *, backfill: bool) -> tuple[float, float]:
    """Returns (makespan, utilization)."""
    scheduler = BatchScheduler(
        "bench.host", make_dialect("PBS"), clock=SimClock(), cpus=64,
        backfill=backfill,
    )
    for spec in jobs:
        scheduler.submit(spec)
    makespan = scheduler.run_until_complete()
    cpu_seconds = sum(
        record.spec.cpus * (record.end_time - record.start_time)
        for record in scheduler.jobs()
    )
    utilization = cpu_seconds / (64 * makespan) if makespan else 0.0
    return makespan, utilization


@pytest.fixture(scope="module")
def a1():
    rows = []
    results = {}
    for workload_name, jobs in (("mixed", _mixed_workload()),
                                ("uniform", _uniform_workload())):
        for backfill in (False, True):
            makespan, utilization = _run(jobs, backfill=backfill)
            label = "backfill" if backfill else "strict-FIFO"
            results[(workload_name, label)] = (makespan, utilization)
            rows.append([workload_name, label, makespan, utilization * 100])
    record_table(
        "A1 (ablation) — scheduler policy: strict FIFO vs backfill",
        ["workload", "policy", "makespan_s", "utilization_%"],
        rows,
    )
    # backfill helps the mixed workload...
    assert results[("mixed", "backfill")][0] < results[("mixed", "strict-FIFO")][0]
    assert results[("mixed", "backfill")][1] > results[("mixed", "strict-FIFO")][1]
    # ...and cannot hurt the uniform one
    assert results[("uniform", "backfill")][0] <= results[
        ("uniform", "strict-FIFO")
    ][0]
    return results


def test_a1_strict_fifo_mixed(benchmark, a1):
    benchmark(lambda: _run(_mixed_workload(), backfill=False))


def test_a1_backfill_mixed(benchmark, a1):
    benchmark(lambda: _run(_mixed_workload(), backfill=True))
