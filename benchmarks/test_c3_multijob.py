"""Experiment C3 — §3.1: the multi-job XML submission document.

"The DTD ... was designed to allow multiple jobs to be included in a single
XML string and passed to the Web Service as one request.  The Web Service
executes the jobs sequentially, and returns the results as an XML document."

We sweep the job count J and compare J separate ``run`` calls against one
``run_xml`` request carrying all J jobs.

Expected shape: total job execution time is identical (both execute
sequentially on the same simulated resources); the XML document form saves
(J-1) request/response exchanges of wire overhead, so its advantage is a
fixed per-job wire saving — visible but modest, exactly what a batching DTD
buys.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table
from repro.grid.jobs import JobSpec
from repro.services.jobsubmit import GLOBUSRUN_NAMESPACE, jobs_to_xml
from repro.soap.client import SoapClient
from repro.transport.client import HttpClient
from repro.xmlutil.element import parse_xml

JOB_COUNTS = [1, 4, 16]


def _specs(j):
    return [
        ("modi4.iu.edu",
         JobSpec(name=f"job{i}", executable="sleep", arguments=["2"],
                 wallclock_limit=600))
        for i in range(j)
    ]


@pytest.fixture(scope="module")
def c3(deployment):
    network = deployment.network
    client = SoapClient(
        network, deployment.endpoints["globusrun"], GLOBUSRUN_NAMESPACE,
        source="ui.c3",
        http_client=HttpClient(network, "ui.c3", keep_alive=False),
    )

    service_host = "globusrun.sdsc.edu"

    rows = []
    for j in JOB_COUNTS:
        before = network.stats.snapshot()
        start = network.clock.now
        for contact, spec in _specs(j):
            client.call("run", contact, spec.executable,
                        " ".join(spec.arguments), 1, "", 600)
        separate_vtime = network.clock.now - start
        separate = network.stats.delta(before)

        before = network.stats.snapshot()
        start = network.clock.now
        response = client.call("run_xml", jobs_to_xml(_specs(j)))
        batch_vtime = network.clock.now - start
        batch = network.stats.delta(before)
        assert len(parse_xml(response).findall("result")) == j

        rows.append([
            j,
            separate.per_host_requests.get(service_host, 0),
            batch.per_host_requests.get(service_host, 0),
            separate_vtime, batch_vtime,
            (separate_vtime - batch_vtime) * 1000,
        ])
    record_table(
        "C3 / §3.1 — J run calls vs one multi-job run_xml document",
        ["J", "sep_ws_reqs", "batch_ws_reqs", "sep_vtime_s", "batch_vtime_s",
         "wire_saving_ms"],
        rows,
    )
    for row in rows:
        assert row[2] == 1              # one web-service request regardless of J
        assert row[1] == row[0]         # vs one per job
        # execution dominates: both within ~J * job-time; saving positive for J>1
    assert rows[-1][5] > rows[0][5]     # the saving grows with J

    return {"client": client}


def test_c3_four_separate_runs(benchmark, c3):
    client = c3["client"]

    def run():
        for contact, spec in _specs(4):
            client.call("run", contact, spec.executable,
                        " ".join(spec.arguments), 1, "", 600)

    benchmark(run)


def test_c3_one_xml_document_of_four(benchmark, c3):
    client = c3["client"]
    document = jobs_to_xml(_specs(4))
    benchmark(lambda: client.call("run_xml", document))
