"""The paper's proposed alternative to UDDI.

§3.4: "A more appropriate discovery system should be built around a
recursive, self-describing XML container hierarchy into which metadata about
services may be flexibly mapped.  Possible implementations of such systems
include LDAP or an XML database."

:class:`MetadataContainer` is that hierarchy; :class:`ContainerRegistry`
exposes it as a SOAP web service with structured metadata queries — the
experiment in ``benchmarks/test_c5_discovery.py`` measures its
precision/recall against UDDI's string-convention workaround.
"""

from repro.discovery.container import MetadataContainer
from repro.discovery.registry import ContainerRegistry, DiscoveryClient, deploy_discovery

__all__ = [
    "MetadataContainer",
    "ContainerRegistry",
    "DiscoveryClient",
    "deploy_discovery",
]
