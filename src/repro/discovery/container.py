"""A recursive, self-describing XML container hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.xmlutil.element import XmlElement, parse_xml


@dataclass
class MetadataContainer:
    """A node in the hierarchy: a name, multi-valued metadata, children.

    The structure is "self-describing": it serializes to XML in which every
    metadata key appears as an element, so a client needs no out-of-band
    schema to interpret an unfamiliar subtree (the property the paper wants
    from an LDAP/XML-database-backed discovery service).
    """

    name: str
    metadata: dict[str, list[str]] = field(default_factory=dict)
    children: dict[str, "MetadataContainer"] = field(default_factory=dict)

    # -- hierarchy manipulation --------------------------------------------------

    def ensure_path(self, path: str) -> "MetadataContainer":
        """Return the container at *path*, creating intermediate nodes.

        Paths look like Unix paths: ``portals/IU/script-generators``.
        """
        node = self
        for part in _split_path(path):
            if part not in node.children:
                node.children[part] = MetadataContainer(part)
            node = node.children[part]
        return node

    def lookup(self, path: str) -> "MetadataContainer | None":
        node = self
        for part in _split_path(path):
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node

    def remove(self, path: str) -> bool:
        parts = _split_path(path)
        if not parts:
            return False
        parent = self.lookup("/".join(parts[:-1])) if parts[:-1] else self
        if parent is None or parts[-1] not in parent.children:
            return False
        del parent.children[parts[-1]]
        return True

    def set_meta(self, key: str, *values: str) -> "MetadataContainer":
        self.metadata[key] = list(values)
        return self

    def add_meta(self, key: str, value: str) -> "MetadataContainer":
        self.metadata.setdefault(key, []).append(value)
        return self

    def meta(self, key: str) -> list[str]:
        return list(self.metadata.get(key, []))

    def meta_one(self, key: str, default: str = "") -> str:
        values = self.metadata.get(key)
        return values[0] if values else default

    # -- traversal and query ---------------------------------------------------------

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "MetadataContainer"]]:
        """Yield (path, container) for this node and every descendant."""
        path = f"{prefix}/{self.name}" if prefix or self.name else self.name
        yield path, self
        for name in sorted(self.children):
            yield from self.children[name].walk(path)

    def query(
        self,
        where: dict[str, str] | None = None,
        *,
        scope: str = "",
        predicate: Callable[["MetadataContainer"], bool] | None = None,
    ) -> list[tuple[str, "MetadataContainer"]]:
        """Structured search.

        ``where`` requires each key to have the given value among its values
        (exact, case-sensitive match on structured metadata — no string
        convention involved).  ``scope`` restricts the search to a subtree.
        """
        root = self.lookup(scope) if scope else self
        if root is None:
            return []
        results: list[tuple[str, MetadataContainer]] = []
        for path, node in root.walk():
            if where and not all(
                value in node.metadata.get(key, []) for key, value in where.items()
            ):
                continue
            if predicate is not None and not predicate(node):
                continue
            results.append((path, node))
        return results

    # -- XML round trip -----------------------------------------------------------

    def to_xml(self) -> XmlElement:
        node = XmlElement("container", {"name": self.name})
        for key, values in sorted(self.metadata.items()):
            for value in values:
                node.child("meta", text=value).set("key", key)
        for name in sorted(self.children):
            node.append(self.children[name].to_xml())
        return node

    def serialize(self, indent: int | None = 2) -> str:
        return self.to_xml().serialize(indent=indent, declaration=True)

    @staticmethod
    def from_xml(source: str | XmlElement) -> "MetadataContainer":
        node = parse_xml(source) if isinstance(source, str) else source
        if node.tag.local != "container":
            raise ValueError(f"not a container element: {node.tag}")
        container = MetadataContainer(node.get("name", "") or "")
        for meta in node.findall("meta"):
            container.add_meta(meta.get("key", "") or "", meta.text)
        for child in node.findall("container"):
            sub = MetadataContainer.from_xml(child)
            container.children[sub.name] = sub
        return container

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetadataContainer):
            return NotImplemented
        return (
            self.name == other.name
            and self.metadata == other.metadata
            and self.children == other.children
        )


def _split_path(path: str) -> list[str]:
    return [part for part in path.strip("/").split("/") if part]
