"""The container-hierarchy discovery service over SOAP."""

from __future__ import annotations

from typing import Any

from repro.faults import DiscoveryError
from repro.discovery.container import MetadataContainer
from repro.soap.client import SoapClient
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

DISCOVERY_NAMESPACE = "urn:gce:container-discovery"


class ContainerRegistry:
    """Server-side state: one hierarchy root plus registration helpers."""

    def __init__(self):
        self.root = MetadataContainer("")

    def register_service(
        self, path: str, metadata: dict[str, list[str] | str]
    ) -> None:
        """Register (or update) a service entry at *path* with structured
        metadata, e.g. ``{"queuing-system": ["PBS", "GRD"], "wsdl": url}``."""
        node = self.root.ensure_path(path)
        for key, value in sorted(metadata.items()):
            values = [value] if isinstance(value, str) else list(value)
            node.set_meta(key, *values)

    def unregister(self, path: str) -> None:
        if not self.root.remove(path):
            raise DiscoveryError(f"no container at path {path!r}", {"path": path})

    # -- SOAP facade (dict/list payloads) ----------------------------------------

    def soap_register(self, path: str, metadata: dict[str, Any]) -> str:
        """Register a service entry; returns the normalized path."""
        self.register_service(path, metadata)
        return "/" + path.strip("/")

    def soap_unregister(self, path: str) -> bool:
        """Remove the container at *path* (faults if absent)."""
        self.unregister(path)
        return True

    def soap_query(self, where: dict[str, Any], scope: str) -> list[dict[str, Any]]:
        """Structured query; returns [{path, metadata}, ...].

        Only containers carrying *all* requested key/value pairs match —
        "metadata about services may be flexibly mapped" and queried exactly.
        """
        flat_where = {
            key: value if isinstance(value, str) else str(value)
            for key, value in (where or {}).items()
        }
        out: list[dict[str, Any]] = []
        for path, node in self.root.query(flat_where, scope=scope):
            if not node.metadata:
                continue  # structural nodes are not service entries
            out.append({"path": path, "metadata": dict(node.metadata)})
        return out

    def soap_describe(self, path: str) -> str:
        """Return the self-describing XML for a subtree."""
        node = self.root.lookup(path)
        if node is None:
            raise DiscoveryError(f"no container at path {path!r}", {"path": path})
        return node.serialize(indent=None)

    def soap_children(self, path: str) -> list[str]:
        """List the child container names under *path*."""
        node = self.root.lookup(path)
        if node is None:
            raise DiscoveryError(f"no container at path {path!r}", {"path": path})
        return sorted(node.children)


def deploy_discovery(
    network: VirtualNetwork,
    host: str = "discovery.gridforum.org",
    *,
    registry: ContainerRegistry | None = None,
) -> tuple[ContainerRegistry, str]:
    """Stand up the discovery service; returns (registry, endpoint URL)."""
    registry = registry or ContainerRegistry()
    server = HttpServer(host, network)
    service = SoapService("ContainerDiscovery", DISCOVERY_NAMESPACE)
    service.expose(registry.soap_register, "register")
    service.expose(registry.soap_unregister, "unregister")
    service.expose(registry.soap_query, "query")
    service.expose(registry.soap_describe, "describe")
    service.expose(registry.soap_children, "children")
    endpoint = service.mount(server, "/discovery")
    return registry, endpoint


class DiscoveryClient:
    """Typed client for the container discovery service."""

    def __init__(self, network: VirtualNetwork, endpoint: str, *, source: str = "client"):
        self._soap = SoapClient(network, endpoint, DISCOVERY_NAMESPACE, source=source)

    def register(self, path: str, metadata: dict[str, Any]) -> str:
        return self._soap.call("register", path, metadata)

    def unregister(self, path: str) -> bool:
        return self._soap.call("unregister", path)

    def query(
        self, where: dict[str, str], scope: str = ""
    ) -> list[dict[str, Any]]:
        return self._soap.call("query", where, scope)

    def describe(self, path: str) -> MetadataContainer:
        return MetadataContainer.from_xml(self._soap.call("describe", path))

    def children(self, path: str) -> list[str]:
        return self._soap.call("children", path)
