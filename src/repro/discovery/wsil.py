"""WS-Inspection (WSIL) — the paper's other named discovery mechanism.

§2 lists "the Web Services Inspection Language (WSIL)" alongside UDDI as
the naming/discovery options.  WSIL is the decentralized one: each provider
publishes an inspection document at a well-known URL on its *own* host,
listing its services' WSDL locations and linking to further inspection
documents; a client crawls the link graph instead of querying a central
registry.

This module implements the subset the portal needs: inspection documents
with ``<service>`` (name + WSDL description location) and ``<link>``
(reference to another inspection document) entries, publication on a
virtual-network host, and a cycle-safe crawler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import DiscoveryError
from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import TransportError, VirtualNetwork
from repro.transport.server import HttpServer
from repro.xmlutil.element import XmlElement, parse_xml

WSIL_NS = "http://schemas.xmlsoap.org/ws/2001/10/inspection/"

#: the conventional well-known location
WELL_KNOWN_PATH = "/inspection.wsil"


@dataclass
class ServiceEntry:
    """One advertised service: a name, abstract, and its WSDL location."""

    name: str
    wsdl_location: str
    abstract: str = ""


@dataclass
class InspectionDocument:
    """A WSIL document: services plus links to other inspection documents."""

    services: list[ServiceEntry] = field(default_factory=list)
    links: list[str] = field(default_factory=list)

    def add_service(
        self, name: str, wsdl_location: str, abstract: str = ""
    ) -> "InspectionDocument":
        self.services.append(ServiceEntry(name, wsdl_location, abstract))
        return self

    def add_link(self, location: str) -> "InspectionDocument":
        self.links.append(location)
        return self

    # -- XML round trip ------------------------------------------------------

    def to_xml(self) -> XmlElement:
        root = XmlElement((WSIL_NS and f"{{{WSIL_NS}}}inspection") or "inspection")
        for service in self.services:
            node = root.child(f"{{{WSIL_NS}}}service")
            if service.name:
                node.child(f"{{{WSIL_NS}}}name", text=service.name)
            if service.abstract:
                node.child(f"{{{WSIL_NS}}}abstract", text=service.abstract)
            desc = node.child(f"{{{WSIL_NS}}}description")
            desc.set("referencedNamespace", "http://schemas.xmlsoap.org/wsdl/")
            desc.set("location", service.wsdl_location)
        for link in self.links:
            node = root.child(f"{{{WSIL_NS}}}link")
            node.set("referencedNamespace", WSIL_NS)
            node.set("location", link)
        return root

    def serialize(self) -> str:
        return self.to_xml().serialize(indent=2, declaration=True)

    @staticmethod
    def parse(source: str | XmlElement) -> "InspectionDocument":
        root = parse_xml(source) if isinstance(source, str) else source
        if root.tag.local != "inspection":
            raise DiscoveryError(f"not a WSIL document: <{root.tag.local}>")
        document = InspectionDocument()
        for node in root.findall("service"):
            desc = node.find("description")
            document.services.append(
                ServiceEntry(
                    name=node.findtext("name"),
                    abstract=node.findtext("abstract"),
                    wsdl_location=(desc.get("location", "") or "") if desc is not None else "",
                )
            )
        for node in root.findall("link"):
            location = node.get("location", "") or ""
            if location:
                document.links.append(location)
        return document


def publish_inspection(
    server: HttpServer,
    document: InspectionDocument,
    path: str = WELL_KNOWN_PATH,
) -> str:
    """Serve an inspection document on a host; returns its URL."""
    text = document.serialize()

    def handler(request: HttpRequest) -> HttpResponse:
        return HttpResponse(200, {"Content-Type": "text/xml"}, text)

    server.mount(path, handler)
    return f"http://{server.host}{path}"


def inspect(
    network: VirtualNetwork,
    url: str,
    *,
    source: str = "client",
    follow_links: bool = True,
    max_documents: int = 64,
) -> list[ServiceEntry]:
    """Crawl an inspection-document graph; returns every advertised service.

    Cycle-safe (each document fetched once) and bounded by *max_documents*.
    Unreachable linked documents are skipped — decentralization means
    partial answers, which is itself a contrast with the UDDI central
    registry (see ``benchmarks/test_a2_discovery_modes.py``).
    """
    client = HttpClient(network, source)
    seen: set[str] = set()
    queue = [url]
    services: list[ServiceEntry] = []
    while queue and len(seen) < max_documents:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        try:
            response = client.get(current)
        except TransportError:
            continue
        if not response.ok:
            continue
        try:
            document = InspectionDocument.parse(response.body)
        except (ValueError, DiscoveryError):
            continue
        services.extend(document.services)
        if follow_links:
            queue.extend(document.links)
    return services
