"""Load management: admission control, fair queuing, and metascheduling.

The paper's §6 casts the portal as a distributed operating system of web
services; an operating system arbitrates load.  This package adds that
layer to the reproduction:

- :mod:`repro.loadmgmt.bucket` / :mod:`~repro.loadmgmt.fairqueue` /
  :mod:`~repro.loadmgmt.admission` — the admission pipeline a
  :class:`~repro.soap.server.SoapService` runs before dispatch: token
  bucket, concurrency bulkhead, and a weighted-fair queue over
  per-principal lanes, shedding with retryable ``ServerBusy`` faults that
  carry ``retryAfter`` hints;
- :mod:`repro.loadmgmt.headers` — the ``urn:gce:loadmgmt`` principal
  header naming each request's lane;
- :mod:`repro.loadmgmt.metascheduler` — a SOAP service placing batches
  across the testbed's host/queue hierarchy with pluggable,
  metrics-driven policies;
- :mod:`repro.loadmgmt.portlet` — the portal face: lane occupancy and
  placement decisions.

The metascheduler and portlet are imported from their submodules (they
pull in the service/portal layers); this package root only exports the
dependency-light admission core.
"""

from repro.loadmgmt.admission import (
    ANONYMOUS_LANE,
    AdmissionController,
    LaneStats,
    LoadRegistry,
    Ticket,
)
from repro.loadmgmt.bucket import TokenBucket
from repro.loadmgmt.fairqueue import LaneConfig, QueueEntry, WeightedFairQueue
from repro.loadmgmt.headers import (
    LOADMGMT_NS,
    PRINCIPAL_HEADER,
    principal_from_headers,
    principal_header,
)

__all__ = [
    "ANONYMOUS_LANE",
    "AdmissionController",
    "LaneConfig",
    "LaneStats",
    "LoadRegistry",
    "LOADMGMT_NS",
    "PRINCIPAL_HEADER",
    "QueueEntry",
    "Ticket",
    "TokenBucket",
    "WeightedFairQueue",
    "principal_from_headers",
    "principal_header",
]
