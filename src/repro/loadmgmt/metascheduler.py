"""The MetaScheduler web service: metrics-driven batch placement.

The paper's batch service (§3.1) runs jobs on whichever gatekeeper
contact the *caller* names; under the ROADMAP's heavy-traffic target that
choice belongs to the portal.  The MetaScheduler accepts the same
multi-job XML documents, fills in the ``host`` attribute each ``<job>``
left blank, and forwards the placed batch to the Globusrun service —
composing it over SOAP exactly the way §3's batch service does, through a
:class:`~repro.resilience.failover.FailoverClient` so a dead Globusrun
provider rotates away transparently.

Placement consults the §5 descriptor hierarchy (application registry →
:class:`~repro.grid.resources.ComputeResource` hosts → scheduler queue
definitions) plus the live load signals PR 3's observability layer
exports: per-queue depth/drain gauges and the RED latency series this
service feeds back into the registry.  Hosts whose circuit breaker is
open — the MetaScheduler's own per-contact breaker, or the failover
client's transport breakers — are excluded from placement until their
cooldown admits a probe.

Policies (pluggable via ``set_policy``):

========  =============================================================
name      choice among eligible (contact, queue) candidates
========  =============================================================
``round-robin``      rotate in contact order (the baseline)
``least-loaded``     smallest queue-depth gauge, drain rate as tiebreak
``latency-weighted`` random ∝ 1 / RED p95 of past placements (seeded)
``affinity``         configured app→host map, else stable hash (cache
                     locality), falling back to least-loaded
========  =============================================================
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass

from repro.faults import InvalidRequestError, JobError
from repro.grid.jobs import JobSpec
from repro.grid.resources import ComputeResource
from repro.observability.metrics import Histogram
from repro.resilience import events as resilience_events
from repro.resilience.breaker import OPEN, CircuitBreaker, CircuitBreakerPolicy
from repro.resilience.events import ResilienceLog
from repro.resilience.failover import FailoverClient
from repro.services.jobsubmit import (
    GLOBUSRUN_NAMESPACE,
    jobs_from_xml,
    jobs_to_xml,
)
from repro.soap.server import SoapService
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer

METASCHEDULER_NAMESPACE = "urn:gce:metascheduler"


@dataclass
class Candidate:
    """One eligible placement target with its current load signals."""

    contact: str
    queue: str
    depth: int
    drain_rate: float
    p95: float

    def to_dict(self) -> dict:
        return {
            "contact": self.contact,
            "queue": self.queue,
            "depth": self.depth,
            "drain_rate": self.drain_rate,
            "p95": self.p95,
        }


class PlacementPolicy:
    """Chooses one candidate; subclasses are stateless beyond their knobs."""

    name = "abstract"

    def choose(
        self, candidates: list[Candidate], spec: JobSpec, rng: random.Random
    ) -> Candidate:
        raise NotImplementedError


class RoundRobinPolicy(PlacementPolicy):
    name = "round-robin"

    def __init__(self):
        self._rotor = 0

    def choose(self, candidates, spec, rng):
        choice = candidates[self._rotor % len(candidates)]
        self._rotor += 1
        return choice


class LeastLoadedPolicy(PlacementPolicy):
    name = "least-loaded"

    def choose(self, candidates, spec, rng):
        return min(
            candidates, key=lambda c: (c.depth, -c.drain_rate, c.contact)
        )


class LatencyWeightedPolicy(PlacementPolicy):
    """Weighted random ∝ 1/p95 — slow hosts still get probed, fast hosts
    get most of the work.  Deterministic under the service's seed."""

    name = "latency-weighted"

    def choose(self, candidates, spec, rng):
        weights = [1.0 / max(c.p95, 1e-6) for c in candidates]
        total = sum(weights)
        mark = rng.uniform(0.0, total)
        acc = 0.0
        for candidate, weight in zip(candidates, weights):
            acc += weight
            if mark <= acc:
                return candidate
        return candidates[-1]


class AffinityPolicy(PlacementPolicy):
    """Locality: configured application→host preferences first, then a
    stable hash of the executable (same app keeps landing on the same
    host — warm caches, staged data), least-loaded as the final word."""

    name = "affinity"

    def __init__(self, preferences: dict[str, list[str]] | None = None):
        self.preferences = dict(preferences or {})
        self._fallback = LeastLoadedPolicy()

    def choose(self, candidates, spec, rng):
        preferred = self.preferences.get(spec.executable, ())
        for contact in preferred:
            for candidate in candidates:
                if candidate.contact == contact:
                    return candidate
        if not preferred:
            digest = hashlib.sha256(spec.executable.encode("utf-8")).digest()
            index = int.from_bytes(digest[:4], "big") % len(candidates)
            ordered = sorted(candidates, key=lambda c: c.contact)
            return ordered[index]
        return self._fallback.choose(candidates, spec, rng)


class MetaSchedulerService:
    """The MetaScheduler implementation behind the SOAP facade.

    *globusrun* is any SOAP proxy for the Globusrun interface — in the
    deployment a :class:`FailoverClient` over every discovered provider.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        resources: dict[str, ComputeResource],
        globusrun,
        *,
        service_host: str = "metascheduler.gce.org",
        policy: str = "least-loaded",
        affinities: dict[str, list[str]] | None = None,
        seed: int = 0,
        log: ResilienceLog | None = None,
        breaker_policy: CircuitBreakerPolicy | None = None,
    ):
        self.network = network
        self.clock = network.clock
        self.resources = resources
        self.service_host = service_host
        self.globusrun = globusrun
        self.log = log
        self._rng = random.Random(seed)
        self._policies: dict[str, PlacementPolicy] = {
            p.name: p
            for p in (
                RoundRobinPolicy(),
                LeastLoadedPolicy(),
                LatencyWeightedPolicy(),
                AffinityPolicy(affinities),
            )
        }
        if policy not in self._policies:
            raise InvalidRequestError(f"unknown placement policy {policy!r}")
        self._policy = policy
        self._breaker_policy = breaker_policy or CircuitBreakerPolicy()
        self._breakers: dict[str, CircuitBreaker] = {}
        #: per-contact turnaround of past placements (drives latency-weighted)
        self._latency: dict[str, Histogram] = {}
        self._placements: deque = deque(maxlen=256)
        self.batches_placed = 0
        self.jobs_placed = 0

    # -- health ----------------------------------------------------------------

    def _breaker(self, contact: str) -> CircuitBreaker:
        breaker = self._breakers.get(contact)
        if breaker is None:
            breaker = self._breakers[contact] = CircuitBreaker(
                contact, self.clock, self._breaker_policy
            )
        return breaker

    def _excluded(self, contact: str) -> bool:
        """Whether *contact* is off the placement table right now.

        Checks this service's own per-contact breaker (fed by placement
        outcomes) and, cooperating with the failover client, any open
        transport breaker its HTTP layer holds for the same host.
        """
        if not self._breaker(contact).allow():
            return True
        http = getattr(self.globusrun, "http", None)
        if http is not None:
            transport_breaker = http.breaker_for(contact)
            if transport_breaker is not None and transport_breaker.state == OPEN:
                return True
        return False

    # -- load signals ----------------------------------------------------------

    def _obs(self):
        return getattr(self.network, "observability", None)

    def _queue_signals(self, resource: ComputeResource, queue: str):
        """(depth, drain) for one queue — the metrics gauge when the
        gatekeeper has published one, the scheduler's own stats otherwise."""
        obs = self._obs()
        label = f"{resource.host}/{queue}"
        if obs is not None and ("queue_depth", label) in obs.metrics.gauges:
            return (
                obs.metrics.gauges[("queue_depth", label)],
                obs.metrics.gauges.get(("queue_drain_rate", label), 0.0),
            )
        for row in resource.scheduler.queue_stats():
            if row["queue"] == queue:
                return row["depth"], row["drain_rate"]
        return 0, 0.0

    def _candidates(self, spec: JobSpec) -> list[Candidate]:
        """Every (contact, queue) in the descriptor hierarchy that could
        run *spec*, with live load signals attached."""
        out: list[Candidate] = []
        for contact in sorted(self.resources):
            resource = self.resources[contact]
            if self._excluded(contact):
                continue
            scheduler = resource.scheduler
            if spec.cpus > scheduler.cpus:
                continue
            queue_name = spec.queue or scheduler.default_queue
            definition = scheduler.queues.get(queue_name)
            if definition is None:
                continue
            if spec.cpus > definition.max_cpus:
                continue
            if spec.wallclock_limit > definition.max_wallclock:
                continue
            depth, drain = self._queue_signals(resource, queue_name)
            histogram = self._latency.get(contact)
            p95 = (
                histogram.percentile(0.95)
                if histogram is not None and histogram.count
                else 1.0
            )
            out.append(
                Candidate(contact, queue_name, int(depth), float(drain), p95)
            )
        return out

    # -- placement -------------------------------------------------------------

    def _place_one(self, spec: JobSpec) -> Candidate:
        candidates = self._candidates(spec)
        if not candidates:
            raise JobError(
                f"no eligible host for {spec.name!r} "
                f"(cpus={spec.cpus}, queue={spec.queue or 'default'})",
                {"job": spec.name},
            )
        policy = self._policies[self._policy]
        choice = policy.choose(candidates, spec, self._rng)
        self.jobs_placed += 1
        decision = {
            "at": self.clock.now,
            "job": spec.name,
            "executable": spec.executable,
            "contact": choice.contact,
            "queue": choice.queue,
            "policy": self._policy,
            "depth": choice.depth,
            "candidates": len(candidates),
        }
        self._placements.append(decision)
        if self.log is not None:
            self.log.record(
                resilience_events.PLACEMENT,
                f"placed {spec.name!r} on {choice.contact}/{choice.queue} "
                f"({self._policy}, {len(candidates)} candidates)",
                service="MetaScheduler",
                operation="place",
                detail={
                    "job": spec.name,
                    "contact": choice.contact,
                    "queue": choice.queue,
                    "policy": self._policy,
                },
            )
        return choice

    def place(self, jobs_xml: str) -> str:
        """Fill in each ``<job>``'s missing host; returns the placed XML.

        Jobs that already name a host keep it — explicit placement is the
        caller's right, exactly as in the paper's batch service.
        """
        requests = jobs_from_xml(jobs_xml, require_host=False)
        placed: list[tuple[str, JobSpec]] = []
        for contact, spec in requests:
            if not contact:
                choice = self._place_one(spec)
                contact = choice.contact
                spec = spec.copy()
                spec.queue = choice.queue
            placed.append((contact, spec))
        self.batches_placed += 1
        return jobs_to_xml(placed)

    # -- the composed Globusrun interface -------------------------------------

    def _record_outcomes(self, placed_xml: str, results_xml: str, elapsed: float):
        """Feed placement outcomes back into breakers and latency series."""
        from repro.xmlutil.element import parse_xml

        contacts = {contact for contact, _spec in
                    jobs_from_xml(placed_xml, require_host=False) if contact}
        statuses: dict[str, list[str]] = {}
        try:
            root = parse_xml(results_xml)
        except ValueError:
            return
        for node in root.findall("result"):
            statuses.setdefault(node.get("host", "") or "", []).append(
                node.get("status", "") or ""
            )
        obs = self._obs()
        for contact in sorted(contacts):
            outcomes = statuses.get(contact, [])
            # "error" means the host/gatekeeper failed us; a job that ran
            # and exited non-zero ("failed") is still a healthy host
            errored = any(status == "error" for status in outcomes)
            breaker = self._breaker(contact)
            if errored:
                breaker.record_failure()
            else:
                breaker.record_success()
            self._latency.setdefault(contact, Histogram()).record(elapsed)
            if obs is not None:
                obs.metrics.record_call(
                    "MetaScheduler", contact, "client", elapsed, errored
                )

    def run_xml(self, jobs_xml: str) -> str:
        """Place the batch, run it via Globusrun, learn from the outcome."""
        placed = self.place(jobs_xml)
        started = self.clock.now
        try:
            results = self.globusrun.call("run_xml", placed)
        except Exception:
            for contact, _spec in jobs_from_xml(placed, require_host=False):
                if contact in self.resources:
                    self._breaker(contact).record_failure()
            raise
        self._record_outcomes(placed, results, self.clock.now - started)
        return results

    def submit_async(self, jobs_xml: str) -> str:
        """Place the batch and durably accept it on the Globusrun service."""
        return self.globusrun.call("submit_async", self.place(jobs_xml))

    def poll(self, batch: str) -> str:
        return self.globusrun.call("poll", batch)

    def result(self, batch: str) -> str:
        started = self.clock.now
        results = self.globusrun.call("result", batch)
        # no placed XML at hand for an async batch; still learn latency
        for contact in sorted({
            node.get("host", "") or ""
            for node in self._results_nodes(results)
        }):
            if contact:
                self._latency.setdefault(contact, Histogram()).record(
                    self.clock.now - started
                )
        return results

    @staticmethod
    def _results_nodes(results_xml: str):
        from repro.xmlutil.element import parse_xml

        try:
            return parse_xml(results_xml).findall("result")
        except ValueError:
            return []

    # -- policy and introspection ----------------------------------------------

    def set_policy(self, name: str) -> str:
        if name not in self._policies:
            raise InvalidRequestError(
                f"unknown placement policy {name!r}",
                {"known": ",".join(sorted(self._policies))},
            )
        self._policy = name
        return name

    def policy(self) -> str:
        return self._policy

    def policies(self) -> list[str]:
        return sorted(self._policies)

    def placements(self, limit: int = 20) -> list[dict]:
        """The most recent placement decisions, oldest first."""
        rows = list(self._placements)
        try:
            count = int(limit) if limit else 0
        except (TypeError, ValueError):
            raise InvalidRequestError(
                f"limit must be numeric, got {limit!r}"
            ) from None
        return rows[-count:] if count else rows

    def targets(self) -> list[dict]:
        """The full placement table: every contact with health and load."""
        rows = []
        for contact in sorted(self.resources):
            resource = self.resources[contact]
            breaker = self._breaker(contact)
            histogram = self._latency.get(contact)
            rows.append({
                "contact": contact,
                "queuing_system": resource.queuing_system,
                "cpus": resource.scheduler.cpus,
                "breaker": breaker.state,
                "excluded": self._excluded(contact),
                "p95": (
                    histogram.percentile(0.95)
                    if histogram is not None and histogram.count
                    else 0.0
                ),
                "queues": resource.scheduler.queue_stats(),
            })
        return rows


def deploy_metascheduler(
    network: VirtualNetwork,
    resources: dict[str, ComputeResource],
    globusrun_endpoints: list[str],
    host: str = "metascheduler.gce.org",
    *,
    policy: str = "least-loaded",
    affinities: dict[str, list[str]] | None = None,
    seed: int = 0,
    log: ResilienceLog | None = None,
    admission=None,
) -> tuple[MetaSchedulerService, str]:
    """Stand up the MetaScheduler; returns (impl, endpoint URL).

    The Globusrun composition goes through a :class:`FailoverClient` over
    *globusrun_endpoints*, so breaker-open providers rotate away; pass an
    :class:`~repro.loadmgmt.admission.AdmissionController` as *admission*
    to put the placement service itself behind admission control.
    """
    globusrun = FailoverClient(
        network,
        globusrun_endpoints,
        GLOBUSRUN_NAMESPACE,
        source=host,
        resilience_log=log,
        service_name="Globusrun",
        retry_seed=seed,
    )
    impl = MetaSchedulerService(
        network,
        resources,
        globusrun,
        service_host=host,
        policy=policy,
        affinities=affinities,
        seed=seed,
        log=log,
    )
    server = HttpServer(host, network)
    soap = SoapService("MetaScheduler", METASCHEDULER_NAMESPACE)
    soap.expose(impl.place)
    soap.expose(impl.run_xml)
    soap.expose(impl.submit_async)
    soap.expose(impl.poll)
    soap.expose(impl.result)
    soap.expose(impl.set_policy)
    soap.expose(impl.policy)
    soap.expose(impl.policies)
    soap.expose(impl.placements)
    soap.expose(impl.targets)
    if admission is not None:
        soap.enable_admission(admission, log)
    return impl, soap.mount(server, "/metascheduler")
