"""The principal SOAP header: which lane a request belongs to.

Admission control arbitrates between *principals* — the paper's §4 user
contexts / portal sessions — so each request must say whose work it is.
The client stamps a ``Principal`` header entry (namespace
``urn:gce:loadmgmt``) carrying the principal name and an optional
priority class; the server's admission controller maps the name onto a
fair-queue lane.  Requests without the header share the ``anonymous``
lane, so unidentified traffic competes for exactly one fair share
instead of bypassing arbitration.

Like the deadline header, malformed values are ignored rather than
faulted — load-management headers must never break a call.
"""

from __future__ import annotations

from repro.headers import register_header
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName

LOADMGMT_NS = "urn:gce:loadmgmt"

#: the SOAP header entry naming the request's principal (lane)
PRINCIPAL_HEADER = QName(LOADMGMT_NS, "Principal")
register_header(
    PRINCIPAL_HEADER,
    description="requesting principal and priority class for fair queuing",
    module=__name__,
)


def principal_header(name: str, priority: int = 0) -> XmlElement:
    """Encode *name* (and a non-default priority class) as a header entry."""
    entry = XmlElement(PRINCIPAL_HEADER, text=name)
    if priority:
        entry.set("priority", str(priority))
    return entry


def principal_from_headers(
    headers: list[XmlElement],
) -> tuple[str | None, int | None]:
    """Decode ``(principal, priority)`` from request headers.

    Returns ``(None, None)`` when absent; a present header with a
    malformed priority still yields the principal.
    """
    for entry in headers:
        if entry.tag == PRINCIPAL_HEADER:
            name = (entry.text or "").strip() or None
            raw = entry.get("priority")
            if raw is None:
                return name, None
            try:
                return name, int(raw)
            except (TypeError, ValueError):
                return name, None
    return None, None
