"""A weighted-fair queue over per-principal lanes with priority classes.

This is start-time fair queuing (SFQ): each lane carries a *weight*, each
entry is tagged on arrival with a virtual start/finish time, and dequeue
order is strict priority class first, then smallest start tag, then
arrival order.  The virtual-time arithmetic yields the three properties
the admission layer relies on (property-tested in ``tests/loadmgmt``):

- **work conservation** — whenever any lane holds an entry, ``dequeue``
  returns one; idle lanes never reserve capacity;
- **no starvation** — a lane's entry is bypassed by at most a bounded
  amount of other lanes' work, however heavy their weights;
- **lane FIFO** — entries of one lane leave in the order they arrived.

The queue knows nothing about clocks or requests; the admission
controller uses it to order virtual *capacity charges*, and tests drive
it directly as a data structure.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class LaneConfig:
    """One lane's scheduling parameters.

    ``weight`` is the lane's fair share relative to other lanes in the
    same priority class.  ``priority`` classes drain strictly: entries of
    a higher class always leave before any entry of a lower class.
    """

    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"lane weight must be positive: {self.weight}")


@dataclass
class QueueEntry:
    """One queued item with its fair-queuing tags."""

    lane: str
    item: Any
    cost: float
    seq: int
    priority: int
    start_tag: float
    finish_tag: float

    def order_key(self) -> tuple[float, float, int]:
        """Dequeue order within the whole queue (smaller leaves first)."""
        return (-self.priority, self.start_tag, self.seq)


class WeightedFairQueue:
    """SFQ over named lanes.

    Lanes are configured up front (``lanes``) or created on first use with
    ``default_weight`` / priority 0 — the portal cannot know every
    principal ahead of time.
    """

    def __init__(
        self,
        lanes: dict[str, LaneConfig] | None = None,
        *,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ValueError(f"default weight must be positive: {default_weight}")
        self.lanes: dict[str, LaneConfig] = dict(lanes or {})
        self.default_weight = float(default_weight)
        self._pending: dict[str, deque[QueueEntry]] = {}
        #: per priority class: the start tag of the last dequeued entry
        self._vtime: dict[int, float] = {}
        #: per lane: the finish tag of the lane's last enqueued entry
        self._lane_finish: dict[str, float] = {}
        self._seq = itertools.count()
        self.enqueued = 0
        self.dequeued = 0

    def lane(self, name: str) -> LaneConfig:
        """The lane's config (created with the default weight on first use)."""
        config = self.lanes.get(name)
        if config is None:
            config = self.lanes[name] = LaneConfig(weight=self.default_weight)
        return config

    # -- queue operations -----------------------------------------------------

    def enqueue(self, lane: str, item: Any = None, *, cost: float = 1.0) -> QueueEntry:
        """Add *item* to *lane*; returns the tagged entry.

        ``cost`` is the entry's work in arbitrary units; a lane's virtual
        finish advances by ``cost / weight``, so heavier work or lighter
        weights both push the lane further back in the schedule.
        """
        if cost <= 0:
            raise ValueError(f"entry cost must be positive: {cost}")
        config = self.lane(lane)
        start = max(
            self._vtime.get(config.priority, 0.0),
            self._lane_finish.get(lane, 0.0),
        )
        entry = QueueEntry(
            lane=lane,
            item=item,
            cost=cost,
            seq=next(self._seq),
            priority=config.priority,
            start_tag=start,
            finish_tag=start + cost / config.weight,
        )
        self._lane_finish[lane] = entry.finish_tag
        self._pending.setdefault(lane, deque()).append(entry)
        self.enqueued += 1
        return entry

    def _head_entries(self) -> Iterator[QueueEntry]:
        for queue in self._pending.values():
            if queue:
                yield queue[0]

    def peek(self) -> QueueEntry | None:
        """The entry :meth:`dequeue` would return, without removing it."""
        return min(self._head_entries(), key=QueueEntry.order_key, default=None)

    def dequeue(self) -> QueueEntry | None:
        """Remove and return the next entry (``None`` on an empty queue)."""
        entry = self.peek()
        if entry is None:
            return None
        self._pending[entry.lane].popleft()
        vtime = self._vtime.get(entry.priority, 0.0)
        if entry.start_tag > vtime:
            self._vtime[entry.priority] = entry.start_tag
        self.dequeued += 1
        return entry

    def remove(self, entry: QueueEntry) -> bool:
        """Withdraw a queued entry (a shed request takes its charge back).

        Only the lane's *newest* entry may be withdrawn — admission decides
        an entry's fate immediately, so a withdrawal always targets the
        entry just enqueued.  Returns whether anything was removed.
        """
        queue = self._pending.get(entry.lane)
        if not queue or queue[-1] is not entry:
            return False
        queue.pop()
        # roll the lane's virtual finish back so the withdrawn charge does
        # not push the lane's future work later in the schedule
        self._lane_finish[entry.lane] = entry.start_tag
        self.enqueued -= 1
        return True

    # -- views ----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def position(self, entry: QueueEntry) -> int:
        """How many queued entries leave before *entry* would."""
        key = entry.order_key()
        return sum(
            1
            for queue in self._pending.values()
            for other in queue
            if other is not entry and other.order_key() < key
        )

    def depths(self) -> dict[str, int]:
        """Per-lane queued entry counts (empty lanes omitted)."""
        return {
            lane: len(queue) for lane, queue in self._pending.items() if queue
        }
