"""The load-management portlet.

The operator's window into the admission pipeline and the metascheduler:
per-principal lane occupancy (weights, sheds, queue waits) from the
monitoring service, plus the placement-decision tail and target table from
the metascheduler.  Like every monitoring-plane portlet it talks untraced
SOAP so dashboard refreshes never pollute the traces they display.
"""

from __future__ import annotations

import html
from typing import Any

from repro.portlets.base import Portlet
from repro.soap.client import SoapClient
from repro.transport.network import VirtualNetwork

MONITORING_NAMESPACE = "urn:gce:job-monitoring"
METASCHEDULER_NAMESPACE = "urn:gce:metascheduler"


def _esc(value: Any) -> str:
    """Lane names arrive from client-supplied Principal headers and
    contacts/queues from descriptors — all untrusted in portal markup."""
    return html.escape(str(value), quote=True)


class LoadPortlet(Portlet):
    """Lane occupancy, per-queue load, and metascheduler placements.

    ``monitor_endpoint`` serves the ``load_lanes``/``load_summary``/
    ``queue_load`` views; ``metascheduler_endpoint`` (optional) serves
    ``placements``/``targets``.  Either half renders independently so the
    portlet degrades gracefully when only one plane is deployed.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        monitor_endpoint: str,
        metascheduler_endpoint: str = "",
        *,
        name: str = "load",
        title: str = "Load management",
        source: str = "portal",
        tail: int = 10,
    ):
        super().__init__(name, title)
        self.tail = tail
        self._monitor = SoapClient(
            network,
            monitor_endpoint,
            MONITORING_NAMESPACE,
            source=source,
            traced=False,
        )
        self._metascheduler = None
        if metascheduler_endpoint:
            self._metascheduler = SoapClient(
                network,
                metascheduler_endpoint,
                METASCHEDULER_NAMESPACE,
                source=source,
                traced=False,
            )

    # -- sections ------------------------------------------------------------------

    def _render_lanes(self) -> str:
        lanes = self._monitor.call("load_lanes")
        if not lanes:
            return '<p class="load-lanes">no admission-controlled services</p>'
        cells = ['<table class="load-lanes">'
                 "<tr><th>service</th><th>lane</th><th>weight</th>"
                 "<th>priority</th><th>arrived</th><th>admitted</th>"
                 "<th>shed</th><th>queued</th><th>mean wait s</th>"
                 "<th>max wait s</th></tr>"]
        for row in lanes:
            cells.append(
                f"<tr><td>{_esc(row['service'])}</td><td>{_esc(row['lane'])}</td>"
                f"<td>{_esc(row['weight'])}</td><td>{_esc(row['priority'])}</td>"
                f"<td>{_esc(row['arrived'])}</td><td>{_esc(row['admitted'])}</td>"
                f"<td>{_esc(row['shed'])}</td><td>{_esc(row['queued'])}</td>"
                f"<td>{row['mean_wait']:.3f}</td>"
                f"<td>{row['max_wait']:.3f}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)

    def _render_queues(self) -> str:
        rows = self._monitor.call("queue_load")
        if not rows:
            return ""
        cells = ['<table class="queue-load">'
                 "<tr><th>host</th><th>queue</th><th>depth</th>"
                 "<th>running</th><th>completed</th>"
                 "<th>drain /s</th></tr>"]
        for row in rows:
            cells.append(
                f"<tr><td>{_esc(row['host'])}</td><td>{_esc(row['queue'])}</td>"
                f"<td>{_esc(row['depth'])}</td><td>{_esc(row['running'])}</td>"
                f"<td>{_esc(row['completed'])}</td>"
                f"<td>{row['drain_rate']:.4f}</td></tr>"
            )
        cells.append("</table>")
        return "".join(cells)

    def _render_placements(self) -> str:
        if self._metascheduler is None:
            return ""
        decisions = self._metascheduler.call("placements", self.tail)
        targets = self._metascheduler.call("targets")
        cells = ['<table class="placement-targets">'
                 "<tr><th>contact</th><th>system</th><th>cpus</th>"
                 "<th>breaker</th><th>excluded</th><th>p95 s</th></tr>"]
        for row in targets:
            state = "excluded" if row["excluded"] else "ok"
            cells.append(
                f'<tr class="target-{state}"><td>{_esc(row["contact"])}</td>'
                f"<td>{_esc(row['queuing_system'])}</td><td>{_esc(row['cpus'])}</td>"
                f"<td>{_esc(row['breaker'])}</td><td>{_esc(row['excluded'])}</td>"
                f"<td>{row['p95']:.3f}</td></tr>"
            )
        cells.append("</table>")
        if decisions:
            cells.append('<table class="placement-decisions">'
                         "<tr><th>at</th><th>job</th><th>executable</th>"
                         "<th>contact</th><th>queue</th><th>policy</th>"
                         "<th>depth</th></tr>")
            for row in decisions:
                cells.append(
                    f"<tr><td>{row['at']:.3f}</td><td>{_esc(row['job'])}</td>"
                    f"<td>{_esc(row['executable'])}</td>"
                    f"<td>{_esc(row['contact'])}</td><td>{_esc(row['queue'])}</td>"
                    f"<td>{_esc(row['policy'])}</td>"
                    f"<td>{_esc(row['depth'])}</td></tr>"
                )
            cells.append("</table>")
        else:
            cells.append('<p class="placement-decisions">no placements yet</p>')
        return "".join(cells)

    def render(self, container_base: str) -> str:
        return (
            self._render_lanes()
            + self._render_queues()
            + self._render_placements()
        )
