"""Admission control for SOAP services on the virtual clock.

The controller stacks three gates in front of a service, checked in order
on every arrival:

1. a **concurrency bulkhead** — a hard cap on requests dispatched but not
   yet released;
2. a **weighted-fair queue over per-principal lanes** — the service's
   processing capacity is modelled as a stream of *charges* (one per
   admitted request, ``1/capacity`` virtual seconds each) ordered by
   start-time fair queuing, and a request whose computed queue wait
   exceeds ``max_wait`` is shed;
3. a **token bucket** — an explicit per-service rate cap, checked *after*
   the fair queue and defaulting to twice the modelled capacity.  Order
   matters: the bucket is lane-blind, so were it first, sustained
   overload would be shed in arrival order and the weights would never
   arbitrate.  Behind the fair queue it only binds when operators
   configure a rate below what the queue admits — a deliberate cap, not
   accidental unfairness.

A shed raises :class:`repro.faults.ServerBusyError` with a ``retryAfter``
detail in virtual seconds — how long until the gate that refused the
request would plausibly accept it — which the client retry loop honours
instead of blind exponential backoff.

The sim is single-threaded and synchronous, so queue wait is *virtual
bookkeeping*, never a clock advance: the controller tracks ``busy_until``
(when the modelled server frees up) plus the fair-queued charges not yet
started, and drains them lazily against the shared clock on every
arrival.  Crucially the model runs even with ``enabled=False`` — the
controller still computes each request's would-be wait (so deadline
shedding in the SOAP server sees honest overload numbers and goodput
collapses realistically); it merely never refuses anyone.

Shed and queue-wait events are recorded into a
:class:`~repro.resilience.events.ResilienceLog`; when that log is bridged
with :meth:`~repro.observability.runtime.Observability.observe_log`, the
events also land on the open span and in the metrics event counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import ServerBusyError
from repro.loadmgmt.bucket import TokenBucket
from repro.loadmgmt.fairqueue import LaneConfig, WeightedFairQueue
from repro.observability.metrics import Histogram
from repro.resilience import events as resilience_events
from repro.resilience.events import ResilienceLog
from repro.transport.clock import SimClock

#: the lane used when a request carries no principal header
ANONYMOUS_LANE = "anonymous"


@dataclass
class Ticket:
    """An admitted request's pass through the controller.

    ``queue_wait`` is the modelled virtual time the request spends queued
    before its service slot starts — the number the SOAP server compares
    against the caller's deadline, and the context a deadline shed report
    carries so clients can tell "server overloaded" from "deadline too
    tight".
    """

    principal: str
    method: str
    queue_wait: float
    admitted_at: float
    released: bool = False


@dataclass
class LaneStats:
    """Lifetime admission counters for one lane."""

    arrived: int = 0
    admitted: int = 0
    shed: int = 0
    wait_total: float = 0.0
    wait_max: float = 0.0


class AdmissionController:
    """The three-gate admission pipeline for one service.

    Args:
        clock: the deployment's shared virtual clock.
        capacity: modelled service rate, requests per virtual second.
        rate: token-bucket refill rate (defaults to ``2 * capacity`` so
            the bucket never binds unless configured tighter — the fair
            queue already limits sustained admission to ``capacity``).
        burst: token-bucket burst (defaults to ``10 * rate``).
        max_wait: longest modelled queue wait admitted, virtual seconds.
        max_concurrent: bulkhead size (requests dispatched, not released).
        lanes: per-principal :class:`LaneConfig` (weight + priority
            class); unknown principals get ``default_weight``, priority 0.
        enabled: with ``False``, every gate still accounts but none sheds.
        service: name used in events and monitoring rows.
        log: resilience log receiving shed / queue-wait events.
    """

    def __init__(
        self,
        clock: SimClock,
        capacity: float,
        *,
        rate: float | None = None,
        burst: float | None = None,
        max_wait: float = 5.0,
        max_concurrent: int = 64,
        lanes: dict[str, LaneConfig] | None = None,
        default_weight: float = 1.0,
        enabled: bool = True,
        service: str = "",
        log: ResilienceLog | None = None,
    ):
        if capacity <= 0:
            raise ValueError(f"service capacity must be positive: {capacity}")
        if max_wait <= 0:
            raise ValueError(f"max queue wait must be positive: {max_wait}")
        if max_concurrent < 1:
            raise ValueError(f"bulkhead must admit at least one: {max_concurrent}")
        self.clock = clock
        self.capacity = float(capacity)
        self.cost = 1.0 / float(capacity)
        self.max_wait = float(max_wait)
        self.max_concurrent = int(max_concurrent)
        self.enabled = enabled
        self.service = service
        self.log = log
        bucket_rate = float(rate if rate is not None else 2.0 * capacity)
        self.bucket = TokenBucket(
            clock,
            bucket_rate,
            float(burst) if burst is not None else max(10.0 * bucket_rate, 1.0),
        )
        self.queue = WeightedFairQueue(lanes, default_weight=default_weight)
        self.in_flight = 0
        self.arrived = 0
        self.admitted = 0
        self.shed = 0
        self.wait_histogram = Histogram()
        self.lane_stats: dict[str, LaneStats] = {}
        self._busy_until = 0.0

    # -- the capacity model ---------------------------------------------------

    def _drain(self, now: float) -> None:
        """Retire charges whose modelled service started before *now*.

        Each queued entry's ``item`` is its arrival time; it starts when
        the modelled server frees up and it has arrived, whichever is
        later.  Draining is lazy — the model only advances when observed.
        """
        while True:
            head = self.queue.peek()
            if head is None:
                return
            start = max(self._busy_until, head.item)
            if start >= now:
                return
            self.queue.dequeue()
            self._busy_until = start + self.cost

    def backlog_wait(self, now: float | None = None) -> float:
        """The modelled wait a request arriving *now* would see, seconds."""
        if now is None:
            now = self.clock.now
        self._drain(now)
        return max(self._busy_until - now, 0.0) + len(self.queue) * self.cost

    # -- admission ------------------------------------------------------------

    def admit(
        self,
        principal: str | None = None,
        *,
        priority: int | None = None,
        method: str = "",
    ) -> Ticket:
        """Run the gates; returns a :class:`Ticket` or sheds.

        ``priority`` configures the lane's class on first sight of an
        unknown principal; an explicit entry in ``lanes`` always wins.
        """
        now = self.clock.now
        lane = principal or ANONYMOUS_LANE
        if lane not in self.queue.lanes and priority:
            self.queue.lanes[lane] = LaneConfig(
                weight=self.queue.default_weight, priority=priority
            )
        stats = self.lane_stats.setdefault(lane, LaneStats())
        stats.arrived += 1
        self.arrived += 1
        self._drain(now)

        if self.in_flight >= self.max_concurrent and self.enabled:
            self._shed(lane, method, "bulkhead", self.cost)

        entry = self.queue.enqueue(lane, item=now)
        ahead = self.queue.position(entry)
        queue_wait = max(self._busy_until - now, 0.0) + ahead * self.cost
        if queue_wait > self.max_wait and self.enabled:
            self.queue.remove(entry)
            self._shed(lane, method, "queue", queue_wait - self.max_wait)
        if not self.bucket.try_acquire() and self.enabled:
            self.queue.remove(entry)
            self._shed(lane, method, "rate", self.bucket.time_until())

        stats.admitted += 1
        stats.wait_total += queue_wait
        if queue_wait > stats.wait_max:
            stats.wait_max = queue_wait
        self.admitted += 1
        self.in_flight += 1
        self.wait_histogram.record(queue_wait)
        if self.log is not None and queue_wait > 0.0:
            self.log.record(
                resilience_events.QUEUE_WAIT,
                f"request queued {queue_wait:.3f}s behind {ahead} charges",
                service=self.service,
                operation=method,
                detail={"principal": lane, "queueWait": f"{queue_wait:.6f}"},
            )
        return Ticket(
            principal=lane, method=method, queue_wait=queue_wait, admitted_at=now
        )

    def release(self, ticket: Ticket) -> None:
        """Return the ticket's bulkhead slot; idempotent per ticket."""
        if ticket.released:
            return
        ticket.released = True
        if self.in_flight > 0:
            self.in_flight -= 1

    def _shed(self, lane: str, method: str, reason: str, retry_after: float) -> None:
        retry_after = max(retry_after, self.cost)
        self.lane_stats[lane].shed += 1
        self.shed += 1
        if self.log is not None:
            self.log.record(
                resilience_events.BUSY,
                f"shed by {reason} gate; retry after {retry_after:.3f}s",
                service=self.service,
                operation=method,
                detail={
                    "principal": lane,
                    "reason": reason,
                    "retryAfter": f"{retry_after:.6f}",
                },
            )
        raise ServerBusyError(
            f"{self.service or 'service'} overloaded ({reason}); "
            f"retry in {retry_after:.3f}s",
            detail={
                "retryAfter": f"{retry_after:.6f}",
                "reason": reason,
                "principal": lane,
            },
        )

    # -- monitoring views -----------------------------------------------------

    def lane_rows(self) -> list[dict]:
        """Per-lane occupancy and outcome rows for monitoring/portlets."""
        depths = self.queue.depths()
        rows = []
        for lane in sorted(self.lane_stats):
            stats = self.lane_stats[lane]
            config = self.queue.lane(lane)
            rows.append({
                "service": self.service,
                "lane": lane,
                "weight": config.weight,
                "priority": config.priority,
                "arrived": stats.arrived,
                "admitted": stats.admitted,
                "shed": stats.shed,
                "queued": depths.get(lane, 0),
                "mean_wait": (
                    stats.wait_total / stats.admitted if stats.admitted else 0.0
                ),
                "max_wait": stats.wait_max,
            })
        return rows

    def summary(self) -> dict:
        """Controller-level totals for monitoring/benchmarks."""
        return {
            "service": self.service,
            "enabled": self.enabled,
            "capacity": self.capacity,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed": self.shed,
            "in_flight": self.in_flight,
            "queued": len(self.queue),
            "wait_mean": self.wait_histogram.mean,
            "wait_p99": self.wait_histogram.percentile(0.99),
            "tokens_rejected": self.bucket.rejected,
        }


class LoadRegistry:
    """All admission controllers of one deployment, for monitoring.

    The monitoring service and :class:`~repro.loadmgmt.portlet.LoadPortlet`
    read lane occupancy through this registry rather than reaching into
    individual SOAP servers.
    """

    def __init__(self):
        self.controllers: dict[str, AdmissionController] = {}

    def register(self, controller: AdmissionController) -> AdmissionController:
        self.controllers[controller.service] = controller
        return controller

    def lane_rows(self) -> list[dict]:
        rows: list[dict] = []
        for service in sorted(self.controllers):
            rows.extend(self.controllers[service].lane_rows())
        return rows

    def summaries(self) -> list[dict]:
        return [
            self.controllers[service].summary()
            for service in sorted(self.controllers)
        ]
