"""Token buckets on the virtual clock.

The admission layer's rate limiter: a bucket holds up to ``burst`` tokens
and refills continuously at ``rate`` tokens per virtual second.  Each
admitted request takes one token; an empty bucket yields the exact virtual
time until the next token instead of a blind "try again later", which is
what lets :class:`repro.faults.ServerBusyError` carry a useful
``retryAfter`` hint.

Everything is lazy and deterministic: the level is recomputed from the
shared :class:`~repro.transport.clock.SimClock` on every observation, so
two runs with the same arrival schedule see identical admission decisions.
"""

from __future__ import annotations

from repro.transport.clock import SimClock


class TokenBucket:
    """A continuously-refilling token bucket.

    Invariants (property-tested in ``tests/loadmgmt``):

    - the level never exceeds ``burst``;
    - over any window starting from a full bucket, admitted requests never
      exceed ``burst + rate * elapsed`` (the long-run admitted rate is at
      most the configured rate).
    """

    def __init__(self, clock: SimClock, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"token rate must be positive: {rate}")
        if burst < 1:
            raise ValueError(f"burst must allow at least one token: {burst}")
        self.clock = clock
        self.rate = float(rate)
        self.burst = float(burst)
        self._level = float(burst)
        self._stamp = clock.now
        self.acquired = 0
        self.rejected = 0

    def _refill(self) -> None:
        now = self.clock.now
        if now > self._stamp:
            self._level = min(self.burst, self._level + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def level(self) -> float:
        """The current token level (refilled to now)."""
        self._refill()
        return self._level

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; returns whether the take succeeded."""
        if tokens <= 0:
            raise ValueError(f"must acquire a positive token count: {tokens}")
        self._refill()
        if self._level >= tokens:
            self._level -= tokens
            self.acquired += 1
            return True
        self.rejected += 1
        return False

    def time_until(self, tokens: float = 1.0) -> float:
        """Virtual seconds until *tokens* will be available (0 if now).

        Purely observational: nothing is taken.  ``tokens`` beyond the
        burst capacity can never be satisfied; asking is a caller bug.
        """
        if tokens > self.burst:
            raise ValueError(
                f"bucket of burst {self.burst} can never hold {tokens} tokens"
            )
        self._refill()
        if self._level >= tokens:
            return 0.0
        return (tokens - self._level) / self.rate
