"""XML infrastructure for the portal reproduction.

Everything above this layer (SOAP, WSDL, UDDI, application descriptors, the
schema wizard) speaks XML.  This package provides, from scratch:

- :mod:`repro.xmlutil.qname` — namespace-qualified names.
- :mod:`repro.xmlutil.element` — a lightweight XML infoset
  (:class:`XmlElement`), a serializer, and a hand-rolled parser.
- :mod:`repro.xmlutil.schema` — an XSD-subset Schema Object Model (SOM), the
  analogue of Castor's SOM used by the paper's schema wizard (Figure 3).
- :mod:`repro.xmlutil.validation` — instance validation against a SOM.
- :mod:`repro.xmlutil.binding` — Castor-style data-binding class generation
  (schema element -> Python class with typed fields and marshal/unmarshal).
"""

from repro.xmlutil.qname import QName
from repro.xmlutil.element import XmlElement, XmlParseError, parse_xml
from repro.xmlutil.schema import (
    XsdSchema,
    XsdElement,
    XsdComplexType,
    XsdSimpleType,
    XsdAttribute,
    BuiltinType,
    parse_schema,
)
from repro.xmlutil.validation import SchemaValidator, ValidationIssue
from repro.xmlutil.binding import BindingGenerator, BoundObject, bind_schema

__all__ = [
    "QName",
    "XmlElement",
    "XmlParseError",
    "parse_xml",
    "XsdSchema",
    "XsdElement",
    "XsdComplexType",
    "XsdSimpleType",
    "XsdAttribute",
    "BuiltinType",
    "parse_schema",
    "SchemaValidator",
    "ValidationIssue",
    "BindingGenerator",
    "BoundObject",
    "bind_schema",
]
