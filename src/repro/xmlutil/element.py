"""A lightweight XML infoset with serializer and hand-rolled parser.

The portal layers exchange *documents*, not streams, and need deterministic
serialization (for signing in :mod:`repro.security.saml`) plus namespace-aware
access (for SOAP envelopes).  This module provides exactly that and nothing
more: elements, attributes, character data, namespaces, comments-skipped.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.xmlutil.qname import QName

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}
_NAMED_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class XmlParseError(ValueError):
    """Raised on malformed XML input; carries the byte offset of the error."""

    def __init__(self, message: str, pos: int):
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


def _escape(text: str, table: dict[str, str]) -> str:
    for raw, repl in table.items():
        if raw in text:
            text = text.replace(raw, repl)
    return text


Content = Union["XmlElement", str]


class XmlElement:
    """An XML element: qualified tag, attributes, ordered mixed content.

    Content is a list whose items are either child :class:`XmlElement` objects
    or text strings; this supports the mixed content needed by the portlet
    HTML-rewriting layer while keeping simple documents simple.
    """

    __slots__ = ("tag", "attributes", "content")

    def __init__(
        self,
        tag: QName | str,
        attributes: dict[QName | str, str] | None = None,
        content: Iterable[Content] | None = None,
        text: str | None = None,
    ):
        self.tag: QName = tag if isinstance(tag, QName) else QName.parse(tag)
        self.attributes: dict[QName, str] = {}
        for key, value in (attributes or {}).items():
            self.set(key, value)
        self.content: list[Content] = list(content or [])
        if text is not None:
            self.content.append(text)

    # -- attribute access -------------------------------------------------

    def set(self, key: QName | str, value: str) -> "XmlElement":
        qkey = key if isinstance(key, QName) else QName.parse(key)
        # "xmlns"/"xmlns:*" are namespace declarations, not attributes: the
        # serializer emits declarations from each tag's QName namespaces, and
        # the parser consumes them into the namespace map, so a literal
        # attribute by that name could never round-trip
        if not qkey.namespace and (
            qkey.local == "xmlns" or qkey.local.startswith("xmlns:")
        ):
            raise ValueError(
                f"{qkey.local!r} is a reserved namespace declaration, "
                "not an attribute"
            )
        self.attributes[qkey] = str(value)
        return self

    def get(self, key: QName | str, default: str | None = None) -> str | None:
        qkey = key if isinstance(key, QName) else QName.parse(key)
        return self.attributes.get(qkey, default)

    # -- content access ----------------------------------------------------

    @property
    def children(self) -> list["XmlElement"]:
        """Element children only (text nodes skipped)."""
        return [c for c in self.content if isinstance(c, XmlElement)]

    @property
    def text(self) -> str:
        """Concatenation of all *direct* text content."""
        return "".join(c for c in self.content if isinstance(c, str))

    def set_text(self, text: str) -> "XmlElement":
        """Replace all content with a single text node."""
        self.content = [text]
        return self

    def append(self, child: Content) -> "XmlElement":
        self.content.append(child)
        return self

    def extend(self, children: Iterable[Content]) -> "XmlElement":
        self.content.extend(children)
        return self

    def child(self, tag: QName | str, text: str | None = None) -> "XmlElement":
        """Create, append, and return a new child element (builder style)."""
        el = XmlElement(tag, text=text)
        self.content.append(el)
        return el

    def find(self, tag: QName | str) -> "XmlElement | None":
        """First direct child with the given tag.

        A bare local name matches any namespace; a full QName matches exactly.
        """
        for el in self._match(tag):
            return el
        return None

    def findall(self, tag: QName | str) -> list["XmlElement"]:
        """All direct children with the given tag (bare name = any namespace)."""
        return list(self._match(tag))

    def findtext(self, tag: QName | str, default: str = "") -> str:
        el = self.find(tag)
        return el.text if el is not None else default

    def _match(self, tag: QName | str) -> Iterator["XmlElement"]:
        if isinstance(tag, str) and not tag.startswith("{"):
            for el in self.children:
                if el.tag.local == tag:
                    yield el
            return
        qtag = tag if isinstance(tag, QName) else QName.parse(tag)
        for el in self.children:
            if el.tag == qtag:
                yield el

    def clone(self) -> "XmlElement":
        """A deep copy (children cloned, text shared — strings are immutable)."""
        copy = XmlElement(self.tag)
        copy.attributes = dict(self.attributes)
        copy.content = [
            c.clone() if isinstance(c, XmlElement) else c for c in self.content
        ]
        return copy

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    # -- serialization -----------------------------------------------------

    def serialize(self, indent: int | None = None, declaration: bool = False) -> str:
        """Serialize to a string.

        Namespace prefixes are assigned deterministically in document order
        (``ns0``, ``ns1``, ...), which makes serialization canonical enough
        for the HMAC-based signing used by :mod:`repro.security.saml`.
        """
        parts: list[str] = []
        if declaration:
            parts.append('<?xml version="1.0" encoding="UTF-8"?>')
            if indent is not None:
                parts.append("\n")
        prefixes: dict[str, str] = {}
        self._serialize(parts, prefixes, indent, 0, parent_pretty=False)
        return "".join(parts)

    def _prefix_for(
        self, ns: str, prefixes: dict[str, str], declared: list[str]
    ) -> str:
        if not ns:
            return ""
        if ns not in prefixes:
            prefixes[ns] = f"ns{len(prefixes)}"
            declared.append(ns)
        return prefixes[ns] + ":"

    def _serialize(
        self,
        parts: list[str],
        prefixes: dict[str, str],
        indent: int | None,
        depth: int,
        parent_pretty: bool,
    ) -> None:
        # indentation is only safe around element-only content; a parent with
        # mixed content must not have whitespace injected between its children
        pad = "\n" + " " * (indent * depth) if parent_pretty and depth else ""
        # inherited prefixes are shared down the tree; new ones get declared here
        declared: list[str] = []
        local_prefixes = dict(prefixes)
        tag = self._prefix_for(self.tag.namespace, local_prefixes, declared) + self.tag.local
        attr_parts: list[str] = []
        for key, value in self.attributes.items():
            name = self._prefix_for(key.namespace, local_prefixes, declared) + key.local
            attr_parts.append(f' {name}="{_escape(value, _ESCAPES_ATTR)}"')
        for ns in declared:
            prefix = local_prefixes[ns]
            attr_parts.append(f' xmlns:{prefix}="{_escape(ns, _ESCAPES_ATTR)}"')
        open_tag = f"{pad}<{tag}{''.join(attr_parts)}"
        if not self.content:
            parts.append(open_tag + "/>")
            return
        parts.append(open_tag + ">")
        pretty = indent is not None and all(
            isinstance(c, XmlElement) for c in self.content
        )
        for item in self.content:
            if isinstance(item, str):
                parts.append(_escape(item, _ESCAPES_TEXT))
            else:
                item._serialize(parts, local_prefixes, indent, depth + 1, pretty)
        if pretty:
            parts.append("\n" + " " * ((indent or 0) * depth))
        parts.append(f"</{tag}>")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag.clark()} children={len(self.children)}>"

    def __eq__(self, other: object) -> bool:
        """Structural equality ignoring pure-whitespace text nodes."""
        if not isinstance(other, XmlElement):
            return NotImplemented
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        return self._significant_content() == other._significant_content()

    def _significant_content(self) -> list[Content]:
        """Content normalized for comparison: whitespace-only text dropped,
        adjacent text runs merged (a parser cannot distinguish them)."""
        merged: list[Content] = []
        for item in self.content:
            if isinstance(item, str) and merged and isinstance(merged[-1], str):
                merged[-1] = merged[-1] + item
            else:
                merged.append(item)
        return [
            c for c in merged if isinstance(c, XmlElement) or c.strip()
        ]

    __hash__ = None  # type: ignore[assignment]  # mutable


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    """A small recursive-descent, namespace-aware XML parser."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def fail(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.pos)

    def parse_document(self) -> XmlElement:
        self._skip_misc()
        if self.pos >= self.n or self.text[self.pos] != "<":
            raise self.fail("expected root element")
        root = self._parse_element({"": "", "xml": "http://www.w3.org/XML/1998/namespace"})
        self._skip_misc()
        if self.pos != self.n:
            raise self.fail("trailing content after root element")
        return root

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, processing instructions, and DOCTYPE."""
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.fail("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.fail("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<!DOCTYPE", self.pos):
                depth = 0
                while self.pos < self.n:
                    c = self.text[self.pos]
                    self.pos += 1
                    if c == "<":
                        depth += 1
                    elif c == ">":
                        depth -= 1
                        if depth == 0:
                            break
                else:
                    raise self.fail("unterminated DOCTYPE")
            else:
                return

    def _parse_name(self) -> str:
        start = self.pos
        while self.pos < self.n and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_.:-"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.fail("expected a name")
        return self.text[start:self.pos]

    def _skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos].isspace():
            self.pos += 1

    def _resolve(self, name: str, nsmap: dict[str, str], *, attr: bool) -> QName:
        if ":" in name:
            prefix, local = name.split(":", 1)
            if prefix not in nsmap:
                raise self.fail(f"undeclared namespace prefix {prefix!r}")
            return QName(nsmap[prefix], local)
        # default namespace applies to elements, never to attributes
        return QName("" if attr else nsmap.get("", ""), name)

    def _parse_element(self, parent_nsmap: dict[str, str]) -> XmlElement:
        assert self.text[self.pos] == "<"
        self.pos += 1
        name = self._parse_name()
        raw_attrs: list[tuple[str, str]] = []
        nsmap = dict(parent_nsmap)
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self.fail("unterminated start tag")
            if self.text[self.pos] in "/>":
                break
            attr_name = self._parse_name()
            self._skip_ws()
            if self.pos >= self.n or self.text[self.pos] != "=":
                raise self.fail(f"expected '=' after attribute {attr_name!r}")
            self.pos += 1
            self._skip_ws()
            quote = self.text[self.pos] if self.pos < self.n else ""
            if quote not in ("'", '"'):
                raise self.fail("attribute value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.fail("unterminated attribute value")
            value = _decode_entities(self.text[self.pos:end], self)
            self.pos = end + 1
            if attr_name == "xmlns":
                nsmap[""] = value
            elif attr_name.startswith("xmlns:"):
                nsmap[attr_name[6:]] = value
            else:
                raw_attrs.append((attr_name, value))

        element = XmlElement(self._resolve(name, nsmap, attr=False))
        for attr_name, value in raw_attrs:
            element.attributes[self._resolve(attr_name, nsmap, attr=True)] = value

        if self.text[self.pos] == "/":
            if not self.text.startswith("/>", self.pos):
                raise self.fail("malformed empty-element tag")
            self.pos += 2
            return element
        self.pos += 1  # consume '>'
        self._parse_content(element, nsmap, name)
        return element

    def _parse_content(
        self, element: XmlElement, nsmap: dict[str, str], open_name: str
    ) -> None:
        buf: list[str] = []

        def flush() -> None:
            if buf:
                text = "".join(buf)
                buf.clear()
                element.content.append(text)

        while True:
            if self.pos >= self.n:
                raise self.fail(f"unterminated element <{open_name}>")
            ch = self.text[self.pos]
            if ch != "<":
                nxt = self.text.find("<", self.pos)
                if nxt < 0:
                    raise self.fail(f"unterminated element <{open_name}>")
                buf.append(_decode_entities(self.text[self.pos:nxt], self))
                self.pos = nxt
                continue
            if self.text.startswith("</", self.pos):
                flush()
                self.pos += 2
                close = self._parse_name()
                if close != open_name:
                    raise self.fail(
                        f"mismatched close tag </{close}> for <{open_name}>"
                    )
                self._skip_ws()
                if self.pos >= self.n or self.text[self.pos] != ">":
                    raise self.fail("malformed close tag")
                self.pos += 1
                return
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.fail("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end < 0:
                    raise self.fail("unterminated CDATA section")
                buf.append(self.text[self.pos + 9:end])
                self.pos = end + 3
                continue
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.fail("unterminated processing instruction")
                self.pos = end + 2
                continue
            flush()
            element.content.append(self._parse_element(nsmap))


def _decode_entities(text: str, parser: _Parser) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i)
        if end < 0:
            raise parser.fail("unterminated entity reference")
        entity = text[i + 1:end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _NAMED_ENTITIES:
            out.append(_NAMED_ENTITIES[entity])
        else:
            raise parser.fail(f"unknown entity &{entity};")
        i = end + 1
    return "".join(out)


def parse_xml(text: str) -> XmlElement:
    """Parse an XML document string into an :class:`XmlElement` tree."""
    return _Parser(text).parse_document()
