"""Namespace-qualified XML names."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QName:
    """A namespace-qualified name, ``{namespace}local``.

    ``namespace`` may be the empty string for unqualified names.  QNames are
    hashable and comparable so they may be used as dictionary keys throughout
    the SOAP/WSDL layers.
    """

    namespace: str
    local: str

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")

    @staticmethod
    def parse(text: str) -> "QName":
        """Parse Clark notation (``{ns}local``) or a bare local name."""
        if text.startswith("{"):
            end = text.find("}")
            if end < 0:
                raise ValueError(f"malformed Clark-notation QName: {text!r}")
            return QName(text[1:end], text[end + 1:])
        return QName("", text)

    def clark(self) -> str:
        """Render in Clark notation (``{ns}local`` / bare local)."""
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    def __str__(self) -> str:
        return self.clark()
