"""Castor-style XML data binding: schema -> generated Python classes.

The paper uses Castor's source generator: "This generates one JavaBean class
per schema element.  Each element comes with the associated get and set
methods needed to modify element values and attributes, add or delete
children, etc."  :class:`BindingGenerator` is the Python analogue: for every
complex type in a schema it manufactures a class with

- a typed property per sequence element (lists for repeated elements),
- a typed property per attribute,
- JavaBean-style ``get_x()`` / ``set_x()`` / ``add_x()`` / ``delete_x()``
  methods (the adapter layer in :mod:`repro.appws.adapter` wraps these),
- ``to_xml()`` (marshal) and ``from_xml()`` (unmarshal) round-tripping
  through :class:`repro.xmlutil.element.XmlElement`.
"""

from __future__ import annotations

import keyword
from typing import Any

from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName
from repro.xmlutil.schema import (
    BuiltinType,
    ElementType,
    XsdAttribute,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
)


def _python_name(name: str) -> str:
    """Convert an XML name to a safe Python identifier (camelCase -> snake)."""
    out: list[str] = []
    for i, ch in enumerate(name):
        if ch.isupper():
            if i and (name[i - 1].islower() or (i + 1 < len(name) and name[i + 1].islower())):
                out.append("_")
            out.append(ch.lower())
        elif ch in "-.":
            out.append("_")
        else:
            out.append(ch)
    ident = "".join(out)
    if keyword.iskeyword(ident) or not ident.isidentifier():
        ident += "_"
    return ident


class BoundObject:
    """Base class of all generated binding classes.

    Subclasses carry class-level metadata (``_ctype``, ``_schema``,
    ``_field_names``) installed by :class:`BindingGenerator`; instances keep
    their state in ``_values``.
    """

    _ctype: XsdComplexType
    _schema: XsdSchema
    _element_fields: dict[str, XsdElement]
    _attribute_fields: dict[str, XsdAttribute]

    def __init__(self, **kwargs: Any):
        self._values: dict[str, Any] = {}
        for field, decl in self._element_fields.items():
            if decl.repeated:
                self._values[field] = []
            elif decl.default is not None:
                self._values[field] = self._parse_simple(decl.type, decl.default)
            else:
                self._values[field] = None
        for field, attr in self._attribute_fields.items():
            self._values[field] = (
                self._parse_simple(attr.type, attr.default)
                if attr.default is not None
                else None
            )
        for key, value in kwargs.items():
            if key not in self._values:
                raise AttributeError(
                    f"{type(self).__name__} has no field {key!r}"
                )
            setattr(self, key, value)

    # -- simple-type lexical conversion -------------------------------------

    @staticmethod
    def _base_of(etype: ElementType) -> BuiltinType | None:
        if isinstance(etype, BuiltinType):
            return etype
        if isinstance(etype, XsdSimpleType):
            return etype.base
        return None

    @classmethod
    def _parse_simple(cls, etype: ElementType, text: str) -> Any:
        base = cls._base_of(etype)
        return base.parse(text) if base is not None else text

    @classmethod
    def _format_simple(cls, etype: ElementType, value: Any) -> str:
        base = cls._base_of(etype)
        return base.format(value) if base is not None else str(value)

    # -- marshalling ---------------------------------------------------------

    def to_xml(self, tag: str | QName | None = None) -> XmlElement:
        """Marshal this object (and nested bound objects) to XML."""
        if tag is None:
            tag = QName(self._schema.target_namespace, self._ctype.name or "item")
        node = XmlElement(tag)
        ns = self._schema.target_namespace
        for field, attr in self._attribute_fields.items():
            value = self._values.get(field)
            if value is not None:
                node.set(attr.name, self._format_simple(attr.type, value))
        for field, decl in self._element_fields.items():
            value = self._values.get(field)
            items = value if decl.repeated else ([] if value is None else [value])
            for item in items:
                if isinstance(item, BoundObject):
                    node.append(item.to_xml(QName(ns, decl.name)))
                else:
                    node.child(QName(ns, decl.name)).set_text(
                        self._format_simple(decl.type, item)
                    )
        return node

    def marshal(self, indent: int | None = 2) -> str:
        """Serialize to an XML document string (Castor ``marshal``)."""
        return self.to_xml().serialize(indent=indent, declaration=True)

    @classmethod
    def from_xml(cls, node: XmlElement) -> "BoundObject":
        """Unmarshal an XML element into an instance of this class."""
        obj = cls()
        for field, attr in cls._attribute_fields.items():
            raw = node.get(attr.name)
            if raw is not None:
                obj._values[field] = cls._parse_simple(attr.type, raw)
        for field, decl in cls._element_fields.items():
            matches = node.findall(decl.name)
            etype = cls._schema.resolve_type(decl.type)
            parsed: list[Any] = []
            for match in matches:
                if isinstance(etype, XsdComplexType):
                    child_cls = cls._registry[etype.name]  # type: ignore[attr-defined]
                    parsed.append(child_cls.from_xml(match))
                else:
                    parsed.append(cls._parse_simple(etype, match.text))
            if decl.repeated:
                obj._values[field] = parsed
            elif parsed:
                obj._values[field] = parsed[0]
        return obj

    @classmethod
    def unmarshal(cls, text: str) -> "BoundObject":
        """Parse an XML document string and unmarshal it (Castor style)."""
        from repro.xmlutil.element import parse_xml

        return cls.from_xml(parse_xml(text))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._values == other._values

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = type(self).__name__
        inner = ", ".join(
            f"{k}={v!r}" for k, v in self._values.items() if v not in (None, [])
        )
        return f"{name}({inner})"


class BindingGenerator:
    """Generates binding classes for every named complex type in a schema.

    The result of :meth:`generate` maps complex-type name -> class; all
    classes share a ``_registry`` so nested unmarshalling can find the class
    for a child complex type.
    """

    def __init__(self, schema: XsdSchema, class_prefix: str = ""):
        self.schema = schema.resolve()
        self.class_prefix = class_prefix

    def generate(self) -> dict[str, type[BoundObject]]:
        registry: dict[str, type[BoundObject]] = {}
        for name, ctype in self.schema.complex_types.items():
            registry[name] = self._generate_class(ctype, registry)
        # backpatching every class with the same mapping is order-independent
        for cls in registry.values():  # repro: ignore[REP104]
            cls._registry = registry  # type: ignore[attr-defined]
        return registry

    def _generate_class(
        self, ctype: XsdComplexType, registry: dict[str, type[BoundObject]]
    ) -> type[BoundObject]:
        element_fields: dict[str, XsdElement] = {}
        attribute_fields: dict[str, XsdAttribute] = {}
        namespace: dict[str, Any] = {}

        for decl in ctype.sequence:
            field = _python_name(decl.name)
            if field in element_fields:
                raise ValueError(
                    f"duplicate field {field!r} in complex type {ctype.name!r}"
                )
            element_fields[field] = decl
            self._install_accessors(namespace, field, repeated=decl.repeated)
        for attr in ctype.attributes:
            field = _python_name(attr.name)
            if field in element_fields or field in attribute_fields:
                field += "_attr"
            attribute_fields[field] = attr
            self._install_accessors(namespace, field, repeated=False)

        namespace["_ctype"] = ctype
        namespace["_schema"] = self.schema
        namespace["_element_fields"] = element_fields
        namespace["_attribute_fields"] = attribute_fields
        namespace["__doc__"] = (
            ctype.documentation or f"Generated binding for complex type {ctype.name!r}."
        )
        class_name = self.class_prefix + _class_name(ctype.name or "Anonymous")
        return type(class_name, (BoundObject,), namespace)

    @staticmethod
    def _install_accessors(
        namespace: dict[str, Any], field: str, *, repeated: bool
    ) -> None:
        def getter(self: BoundObject, _f: str = field) -> Any:
            return self._values[_f]

        def setter(self: BoundObject, value: Any, _f: str = field) -> None:
            self._values[_f] = value

        namespace[field] = property(getter, setter)
        namespace[f"get_{field}"] = lambda self, _f=field: self._values[_f]

        def bean_setter(self: BoundObject, value: Any, _f: str = field) -> None:
            self._values[_f] = value

        namespace[f"set_{field}"] = bean_setter
        if repeated:
            def adder(self: BoundObject, value: Any, _f: str = field) -> None:
                self._values[_f].append(value)

            def deleter(self: BoundObject, value: Any, _f: str = field) -> None:
                self._values[_f].remove(value)

            namespace[f"add_{field}"] = adder
            namespace[f"delete_{field}"] = deleter


def _class_name(name: str) -> str:
    parts = name.replace("-", "_").replace(".", "_").split("_")
    return "".join(p[:1].upper() + p[1:] for p in parts if p)


def bind_schema(
    schema: XsdSchema, class_prefix: str = ""
) -> dict[str, type[BoundObject]]:
    """Convenience wrapper: generate binding classes for *schema*."""
    return BindingGenerator(schema, class_prefix).generate()
