"""An XSD-subset schema object model (SOM).

The paper's schema wizard (Figure 3) is driven by Castor's Schema Object
Model: "The SOM provides a more convenient API for working with general
schema elements than the XML DOM."  This module is our SOM.  It supports the
subset of XML Schema the application/host/queue descriptors need:

- global and local element declarations with ``minOccurs``/``maxOccurs``
- complex types with ``xs:sequence`` content and attributes
- simple types restricted by enumeration, pattern, length and value bounds
- builtin types: string, int, double, boolean, dateTime, anyURI, base64Binary
- annotations (``xs:documentation``), used by the wizard for form labels

Schemas can be built programmatically (the style used by
:mod:`repro.appws.descriptors`) or parsed from XSD documents with
:func:`parse_schema`; both forms round-trip through :meth:`XsdSchema.to_xml`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Union

from repro.xmlutil.element import XmlElement, parse_xml
from repro.xmlutil.qname import QName

XSD_NS = "http://www.w3.org/2001/XMLSchema"

UNBOUNDED = -1


class BuiltinType(enum.Enum):
    """The XSD builtin types the portal schemas use."""

    STRING = "string"
    INT = "int"
    DOUBLE = "double"
    BOOLEAN = "boolean"
    DATETIME = "dateTime"
    ANYURI = "anyURI"
    BASE64 = "base64Binary"

    @staticmethod
    def from_xsd_name(name: str) -> "BuiltinType":
        aliases = {
            "integer": "int",
            "long": "int",
            "short": "int",
            "float": "double",
            "decimal": "double",
        }
        name = aliases.get(name, name)
        for member in BuiltinType:
            if member.value == name:
                return member
        raise ValueError(f"unsupported XSD builtin type: {name!r}")

    def parse(self, text: str):
        """Convert lexical text to the corresponding Python value."""
        if self is BuiltinType.STRING or self is BuiltinType.ANYURI:
            return text
        if self is BuiltinType.INT:
            return int(text.strip())
        if self is BuiltinType.DOUBLE:
            return float(text.strip())
        if self is BuiltinType.BOOLEAN:
            t = text.strip()
            if t in ("true", "1"):
                return True
            if t in ("false", "0"):
                return False
            raise ValueError(f"invalid xsd:boolean lexical value {text!r}")
        if self is BuiltinType.DATETIME:
            return text.strip()
        if self is BuiltinType.BASE64:
            return text.strip()
        raise AssertionError(self)

    def format(self, value) -> str:
        """Convert a Python value to XSD lexical form."""
        if self is BuiltinType.BOOLEAN:
            return "true" if value else "false"
        if self is BuiltinType.DOUBLE:
            return repr(float(value))
        return str(value)


@dataclass
class XsdSimpleType:
    """A named or anonymous restriction of a builtin type."""

    name: str
    base: BuiltinType = BuiltinType.STRING
    enumeration: list[str] = field(default_factory=list)
    pattern: str | None = None
    min_inclusive: float | None = None
    max_inclusive: float | None = None
    min_length: int | None = None
    max_length: int | None = None
    documentation: str = ""

    def check(self, text: str) -> list[str]:
        """Return a list of violation messages for a lexical value."""
        issues: list[str] = []
        try:
            value = self.base.parse(text)
        except ValueError as exc:
            return [str(exc)]
        if self.enumeration and text not in self.enumeration:
            issues.append(
                f"value {text!r} not in enumeration {self.enumeration!r}"
            )
        if self.pattern is not None and re.fullmatch(self.pattern, text) is None:
            issues.append(f"value {text!r} does not match pattern {self.pattern!r}")
        if self.min_inclusive is not None and isinstance(value, (int, float)):
            if value < self.min_inclusive:
                issues.append(f"value {value} < minInclusive {self.min_inclusive}")
        if self.max_inclusive is not None and isinstance(value, (int, float)):
            if value > self.max_inclusive:
                issues.append(f"value {value} > maxInclusive {self.max_inclusive}")
        if self.min_length is not None and len(text) < self.min_length:
            issues.append(f"length {len(text)} < minLength {self.min_length}")
        if self.max_length is not None and len(text) > self.max_length:
            issues.append(f"length {len(text)} > maxLength {self.max_length}")
        return issues


ElementType = Union[BuiltinType, XsdSimpleType, "XsdComplexType", str]


@dataclass
class XsdAttribute:
    """An attribute declaration on a complex type."""

    name: str
    type: BuiltinType | XsdSimpleType = BuiltinType.STRING
    required: bool = False
    default: str | None = None
    documentation: str = ""


@dataclass
class XsdElement:
    """An element declaration (global or inside a sequence).

    ``type`` may be a builtin, a simple type, a complex type, or the *name*
    of a schema-level type resolved by :meth:`XsdSchema.resolve`.
    """

    name: str
    type: ElementType = BuiltinType.STRING
    min_occurs: int = 1
    max_occurs: int = 1  # UNBOUNDED for xs:maxOccurs="unbounded"
    default: str | None = None
    documentation: str = ""

    @property
    def repeated(self) -> bool:
        return self.max_occurs == UNBOUNDED or self.max_occurs > 1

    @property
    def optional(self) -> bool:
        return self.min_occurs == 0


@dataclass
class XsdComplexType:
    """A complex type with sequence content and attributes."""

    name: str
    sequence: list[XsdElement] = field(default_factory=list)
    attributes: list[XsdAttribute] = field(default_factory=list)
    documentation: str = ""
    mixed: bool = False

    def element(self, name: str) -> XsdElement | None:
        for el in self.sequence:
            if el.name == name:
                return el
        return None

    def attribute(self, name: str) -> XsdAttribute | None:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None


@dataclass
class XsdSchema:
    """A schema: a target namespace, named types, and global elements."""

    target_namespace: str = ""
    elements: list[XsdElement] = field(default_factory=list)
    complex_types: dict[str, XsdComplexType] = field(default_factory=dict)
    simple_types: dict[str, XsdSimpleType] = field(default_factory=dict)

    # -- construction helpers ---------------------------------------------

    def add_complex_type(self, ctype: XsdComplexType) -> XsdComplexType:
        self.complex_types[ctype.name] = ctype
        return ctype

    def add_simple_type(self, stype: XsdSimpleType) -> XsdSimpleType:
        self.simple_types[stype.name] = stype
        return stype

    def add_element(self, element: XsdElement) -> XsdElement:
        self.elements.append(element)
        return element

    def find_element(self, name: str) -> XsdElement | None:
        for el in self.elements:
            if el.name == name:
                return el
        return None

    def resolve_type(self, ref: ElementType) -> ElementType:
        """Resolve a by-name type reference to the actual type object."""
        if isinstance(ref, str):
            if ref in self.complex_types:
                return self.complex_types[ref]
            if ref in self.simple_types:
                return self.simple_types[ref]
            # a dangling type name is a schema-authoring bug (schemas are
            # built in-process, never from the wire): crash loudly
            raise KeyError(f"schema has no type named {ref!r}")  # repro: ignore[REP901]
        return ref

    def resolve(self) -> "XsdSchema":
        """Replace every by-name type reference with its type object."""
        for ctype in self.complex_types.values():
            for el in ctype.sequence:
                el.type = self.resolve_type(el.type)
            for attr in ctype.attributes:
                if isinstance(attr.type, str):
                    resolved = self.resolve_type(attr.type)
                    if isinstance(resolved, XsdComplexType):
                        # schema-authoring bug, same policy as resolve_type
                        raise ValueError(  # repro: ignore[REP901]
                            f"attribute {attr.name!r} cannot have complex type"
                        )
                    attr.type = resolved
        for el in self.elements:
            el.type = self.resolve_type(el.type)
        return self

    # -- serialization ------------------------------------------------------

    def to_xml(self) -> XmlElement:
        """Render the schema as an XSD document element."""
        root = XmlElement(QName(XSD_NS, "schema"))
        if self.target_namespace:
            root.set("targetNamespace", self.target_namespace)
        for stype in self.simple_types.values():
            root.append(_simple_type_to_xml(stype, named=True))
        for ctype in self.complex_types.values():
            root.append(_complex_type_to_xml(ctype, named=True))
        for el in self.elements:
            root.append(_element_to_xml(el))
        return root

    def serialize(self, indent: int | None = 2) -> str:
        return self.to_xml().serialize(indent=indent, declaration=True)


def _annotate(parent: XmlElement, documentation: str) -> None:
    if documentation:
        ann = parent.child(QName(XSD_NS, "annotation"))
        ann.child(QName(XSD_NS, "documentation"), text=documentation)


def _type_ref_name(etype: ElementType) -> str | None:
    """The ``type=`` attribute value for a referencable type, else None."""
    if isinstance(etype, BuiltinType):
        return f"xs:{etype.value}"
    if isinstance(etype, str):
        return etype
    if isinstance(etype, (XsdSimpleType, XsdComplexType)) and etype.name:
        return etype.name
    return None


def _element_to_xml(el: XsdElement) -> XmlElement:
    node = XmlElement(QName(XSD_NS, "element"), {"name": el.name})
    if el.min_occurs != 1:
        node.set("minOccurs", str(el.min_occurs))
    if el.max_occurs != 1:
        node.set(
            "maxOccurs",
            "unbounded" if el.max_occurs == UNBOUNDED else str(el.max_occurs),
        )
    if el.default is not None:
        node.set("default", el.default)
    _annotate(node, el.documentation)
    ref = _type_ref_name(el.type)
    if ref is not None:
        node.set("type", ref)
    elif isinstance(el.type, XsdSimpleType):
        node.append(_simple_type_to_xml(el.type, named=False))
    elif isinstance(el.type, XsdComplexType):
        node.append(_complex_type_to_xml(el.type, named=False))
    return node


def _simple_type_to_xml(stype: XsdSimpleType, *, named: bool) -> XmlElement:
    node = XmlElement(QName(XSD_NS, "simpleType"))
    if named and stype.name:
        node.set("name", stype.name)
    _annotate(node, stype.documentation)
    restriction = node.child(QName(XSD_NS, "restriction"))
    restriction.set("base", f"xs:{stype.base.value}")
    for value in stype.enumeration:
        restriction.child(QName(XSD_NS, "enumeration")).set("value", value)
    facets = [
        ("pattern", stype.pattern),
        ("minInclusive", stype.min_inclusive),
        ("maxInclusive", stype.max_inclusive),
        ("minLength", stype.min_length),
        ("maxLength", stype.max_length),
    ]
    for facet, value in facets:
        if value is not None:
            restriction.child(QName(XSD_NS, facet)).set("value", str(value))
    return node


def _complex_type_to_xml(ctype: XsdComplexType, *, named: bool) -> XmlElement:
    node = XmlElement(QName(XSD_NS, "complexType"))
    if named and ctype.name:
        node.set("name", ctype.name)
    if ctype.mixed:
        node.set("mixed", "true")
    _annotate(node, ctype.documentation)
    if ctype.sequence:
        seq = node.child(QName(XSD_NS, "sequence"))
        for el in ctype.sequence:
            seq.append(_element_to_xml(el))
    for attr in ctype.attributes:
        attr_node = node.child(QName(XSD_NS, "attribute"))
        attr_node.set("name", attr.name)
        ref = _type_ref_name(attr.type)
        if ref:
            attr_node.set("type", ref)
        if attr.required:
            attr_node.set("use", "required")
        if attr.default is not None:
            attr_node.set("default", attr.default)
    return node


# ---------------------------------------------------------------------------
# XSD parsing
# ---------------------------------------------------------------------------


def parse_schema(source: str | XmlElement) -> XsdSchema:
    """Parse an XSD document (subset) into a resolved :class:`XsdSchema`."""
    root = parse_xml(source) if isinstance(source, str) else source
    if root.tag != QName(XSD_NS, "schema"):
        raise ValueError(f"not an XSD schema document: {root.tag}")
    schema = XsdSchema(target_namespace=root.get("targetNamespace", "") or "")
    for node in root.children:
        local = node.tag.local
        if local == "simpleType":
            stype = _parse_simple_type(node)
            schema.add_simple_type(stype)
        elif local == "complexType":
            schema.add_complex_type(_parse_complex_type(node))
        elif local == "element":
            schema.add_element(_parse_element_decl(node))
        elif local == "annotation":
            continue
        else:
            raise ValueError(f"unsupported schema-level construct xs:{local}")
    return schema.resolve()


def _doc_of(node: XmlElement) -> str:
    ann = node.find(QName(XSD_NS, "annotation"))
    if ann is None:
        return ""
    return ann.findtext(QName(XSD_NS, "documentation")).strip()


def _parse_type_ref(name: str) -> ElementType:
    if ":" in name:
        prefix, local = name.split(":", 1)
        # any prefix bound to the XSD namespace denotes a builtin; the parser
        # resolved element tags but attribute *values* keep their prefixes,
        # so accept the conventional xs:/xsd: prefixes.
        if prefix in ("xs", "xsd"):
            return BuiltinType.from_xsd_name(local)
        name = local
    return name  # by-name reference, resolved by XsdSchema.resolve


def _parse_element_decl(node: XmlElement) -> XsdElement:
    name = node.get("name")
    if not name:
        raise ValueError("xs:element requires a name")
    el = XsdElement(name=name, documentation=_doc_of(node))
    min_occurs = node.get("minOccurs")
    if min_occurs is not None:
        el.min_occurs = int(min_occurs)
    max_occurs = node.get("maxOccurs")
    if max_occurs is not None:
        el.max_occurs = UNBOUNDED if max_occurs == "unbounded" else int(max_occurs)
    default = node.get("default")
    if default is not None:
        el.default = default
    type_ref = node.get("type")
    if type_ref is not None:
        el.type = _parse_type_ref(type_ref)
        return el
    inline_complex = node.find(QName(XSD_NS, "complexType"))
    if inline_complex is not None:
        el.type = _parse_complex_type(inline_complex, anonymous_name="")
        return el
    inline_simple = node.find(QName(XSD_NS, "simpleType"))
    if inline_simple is not None:
        el.type = _parse_simple_type(inline_simple, anonymous_name="")
        return el
    el.type = BuiltinType.STRING
    return el


def _parse_simple_type(node: XmlElement, anonymous_name: str = "") -> XsdSimpleType:
    name = node.get("name", anonymous_name) or anonymous_name
    stype = XsdSimpleType(name=name, documentation=_doc_of(node))
    restriction = node.find(QName(XSD_NS, "restriction"))
    if restriction is None:
        return stype
    base = restriction.get("base", "xs:string") or "xs:string"
    parsed = _parse_type_ref(base)
    if not isinstance(parsed, BuiltinType):
        raise ValueError(f"simpleType restriction base must be builtin, got {base!r}")
    stype.base = parsed
    for facet in restriction.children:
        value = facet.get("value", "") or ""
        local = facet.tag.local
        if local == "enumeration":
            stype.enumeration.append(value)
        elif local == "pattern":
            stype.pattern = value
        elif local == "minInclusive":
            stype.min_inclusive = float(value)
        elif local == "maxInclusive":
            stype.max_inclusive = float(value)
        elif local == "minLength":
            stype.min_length = int(value)
        elif local == "maxLength":
            stype.max_length = int(value)
        else:
            raise ValueError(f"unsupported facet xs:{local}")
    return stype


def _parse_complex_type(node: XmlElement, anonymous_name: str = "") -> XsdComplexType:
    name = node.get("name", anonymous_name) or anonymous_name
    ctype = XsdComplexType(
        name=name,
        documentation=_doc_of(node),
        mixed=(node.get("mixed") == "true"),
    )
    seq = node.find(QName(XSD_NS, "sequence"))
    if seq is not None:
        for child in seq.children:
            if child.tag.local != "element":
                raise ValueError(f"unsupported sequence particle xs:{child.tag.local}")
            ctype.sequence.append(_parse_element_decl(child))
    for attr_node in node.findall(QName(XSD_NS, "attribute")):
        attr = XsdAttribute(
            name=attr_node.get("name", "") or "",
            required=(attr_node.get("use") == "required"),
            default=attr_node.get("default"),
            documentation=_doc_of(attr_node),
        )
        type_ref = attr_node.get("type")
        if type_ref:
            parsed = _parse_type_ref(type_ref)
            if isinstance(parsed, str):
                parsed_any: BuiltinType | XsdSimpleType | str = parsed
            else:
                parsed_any = parsed
            if isinstance(parsed_any, XsdComplexType):
                raise ValueError("attributes cannot have complex types")
            attr.type = parsed_any  # type: ignore[assignment]
        ctype.attributes.append(attr)
    return ctype
