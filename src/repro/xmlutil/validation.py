"""Instance-document validation against an XSD-subset schema.

Used by the schema wizard ("SchemaParser (after validating the schema) ..."),
by the application-descriptor services before accepting a descriptor upload,
and by the SOAP layer when decoding complex-typed payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlutil.element import XmlElement
from repro.xmlutil.schema import (
    UNBOUNDED,
    BuiltinType,
    ElementType,
    XsdComplexType,
    XsdElement,
    XsdSchema,
    XsdSimpleType,
)


@dataclass(frozen=True)
class ValidationIssue:
    """One violation: an XPath-like location and a message."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class SchemaValidator:
    """Validates :class:`XmlElement` trees against an :class:`XsdSchema`."""

    def __init__(self, schema: XsdSchema):
        self.schema = schema

    def validate(self, document: XmlElement) -> list[ValidationIssue]:
        """Validate a document against the matching global element
        declaration; returns all violations (empty list = valid)."""
        decl = self.schema.find_element(document.tag.local)
        if decl is None:
            return [
                ValidationIssue(
                    f"/{document.tag.local}",
                    f"no global element declaration named {document.tag.local!r}",
                )
            ]
        issues: list[ValidationIssue] = []
        self._validate_element(document, decl, f"/{document.tag.local}", issues)
        return issues

    def is_valid(self, document: XmlElement) -> bool:
        return not self.validate(document)

    # -- internals ----------------------------------------------------------

    def _validate_element(
        self,
        node: XmlElement,
        decl: XsdElement,
        path: str,
        issues: list[ValidationIssue],
    ) -> None:
        etype: ElementType = self.schema.resolve_type(decl.type)
        if isinstance(etype, BuiltinType):
            self._check_simple_text(node, XsdSimpleType("", base=etype), path, issues)
        elif isinstance(etype, XsdSimpleType):
            self._check_simple_text(node, etype, path, issues)
        elif isinstance(etype, XsdComplexType):
            self._validate_complex(node, etype, path, issues)
        else:  # pragma: no cover - resolve_type raises for unknown refs
            raise AssertionError(etype)

    def _check_simple_text(
        self,
        node: XmlElement,
        stype: XsdSimpleType,
        path: str,
        issues: list[ValidationIssue],
    ) -> None:
        if node.children:
            issues.append(
                ValidationIssue(path, "simple-typed element has element children")
            )
            return
        for message in stype.check(node.text):
            issues.append(ValidationIssue(path, message))

    def _validate_complex(
        self,
        node: XmlElement,
        ctype: XsdComplexType,
        path: str,
        issues: list[ValidationIssue],
    ) -> None:
        # attributes
        declared_attrs = {attr.name: attr for attr in ctype.attributes}
        for attr in ctype.attributes:
            value = node.get(attr.name)
            if value is None:
                if attr.required:
                    issues.append(
                        ValidationIssue(path, f"missing required attribute {attr.name!r}")
                    )
                continue
            atype = attr.type
            stype = (
                atype
                if isinstance(atype, XsdSimpleType)
                else XsdSimpleType("", base=atype)
                if isinstance(atype, BuiltinType)
                else XsdSimpleType("")
            )
            for message in stype.check(value):
                issues.append(ValidationIssue(f"{path}/@{attr.name}", message))
        for key in node.attributes:
            if key.local not in declared_attrs and not key.namespace:
                issues.append(
                    ValidationIssue(path, f"undeclared attribute {key.local!r}")
                )

        if not ctype.mixed and node.text.strip() and ctype.sequence:
            issues.append(ValidationIssue(path, "unexpected character data"))

        # sequence content: children must appear in declared order with
        # occurrence counts inside [minOccurs, maxOccurs]
        children = node.children
        index = 0
        for decl in ctype.sequence:
            count = 0
            while index < len(children) and children[index].tag.local == decl.name:
                child_path = f"{path}/{decl.name}[{count}]"
                self._validate_element(children[index], decl, child_path, issues)
                index += 1
                count += 1
            if count < decl.min_occurs:
                issues.append(
                    ValidationIssue(
                        path,
                        f"element {decl.name!r} occurs {count} time(s), "
                        f"minOccurs is {decl.min_occurs}",
                    )
                )
            if decl.max_occurs != UNBOUNDED and count > decl.max_occurs:
                issues.append(
                    ValidationIssue(
                        path,
                        f"element {decl.name!r} occurs {count} time(s), "
                        f"maxOccurs is {decl.max_occurs}",
                    )
                )
        for extra in children[index:]:
            issues.append(
                ValidationIssue(
                    path, f"unexpected element {extra.tag.local!r} in sequence"
                )
            )
