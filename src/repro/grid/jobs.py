"""Job specifications, lifecycle states, and records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class JobState(enum.Enum):
    """Lifecycle of a batch job.

    §5.1 notes the "running" state of an application "may be subdivided into
    queued, running, sleeping, terminating, and so on"; these are the states
    our schedulers distinguish.
    """

    PENDING = "pending"        # accepted, not yet eligible (held)
    QUEUED = "queued"          # waiting for resources
    RUNNING = "running"
    TERMINATING = "terminating"  # cancel requested, still occupying cpus
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobSpec:
    """A scheduler-neutral job description.

    This is the common data model the interoperable batch-script generators
    agree on; each queuing-system dialect renders it into (and parses it
    from) its own directive syntax.
    """

    name: str = "job"
    executable: str = "/bin/true"
    arguments: list[str] = field(default_factory=list)
    queue: str = ""
    cpus: int = 1
    wallclock_limit: float = 3600.0  # seconds
    memory_mb: int = 0
    stdout_path: str = ""
    stderr_path: str = ""
    directory: str = ""
    account: str = ""
    environment: dict[str, str] = field(default_factory=dict)
    priority: int = 0

    def command_line(self) -> str:
        parts = [self.executable] + list(self.arguments)
        return " ".join(parts)

    def copy(self, **overrides) -> "JobSpec":
        return replace(self, arguments=list(self.arguments),
                       environment=dict(self.environment), **overrides)

    def to_dict(self) -> dict:
        """A JSON-safe rendering (what the scheduler journal stores)."""
        return {
            "name": self.name,
            "executable": self.executable,
            "arguments": list(self.arguments),
            "queue": self.queue,
            "cpus": self.cpus,
            "wallclock_limit": self.wallclock_limit,
            "memory_mb": self.memory_mb,
            "stdout_path": self.stdout_path,
            "stderr_path": self.stderr_path,
            "directory": self.directory,
            "account": self.account,
            "environment": dict(self.environment),
            "priority": self.priority,
        }

    @staticmethod
    def from_dict(raw: dict) -> "JobSpec":
        return JobSpec(
            name=str(raw.get("name", "job")),
            executable=str(raw.get("executable", "")),
            arguments=[str(a) for a in raw.get("arguments", [])],
            queue=str(raw.get("queue", "")),
            cpus=int(raw.get("cpus", 1)),
            wallclock_limit=float(raw.get("wallclock_limit", 3600.0)),
            memory_mb=int(raw.get("memory_mb", 0)),
            stdout_path=str(raw.get("stdout_path", "")),
            stderr_path=str(raw.get("stderr_path", "")),
            directory=str(raw.get("directory", "")),
            account=str(raw.get("account", "")),
            environment={
                str(k): str(v) for k, v in raw.get("environment", {}).items()
            },
            priority=int(raw.get("priority", 0)),
        )

    def validate(self) -> list[str]:
        """Sanity checks shared by every submission front end."""
        problems: list[str] = []
        if not self.executable:
            problems.append("executable must be set")
        if self.cpus < 1:
            problems.append(f"cpus must be >= 1, got {self.cpus}")
        if self.wallclock_limit <= 0:
            problems.append(
                f"wallclock_limit must be positive, got {self.wallclock_limit}"
            )
        if self.memory_mb < 0:
            problems.append(f"memory_mb must be >= 0, got {self.memory_mb}")
        return problems


@dataclass
class JobRecord:
    """A job as tracked by a scheduler."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    exit_code: int | None = None
    stdout: str = ""
    stderr: str = ""
    host: str = ""

    @property
    def finished(self) -> bool:
        return self.state.finished

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def summary(self) -> dict[str, object]:
        """A qstat-style row."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "queue": self.spec.queue,
            "cpus": self.spec.cpus,
            "state": self.state.value,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "exit_code": self.exit_code,
            "host": self.host,
        }
