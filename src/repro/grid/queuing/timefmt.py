"""Walltime lexical forms used by the scheduler dialects."""

from __future__ import annotations

import math


def to_hms(seconds: float) -> str:
    """Render seconds as ``HH:MM:SS`` (rounded up to a whole second)."""
    total = int(math.ceil(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def from_hms(text: str) -> float:
    """Parse ``HH:MM:SS``, ``MM:SS``, or bare seconds."""
    parts = text.strip().split(":")
    if len(parts) == 1:
        return float(parts[0])
    if len(parts) == 2:
        return int(parts[0]) * 60 + float(parts[1])
    if len(parts) == 3:
        return int(parts[0]) * 3600 + int(parts[1]) * 60 + float(parts[2])
    raise ValueError(f"bad walltime {text!r}")


def to_minutes(seconds: float) -> int:
    """Whole minutes, rounded up (LSF's ``-W`` granularity)."""
    return int(math.ceil(seconds / 60.0))
