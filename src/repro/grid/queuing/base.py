"""The discrete-event batch scheduler core and the script-dialect interface."""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.faults import InvalidRequestError, JobError, ResourceNotFoundError
from repro.grid.apps import ApplicationRegistry, default_registry
from repro.grid.jobs import JobRecord, JobSpec, JobState
from repro.transport.clock import SimClock


@dataclass
class QueueDefinition:
    """A scheduler queue: name, limits, and scheduling priority."""

    name: str
    max_wallclock: float = 86400.0
    max_cpus: int = 10**6
    priority: int = 0
    default: bool = False


class ScriptDialect:
    """Renders job specs to scheduler scripts and parses them back.

    Subclasses define the scheduler name and its directive syntax.  The
    contract tested property-based in ``tests/grid``: for any valid spec,
    ``parse(generate(spec))`` reproduces every representable field.
    """

    name = "ABSTRACT"
    shell = "#!/bin/sh"

    def generate(self, spec: JobSpec) -> str:
        """Render a complete, submittable batch script."""
        lines = [self.shell]
        lines.extend(self.directive_lines(spec))
        lines.append("")
        if spec.directory:
            lines.append(f"cd {spec.directory}")
        for key, value in sorted(spec.environment.items()):
            lines.append(f"export {key}={value}")
        lines.append(spec.command_line())
        return "\n".join(lines) + "\n"

    def directive_lines(self, spec: JobSpec) -> list[str]:
        raise NotImplementedError

    def parse(self, script: str) -> JobSpec:
        """Parse a batch script of this dialect back into a spec."""
        spec = JobSpec(name="", executable="")
        for raw_line in script.splitlines():
            line = raw_line.strip()
            if not line or line == self.shell:
                continue
            if self.is_directive(line):
                self.parse_directive(line, spec)
            elif line.startswith("#"):
                continue
            elif line.startswith("cd "):
                spec.directory = line[3:].strip()
            elif line.startswith("export ") and "=" in line:
                key, _, value = line[len("export "):].partition("=")
                spec.environment[key.strip()] = value.strip()
            else:
                parts = line.split()
                if parts:
                    spec.executable = parts[0]
                    spec.arguments = parts[1:]
        if not spec.name:
            spec.name = "job"
        if not spec.executable:
            raise InvalidRequestError(
                f"{self.name} script contains no command line"
            )
        return spec

    def is_directive(self, line: str) -> bool:
        raise NotImplementedError

    def parse_directive(self, line: str, spec: JobSpec) -> None:
        raise NotImplementedError


class BatchScheduler:
    """A discrete-event batch scheduler for one compute resource.

    Scheduling policy: strict FIFO within (queue priority, job priority),
    optionally with backfill (`backfill=True` lets later jobs that fit start
    ahead of a blocked head-of-line job — an ablation knob).

    Time never moves inside the scheduler; it reads the shared
    :class:`SimClock` and lazily replays completion events up to "now" on
    every public call, so state is always consistent with virtual time.
    """

    def __init__(
        self,
        host: str,
        dialect: ScriptDialect,
        *,
        clock: SimClock | None = None,
        cpus: int = 64,
        queues: Iterable[QueueDefinition] | None = None,
        registry: ApplicationRegistry | None = None,
        backfill: bool = False,
        journal=None,
    ):
        self.host = host
        self.dialect = dialect
        self.clock = clock or SimClock()
        self.cpus = cpus
        self.registry = registry or default_registry()
        self.backfill = backfill
        #: optional write-ahead journal (repro.durability.journal.Journal);
        #: submit/start/finish/cancel events make the queue restartable
        self.journal = journal
        self._replaying = False
        queue_list = list(queues) if queues is not None else [
            QueueDefinition("workq", default=True),
            QueueDefinition("express", max_wallclock=3600.0, priority=10),
        ]
        self.queues: dict[str, QueueDefinition] = {q.name: q for q in queue_list}
        self._default_queue = next(
            (q.name for q in queue_list if q.default), queue_list[0].name
        )
        self._jobs: dict[str, JobRecord] = {}
        self._pending: list[str] = []
        self._running: list[str] = []
        self._ids = itertools.count(1)
        self.completed_count = 0
        #: per queue: recent completion times, for the drain-rate estimate
        #: the metascheduler's placement policies read (bounded so a
        #: long-running scheduler never grows without bound)
        self._completions: dict[str, deque] = {}
        self._queue_completed: dict[str, int] = {}

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Submit a spec; returns the scheduler job id (e.g. ``1234.host``)."""
        self._advance()
        problems = spec.validate()
        if problems:
            raise InvalidRequestError("; ".join(problems))
        spec = spec.copy()
        if not spec.queue:
            spec.queue = self._default_queue
        queue = self.queues.get(spec.queue)
        if queue is None:
            raise InvalidRequestError(
                f"unknown queue {spec.queue!r} on {self.host}",
                {"queue": spec.queue},
            )
        if spec.wallclock_limit > queue.max_wallclock:
            raise JobError(
                f"wallclock {spec.wallclock_limit}s exceeds queue "
                f"{queue.name!r} limit {queue.max_wallclock}s"
            )
        if spec.cpus > min(queue.max_cpus, self.cpus):
            raise JobError(
                f"job needs {spec.cpus} cpus; {self.host} has {self.cpus}, "
                f"queue allows {queue.max_cpus}"
            )
        job_id = f"{next(self._ids)}.{self.host}"
        record = JobRecord(
            job_id=job_id,
            spec=spec,
            state=JobState.QUEUED,
            submit_time=self.clock.now,
            host=self.host,
        )
        self._jobs[job_id] = record
        self._pending.append(job_id)
        self._journal("job-submit", job=job_id, spec=spec.to_dict())
        self._schedule(self.clock.now)
        return job_id

    def submit_script(self, script: str) -> str:
        """Parse a script in this scheduler's dialect and submit it."""
        return self.submit(self.dialect.parse(script))

    # -- durability (the Recoverable protocol) --------------------------------

    def _journal(self, kind: str, **data) -> None:
        if self.journal is not None and not self._replaying:
            self.journal.append(kind, **data)

    def snapshot(self) -> dict:
        """Comparable durable-state summary: every job's terminal-relevant
        fields (equal snapshots => interchangeable schedulers)."""
        return {
            "host": self.host,
            "jobs": {
                jid: {
                    "state": record.state.value,
                    "exit": record.exit_code,
                    "stdout": record.stdout,
                }
                for jid, record in self._jobs.items()
            },
        }

    def replay(self, journal) -> int:
        """Rebuild the queue from a previous incarnation's journal.

        Finished and cancelled jobs are restored as terminal records; jobs
        that were queued or running at the crash are *re-queued* under their
        original ids (their partial run produced nothing durable, so running
        them again is the correct at-least-once recovery — completed work is
        never re-run).  The id counter resumes past the highest replayed id.
        """
        self.journal = journal
        self._replaying = True
        applied = 0
        try:
            submits: dict[str, tuple[JobSpec, float]] = {}
            order: list[str] = []
            finished: dict[str, dict] = {}
            cancels: dict[str, dict] = {}
            for record in journal.records():
                data = record.data
                if record.kind == "job-submit":
                    jid = data["job"]
                    submits[jid] = (JobSpec.from_dict(data["spec"]), record.t)
                    order.append(jid)
                    applied += 1
                elif record.kind == "job-finish":
                    finished[data["job"]] = data
                    applied += 1
                elif record.kind == "job-cancel":
                    cancels[data["job"]] = data
                    applied += 1
                elif record.kind == "job-start":
                    applied += 1
            max_id = 0
            for jid in order:
                spec, submitted_at = submits[jid]
                prefix = jid.split(".", 1)[0]
                if prefix.isdigit():
                    max_id = max(max_id, int(prefix))
                job = JobRecord(
                    job_id=jid,
                    spec=spec,
                    state=JobState.QUEUED,
                    submit_time=submitted_at,
                    host=self.host,
                )
                if jid in finished:
                    data = finished[jid]
                    job.state = JobState(data["state"])
                    job.exit_code = data["exit"]
                    job.start_time = data["start"]
                    job.end_time = data["end"]
                    job.stdout = data["stdout"]
                    job.stderr = data["stderr"]
                    self.completed_count += 1
                elif jid in cancels:
                    job.state = JobState.CANCELLED
                    job.end_time = cancels[jid]["end"]
                else:
                    self._pending.append(jid)
                self._jobs[jid] = job
            self._ids = itertools.count(max_id + 1)
        finally:
            self._replaying = False
        self._schedule(self.clock.now)
        return applied

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        self._advance()
        record = self._jobs.get(job_id)
        if record is None:
            raise ResourceNotFoundError(f"no job {job_id!r}", {"job": job_id})
        return record

    def status(self, job_id: str) -> JobState:
        return self.job(job_id).state

    def jobs(self) -> list[JobRecord]:
        self._advance()
        return sorted(self._jobs.values(), key=lambda r: r.job_id)

    def qstat(self) -> list[dict[str, object]]:
        return [record.summary() for record in self.jobs()]

    @property
    def default_queue(self) -> str:
        """The queue a spec without one lands in (placement needs this)."""
        return self._default_queue

    @property
    def free_cpus(self) -> int:
        self._advance()
        return self.cpus - sum(
            self._jobs[jid].spec.cpus for jid in self._running
        )

    def queue_stats(self, window: float = 600.0) -> list[dict[str, object]]:
        """Per-queue load: depth, running, completed, and drain rate.

        ``drain_rate`` is completions per virtual second over the trailing
        *window* — the backpressure signal the load-management layer feeds
        to the metrics registry (per queue, not just per host) and the
        metascheduler's least-loaded policy divides depth by.
        """
        self._advance()
        now = self.clock.now
        pending: dict[str, int] = {}
        running: dict[str, int] = {}
        for jid in self._pending:
            queue = self._jobs[jid].spec.queue
            pending[queue] = pending.get(queue, 0) + 1
        for jid in self._running:
            queue = self._jobs[jid].spec.queue
            running[queue] = running.get(queue, 0) + 1
        rows = []
        for name in sorted(self.queues):
            definition = self.queues[name]
            recent = [
                t for t in self._completions.get(name, ()) if t > now - window
            ]
            rows.append({
                "host": self.host,
                "queue": name,
                "priority": definition.priority,
                "depth": pending.get(name, 0),
                "running": running.get(name, 0),
                "completed": self._queue_completed.get(name, 0),
                "drain_rate": len(recent) / window if window > 0 else 0.0,
            })
        return rows

    # -- control ------------------------------------------------------------------

    def cancel(self, job_id: str) -> None:
        record = self.job(job_id)
        if record.finished:
            return
        if record.state is JobState.RUNNING:
            record.end_time = self.clock.now
            self._running.remove(job_id)
        else:
            self._pending.remove(job_id)
        record.state = JobState.CANCELLED
        self._journal("job-cancel", job=job_id, end=self.clock.now)
        self._schedule(self.clock.now)

    def run_until_complete(self) -> float:
        """Advance the shared clock until every job finishes; returns the
        virtual completion time.  Raises :class:`JobError` if a queued job
        can never start."""
        while True:
            self._advance()
            if not self._running and not self._pending:
                return self.clock.now
            if self._running:
                next_end = min(
                    self._jobs[jid].end_time for jid in self._running
                )
                if next_end > self.clock.now:
                    self.clock.advance(next_end - self.clock.now)
                continue
            # pending but nothing running: unstartable
            stuck = [self._jobs[jid].spec.name for jid in self._pending]
            raise JobError(f"jobs can never start: {stuck}")

    def wait_for(self, job_id: str) -> JobRecord:
        """Advance the shared clock until *job_id* finishes; returns its
        record.  Other jobs' completions are processed along the way."""
        while True:
            record = self.job(job_id)
            if record.finished:
                return record
            running_ends = [
                self._jobs[jid].end_time
                for jid in self._running
                if self._jobs[jid].end_time is not None
            ]
            if not running_ends:
                raise JobError(
                    f"job {job_id} can never start "
                    f"(state {record.state.value}, nothing running)"
                )
            next_end = min(running_ends)
            if next_end <= self.clock.now:
                continue  # _advance in job() will pick it up
            self.clock.advance(next_end - self.clock.now)

    # -- the event loop ---------------------------------------------------------------

    def _advance(self) -> None:
        """Replay completion events up to the current virtual time."""
        now = self.clock.now
        while True:
            ending = [
                jid
                for jid in self._running
                if self._jobs[jid].end_time is not None
                and self._jobs[jid].end_time <= now
            ]
            if not ending:
                break
            jid = min(ending, key=lambda j: self._jobs[j].end_time)
            record = self._jobs[jid]
            self._running.remove(jid)
            if record.state is not JobState.CANCELLED:
                record.state = (
                    JobState.DONE if record.exit_code == 0 else JobState.FAILED
                )
            self.completed_count += 1
            queue = record.spec.queue
            self._queue_completed[queue] = self._queue_completed.get(queue, 0) + 1
            self._completions.setdefault(queue, deque(maxlen=512)).append(
                record.end_time
            )
            self._journal(
                "job-finish",
                job=jid,
                state=record.state.value,
                exit=record.exit_code,
                start=record.start_time,
                end=record.end_time,
                stdout=record.stdout,
                stderr=record.stderr,
            )
            self._schedule(record.end_time)  # type: ignore[arg-type]
        self._schedule(now)

    def _used_cpus(self) -> int:
        return sum(self._jobs[jid].spec.cpus for jid in self._running)

    def _schedule(self, at: float) -> None:
        """Start pending jobs at virtual time *at*, honouring policy."""
        order = sorted(
            range(len(self._pending)),
            key=lambda i: (
                -self.queues[self._jobs[self._pending[i]].spec.queue].priority,
                -self._jobs[self._pending[i]].spec.priority,
                i,
            ),
        )
        started: list[str] = []
        free = self.cpus - self._used_cpus()
        for index in order:
            jid = self._pending[index]
            record = self._jobs[jid]
            if record.spec.cpus <= free:
                self._start(record, at)
                free -= record.spec.cpus
                started.append(jid)
            elif not self.backfill:
                break  # strict FIFO: head of line blocks the rest
        for jid in started:
            self._pending.remove(jid)

    def _start(self, record: JobRecord, at: float) -> None:
        result = self.registry.execute(record.spec, self.host)
        record.state = JobState.RUNNING
        record.start_time = at
        self._journal("job-start", job=record.job_id, at=at)
        if result.duration > record.spec.wallclock_limit:
            record.end_time = at + record.spec.wallclock_limit
            record.exit_code = 137  # killed at the wallclock limit
            record.stdout = result.stdout
            record.stderr = result.stderr + "=>> PBS: job killed: walltime exceeded\n"
        else:
            record.end_time = at + result.duration
            record.exit_code = result.exit_code
            record.stdout = result.stdout
            record.stderr = result.stderr
        self._running.append(record.job_id)
