"""The NQS (Network Queuing System) script dialect — ``#QSUB`` directives."""

from __future__ import annotations

import math

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import ScriptDialect


class NqsDialect(ScriptDialect):
    """NQS: ``#QSUB -r name``, ``-q queue``, ``-lP cpus``, ``-lT seconds``,
    ``-lM <n>mb``, ``-o/-eo``, ``-A account``, ``-p priority``."""

    name = "NQS"

    def directive_lines(self, spec: JobSpec) -> list[str]:
        lines = [f"#QSUB -r {spec.name}"]
        if spec.queue:
            lines.append(f"#QSUB -q {spec.queue}")
        lines.append(f"#QSUB -lP {spec.cpus}")
        lines.append(f"#QSUB -lT {int(math.ceil(spec.wallclock_limit))}")
        if spec.memory_mb:
            lines.append(f"#QSUB -lM {spec.memory_mb}mb")
        if spec.stdout_path:
            lines.append(f"#QSUB -o {spec.stdout_path}")
        if spec.stderr_path:
            lines.append(f"#QSUB -eo {spec.stderr_path}")
        if spec.account:
            lines.append(f"#QSUB -A {spec.account}")
        if spec.priority:
            lines.append(f"#QSUB -p {spec.priority}")
        return lines

    def is_directive(self, line: str) -> bool:
        return line.startswith("#QSUB ")

    def parse_directive(self, line: str, spec: JobSpec) -> None:
        body = line[len("#QSUB "):].strip()
        flag, _, value = body.partition(" ")
        value = value.strip()
        if not flag.startswith("-"):
            raise InvalidRequestError(f"malformed NQS directive: {line!r}")
        option = flag[1:]
        if option == "r":
            spec.name = value
        elif option == "q":
            spec.queue = value
        elif option == "lP":
            spec.cpus = int(value)
        elif option == "lT":
            spec.wallclock_limit = float(value)
        elif option == "lM":
            spec.memory_mb = int(value.rstrip("mb") or 0)
        elif option == "o":
            spec.stdout_path = value
        elif option == "eo":
            spec.stderr_path = value
        elif option == "A":
            spec.account = value
        elif option == "p":
            spec.priority = int(value)
        else:
            raise InvalidRequestError(
                f"unknown NQS option -{option}", {"directive": line}
            )
