"""Batch-queuing-system simulators.

One discrete-event scheduler core (:mod:`repro.grid.queuing.base`) with four
scheduler *dialects* — PBS, LSF, NQS, and GRD/SGE — matching the systems the
paper's two batch-script-generator implementations supported ("one script
generator service that supports PBS and GRD and another that supports LSF
and NQS").  Each dialect renders a :class:`repro.grid.jobs.JobSpec` into its
own directive syntax and parses submitted scripts back.
"""

from repro.grid.queuing.base import BatchScheduler, QueueDefinition, ScriptDialect
from repro.grid.queuing.pbs import PbsDialect
from repro.grid.queuing.lsf import LsfDialect
from repro.grid.queuing.nqs import NqsDialect
from repro.grid.queuing.grd import GrdDialect

DIALECTS: dict[str, type[ScriptDialect]] = {
    "PBS": PbsDialect,
    "LSF": LsfDialect,
    "NQS": NqsDialect,
    "GRD": GrdDialect,
}


def make_dialect(name: str) -> ScriptDialect:
    """Instantiate a dialect by scheduler name (PBS/LSF/NQS/GRD)."""
    try:
        return DIALECTS[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown queuing system {name!r}; known: {sorted(DIALECTS)}"
        ) from None


__all__ = [
    "BatchScheduler",
    "QueueDefinition",
    "ScriptDialect",
    "PbsDialect",
    "LsfDialect",
    "NqsDialect",
    "GrdDialect",
    "DIALECTS",
    "make_dialect",
]
