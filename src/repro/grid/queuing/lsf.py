"""The LSF (Load Sharing Facility) script dialect — ``#BSUB`` directives."""

from __future__ import annotations

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import ScriptDialect
from repro.grid.queuing.timefmt import to_minutes


class LsfDialect(ScriptDialect):
    """LSF: ``#BSUB -J name``, ``-q queue``, ``-n cpus``, ``-W minutes``,
    ``-M mem-KB``, ``-o/-e``, ``-P project``, ``-sp priority``.

    Note the dialect frictions the interoperability experiment is about:
    walltime in whole minutes (rounded up from the spec's seconds) and
    memory in kilobytes.
    """

    name = "LSF"

    def directive_lines(self, spec: JobSpec) -> list[str]:
        lines = [f"#BSUB -J {spec.name}"]
        if spec.queue:
            lines.append(f"#BSUB -q {spec.queue}")
        lines.append(f"#BSUB -n {spec.cpus}")
        lines.append(f"#BSUB -W {to_minutes(spec.wallclock_limit)}")
        if spec.memory_mb:
            lines.append(f"#BSUB -M {spec.memory_mb * 1024}")
        if spec.stdout_path:
            lines.append(f"#BSUB -o {spec.stdout_path}")
        if spec.stderr_path:
            lines.append(f"#BSUB -e {spec.stderr_path}")
        if spec.account:
            lines.append(f"#BSUB -P {spec.account}")
        if spec.priority:
            lines.append(f"#BSUB -sp {spec.priority}")
        return lines

    def is_directive(self, line: str) -> bool:
        return line.startswith("#BSUB ")

    def parse_directive(self, line: str, spec: JobSpec) -> None:
        body = line[len("#BSUB "):].strip()
        flag, _, value = body.partition(" ")
        value = value.strip()
        if not flag.startswith("-"):
            raise InvalidRequestError(f"malformed LSF directive: {line!r}")
        option = flag[1:]
        if option == "J":
            spec.name = value
        elif option == "q":
            spec.queue = value
        elif option == "n":
            spec.cpus = int(value)
        elif option == "W":
            spec.wallclock_limit = float(value) * 60.0
        elif option == "M":
            spec.memory_mb = int(value) // 1024
        elif option == "o":
            spec.stdout_path = value
        elif option == "e":
            spec.stderr_path = value
        elif option == "P":
            spec.account = value
        elif option == "sp":
            spec.priority = int(value)
        else:
            raise InvalidRequestError(
                f"unknown LSF option -{option}", {"directive": line}
            )
