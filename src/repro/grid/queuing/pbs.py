"""The PBS (Portable Batch System) script dialect — ``#PBS`` directives."""

from __future__ import annotations

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import ScriptDialect
from repro.grid.queuing.timefmt import from_hms, to_hms


class PbsDialect(ScriptDialect):
    """PBS: ``#PBS -N name``, ``-q queue``, ``-l nodes=N``,
    ``-l walltime=HH:MM:SS``, ``-l mem=<n>mb``, ``-o/-e``, ``-A account``,
    ``-v K=V,...``, ``-p priority``."""

    name = "PBS"

    def directive_lines(self, spec: JobSpec) -> list[str]:
        lines = [f"#PBS -N {spec.name}"]
        if spec.queue:
            lines.append(f"#PBS -q {spec.queue}")
        lines.append(f"#PBS -l nodes={spec.cpus}")
        lines.append(f"#PBS -l walltime={to_hms(spec.wallclock_limit)}")
        if spec.memory_mb:
            lines.append(f"#PBS -l mem={spec.memory_mb}mb")
        if spec.stdout_path:
            lines.append(f"#PBS -o {spec.stdout_path}")
        if spec.stderr_path:
            lines.append(f"#PBS -e {spec.stderr_path}")
        if spec.account:
            lines.append(f"#PBS -A {spec.account}")
        if spec.priority:
            lines.append(f"#PBS -p {spec.priority}")
        if spec.environment:
            pairs = ",".join(f"{k}={v}" for k, v in sorted(spec.environment.items()))
            lines.append(f"#PBS -v {pairs}")
        return lines

    def is_directive(self, line: str) -> bool:
        return line.startswith("#PBS ")

    def parse_directive(self, line: str, spec: JobSpec) -> None:
        body = line[len("#PBS "):].strip()
        if not body.startswith("-") or len(body) < 2:
            raise InvalidRequestError(f"malformed PBS directive: {line!r}")
        flag, _, value = body.partition(" ")
        option, value = flag[1:], value.strip()
        if option == "N":
            spec.name = value
        elif option == "q":
            spec.queue = value
        elif option == "o":
            spec.stdout_path = value
        elif option == "e":
            spec.stderr_path = value
        elif option == "A":
            spec.account = value
        elif option == "p":
            spec.priority = int(value)
        elif option == "v":
            for pair in value.split(","):
                if "=" in pair:
                    key, _, val = pair.partition("=")
                    spec.environment[key.strip()] = val.strip()
        elif option == "l":
            for resource in value.split(","):
                key, _, val = resource.partition("=")
                key, val = key.strip(), val.strip()
                if key == "nodes":
                    spec.cpus = int(val)
                elif key == "walltime":
                    spec.wallclock_limit = from_hms(val)
                elif key == "mem":
                    spec.memory_mb = int(val.rstrip("mb") or 0)
                else:
                    raise InvalidRequestError(
                        f"unknown PBS resource {key!r}", {"directive": line}
                    )
        else:
            raise InvalidRequestError(
                f"unknown PBS option -{option}", {"directive": line}
            )
