"""The GRD (Global Resource Director / SGE family) dialect — ``#$`` directives."""

from __future__ import annotations

from repro.faults import InvalidRequestError
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import ScriptDialect
from repro.grid.queuing.timefmt import from_hms, to_hms


class GrdDialect(ScriptDialect):
    """GRD/SGE: ``#$ -N name``, ``-q queue``, ``-pe mpi N``,
    ``-l h_rt=HH:MM:SS``, ``-l h_vmem=<n>M``, ``-o/-e``, ``-A account``,
    ``-p priority``, ``-v K=V``."""

    name = "GRD"

    def directive_lines(self, spec: JobSpec) -> list[str]:
        lines = [f"#$ -N {spec.name}"]
        if spec.queue:
            lines.append(f"#$ -q {spec.queue}")
        lines.append(f"#$ -pe mpi {spec.cpus}")
        lines.append(f"#$ -l h_rt={to_hms(spec.wallclock_limit)}")
        if spec.memory_mb:
            lines.append(f"#$ -l h_vmem={spec.memory_mb}M")
        if spec.stdout_path:
            lines.append(f"#$ -o {spec.stdout_path}")
        if spec.stderr_path:
            lines.append(f"#$ -e {spec.stderr_path}")
        if spec.account:
            lines.append(f"#$ -A {spec.account}")
        if spec.priority:
            lines.append(f"#$ -p {spec.priority}")
        for key, value in sorted(spec.environment.items()):
            lines.append(f"#$ -v {key}={value}")
        return lines

    def is_directive(self, line: str) -> bool:
        return line.startswith("#$ ")

    def parse_directive(self, line: str, spec: JobSpec) -> None:
        body = line[len("#$ "):].strip()
        flag, _, value = body.partition(" ")
        value = value.strip()
        if not flag.startswith("-"):
            raise InvalidRequestError(f"malformed GRD directive: {line!r}")
        option = flag[1:]
        if option == "N":
            spec.name = value
        elif option == "q":
            spec.queue = value
        elif option == "pe":
            parts = value.split()
            if len(parts) != 2:
                raise InvalidRequestError(f"malformed -pe directive: {line!r}")
            spec.cpus = int(parts[1])
        elif option == "l":
            key, _, val = value.partition("=")
            key, val = key.strip(), val.strip()
            if key == "h_rt":
                spec.wallclock_limit = from_hms(val)
            elif key == "h_vmem":
                spec.memory_mb = int(val.rstrip("M") or 0)
            else:
                raise InvalidRequestError(
                    f"unknown GRD resource {key!r}", {"directive": line}
                )
        elif option == "o":
            spec.stdout_path = value
        elif option == "e":
            spec.stderr_path = value
        elif option == "A":
            spec.account = value
        elif option == "p":
            spec.priority = int(value)
        elif option == "v":
            key, _, val = value.partition("=")
            spec.environment[key.strip()] = val.strip()
        else:
            raise InvalidRequestError(
                f"unknown GRD option -{option}", {"directive": line}
            )
