"""The simulated application registry.

"Executing" a job on the virtual grid means looking its executable up here:
each entry computes a deterministic (duration, stdout, exit code) from the
job spec.  The default registry carries the kinds of codes the paper's
portals front — a chemistry package, a structural-mechanics solver, a CFD
code — plus small Unix-ish utilities used by tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.grid.jobs import JobSpec


@dataclass
class ExecutionResult:
    """What a simulated application run produces."""

    duration: float
    stdout: str
    exit_code: int = 0
    stderr: str = ""


AppFunction = Callable[[JobSpec, str], ExecutionResult]


def _stable_fraction(text: str) -> float:
    """A deterministic pseudo-random fraction in [0, 1) from a string."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class ApplicationRegistry:
    """Maps executable paths/names to simulated behaviours."""

    def __init__(self, *, default_duration: float = 60.0):
        self._apps: dict[str, AppFunction] = {}
        self.default_duration = default_duration

    def register(self, executable: str, func: AppFunction) -> None:
        self._apps[executable] = func

    def knows(self, executable: str) -> bool:
        return self._basename(executable) in self._apps or executable in self._apps

    @staticmethod
    def _basename(path: str) -> str:
        return path.rsplit("/", 1)[-1]

    def execute(self, spec: JobSpec, host: str) -> ExecutionResult:
        """Run a job spec; unknown executables get generic behaviour with a
        deterministic duration derived from the spec."""
        func = self._apps.get(spec.executable) or self._apps.get(
            self._basename(spec.executable)
        )
        if func is not None:
            return func(spec, host)
        fraction = _stable_fraction(f"{host}:{spec.command_line()}")
        duration = min(
            self.default_duration * (0.5 + fraction), spec.wallclock_limit
        )
        stdout = (
            f"[{host}] {spec.command_line()}\n"
            f"completed in {duration:.1f}s on {spec.cpus} cpu(s)\n"
        )
        return ExecutionResult(duration=duration, stdout=stdout)


def default_registry() -> ApplicationRegistry:
    """The standard simulated-application catalogue."""
    registry = ApplicationRegistry()

    def _echo(spec: JobSpec, host: str) -> ExecutionResult:
        return ExecutionResult(0.1, " ".join(spec.arguments) + "\n")

    def _hostname(spec: JobSpec, host: str) -> ExecutionResult:
        return ExecutionResult(0.05, host + "\n")

    def _sleep(spec: JobSpec, host: str) -> ExecutionResult:
        seconds = float(spec.arguments[0]) if spec.arguments else 1.0
        return ExecutionResult(seconds, "")

    def _fail(spec: JobSpec, host: str) -> ExecutionResult:
        code = int(spec.arguments[0]) if spec.arguments else 1
        return ExecutionResult(0.1, "", exit_code=code, stderr="simulated failure\n")

    def _gaussian(spec: JobSpec, host: str) -> ExecutionResult:
        """A chemistry code (the paper's example application): runtime scales
        with the basis-set size passed as the first argument."""
        basis = int(spec.arguments[0]) if spec.arguments else 100
        duration = min(0.002 * basis**1.5, spec.wallclock_limit)
        energy = -76.0 - _stable_fraction(f"gaussian:{basis}")
        stdout = (
            f" Entering Gaussian System\n"
            f" basis functions: {basis}\n"
            f" SCF Done:  E(RHF) = {energy:.6f}\n"
            f" Normal termination of Gaussian\n"
        )
        return ExecutionResult(duration, stdout)

    def _ansys(spec: JobSpec, host: str) -> ExecutionResult:
        """Structural mechanics: runtime scales with element count."""
        elements = int(spec.arguments[0]) if spec.arguments else 1000
        duration = min(0.0005 * elements, spec.wallclock_limit)
        stress = 100.0 * (1.0 + _stable_fraction(f"ansys:{elements}"))
        return ExecutionResult(
            duration,
            f"ANSYS solve complete: {elements} elements\n"
            f"max von Mises stress: {stress:.2f} MPa\n",
        )

    def _mm5(spec: JobSpec, host: str) -> ExecutionResult:
        """Mesoscale weather model: runtime scales with forecast hours and
        inversely with cpus."""
        hours = int(spec.arguments[0]) if spec.arguments else 24
        duration = min(2.0 * hours / max(spec.cpus, 1), spec.wallclock_limit)
        return ExecutionResult(
            duration,
            f"MM5 forecast complete: {hours}h on {spec.cpus} cpus\n",
        )

    registry.register("echo", _echo)
    registry.register("/bin/echo", _echo)
    registry.register("hostname", _hostname)
    registry.register("/bin/hostname", _hostname)
    registry.register("sleep", _sleep)
    registry.register("/bin/sleep", _sleep)
    registry.register("false", _fail)
    registry.register("fail", _fail)
    registry.register("g98", _gaussian)
    registry.register("gaussian", _gaussian)
    registry.register("ansys", _ansys)
    registry.register("mm5", _mm5)
    return registry
