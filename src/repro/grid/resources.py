"""Compute resources: scheduler + gatekeeper + HTTP presence on the network."""

from __future__ import annotations

from dataclasses import dataclass

from repro.durability.journal import Journal, notify_replay
from repro.grid.apps import ApplicationRegistry, default_registry
from repro.grid.gram import Gatekeeper
from repro.grid.queuing import make_dialect
from repro.grid.queuing.base import BatchScheduler, QueueDefinition
from repro.security.gsi import SimpleCA
from repro.transport.network import VirtualNetwork
from repro.transport.server import HttpServer


@dataclass
class ComputeResource:
    """One grid resource: a host on the virtual network running a batch
    scheduler behind a GRAM gatekeeper."""

    host: str
    scheduler: BatchScheduler
    gatekeeper: Gatekeeper
    server: HttpServer

    @property
    def queuing_system(self) -> str:
        return self.scheduler.dialect.name

    @property
    def contact(self) -> str:
        """The globusrun contact string for this resource."""
        return self.host


def deploy_resource(
    network: VirtualNetwork,
    ca: SimpleCA,
    host: str,
    queuing_system: str,
    *,
    cpus: int = 64,
    queues: list[QueueDefinition] | None = None,
    registry: ApplicationRegistry | None = None,
    durable: bool = False,
) -> ComputeResource:
    """Stand up one compute resource on the network.

    With ``durable=True`` the scheduler journals its queue and the
    gatekeeper its idempotency keys to the host's disk; deploying again on
    the same host is then the crash-restart path — the fresh scheduler
    replays the surviving journal and re-queues whatever had not finished.
    """
    scheduler_journal = None
    gatekeeper_journal = None
    if durable:
        disk = network.disk(host)
        scheduler_journal = Journal(disk, "scheduler", clock=network.clock)
        gatekeeper_journal = Journal(disk, "gatekeeper", clock=network.clock)
    scheduler = BatchScheduler(
        host,
        make_dialect(queuing_system),
        clock=network.clock,
        cpus=cpus,
        queues=queues,
        registry=registry,
        journal=scheduler_journal,
    )
    if scheduler_journal is not None and len(scheduler_journal):
        scheduler.replay(scheduler_journal)
        notify_replay(scheduler_journal, len(scheduler_journal))
    gatekeeper = Gatekeeper(
        scheduler, ca, journal=gatekeeper_journal, network=network
    )
    server = HttpServer(host, network)
    server.mount("/jobmanager", gatekeeper.handle_http)
    return ComputeResource(host, scheduler, gatekeeper, server)


# The default testbed mirrors the GCE interoperability testbed's shape: two
# sites, four resources, one per queuing system the paper names.
DEFAULT_TESTBED = [
    ("modi4.iu.edu", "PBS", 128),
    ("octopus.iu.edu", "GRD", 64),
    ("blue.sdsc.edu", "LSF", 256),
    ("t3e.sdsc.edu", "NQS", 64),
]


def build_testbed(
    network: VirtualNetwork,
    ca: SimpleCA,
    *,
    resources: list[tuple[str, str, int]] | None = None,
    registry: ApplicationRegistry | None = None,
    durable: bool = False,
) -> dict[str, ComputeResource]:
    """Deploy the standard multi-site testbed; returns host -> resource."""
    registry = registry or default_registry()
    out: dict[str, ComputeResource] = {}
    for host, system, cpus in resources or DEFAULT_TESTBED:
        out[host] = deploy_resource(
            network, ca, host, system, cpus=cpus, registry=registry,
            durable=durable,
        )
    return out
