"""GRAM: the GSI-authenticated gatekeeper and the ``globusrun`` client.

The SDSC "Globusrun Web Service uses the Python implementation of GSI SOAP
and pyGlobus to perform the submission of secure and authenticated jobs on
the Grid."  This module is the pyGlobus/GRAM layer under that service: a
gatekeeper endpoint per compute resource that verifies a proxy-certificate
chain, checks the grid-map file, parses RSL, and hands the job to the local
batch scheduler.

The wire protocol is JSON over the virtual network's HTTP (GRAM predates
SOAP and is not a web service — the Globusrun *web service* in
:mod:`repro.services.jobsubmit` wraps this client).
"""

from __future__ import annotations

import json
from typing import Any

from repro.durability.idempotency import IdempotencyIndex
from repro.faults import (
    AuthenticationError,
    AuthorizationError,
    InvalidRequestError,
    JobError,
    PortalError,
    ResourceNotFoundError,
    ServiceUnavailableError,
)
from repro.grid.jobs import JobSpec
from repro.grid.queuing.base import BatchScheduler
from repro.security import crypto
from repro.security.gsi import GsiError, ProxyCertificate, SimpleCA
from repro.transport.client import HttpClient
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import VirtualNetwork

# ---------------------------------------------------------------------------
# RSL (Resource Specification Language) subset
# ---------------------------------------------------------------------------


def rsl_for(spec: JobSpec) -> str:
    """Render a job spec as an RSL string."""
    parts = [f"(executable={spec.executable})"]
    if spec.arguments:
        parts.append(f"(arguments={' '.join(spec.arguments)})")
    if spec.cpus != 1:
        parts.append(f"(count={spec.cpus})")
    if spec.queue:
        parts.append(f"(queue={spec.queue})")
    parts.append(f"(maxWallTime={int(spec.wallclock_limit)})")
    if spec.directory:
        parts.append(f"(directory={spec.directory})")
    if spec.name != "job":
        parts.append(f"(jobName={spec.name})")
    if spec.account:
        parts.append(f"(project={spec.account})")
    if spec.environment:
        env = "".join(
            f"({key} {value})" for key, value in sorted(spec.environment.items())
        )
        parts.append(f"(environment={env})")
    return "&" + "".join(parts)


def parse_rsl(rsl: str) -> JobSpec:
    """Parse an RSL string into a job spec (subset grammar)."""
    text = rsl.strip()
    if not text.startswith("&"):
        raise InvalidRequestError(f"RSL must start with '&': {text[:30]!r}")
    spec = JobSpec(name="job", executable="")
    for key, value in _rsl_pairs(text[1:]):
        if key == "executable":
            spec.executable = value
        elif key == "arguments":
            spec.arguments = value.split()
        elif key == "count":
            spec.cpus = int(value)
        elif key == "queue":
            spec.queue = value
        elif key == "maxWallTime":
            spec.wallclock_limit = float(value)
        elif key == "directory":
            spec.directory = value
        elif key == "jobName":
            spec.name = value
        elif key == "project":
            spec.account = value
        elif key == "environment":
            for env_key, env_value in _rsl_env_pairs(value):
                spec.environment[env_key] = env_value
        else:
            raise InvalidRequestError(f"unknown RSL attribute {key!r}")
    if not spec.executable:
        raise InvalidRequestError("RSL specifies no executable")
    return spec


def _rsl_pairs(text: str):
    """Yield (key, value) from '(k=v)(k=v)...' honouring nested parens."""
    i = 0
    while i < len(text):
        if text[i].isspace():
            i += 1
            continue
        if text[i] != "(":
            raise InvalidRequestError(f"malformed RSL near {text[i:i+20]!r}")
        depth, start = 1, i + 1
        i += 1
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            raise InvalidRequestError("unbalanced parentheses in RSL")
        clause = text[start:i - 1]
        key, eq, value = clause.partition("=")
        if not eq:
            raise InvalidRequestError(f"RSL clause has no '=': {clause!r}")
        yield key.strip(), value.strip()


def _rsl_env_pairs(text: str):
    """Yield (key, value) from '(K V)(K2 V2)'."""
    i = 0
    while i < len(text):
        if text[i].isspace():
            i += 1
            continue
        if text[i] != "(":
            raise InvalidRequestError(f"malformed RSL environment: {text!r}")
        end = text.find(")", i)
        if end < 0:
            raise InvalidRequestError("unbalanced RSL environment clause")
        inner = text[i + 1:end]
        key, _, value = inner.partition(" ")
        yield key.strip(), value.strip()
        i = end + 1


# ---------------------------------------------------------------------------
# proxy chain serialization (simulation shortcut: see security/crypto.py)
# ---------------------------------------------------------------------------


def serialize_chain(leaf: ProxyCertificate) -> list[dict[str, Any]]:
    """Serialize a proxy chain, leaf first, for the simulated wire."""
    return [
        {
            "subject": cert.subject,
            "issuer": cert.issuer,
            "not_after": cert.not_after,
            "depth": cert.depth,
            "signature": crypto.b64(cert.signature),
            "signing_key": crypto.b64(cert.signing_key),
        }
        for cert in leaf.chain()
    ]


def deserialize_chain(data: list[dict[str, Any]]) -> ProxyCertificate:
    """Rebuild the linked chain; returns the leaf."""
    parent: ProxyCertificate | None = None
    for entry in reversed(data):
        parent = ProxyCertificate(
            subject=entry["subject"],
            issuer=entry["issuer"],
            not_after=float(entry["not_after"]),
            depth=int(entry["depth"]),
            signature=crypto.unb64(entry["signature"]),
            signing_key=crypto.unb64(entry["signing_key"]),
            parent=parent,
        )
    if parent is None:
        raise AuthenticationError("empty proxy chain")
    return parent


# ---------------------------------------------------------------------------
# Gatekeeper
# ---------------------------------------------------------------------------


class Gatekeeper:
    """The per-resource GRAM gatekeeper.

    Verifies the submitted GSI proxy chain against the CA, maps the grid
    identity to a local account through the grid-map file, then parses the
    RSL and submits to the local scheduler.
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        ca: SimpleCA,
        *,
        journal=None,
        network: VirtualNetwork | None = None,
    ):
        self.scheduler = scheduler
        self.ca = ca
        self.gridmap: dict[str, str] = {}
        self.submissions = 0
        #: journal-backed idempotency-key -> job-id map; a retried submit
        #: (same key) returns the original job id even across a crash-restart
        self.idempotency = IdempotencyIndex(journal)
        #: lets the gatekeeper discover the ambient observability bundle
        self.network = network
        self.host = getattr(scheduler, "host", "")

    def add_gridmap_entry(self, identity: str, local_user: str) -> None:
        self.gridmap[identity] = local_user

    def _authorize(self, chain_data: list[dict[str, Any]]) -> str:
        try:
            leaf = deserialize_chain(chain_data)
            identity = self.ca.verify_chain(leaf, now=self.scheduler.clock.now)
        except (GsiError, KeyError, ValueError) as exc:
            raise AuthenticationError(f"GSI authentication failed: {exc}") from exc
        if identity not in self.gridmap:
            raise AuthorizationError(
                f"identity {identity!r} not in grid-map file",
                {"identity": identity},
            )
        return self.gridmap[identity]

    # -- operations -------------------------------------------------------------

    def submit(
        self, chain_data: list[dict[str, Any]], rsl: str, key: str = ""
    ) -> str:
        local_user = self._authorize(chain_data)
        replayed = self.idempotency.get(key)
        if replayed is not None:
            return replayed
        spec = parse_rsl(rsl)
        spec.environment.setdefault("LOGNAME", local_user)
        self.submissions += 1
        job_id = self.scheduler.submit(spec)
        self.idempotency.put(key, job_id)
        self.publish_queue_gauges()
        return job_id

    def status(self, chain_data: list[dict[str, Any]], job_id: str) -> dict[str, Any]:
        self._authorize(chain_data)
        summary = self.scheduler.job(job_id).summary()
        self.publish_queue_gauges()
        return summary

    def publish_queue_gauges(self) -> list[dict[str, Any]]:
        """Export this resource's per-queue load to the metrics registry.

        Gauge labels are ``host/queue`` (the per-host ``queue_depth`` gauge
        the monitoring service already samples keeps its bare-host label),
        so the metascheduler's policies can weigh individual queues, not
        just whole hosts.  Returns the scheduler's stat rows either way.
        """
        rows = self.scheduler.queue_stats()
        obs = (
            getattr(self.network, "observability", None)
            if self.network is not None
            else None
        )
        if obs is not None:
            for row in rows:
                label = f"{row['host']}/{row['queue']}"
                obs.metrics.set_gauge("queue_depth", label, row["depth"])
                obs.metrics.set_gauge("queue_drain_rate", label, row["drain_rate"])
        return rows

    def output(self, chain_data: list[dict[str, Any]], job_id: str) -> dict[str, str]:
        self._authorize(chain_data)
        record = self.scheduler.job(job_id)
        if not record.finished:
            raise JobError(f"job {job_id} still {record.state.value}")
        return {"stdout": record.stdout, "stderr": record.stderr}

    def cancel(self, chain_data: list[dict[str, Any]], job_id: str) -> bool:
        self._authorize(chain_data)
        self.scheduler.cancel(job_id)
        return True

    # -- HTTP face ------------------------------------------------------------------

    def handle_http(self, request: HttpRequest) -> HttpResponse:
        """The gatekeeper's HTTP face, wrapped in a server span when the
        observability layer is installed.  GRAM is JSON over HTTP, not SOAP,
        so the trace context rides the payload's ``trace`` field instead of
        a header entry."""
        obs = (
            getattr(self.network, "observability", None)
            if self.network is not None
            else None
        )
        if obs is None:
            return self._handle(request)
        from repro.observability.context import TraceContext
        from repro.transport.network import ServiceCrash

        op, parent = "", None
        try:
            payload = json.loads(request.body)
            op = str(payload.get("op", ""))
            trace = payload.get("trace") or {}
            if trace.get("traceId") and trace.get("spanId"):
                parent = TraceContext(str(trace["traceId"]), str(trace["spanId"]))
        except (json.JSONDecodeError, AttributeError):
            pass
        started = obs.clock.now
        span = obs.tracer.start(
            f"gatekeeper.{op or 'unknown'}",
            kind="server",
            service="Gatekeeper",
            host=self.host,
            parent=parent,
        )
        try:
            response = self._handle(request)
        except ServiceCrash:
            obs.tracer.end(span, error="ServiceCrash")
            obs.metrics.record_call(
                "Gatekeeper", op or "unknown", "server",
                obs.clock.now - started, True,
            )
            raise
        error = ""
        if not response.ok:
            try:
                error = str(json.loads(response.body).get("error", ""))
            except (json.JSONDecodeError, AttributeError):
                error = f"HTTP {response.status}"
        obs.tracer.end(span, error=error)
        obs.metrics.record_call(
            "Gatekeeper", op or "unknown", "server",
            obs.clock.now - started, bool(error),
        )
        return response

    def _handle(self, request: HttpRequest) -> HttpResponse:
        from repro.resilience.policy import (
            Deadline,
            pop_inbound_deadline,
            push_inbound_deadline,
        )

        deadline = None
        try:
            raw = json.loads(request.body).get("deadline")
            if raw is not None:
                deadline = Deadline(float(raw))
        except (json.JSONDecodeError, AttributeError, TypeError, ValueError):
            deadline = None  # budget metadata must never break a call
        if deadline is not None and deadline.expired(self.scheduler.clock):
            return HttpResponse(
                503,
                body=json.dumps({
                    "error": "Portal.DeadlineExceeded",
                    "message": "request deadline passed before dispatch",
                }),
            )
        if deadline is not None:
            push_inbound_deadline(deadline)
        try:
            return self._dispatch(request)
        finally:
            if deadline is not None:
                pop_inbound_deadline()

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        try:
            payload = json.loads(request.body)
            op = payload.get("op", "")
            chain = payload.get("proxy", [])
            if op == "submit":
                result: Any = self.submit(
                    chain, payload["rsl"], payload.get("key", "")
                )
            elif op == "status":
                result = self.status(chain, payload["job"])
            elif op == "output":
                result = self.output(chain, payload["job"])
            elif op == "cancel":
                result = self.cancel(chain, payload["job"])
            else:
                raise InvalidRequestError(f"unknown GRAM operation {op!r}")
        except (AuthenticationError, AuthorizationError) as exc:
            return HttpResponse(
                403, body=json.dumps({"error": exc.code, "message": exc.message})
            )
        except (InvalidRequestError, JobError, ResourceNotFoundError) as exc:
            return HttpResponse(
                400, body=json.dumps({"error": exc.code, "message": exc.message})
            )
        except (json.JSONDecodeError, KeyError) as exc:
            return HttpResponse(
                400,
                body=json.dumps(
                    {"error": "Portal.InvalidRequest", "message": str(exc)}
                ),
            )
        return HttpResponse(200, body=json.dumps({"result": result}))


class GramClient:
    """The ``globusrun`` client side."""

    def __init__(
        self,
        network: VirtualNetwork,
        proxy: ProxyCertificate,
        *,
        source: str = "client",
    ):
        self.network = network
        self.clock = network.clock
        self.proxy = proxy
        self.source = source
        self._http = HttpClient(network, source)
        self._chain = serialize_chain(proxy)

    def _call(self, contact: str, op: str, **fields: Any) -> Any:
        obs = getattr(self.network, "observability", None)
        if obs is None:
            return self._call_once(contact, op, None, **fields)
        started = self.clock.now
        span = obs.tracer.start(
            f"gram.{op}",
            kind="client",
            service="GRAM",
            host=self.source,
            attributes={"contact": contact},
        )
        try:
            result = self._call_once(contact, op, span, **fields)
        except Exception as exc:
            code = exc.code if isinstance(exc, PortalError) else type(exc).__name__
            obs.tracer.end(span, error=code)
            obs.metrics.record_call(
                "GRAM", op, "client", self.clock.now - started, True
            )
            raise
        obs.tracer.end(span)
        obs.metrics.record_call(
            "GRAM", op, "client", self.clock.now - started, False
        )
        return result

    def _call_once(self, contact: str, op: str, span, **fields: Any) -> Any:
        from repro.resilience.policy import current_inbound_deadline

        payload = {"op": op, "proxy": self._chain, **fields}
        if span is not None:
            payload["trace"] = {"traceId": span.trace_id, "spanId": span.span_id}
        # GRAM is JSON over HTTP, not SOAP, so the inbound request's budget
        # rides the payload the way the trace context does: a gatekeeper
        # working past the point the original caller gave up is wasted work.
        inherited = current_inbound_deadline()
        if inherited is not None:
            payload["deadline"] = inherited.at
        response = self._http.post(
            f"http://{contact}/jobmanager", json.dumps(payload)
        )
        if not response.ok:
            # An error body is only JSON if the gatekeeper itself produced
            # it; a proxy/server-boundary failure (e.g. a bare 500 page) is
            # not, and must surface as a retryable transport-class fault —
            # not a JSONDecodeError masking the real problem.
            try:
                data = json.loads(response.body)
            except json.JSONDecodeError:
                raise ServiceUnavailableError(
                    f"GRAM {op} to {contact} failed: "
                    f"HTTP {response.status} with non-JSON body "
                    f"{response.body[:60]!r}",
                    {"status": response.status},
                ) from None
            code = data.get("error", "Portal.Job")
            message = data.get("message", "GRAM request failed")
            raise PortalError.from_detail({"code": code, "message": message})
        try:
            data = json.loads(response.body)
        except json.JSONDecodeError:
            raise ServiceUnavailableError(
                f"GRAM {op} to {contact} returned a malformed success body "
                f"{response.body[:60]!r}"
            ) from None
        return data["result"]

    def submit(self, contact: str, rsl: str, key: str = "") -> str:
        """globusrun: submit an RSL job to a gatekeeper contact (host name).

        *key*, when given, is a client idempotency key: re-submitting with
        the same key (a retry after a lost response, a failover to a restarted
        gatekeeper) returns the originally created job id.
        """
        if key:
            return self._call(contact, "submit", rsl=rsl, key=key)
        return self._call(contact, "submit", rsl=rsl)

    def status(self, contact: str, job_id: str) -> dict[str, Any]:
        return self._call(contact, "status", job=job_id)

    def output(self, contact: str, job_id: str) -> dict[str, str]:
        return self._call(contact, "output", job=job_id)

    def cancel(self, contact: str, job_id: str) -> bool:
        return self._call(contact, "cancel", job=job_id)
