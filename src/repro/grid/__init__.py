"""The simulated computational grid.

The paper's job-submission and batch-script services sit on top of Globus
GRAM and four queuing systems (PBS, LSF, NQS, GRD).  None of that 2002
infrastructure is available, so this package rebuilds the behaviour:

- :mod:`repro.grid.jobs` — job specifications, states, and records.
- :mod:`repro.grid.apps` — the simulated application registry (what
  "executing" a job produces, and how long it takes in virtual time).
- :mod:`repro.grid.queuing` — discrete-event batch schedulers with
  dialect-correct script generation/parsing for PBS, LSF, NQS, and GRD.
- :mod:`repro.grid.gram` — a GSI-authenticated gatekeeper (GRAM analogue),
  RSL parsing, and the ``globusrun`` client.
- :mod:`repro.grid.resources` — compute hosts tying a scheduler, a
  gatekeeper, and a virtual-network HTTP server together.
"""

from repro.grid.jobs import JobRecord, JobSpec, JobState
from repro.grid.apps import ApplicationRegistry, default_registry
from repro.grid.gram import Gatekeeper, GramClient, parse_rsl, rsl_for
from repro.grid.resources import ComputeResource, build_testbed

__all__ = [
    "JobRecord",
    "JobSpec",
    "JobState",
    "ApplicationRegistry",
    "default_registry",
    "Gatekeeper",
    "GramClient",
    "parse_rsl",
    "rsl_for",
    "ComputeResource",
    "build_testbed",
]
