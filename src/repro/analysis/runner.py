"""Collect sources, run checkers, apply suppressions.

The runner is deterministic end to end: files are discovered in sorted
order, checkers run in registration order, and findings are sorted by
location — two runs over the same tree produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import (
    FRAMEWORK_CODES,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    Checker,
    Finding,
    Project,
    Severity,
    SourceModule,
    all_checkers,
)

SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def collect_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files accepted verbatim), sorted."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            out.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in SKIP_DIRS for part in candidate.parts):
                    out.add(candidate.resolve())
    return sorted(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class AnalysisResult:
    """Everything one run produced, before any baseline is applied."""

    findings: list[Finding]
    files_scanned: int
    checkers: list[Checker]
    #: findings dropped by inline suppressions (kept for reporting)
    suppressed: list[Finding] = field(default_factory=list)

    def codes_in_use(self) -> dict[str, str]:
        table = dict(FRAMEWORK_CODES)
        for checker in self.checkers:
            table.update(checker.codes)
        return table


def analyze_sources(
    modules: list[SourceModule],
    *,
    checkers: list[Checker] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> AnalysisResult:
    """Run *checkers* (default: all registered) over already-loaded modules."""
    active = checkers if checkers is not None else all_checkers()
    project = Project(modules=modules)

    raw: list[Finding] = []
    for module in modules:
        if module.tree is None:
            raw.append(
                module.finding(
                    PARSE_ERROR,
                    "file failed to parse as Python",
                    checker="framework",
                )
            )
    for checker in active:
        for finding in checker.check(project):
            raw.append(finding)

    if select:
        raw = [f for f in raw if f.code in select]
    if ignore:
        raw = [f for f in raw if f.code not in ignore]

    kept, suppressed, used = _apply_suppressions(raw, modules)
    kept.extend(_unused_suppressions(modules, used, select, ignore))
    kept.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return AnalysisResult(
        findings=kept,
        files_scanned=len(modules),
        checkers=active,
        suppressed=suppressed,
    )


def _apply_suppressions(
    findings: list[Finding], modules: list[SourceModule]
) -> tuple[list[Finding], list[Finding], set[tuple[str, int]]]:
    by_rel = {m.rel: m for m in modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[tuple[str, int]] = set()
    for finding in findings:
        module = by_rel.get(finding.path)
        codes = (
            module.suppressions.get(finding.line) if module is not None else None
        )
        if codes is not None and (not codes or finding.code in codes):
            suppressed.append(finding)
            used.add((finding.path, finding.line))
        else:
            kept.append(finding)
    return kept, suppressed, used


def _unused_suppressions(
    modules: list[SourceModule],
    used: set[tuple[str, int]],
    select: set[str] | None,
    ignore: set[str] | None,
) -> list[Finding]:
    """A suppression that matches nothing is itself a finding: it documents
    a violation that no longer exists (or never did)."""
    if select and UNUSED_SUPPRESSION not in select:
        return []
    if ignore and UNUSED_SUPPRESSION in ignore:
        return []
    out: list[Finding] = []
    for module in modules:
        for line, codes in sorted(module.suppressions.items()):
            if (module.rel, line) in used:
                continue
            label = ",".join(sorted(codes)) if codes else "*"
            out.append(
                module.finding(
                    UNUSED_SUPPRESSION,
                    f"suppression 'repro: ignore[{label}]' matches no finding",
                    line=line,
                    checker="framework",
                    severity=Severity.WARNING,
                )
            )
    return out


def load_modules(paths: list[Path], *, root: Path | None = None) -> list[SourceModule]:
    root = (root or Path.cwd()).resolve()
    files = collect_files([p.resolve() for p in paths])
    modules = []
    for file in files:
        text = file.read_text(encoding="utf-8")
        modules.append(SourceModule.from_text(text, file, _relpath(file, root)))
    return modules


def analyze_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    checkers: list[Checker] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> AnalysisResult:
    """Load every Python file under *paths* and analyze them as one project."""
    return analyze_sources(
        load_modules(paths, root=root),
        checkers=checkers,
        select=select,
        ignore=ignore,
    )


def analyze_paths_cached(
    paths: list[Path],
    *,
    root: Path | None = None,
    checkers: list[Checker] | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    changed_only: bool = False,
) -> tuple[AnalysisResult, "CacheStats"]:
    """:func:`analyze_paths` with the incremental cache in the loop.

    Three regimes, decided by the per-file digests
    (:mod:`repro.analysis.cache`):

    - **all files valid** — the report is assembled from cached findings
      without running a single checker (the warm fast path);
    - **some files dirty, full mode** — the whole project is re-analyzed
      and the cache rewritten;
    - **some files dirty, ``changed_only``** — only the dirty files plus
      their transitive import closure are analyzed; fresh findings for
      the dirty files merge with cached findings for the rest.  This is
      a CI *pre-step*: findings that depend on context outside the
      closure (a dispatcher that newly reaches into a dirty file) wait
      for the authoritative full run, so changed-only never writes the
      cache.
    """
    from repro.analysis.cache import (
        CACHE_DIR,
        CACHE_FILE,
        AnalysisCache,
        CacheStats,
        deps_digests,
        finding_from_dict,
        global_digest,
    )

    root = (root or Path.cwd()).resolve()
    modules = load_modules(paths, root=root)
    active = checkers if checkers is not None else all_checkers()
    if not use_cache:
        result = analyze_sources(
            modules, checkers=active, select=select, ignore=ignore
        )
        return result, CacheStats(enabled=False)

    codes = dict(FRAMEWORK_CODES)
    for checker in active:
        codes.update(checker.codes)
    digest = global_digest(modules, select=select, ignore=ignore, codes=codes)
    graph = Project(modules=list(modules)).graph().modules
    deps = deps_digests(modules, graph=graph)

    cache_path = Path(cache_dir) if cache_dir is not None else Path(CACHE_DIR)
    if not cache_path.is_absolute():
        cache_path = root / cache_path
    cache = AnalysisCache.load(cache_path / CACHE_FILE)
    valid, dirty = cache.split_valid(modules, global_digest=digest, deps=deps)
    stats = CacheStats(
        enabled=True, hits=len(valid), misses=len(dirty), dirty=list(dirty)
    )

    if not dirty:
        findings = [
            finding_from_dict(payload)
            for rel in sorted(valid)
            for payload in valid[rel]["findings"]
        ]
        suppressed = [
            finding_from_dict(payload)
            for rel in sorted(valid)
            for payload in valid[rel]["suppressed"]
        ]
        findings.sort(key=Finding.sort_key)
        suppressed.sort(key=Finding.sort_key)
        stats.fast_path = True
        return (
            AnalysisResult(
                findings=findings,
                files_scanned=len(modules),
                checkers=active,
                suppressed=suppressed,
            ),
            stats,
        )

    if changed_only:
        dirty_set = set(dirty)
        dirty_names = [
            m.module_name for m in modules if m.rel in dirty_set and m.module_name
        ]
        closure = set(graph.import_closure(dirty_names))
        reduced = [
            m
            for m in modules
            if m.rel in dirty_set or m.module_name in closure
        ]
        result = analyze_sources(
            reduced, checkers=active, select=select, ignore=ignore
        )
        findings = [f for f in result.findings if f.path in dirty_set]
        suppressed = [f for f in result.suppressed if f.path in dirty_set]
        for rel in sorted(valid):
            findings.extend(
                finding_from_dict(p) for p in valid[rel]["findings"]
            )
            suppressed.extend(
                finding_from_dict(p) for p in valid[rel]["suppressed"]
            )
        findings.sort(key=Finding.sort_key)
        suppressed.sort(key=Finding.sort_key)
        return (
            AnalysisResult(
                findings=findings,
                files_scanned=len(modules),
                checkers=active,
                suppressed=suppressed,
            ),
            stats,
        )

    result = analyze_sources(modules, checkers=active, select=select, ignore=ignore)
    cache.refresh(
        modules,
        result.findings,
        result.suppressed,
        global_digest=digest,
        deps=deps,
    )
    cache.save()
    stats.wrote = True
    return result, stats
